//! The paper's §III-B detailed example: the bezier-surface blend loop
//! (Listing 2) under u&u with factor 2. The two conditions are monotone, so
//! in three of the four duplicated loop bodies the compiler deletes the
//! re-evaluations (Figure 5's `FT`/`TF`/`FF` copies) — this example counts
//! the surviving condition checks to show it, then measures the speedup.
//!
//! ```text
//! cargo run --release -p uu-harness --example bezier_surface
//! ```

use uu_core::{compile, LoopFilter, PipelineOptions, Transform, UnmergeOptions};
use uu_harness::{measure, measure_baseline};
use uu_ir::{InstKind, Module};
use uu_kernels::all_benchmarks;

fn main() {
    let bench = all_benchmarks()
        .into_iter()
        .find(|b| b.info.name == "bezier-surface")
        .unwrap();

    // Static view: dynamic checks per compiled form.
    for (name, t) in [
        ("baseline -O3", Transform::Baseline),
        (
            "u&u factor 2",
            Transform::Uu {
                factor: 2,
                unmerge: UnmergeOptions::default(),
            },
        ),
    ] {
        let mut m = Module::new("bz");
        let id = m.add_function(uu_kernels::bezier::blend_kernel());
        compile(
            &mut m,
            &PipelineOptions {
                transform: t,
                filter: LoopFilter::Only {
                    func: "bezier_blend".into(),
                    loop_id: 0,
                },
                ..Default::default()
            },
        );
        let f = m.function(id);
        let cmps = f
            .iter_insts()
            .filter(|(_, i)| matches!(i.kind, InstKind::ICmp { .. }))
            .count();
        let divs = f
            .iter_insts()
            .filter(|(_, i)| {
                matches!(
                    i.kind,
                    InstKind::Bin {
                        op: uu_ir::BinOp::FDiv,
                        ..
                    }
                )
            })
            .count();
        let selects = f
            .iter_insts()
            .filter(|(_, i)| matches!(i.kind, InstKind::Select { .. }))
            .count();
        println!(
            "{name}: {} blocks, {} compares, {} fdivs, {} selects",
            f.num_blocks(),
            cmps,
            divs,
            selects
        );
    }

    // Dynamic view: the measured speedup (paper §III-B reports ~30% on this
    // loop; our simulated substrate lands in the same range).
    let base = measure_baseline(&bench).unwrap();
    let uu = measure(
        &bench,
        Transform::Uu {
            factor: 2,
            unmerge: UnmergeOptions::default(),
        },
        LoopFilter::Only {
            func: "bezier_blend".into(),
            loop_id: 0,
        },
        None,
    )
    .unwrap();
    assert_eq!(uu.checksum, base.checksum, "semantics preserved");
    println!(
        "\nbaseline {:.6} ms  →  u&u(2) {:.6} ms   speedup {:.2}x (paper: ~1.30x)",
        base.time_ms,
        uu.time_ms,
        base.time_ms / uu.time_ms
    );
    println!(
        "inst_misc: {} → {}   fdiv-heavy speculation removed on the cold paths",
        base.metrics.thread_misc, uu.metrics.thread_misc
    );
}

//! Quickstart: build a loop, apply unroll & unmerge, and watch the
//! downstream optimizer exploit the duplicated control flow.
//!
//! ```text
//! cargo run --release -p uu-harness --example quickstart
//! ```

use uu_core::{uu_loop, UuOptions};
use uu_ir::{Function, FunctionBuilder, ICmpPred, Param, Type, Value};
use uu_simt::{Gpu, KernelArg, LaunchConfig};

/// The paper's motivating shape: a loop whose body branches on a *monotone*
/// flag — once it goes false it stays false, but only path duplication lets
/// the compiler prove that.
fn build_kernel() -> Function {
    let mut f = Function::new(
        "quickstart",
        vec![
            Param::new("flags", Type::Ptr),
            Param::new("out", Type::Ptr),
            Param::new("n", Type::I64),
        ],
        Type::Void,
    );
    let entry = f.entry();
    let mut b = FunctionBuilder::new(&mut f);
    let header = b.create_block();
    let body = b.create_block();
    let hot = b.create_block();
    let latch = b.create_block();
    let exit = b.create_block();
    b.switch_to(entry);
    let gid = b.global_thread_id();
    let pf = b.gep(Value::Arg(0), gid, 8);
    let flag0 = b.load(Type::I64, pf);
    b.br(header);
    b.switch_to(header);
    let i = b.phi(Type::I64);
    let flag = b.phi(Type::I64);
    let acc = b.phi(Type::F64);
    b.add_phi_incoming(i, entry, Value::imm(0i64));
    b.add_phi_incoming(flag, entry, flag0);
    b.add_phi_incoming(acc, entry, Value::imm(0.0f64));
    let c = b.icmp(ICmpPred::Slt, i, Value::Arg(2));
    b.cond_br(c, body, exit);
    b.switch_to(body);
    let acc1 = b.fadd(acc, Value::imm(1.0f64));
    let hotc = b.icmp(ICmpPred::Sgt, flag, Value::imm(0i64));
    b.cond_br(hotc, hot, latch);
    b.switch_to(hot);
    let expensive = b.fdiv(acc1, Value::imm(3.0f64));
    let acc_h = b.fadd(acc1, expensive);
    let flag_h = b.sub(flag, Value::imm(1i64));
    b.br(latch);
    b.switch_to(latch);
    let accm = b.phi(Type::F64);
    let flagm = b.phi(Type::I64);
    b.add_phi_incoming(accm, body, acc1);
    b.add_phi_incoming(accm, hot, acc_h);
    b.add_phi_incoming(flagm, body, flag);
    b.add_phi_incoming(flagm, hot, flag_h);
    let i1 = b.add(i, Value::imm(1i64));
    b.add_phi_incoming(i, latch, i1);
    b.add_phi_incoming(flag, latch, flagm);
    b.add_phi_incoming(acc, latch, accm);
    b.br(header);
    b.switch_to(exit);
    let po = b.gep(Value::Arg(1), gid, 8);
    b.store(po, acc);
    b.ret(None);
    f
}

fn run(f: &uu_ir::Function) -> (Vec<f64>, u64, f64) {
    let mut gpu = Gpu::new();
    let flags = vec![0i64; 32];
    let bf = gpu.mem.alloc_i64(&flags).unwrap();
    let bo = gpu.mem.alloc_f64(&vec![0.0; 32]).unwrap();
    let rep = gpu
        .launch(
            f,
            LaunchConfig::new(1, 32),
            &[KernelArg::Buffer(bf), KernelArg::Buffer(bo), KernelArg::I64(24)],
        )
        .unwrap();
    (gpu.mem.read_f64(bo).unwrap(), rep.metrics.thread_insts(), rep.time_ms)
}

fn main() {
    let original = build_kernel();
    uu_ir::verify_function(&original).unwrap();

    println!("=== original IR ===\n{original}");

    // The transformation, standalone.
    let mut transformed = original.clone();
    let header = transformed.layout()[1];
    let outcome = uu_loop(&mut transformed, header, &UuOptions { factor: 2, ..Default::default() });
    println!(
        "u&u applied: unrolled={}, merge nodes duplicated={}, blocks cloned={}",
        outcome.unrolled, outcome.unmerge.nodes_duplicated, outcome.unmerge.blocks_cloned
    );
    uu_ir::verify_function(&transformed).unwrap();

    // The full pipelines: baseline -O3 vs -O3 with u&u in front.
    let mut m_base = uu_ir::Module::new("quickstart");
    let base_id = m_base.add_function(original.clone());
    uu_core::compile(&mut m_base, &uu_core::PipelineOptions::default());

    let mut m_uu = uu_ir::Module::new("quickstart");
    let uu_id = m_uu.add_function(original);
    uu_core::compile(
        &mut m_uu,
        &uu_core::PipelineOptions {
            transform: uu_core::Transform::Uu {
                factor: 2,
                unmerge: Default::default(),
            },
            ..Default::default()
        },
    );

    println!("\n=== after baseline -O3 (predicated) ===\n{}", m_base.function(base_id));
    println!("=== after u&u + -O3 (path specialized) ===\n{}", m_uu.function(uu_id));

    let (out_b, insts_b, t_b) = run(m_base.function(base_id));
    let (out_u, insts_u, t_u) = run(m_uu.function(uu_id));
    assert_eq!(out_b, out_u, "semantics must be preserved");
    println!("baseline: {insts_b} thread-insts, {t_b:.6} ms");
    println!("u&u:      {insts_u} thread-insts, {t_u:.6} ms");
    println!("speedup:  {:.3}x", t_b / t_u);
}

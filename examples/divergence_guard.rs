//! The paper's §V *complex* analysis and its proposed fix. The `pow` loop's
//! branch depends on the thread id, so u&u multiplies divergent path length
//! and the benchmark collapses (paper: 0.11× at factor 8). The paper's
//! future-work remedy — "a taint analysis that checks whether a condition
//! depends on the values of e.g. threadIdx, and not apply our transformation
//! in these cases" — is implemented here as the heuristic's divergence
//! guard; this example shows it rescuing the benchmark.
//!
//! ```text
//! cargo run --release -p uu-harness --example divergence_guard
//! ```

use uu_core::{HeuristicOptions, LoopFilter, Transform, UnmergeOptions};
use uu_harness::{measure, measure_baseline};
use uu_kernels::all_benchmarks;

fn main() {
    let bench = all_benchmarks()
        .into_iter()
        .find(|b| b.info.name == "complex")
        .unwrap();
    let base = measure_baseline(&bench).unwrap();
    println!("baseline: {:.6} ms (fully predicated, warp efficiency {:.1}%)",
        base.time_ms, base.metrics.warp_execution_efficiency(32));

    for factor in [2u32, 8] {
        let m = measure(
            &bench,
            Transform::Uu {
                factor,
                unmerge: UnmergeOptions::default(),
            },
            LoopFilter::Only {
                func: "complex_pow".into(),
                loop_id: 0,
            },
            None,
        )
        .unwrap();
        assert_eq!(m.checksum, base.checksum);
        println!(
            "u&u x{factor}:   {:.6} ms  ({:.2}x, warp efficiency {:.1}%, stall_inst_fetch {:.1}%)",
            m.time_ms,
            base.time_ms / m.time_ms,
            m.metrics.warp_execution_efficiency(32),
            m.metrics.stall_inst_fetch(),
        );
    }

    // The heuristic without the guard transforms the loop (and loses);
    // with the guard it skips it (Decision::Divergent) and time is
    // unchanged.
    for (name, guard) in [("heuristic (no guard)", false), ("heuristic + guard", true)] {
        let m = measure(
            &bench,
            Transform::UuHeuristic(HeuristicOptions {
                divergence_guard: guard,
                ..Default::default()
            }),
            LoopFilter::All,
            None,
        )
        .unwrap();
        assert_eq!(m.checksum, base.checksum);
        println!(
            "{name}: {:.6} ms  ({:.2}x)",
            m.time_ms,
            base.time_ms / m.time_ms
        );
    }
    println!("\nPaper §V: warp efficiency 100% → 19.4%, stall_inst_fetch 3.7% → 79.6% at factor 8.");
}

//! Architecture sensitivity: sweep the simulated GPU's instruction-cache
//! capacity and watch the haccmk factor-8 verdict flip.
//!
//! The paper attributes haccmk's u&u-vs-unroll gap to "stalls related to
//! instruction fetching" (§IV RQ3) — an *architectural* effect. With a
//! large enough i-cache the unmerged body fits and u&u pulls ahead; at
//! V100-like sizes it stalls and plain unrolling wins. This example
//! demonstrates the simulator's parameter model by sweeping that knob.
//!
//! ```text
//! cargo run --release -p uu-harness --example architecture_sweep
//! ```

use uu_core::{compile, LoopFilter, PipelineOptions, Transform, UnmergeOptions};
use uu_kernels::all_benchmarks;
use uu_simt::{Gpu, GpuParams};

fn main() {
    let bench = all_benchmarks()
        .into_iter()
        .find(|b| b.info.name == "haccmk")
        .unwrap();

    // Compile once per configuration.
    let compiled = |t: Transform| {
        let mut m = (bench.build)();
        compile(
            &mut m,
            &PipelineOptions {
                transform: t,
                filter: LoopFilter::Only {
                    func: "haccmk_force".into(),
                    loop_id: 0,
                },
                ..Default::default()
            },
        );
        m
    };
    let m_base = compiled(Transform::Baseline);
    let m_uu = compiled(Transform::Uu {
        factor: 8,
        unmerge: UnmergeOptions::default(),
    });
    let m_unroll = compiled(Transform::Unroll { factor: 8 });

    println!(
        "{:>10} | {:>9} {:>9} {:>9} | winner",
        "icache", "baseline", "u&u x8", "unroll x8"
    );
    for icache in [1024u64, 3072, 8192, 32768] {
        let time = |m: &uu_ir::Module| -> f64 {
            let params = GpuParams {
                icache_capacity: icache,
                ..GpuParams::default()
            };
            let mut gpu = Gpu::with_params(params);
            (bench.run)(m, &mut gpu).unwrap().kernel_time_ms
        };
        let (tb, tu, tr) = (time(&m_base), time(&m_uu), time(&m_unroll));
        let winner = if tu < tr { "u&u" } else { "unroll" };
        println!(
            "{:>10} | {:>9.5} {:>9.5} {:>9.5} | {winner}",
            icache, tb, tu, tr
        );
    }
    println!(
        "\nSmall i-caches penalize the unmerged body (the paper's V100 effect);\n\
         large ones let u&u's eliminated work win outright."
    );
}

//! The paper's motivating example (Listing 1, §V): XSBench's binary-search
//! loop. Shows the baseline predicating the bounds update into selects (the
//! `selp` of Listing 4), u&u replacing them with provenance-rich branches
//! (Listing 5), and the resulting counter changes: `inst_misc` down sharply,
//! warp execution efficiency down, kernel time *better* anyway.
//!
//! ```text
//! cargo run --release -p uu-harness --example xsbench_binary_search
//! ```

use uu_core::{compile, LoopFilter, PipelineOptions, Transform, UnmergeOptions};
use uu_harness::{measure, measure_baseline};
use uu_ir::{InstKind, Module};
use uu_kernels::all_benchmarks;

fn count(f: &uu_ir::Function, what: &str) -> usize {
    f.iter_insts()
        .filter(|(_, i)| match what {
            "select" => matches!(i.kind, InstKind::Select { .. }),
            "condbr" => matches!(i.kind, InstKind::CondBr { .. }),
            "sub" => matches!(
                i.kind,
                InstKind::Bin {
                    op: uu_ir::BinOp::Sub,
                    ..
                }
            ),
            _ => false,
        })
        .count()
}

fn main() {
    let bench = all_benchmarks()
        .into_iter()
        .find(|b| b.info.name == "XSBench")
        .unwrap();

    // Show the compiled hot kernel under both pipelines.
    for (name, t) in [
        ("baseline -O3", Transform::Baseline),
        (
            "u&u factor 8",
            Transform::Uu {
                factor: 8,
                unmerge: UnmergeOptions::default(),
            },
        ),
    ] {
        let mut m = Module::new("xs");
        let id = m.add_function(uu_kernels::xsbench::lookup_kernel());
        compile(
            &mut m,
            &PipelineOptions {
                transform: t,
                filter: LoopFilter::Only {
                    func: "xs_lookup".into(),
                    loop_id: 0,
                },
                ..Default::default()
            },
        );
        let f = m.function(id);
        println!(
            "{name}: {} blocks, {} insts, {} selects (selp), {} conditional branches, {} subs",
            f.num_blocks(),
            f.num_insts(),
            count(f, "select"),
            count(f, "condbr"),
            count(f, "sub"),
        );
        if name.starts_with("baseline") {
            println!("\n--- baseline loop (predicated, compare paper Listing 4) ---\n{f}");
        }
    }

    // Full-application measurement, as in §V.
    let base = measure_baseline(&bench).unwrap();
    println!(
        "\n{:<12} {:>10} {:>12} {:>10} {:>8} {:>8}",
        "config", "time (ms)", "inst_misc", "inst_ctrl", "weff %", "IPC"
    );
    let report = |name: &str, m: &uu_harness::Measurement| {
        println!(
            "{:<12} {:>10.6} {:>12} {:>10} {:>8.1} {:>8.2}",
            name,
            m.time_ms,
            m.metrics.thread_misc,
            m.metrics.thread_control,
            m.metrics.warp_execution_efficiency(32),
            m.metrics.ipc(),
        );
    };
    report("baseline", &base);
    for factor in [2u32, 4, 8] {
        let m = measure(
            &bench,
            Transform::Uu {
                factor,
                unmerge: UnmergeOptions::default(),
            },
            LoopFilter::Only {
                func: "xs_lookup".into(),
                loop_id: 0,
            },
            None,
        )
        .unwrap();
        assert_eq!(m.checksum, base.checksum, "semantics preserved");
        report(&format!("u&u x{factor}"), &m);
    }
    println!(
        "\nPaper (§V, V100): inst_misc −55%, warp efficiency 62.9% → 18.9%, IPC ×1.88, speedup up to 1.36×."
    );
}

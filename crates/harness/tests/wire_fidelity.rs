//! Print → parse fidelity for every benchmark module.
//!
//! The remote-compile backend ships modules to the daemon as printed IR,
//! and the disk cache stores optimized modules the same way — so the
//! round trip must preserve everything the optimizer can observe: SSA id
//! numbering (pass tie-breaks are id-order-sensitive) and `restrict`
//! qualifiers (GVN's load elimination consults them). Both were once
//! lost in transit; rainflow's daemon-backed sweep drifted by fractions
//! of a percent because its `__restrict__` arrays came back unqualified
//! and its phi ids renumbered. These tests pin the fix.

use uu_core::{compile, PipelineOptions, Transform};

/// Printed text must be a parse/print fixpoint for every benchmark: the
/// parser honors printed ids (void instructions slot into the unused
/// numbers), so nothing is renumbered in transit.
#[test]
fn every_benchmark_module_round_trips_to_identical_text() {
    for b in uu_kernels::all_benchmarks() {
        let m = (b.build)();
        let text = m.to_string();
        let reparsed = uu_ir::parse_module(&text)
            .unwrap_or_else(|e| panic!("{}: printed IR must parse: {e}", b.info.name));
        assert_eq!(
            reparsed.to_string(),
            text,
            "{}: print -> parse -> print is not a fixpoint",
            b.info.name
        );
    }
}

/// The optimizer must not be able to tell a round-tripped module from
/// the original. rainflow is the canary: it is `restrict`-qualified and
/// its builder allocates phi ids out of textual order, so it catches
/// both a dropped qualifier and renumbering-sensitive tie-breaks.
#[test]
fn rainflow_round_trip_optimizes_identically() {
    let b = uu_kernels::all_benchmarks()
        .into_iter()
        .find(|b| b.info.name == "rainflow")
        .unwrap();
    let mut built = (b.build)();
    let mut reparsed = uu_ir::parse_module(&built.to_string()).unwrap();
    let opts = || PipelineOptions {
        transform: Transform::Uu {
            factor: 4,
            unmerge: Default::default(),
        },
        ..Default::default()
    };
    let o1 = compile(&mut built, &opts());
    let o2 = compile(&mut reparsed, &opts());
    assert_eq!(o1.work, o2.work, "pipeline work diverged across the round trip");
    assert_eq!(
        built.to_string(),
        reparsed.to_string(),
        "optimized IR diverged across the round trip"
    );
}

/// `restrict` itself must survive the trip — parameter-level check,
/// independent of what any pass does with it.
#[test]
fn restrict_qualifier_survives_print_and_parse() {
    let text = "; module r\nfn @k(ptr restrict %x, ptr %y, i64 %n) -> void {\nbb0:\n  ret void\n}\n";
    let m = uu_ir::parse_module(text).unwrap();
    let f = m.iter().next().unwrap().1;
    assert!(f.params()[0].restrict);
    assert!(!f.params()[1].restrict);
    let printed = m.to_string();
    assert!(
        printed.contains("ptr restrict %x"),
        "restrict must print back in place"
    );
    let reparsed = uu_ir::parse_module(&printed).unwrap();
    assert_eq!(reparsed.to_string(), printed, "printed form must be a fixpoint");
    assert!(reparsed.iter().next().unwrap().1.params()[0].restrict);
}

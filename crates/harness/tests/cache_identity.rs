//! The artifact cache's headline guarantee: cached and cacheless sweeps
//! are identical — not statistically close, *identical* — at any worker
//! count, cold or warm. Every report is a pure function of the sweep
//! struct, so Debug-comparing the structs (which renders f64s at full
//! round-trip precision) is equivalent to diffing the report bytes.

use uu_harness::study::{run_study_cached, run_study_faulted};
use uu_harness::sweep::{run_sweep_cached, run_sweep_faulted, Sweep};
use uu_kernels::{all_benchmarks, Benchmark};
use uu_serve::CompileCache;

fn benches() -> Vec<Benchmark> {
    all_benchmarks()
        .into_iter()
        .filter(|b| b.info.name == "mandelbrot")
        .collect()
}

fn repr(s: &Sweep) -> String {
    format!("{:?}\n{:?}", s.points, s.apps)
}

#[test]
fn cached_sweep_is_identical_to_cacheless_at_any_jobs() {
    let benches = benches();
    let plain = run_sweep_faulted(&benches, true, 1, None);

    // Cold cache, serial.
    let cold_cache = CompileCache::new_mem();
    let cold = run_sweep_cached(&benches, true, 1, None, Some(&cold_cache));
    assert_eq!(repr(&plain), repr(&cold), "cold cached != cacheless");
    // The sweep shares compiles across configs even within one cold run
    // (e.g. each loop's `unmerge` module is compiled once per filter).
    let cold_stats = cold_cache.stats();
    assert!(cold_stats.compile_misses > 0);

    // Cold cache, 4 workers: the cache is shared across threads.
    let j4_cache = CompileCache::new_mem();
    let j4 = run_sweep_cached(&benches, true, 4, None, Some(&j4_cache));
    assert_eq!(repr(&plain), repr(&j4), "jobs=4 cached != cacheless");

    // Warm rerun over the jobs=4 cache: every executed point must come
    // from a run artifact, every skip-run point from a compile artifact —
    // and the output must still be identical.
    let warm = run_sweep_cached(&benches, true, 1, None, Some(&j4_cache));
    assert_eq!(repr(&plain), repr(&warm), "warm cached != cacheless");
    let st = j4_cache.stats();
    assert!(st.run_mem_hits > 0, "warm rerun must hit run artifacts: {st:?}");
    assert_eq!(
        st.run_mem_hits + st.run_disk_hits,
        st.run_misses,
        "warm pass must re-serve exactly the cold pass's run lookups: {st:?}"
    );
}

#[test]
fn cached_study_is_identical_and_warm_hits() {
    let benches = benches();
    let plain = run_study_faulted(&benches, 1, None);
    let cache = CompileCache::new_mem();
    let cold = run_study_cached(&benches, 2, None, Some(&cache));
    let warm = run_study_cached(&benches, 1, None, Some(&cache));
    let r = |s: &uu_harness::study::Study| format!("{:?}", s.points);
    assert_eq!(r(&plain), r(&cold));
    assert_eq!(r(&plain), r(&warm));
    let st = cache.stats();
    assert!(st.run_mem_hits > 0, "{st:?}");
    assert!(st.work_saved > 0, "{st:?}");
}

#[test]
fn disk_cache_round_trips_a_sweep_across_cache_instances() {
    // bezier-surface, not mandelbrot: its two cold loops produce
    // skip-run (compile-only) points, so the warm pass must hit disk
    // *compile* artifacts as well as run artifacts. A single-hot-loop
    // app re-serves everything from run artifacts and never consults
    // the compile layer on a warm pass.
    let benches: Vec<Benchmark> = all_benchmarks()
        .into_iter()
        .filter(|b| b.info.name == "bezier-surface")
        .collect();
    let dir = std::env::temp_dir().join(format!("uu-sweep-disk-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let plain = run_sweep_faulted(&benches, true, 1, None);
    {
        let cache = CompileCache::at_dir(&dir).unwrap();
        let cold = run_sweep_cached(&benches, true, 1, None, Some(&cache));
        assert_eq!(repr(&plain), repr(&cold));
    }
    // A fresh cache instance (empty memory, as after a process restart)
    // must serve the whole sweep from disk artifacts, byte-identically.
    let cache = CompileCache::at_dir(&dir).unwrap();
    let warm = run_sweep_cached(&benches, true, 1, None, Some(&cache));
    assert_eq!(repr(&plain), repr(&warm), "disk-warm sweep != cacheless");
    let st = cache.stats();
    assert!(st.run_disk_hits > 0, "{st:?}");
    assert!(st.compile_disk_hits > 0, "{st:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

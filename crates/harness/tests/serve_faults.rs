//! Service-level fault drills (`UU_SERVE_FAULT` grammar) driven end to
//! end through the harness: a concurrent daemon with injected torn
//! frames, disconnects, handler panics, stalls and disk-full stores must
//! never lose a response — and a sweep or study routed through it must
//! stay **byte-identical** to the cacheless local reference, at any
//! worker count. The daemon, like the cache, is a wall-time lever only.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use uu_harness::study::{run_study_backed, run_study_faulted, Study};
use uu_harness::sweep::{run_sweep_backed, run_sweep_faulted, Sweep};
use uu_harness::Backend;
use uu_kernels::{all_benchmarks, Benchmark};
use uu_serve::{
    serve_unix_with, CacheStats, CompileCache, Message, Remote, ServeFaultPlan, ServeOptions,
};

fn benches() -> Vec<Benchmark> {
    all_benchmarks()
        .into_iter()
        .filter(|b| b.info.name == "mandelbrot")
        .collect()
}

fn sweep_repr(s: &Sweep) -> String {
    format!("{:?}\n{:?}", s.points, s.apps)
}

fn study_repr(s: &Study) -> String {
    format!("{:?}", s.points)
}

/// Run `f` against an in-process daemon on a fresh Unix socket, then
/// drain it with `shutdown` and return the daemon cache's stats. The
/// daemon must exit cleanly even when `f` made it tear frames, panic, or
/// shed load — a lost response would hang the scope join, failing loudly.
fn with_daemon<R>(
    opts: ServeOptions,
    cache: &CompileCache,
    f: impl FnOnce(&Remote) -> R,
) -> (R, CacheStats) {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "uu-serve-faults-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let sock = dir.join("daemon.sock");
    let out = std::thread::scope(|s| {
        let daemon = {
            let sock = sock.clone();
            s.spawn(move || serve_unix_with(&sock, cache, opts))
        };
        let remote = Remote::new(&sock);
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&remote)));
        let bye = remote.request(&Message::new("shutdown")).unwrap();
        assert_eq!(bye.verb, "ok", "drain request must be honored");
        daemon.join().unwrap().unwrap();
        match out {
            Ok(r) => r,
            Err(p) => std::panic::resume_unwind(p),
        }
    });
    assert!(!sock.exists(), "daemon must remove its socket on exit");
    let stats = stats_sanity(cache.stats());
    let _ = std::fs::remove_dir_all(&dir);
    (out, stats)
}

/// Cross-field invariants every drill's stats must satisfy.
fn stats_sanity(st: CacheStats) -> CacheStats {
    assert!(st.requests > 0, "daemon served nothing: {st:?}");
    st
}

/// A tiny module for raw-protocol drills (the sweep tests use real
/// benchmark modules).
const MODULE: &str = "\
; module t
fn @k(i64 %n) -> i64 {
bb0:
  br bb1
bb1:
  %1 = phi i64 [0, bb0], [%2, bb2]
  %3 = icmp slt i64 %1, %n
  br i1 %3, bb2, bb3
bb2:
  %2 = add i64 %1, 1
  br bb1
bb3:
  ret i64 %1
}
";

#[test]
fn faulted_daemon_sweep_is_byte_identical_at_jobs_1_and_4() {
    let benches = benches();
    let plain = run_sweep_faulted(&benches, true, 1, None);

    // Two workers, tight admission, and a fault plan that tears one
    // response, drops one connection, and panics one handler — spread
    // across the admitted-request stream so faults land in both runs.
    let opts = ServeOptions {
        workers: 2,
        inflight: 2,
        fault: Some(
            ServeFaultPlan::parse("torn@0,disconnect@3,panic@7,torn@13,disconnect@16").unwrap(),
        ),
        ..ServeOptions::default()
    };
    let daemon_cache = CompileCache::new_mem();
    let ((j1, j4), stats) = with_daemon(opts, &daemon_cache, |remote| {
        let c1 = CompileCache::new_mem();
        let j1 = run_sweep_backed(
            &benches,
            true,
            1,
            None,
            Backend { cache: Some(&c1), remote: Some(remote) },
        );
        let c4 = CompileCache::new_mem();
        let j4 = run_sweep_backed(
            &benches,
            true,
            4,
            None,
            Backend { cache: Some(&c4), remote: Some(remote) },
        );
        (j1, j4)
    });
    assert_eq!(
        sweep_repr(&plain),
        sweep_repr(&j1),
        "daemon-backed jobs=1 sweep diverged from the cacheless reference"
    );
    assert_eq!(
        sweep_repr(&plain),
        sweep_repr(&j4),
        "daemon-backed jobs=4 sweep diverged from the cacheless reference"
    );
    // The injected faults actually fired and were contained.
    assert!(stats.handler_panics >= 1, "{stats:?}");
    assert_eq!(stats.quarantined_modules, 0, "one panic must not quarantine: {stats:?}");
    assert!(stats.requests > 10, "{stats:?}");
}

#[test]
fn faulted_daemon_study_is_byte_identical_at_jobs_1_and_4() {
    let benches = benches();
    let plain = run_study_faulted(&benches, 1, None);
    let opts = ServeOptions {
        workers: 2,
        inflight: 2,
        fault: Some(ServeFaultPlan::parse("disconnect@1,panic@4,torn@9").unwrap()),
        ..ServeOptions::default()
    };
    let daemon_cache = CompileCache::new_mem();
    let ((j1, j4), stats) = with_daemon(opts, &daemon_cache, |remote| {
        let c1 = CompileCache::new_mem();
        let j1 = run_study_backed(
            &benches,
            1,
            None,
            Backend { cache: Some(&c1), remote: Some(remote) },
        );
        let c4 = CompileCache::new_mem();
        let j4 = run_study_backed(
            &benches,
            4,
            None,
            Backend { cache: Some(&c4), remote: Some(remote) },
        );
        (j1, j4)
    });
    assert_eq!(study_repr(&plain), study_repr(&j1), "daemon-backed study (j1) diverged");
    assert_eq!(study_repr(&plain), study_repr(&j4), "daemon-backed study (j4) diverged");
    assert!(stats.handler_panics >= 1, "{stats:?}");
}

#[test]
fn quarantined_module_falls_back_to_local_compiles_byte_identically() {
    // breaker_k = 1: the first injected panic quarantines the benchmark
    // module outright. Every later compile of it is refused with a
    // non-transient `quarantined` error — and the harness backend must
    // absorb that by compiling locally, with zero effect on the report.
    let benches = benches();
    let plain = run_sweep_faulted(&benches, true, 1, None);
    let opts = ServeOptions {
        workers: 2,
        breaker_k: 1,
        fault: Some(ServeFaultPlan::parse("panic@0").unwrap()),
        ..ServeOptions::default()
    };
    let daemon_cache = CompileCache::new_mem();
    let (swept, stats) = with_daemon(opts, &daemon_cache, |remote| {
        let cache = CompileCache::new_mem();
        run_sweep_backed(
            &benches,
            true,
            1,
            None,
            Backend { cache: Some(&cache), remote: Some(remote) },
        )
    });
    assert_eq!(
        sweep_repr(&plain),
        sweep_repr(&swept),
        "quarantine fallback changed sweep bytes"
    );
    assert_eq!(stats.handler_panics, 1, "{stats:?}");
    assert_eq!(stats.quarantined_modules, 1, "{stats:?}");
    assert!(
        stats.quarantined_rejects >= 5,
        "the whole sweep shares one module, every request after the \
         quarantine must be refused: {stats:?}"
    );
}

#[test]
fn busy_shedding_sheds_and_the_retrying_client_still_lands() {
    // One admission slot, two workers: while the first request stalls
    // (injected slow fault) holding the slot, a concurrent request must
    // be shed with `busy` + retry-after-ms — and its client-side backoff
    // must carry it through to a real response once the stall clears.
    let opts = ServeOptions {
        workers: 2,
        inflight: 1,
        fault: Some(ServeFaultPlan::parse("slow@0:600").unwrap()),
        ..ServeOptions::default()
    };
    let daemon_cache = CompileCache::new_mem();
    let (elapsed, stats) = with_daemon(opts, &daemon_cache, |remote| {
        std::thread::scope(|s| {
            let slow = s.spawn(|| {
                let r = remote.compile(MODULE, "unroll2", None, None, false).unwrap();
                assert!(!r.hit);
            });
            // Give the stalled request time to occupy the slot.
            std::thread::sleep(Duration::from_millis(120));
            let start = Instant::now();
            let r = remote
                .clone()
                .with_attempts(64)
                .compile(MODULE, "unroll4", None, None, false)
                .unwrap();
            assert!(!r.hit);
            slow.join().unwrap();
            start.elapsed()
        })
    });
    assert!(stats.busy_shed >= 1, "the concurrent request was never shed: {stats:?}");
    assert!(
        elapsed >= Duration::from_millis(100),
        "the shed client cannot have landed before the stall cleared: {elapsed:?}"
    );
}

#[test]
fn disk_full_store_fault_degrades_to_uncached_and_is_counted() {
    let dir = std::env::temp_dir().join(format!("uu-serve-diskfull-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let daemon_cache = CompileCache::at_dir(&dir).unwrap();
    let opts = ServeOptions {
        workers: 2,
        fault: Some(ServeFaultPlan::parse("disk-full@0").unwrap()),
        ..ServeOptions::default()
    };
    let (_, stats) = with_daemon(opts, &daemon_cache, |remote| {
        let a = remote.compile(MODULE, "uu2", None, None, true).unwrap();
        assert!(!a.hit, "first compile is a miss");
        // The store failed, but the compile still answered — and the
        // in-memory layer still serves the repeat.
        let b = remote.compile(MODULE, "uu2", None, None, true).unwrap();
        assert!(b.hit, "memory layer survives a failed disk store");
        assert_eq!(a.meta, b.meta);
        assert_eq!(a.module_text, b.module_text);
    });
    assert!(stats.store_errors >= 1, "disk-full fault was not counted: {stats:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn drain_under_fire_loses_no_responses() {
    // Six concurrent clients against two workers, with a torn frame and
    // a handler panic injected mid-stream: every client must still get a
    // real `ok` (retries absorb the damage), and the shutdown drain in
    // `with_daemon` must find nothing left behind.
    let opts = ServeOptions {
        workers: 2,
        inflight: 2,
        fault: Some(ServeFaultPlan::parse("torn@1,panic@2").unwrap()),
        ..ServeOptions::default()
    };
    let daemon_cache = CompileCache::new_mem();
    let (_, stats) = with_daemon(opts, &daemon_cache, |remote| {
        const CONFIGS: [&str; 6] = ["unroll2", "unroll4", "unroll8", "uu2", "uu4", "uu8"];
        std::thread::scope(|s| {
            let handles: Vec<_> = CONFIGS
                .iter()
                .map(|config| {
                    s.spawn(move || {
                        let r = remote
                            .clone()
                            .with_attempts(32)
                            .compile(MODULE, config, None, None, true)
                            .unwrap();
                        assert!(r.module_text.is_some(), "{config}");
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        })
    });
    // 6 distinct configs (+ retries for the damaged ones) + shutdown.
    assert!(stats.requests >= 7, "{stats:?}");
    assert!(stats.handler_panics >= 1, "{stats:?}");
}

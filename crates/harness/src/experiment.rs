//! Core measurement machinery: compile a benchmark under a configuration,
//! execute it on the simulated GPU, and collect the paper's three metrics
//! (kernel time, binary size, compile time) plus hardware counters.

use std::time::Duration;
use uu_core::{compile, LoopFilter, PipelineOptions, Transform};
use uu_kernels::Benchmark;
use uu_simt::{ExecError, Gpu, Metrics};

/// One compiled-and-executed measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Sum of kernel times (simulated milliseconds), noise-free.
    pub time_ms: f64,
    /// Lowered code size of the whole module (Figure 6b's "binary size").
    pub code_size: u64,
    /// Modeled compile time of the optimization pipeline, from the
    /// deterministic compile clock ([`uu_core::WORK_PER_MS`]); wall clock
    /// would leak scheduling noise into every compile-time figure.
    pub compile_ms: f64,
    /// Output checksum (must match the baseline's).
    pub checksum: f64,
    /// Whether compilation hit the timeout (paper: ccs at factor ≥ 4).
    pub timed_out: bool,
    /// Aggregated simulator counters.
    pub metrics: Metrics,
    /// Host↔device transfer time (for Table I's %C).
    pub transfer_ms: f64,
}

/// A loop identified by function name + deterministic per-function index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopRef {
    /// Function name.
    pub func: String,
    /// Loop index in `LoopForest` order.
    pub loop_id: usize,
}

/// Enumerate every loop of a benchmark's module.
pub fn loop_list(bench: &Benchmark) -> Vec<LoopRef> {
    let m = (bench.build)();
    let mut out = Vec::new();
    for (_, f) in m.iter() {
        let dom = uu_analysis::DomTree::compute(f);
        let forest = uu_analysis::LoopForest::compute(f, &dom);
        for i in 0..forest.len() {
            out.push(LoopRef {
                func: f.name().to_string(),
                loop_id: i,
            });
        }
    }
    out
}

/// Compile timeout mirroring the paper's 5-minute cap, scaled to simulator
/// scale. Interpreted on the pipeline's deterministic compile clock
/// ([`uu_core::WORK_PER_MS`]), so whether a configuration times out never
/// depends on machine load or worker count.
pub const COMPILE_TIMEOUT: Duration = Duration::from_secs(20);

/// Compile `bench` under `transform`/`filter`; execute the workload unless
/// `skip_run` is set (used for cold loops, whose kernel time provably equals
/// the baseline's because the workload never launches them).
///
/// # Errors
///
/// Propagates simulator faults — which, after a verified compile, indicate a
/// miscompilation and should abort the experiment.
pub fn measure(
    bench: &Benchmark,
    transform: Transform,
    filter: LoopFilter,
    skip_run: Option<&Measurement>,
) -> Result<Measurement, ExecError> {
    let mut m = (bench.build)();
    let opts = PipelineOptions {
        transform,
        filter,
        timeout: Some(COMPILE_TIMEOUT),
        ..Default::default()
    };
    let outcome = compile(&mut m, &opts);
    debug_assert!(uu_ir::verify_module(&m).is_ok());
    let code_size = uu_analysis::cost::module_size(&m);
    if let Some(base) = skip_run {
        return Ok(Measurement {
            time_ms: base.time_ms,
            code_size,
            compile_ms: outcome.work as f64 / uu_core::WORK_PER_MS,
            checksum: base.checksum,
            timed_out: outcome.timed_out,
            metrics: base.metrics,
            transfer_ms: base.transfer_ms,
        });
    }
    let mut gpu = Gpu::new();
    let run = (bench.run)(&m, &mut gpu)?;
    // The application launches its kernels `launch_repeats` times; the
    // workload simulates one representative launch (counters stay
    // per-launch; ratios are unaffected).
    let repeats = bench.info.launch_repeats.max(1) as f64;
    Ok(Measurement {
        time_ms: run.kernel_time_ms * repeats,
        code_size,
        compile_ms: outcome.work as f64 / uu_core::WORK_PER_MS,
        checksum: run.checksum,
        timed_out: outcome.timed_out,
        metrics: run.metrics,
        transfer_ms: run.transfer_ms(),
    })
}

/// Measure the baseline configuration of a benchmark.
pub fn measure_baseline(bench: &Benchmark) -> Result<Measurement, ExecError> {
    measure(bench, Transform::Baseline, LoopFilter::All, None)
}

/// One unit of per-loop sweep work: apply `transform` to exactly
/// `loop_ref` of `bench` and measure it against the precomputed baseline.
///
/// Tasks share nothing mutable — each builds its own module and simulated
/// GPU — so a batch of them is safe to fan out across a `uu-par` pool; the
/// sweep driver does exactly that.
#[derive(Debug, Clone)]
pub struct PointTask<'a> {
    /// The benchmark to compile and run.
    pub bench: &'a Benchmark,
    /// Its baseline measurement (skip-run source for cold loops, reference
    /// for the hot-loop equivalence check).
    pub base: &'a Measurement,
    /// The single targeted loop.
    pub loop_ref: LoopRef,
    /// Whether that loop lives in a launched (hot) kernel.
    pub hot: bool,
    /// Configuration name (`uu2`, `unroll4`, `unmerge`, …).
    pub config: &'static str,
    /// The transform behind `config`.
    pub transform: Transform,
}

impl PointTask<'_> {
    /// Compile + execute this point (cold loops reuse the baseline run)
    /// and assert semantic equivalence for hot loops.
    ///
    /// # Panics
    ///
    /// Panics on simulator faults or checksum mismatches — both indicate a
    /// miscompilation and must abort the experiment, exactly as in the
    /// serial sweep.
    pub fn measure(&self) -> Measurement {
        let what = format!(
            "{}/{}/{}",
            self.bench.info.name, self.loop_ref.func, self.config
        );
        let filter = LoopFilter::Only {
            func: self.loop_ref.func.clone(),
            loop_id: self.loop_ref.loop_id,
        };
        let skip = if self.hot { None } else { Some(self.base) };
        let m = measure(self.bench, self.transform.clone(), filter, skip)
            .unwrap_or_else(|e| panic!("{what}: {e}"));
        if self.hot {
            assert_equivalent(self.base, &m, &what);
        }
        m
    }
}

/// The per-loop sweep configurations of the paper's Figures 6–8.
pub fn sweep_configs() -> Vec<(&'static str, Transform)> {
    use uu_core::UnmergeOptions;
    vec![
        ("uu2", Transform::Uu {
            factor: 2,
            unmerge: UnmergeOptions::default(),
        }),
        ("uu4", Transform::Uu {
            factor: 4,
            unmerge: UnmergeOptions::default(),
        }),
        ("uu8", Transform::Uu {
            factor: 8,
            unmerge: UnmergeOptions::default(),
        }),
        ("unroll2", Transform::Unroll { factor: 2 }),
        ("unroll4", Transform::Unroll { factor: 4 }),
        ("unroll8", Transform::Unroll { factor: 8 }),
        ("unmerge", Transform::Unmerge),
    ]
}

/// Assert that a transformed measurement preserved semantics.
///
/// # Panics
///
/// Panics on checksum mismatch — a miscompilation, which must never be
/// reported as a speedup.
pub fn assert_equivalent(base: &Measurement, got: &Measurement, what: &str) {
    assert!(
        got.checksum == base.checksum,
        "MISCOMPILE under {what}: checksum {} != baseline {}",
        got.checksum,
        base.checksum
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use uu_kernels::all_benchmarks;

    fn bench(name: &str) -> Benchmark {
        all_benchmarks()
            .into_iter()
            .find(|b| b.info.name == name)
            .unwrap()
    }

    #[test]
    fn loop_list_matches_table() {
        for b in all_benchmarks() {
            assert_eq!(loop_list(&b).len(), b.info.table_loops, "{}", b.info.name);
        }
    }

    #[test]
    fn baseline_measures_bezier() {
        let b = bench("bezier-surface");
        let m = measure_baseline(&b).unwrap();
        assert!(m.time_ms > 0.0);
        assert!(m.code_size > 0);
        assert!(!m.timed_out);
    }

    #[test]
    fn uu_on_hot_loop_preserves_semantics_and_speeds_up_bezier() {
        let b = bench("bezier-surface");
        let base = measure_baseline(&b).unwrap();
        let got = measure(
            &b,
            Transform::Uu {
                factor: 2,
                unmerge: Default::default(),
            },
            LoopFilter::Only {
                func: "bezier_blend".into(),
                loop_id: 0,
            },
            None,
        )
        .unwrap();
        assert_equivalent(&base, &got, "uu2 bezier");
        assert!(
            got.time_ms < base.time_ms,
            "u&u should speed up the bezier hot loop: {} vs {}",
            got.time_ms,
            base.time_ms
        );
        assert!(got.code_size > base.code_size);
    }

    #[test]
    fn launch_repeats_scale_time_but_not_ratios() {
        // complex has launch_repeats = 37000; ratios must be unaffected.
        let b = bench("complex");
        let base = measure_baseline(&b).unwrap();
        assert!(
            base.time_ms > 1.0,
            "repeats must lift complex into the ms range: {}",
            base.time_ms
        );
        let uu = measure(
            &b,
            Transform::Uu {
                factor: 2,
                unmerge: Default::default(),
            },
            LoopFilter::Only {
                func: "complex_pow".into(),
                loop_id: 0,
            },
            None,
        )
        .unwrap();
        let ratio = base.time_ms / uu.time_ms;
        assert!(ratio < 0.7, "complex uu2 slowdown survives scaling: {ratio}");
    }

    #[test]
    fn cold_loop_skip_run_reuses_baseline_time() {
        let b = bench("bezier-surface");
        let base = measure_baseline(&b).unwrap();
        let got = measure(
            &b,
            Transform::Uu {
                factor: 2,
                unmerge: Default::default(),
            },
            LoopFilter::Only {
                func: "aux_counted_0".into(),
                loop_id: 0,
            },
            Some(&base),
        )
        .unwrap();
        assert_eq!(got.time_ms, base.time_ms);
        assert_eq!(got.checksum, base.checksum);
    }
}

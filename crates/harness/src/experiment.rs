//! Core measurement machinery: compile a benchmark under a configuration,
//! execute it on the simulated GPU, and collect the paper's three metrics
//! (kernel time, binary size, compile time) plus hardware counters.

use std::time::Duration;
use uu_core::{compile, FaultKind, FaultPlan, LoopFilter, PipelineOptions, Rung, Transform};
use uu_kernels::Benchmark;
use uu_simt::{ExecError, Gpu, Metrics};

/// One compiled-and-executed measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Sum of kernel times (simulated milliseconds), noise-free.
    pub time_ms: f64,
    /// Lowered code size of the whole module (Figure 6b's "binary size").
    pub code_size: u64,
    /// Modeled compile time of the optimization pipeline, from the
    /// deterministic compile clock ([`uu_core::WORK_PER_MS`]); wall clock
    /// would leak scheduling noise into every compile-time figure.
    pub compile_ms: f64,
    /// Output checksum (must match the baseline's).
    pub checksum: f64,
    /// Whether compilation hit the timeout (paper: ccs at factor ≥ 4).
    pub timed_out: bool,
    /// Aggregated simulator counters.
    pub metrics: Metrics,
    /// Host↔device transfer time (for Table I's %C).
    pub transfer_ms: f64,
    /// Which rung of the degradation ladder the compile landed on
    /// ([`Rung::Full`] on a clean compile).
    pub rung: Rung,
    /// Contained-failure diagnostics: the compile's `PassFailure` summary
    /// plus any runtime fault or equivalence violation. Empty when clean.
    pub diag: String,
}

impl Measurement {
    /// Whether this point is fully clean (no contained failures, full
    /// optimization rung).
    pub fn is_clean(&self) -> bool {
        self.rung == Rung::Full && self.diag.is_empty()
    }
}

/// A loop identified by function name + deterministic per-function index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopRef {
    /// Function name.
    pub func: String,
    /// Loop index in `LoopForest` order.
    pub loop_id: usize,
}

/// Enumerate every loop of a benchmark's module.
pub fn loop_list(bench: &Benchmark) -> Vec<LoopRef> {
    let m = (bench.build)();
    let mut out = Vec::new();
    for (_, f) in m.iter() {
        let dom = uu_analysis::DomTree::compute(f);
        let forest = uu_analysis::LoopForest::compute(f, &dom);
        for i in 0..forest.len() {
            out.push(LoopRef {
                func: f.name().to_string(),
                loop_id: i,
            });
        }
    }
    out
}

/// Compile timeout mirroring the paper's 5-minute cap, scaled to simulator
/// scale. Interpreted on the pipeline's deterministic compile clock
/// ([`uu_core::WORK_PER_MS`]), so whether a configuration times out never
/// depends on machine load or worker count.
pub const COMPILE_TIMEOUT: Duration = Duration::from_secs(20);

/// A failed measurement: the simulator trapped, but the compile-side
/// context (rung, diagnostics, modeled compile time) survives so callers
/// can degrade the data point instead of dying.
#[derive(Debug, Clone)]
pub struct MeasureError {
    /// The simulator fault.
    pub exec: ExecError,
    /// The compile's degradation rung.
    pub rung: Rung,
    /// The compile's contained-failure summary (may be empty — a clean
    /// compile can still trap on an injected memory fault).
    pub failures: String,
    /// Modeled compile time of the failed point.
    pub compile_ms: f64,
    /// Code size of the compiled (but trapping) module.
    pub code_size: u64,
    /// Whether the compile timed out.
    pub timed_out: bool,
}

impl std::fmt::Display for MeasureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "exec fault: {}", self.exec)?;
        if !self.failures.is_empty() {
            write!(f, " (compile: {})", self.failures)?;
        }
        Ok(())
    }
}

/// Compile `bench` under `transform`/`filter`; execute the workload unless
/// `skip_run` is set (used for cold loops, whose kernel time provably equals
/// the baseline's because the workload never launches them).
///
/// Reads `UU_FAULT` for a deterministic fault-injection plan; use
/// [`measure_with`] to pass one explicitly (tests do).
///
/// # Errors
///
/// Returns a [`MeasureError`] when the simulator traps — after a verified
/// compile that indicates a miscompilation (or an injected fault); callers
/// degrade the point rather than aborting the sweep.
pub fn measure(
    bench: &Benchmark,
    transform: Transform,
    filter: LoopFilter,
    skip_run: Option<&Measurement>,
) -> Result<Measurement, MeasureError> {
    measure_with(bench, transform, filter, skip_run, FaultPlan::from_env())
}

/// [`measure`] with an explicit fault plan. Pass/verifier/budget faults go
/// to the pipeline; [`FaultKind::Mem`] arms the simulated GPU's one-shot
/// memory-fault countdown (`fault.at` counts accesses) instead.
///
/// # Errors
///
/// See [`measure`].
pub fn measure_with(
    bench: &Benchmark,
    transform: Transform,
    filter: LoopFilter,
    skip_run: Option<&Measurement>,
    fault: Option<FaultPlan>,
) -> Result<Measurement, MeasureError> {
    measure_cached(bench, transform, filter, skip_run, fault, None)
}

/// The *run*-side cache-key tag: everything outside the module + pipeline
/// config that can change simulator output — benchmark identity, workload
/// version, launch repeats, the simulator engine selection, and any
/// memory-fault plan (which is armed on the GPU, not the pipeline).
fn workload_tag(bench: &Benchmark, fault: Option<&FaultPlan>) -> String {
    let engine = std::env::var("UU_SIMT_ENGINE").unwrap_or_default();
    let mem_fault = fault
        .filter(|p| p.kind == FaultKind::Mem)
        .map(|p| p.spec())
        .unwrap_or_default();
    format!(
        "{}|wl{}|x{}|{engine}|{mem_fault}",
        bench.info.name,
        uu_kernels::WORKLOAD_VERSION,
        bench.info.launch_repeats.max(1),
    )
}

/// Where a point's compile half comes from: an optional in-process
/// content-addressed cache, an optional compile daemon, or (both `None`)
/// the plain local pipeline. Copyable so the sweep can hand one to every
/// task without lifetime gymnastics.
///
/// The three sources are interchangeable by construction — the daemon
/// builds the exact [`PipelineOptions`] the harness does, the cache
/// round-trips every field losslessly — so the backend only ever changes
/// wall time, never report bytes.
#[derive(Debug, Clone, Copy, Default)]
pub struct Backend<'a> {
    /// Shared content-addressed artifact cache (compile + run artifacts).
    pub cache: Option<&'a uu_serve::CompileCache>,
    /// Compile daemon handle; compiles with a nameable config are shipped
    /// to it, anything it cannot serve falls back to the local pipeline.
    pub remote: Option<&'a uu_serve::Remote>,
}

impl<'a> Backend<'a> {
    /// A purely local backend (optional cache, no daemon).
    pub fn local(cache: Option<&'a uu_serve::CompileCache>) -> Backend<'a> {
        Backend {
            cache,
            remote: None,
        }
    }
}

/// [`measure_with`] through an optional content-addressed cache.
///
/// With `cache: None` this *is* the uncached path. With a cache, the
/// compile half is served from compile artifacts and — for executed
/// (hot) points — the whole measurement is served from run artifacts, so
/// a warm sweep skips both the pipeline and the simulator. Every cached
/// field round-trips exactly (f64s as bit patterns), so cached and
/// cacheless measurements are identical, not merely close. Faulted
/// simulator runs ([`MeasureError`]) are never cached.
///
/// # Errors
///
/// See [`measure`].
pub fn measure_cached(
    bench: &Benchmark,
    transform: Transform,
    filter: LoopFilter,
    skip_run: Option<&Measurement>,
    fault: Option<FaultPlan>,
    cache: Option<&uu_serve::CompileCache>,
) -> Result<Measurement, MeasureError> {
    measure_backed(bench, transform, filter, skip_run, fault, Backend::local(cache))
}

/// [`measure_cached`] through a [`Backend`]: local cache, compile daemon,
/// or both. Daemon compiles that fail for any reason — no nameable
/// config, daemon unreachable, retry budget exhausted, quarantined
/// module — fall back to the local path, so a flaky or saturated daemon
/// degrades batch throughput, never batch output.
///
/// # Errors
///
/// See [`measure`].
pub fn measure_backed(
    bench: &Benchmark,
    transform: Transform,
    filter: LoopFilter,
    skip_run: Option<&Measurement>,
    fault: Option<FaultPlan>,
    backend: Backend<'_>,
) -> Result<Measurement, MeasureError> {
    let mut m = (bench.build)();
    let opts = PipelineOptions {
        transform,
        filter,
        timeout: Some(COMPILE_TIMEOUT),
        fault: fault.clone().filter(|p| p.kind != FaultKind::Mem),
        ..Default::default()
    };

    if let Some(remote) = backend.remote {
        if let Some(res) =
            measure_through_remote(bench, &m, &opts, skip_run, fault.clone(), backend, remote)
        {
            return res;
        }
    }

    if let Some(cache) = backend.cache {
        return measure_through_cache(bench, &mut m, &opts, skip_run, fault, cache);
    }

    let outcome = compile(&mut m, &opts);
    debug_assert!(outcome.verify_error.is_none(), "guarded compile must emit valid IR");
    let code_size = uu_analysis::cost::module_size(&m);
    let compile_ms = outcome.work as f64 / uu_core::WORK_PER_MS;
    let failures = outcome.failure_summary();
    if let Some(base) = skip_run {
        return Ok(Measurement {
            time_ms: base.time_ms,
            code_size,
            compile_ms,
            checksum: base.checksum,
            timed_out: outcome.timed_out,
            metrics: base.metrics,
            transfer_ms: base.transfer_ms,
            rung: outcome.rung,
            diag: failures,
        });
    }
    let mut gpu = Gpu::new();
    if let Some(p) = fault.filter(|p| p.kind == FaultKind::Mem) {
        gpu.mem.inject_fault_after(p.at);
    }
    let run = (bench.run)(&m, &mut gpu).map_err(|exec| MeasureError {
        exec,
        rung: outcome.rung,
        failures: failures.clone(),
        compile_ms,
        code_size,
        timed_out: outcome.timed_out,
    })?;
    // The application launches its kernels `launch_repeats` times; the
    // workload simulates one representative launch (counters stay
    // per-launch; ratios are unaffected).
    let repeats = bench.info.launch_repeats.max(1) as f64;
    Ok(Measurement {
        time_ms: run.kernel_time_ms * repeats,
        code_size,
        compile_ms,
        checksum: run.checksum,
        timed_out: outcome.timed_out,
        metrics: run.metrics,
        transfer_ms: run.transfer_ms(),
        rung: outcome.rung,
        diag: failures,
    })
}

/// The cache-aware measurement path: compile artifacts cover every point;
/// run artifacts additionally cover executed points.
fn measure_through_cache(
    bench: &Benchmark,
    m: &mut uu_ir::Module,
    opts: &PipelineOptions,
    skip_run: Option<&Measurement>,
    fault: Option<FaultPlan>,
    cache: &uu_serve::CompileCache,
) -> Result<Measurement, MeasureError> {
    use uu_serve::CompileCache;

    if let Some(base) = skip_run {
        // Skip-run points only consume compile metadata — no need to
        // materialize the optimized module on a hit.
        let c = cache.compile(m, opts, false);
        return Ok(Measurement {
            time_ms: base.time_ms,
            code_size: c.meta.code_size,
            compile_ms: c.meta.work as f64 / uu_core::WORK_PER_MS,
            checksum: base.checksum,
            timed_out: c.meta.timed_out,
            metrics: base.metrics,
            transfer_ms: base.transfer_ms,
            rung: c.meta.rung,
            diag: c.meta.diag,
        });
    }

    let run_key = CompileCache::run_key(
        CompileCache::compile_key(m, opts),
        &workload_tag(bench, fault.as_ref()),
    );
    if let Some((meta, run)) = cache.lookup_run(run_key) {
        return Ok(Measurement {
            time_ms: run.time_ms,
            code_size: meta.code_size,
            compile_ms: meta.work as f64 / uu_core::WORK_PER_MS,
            checksum: run.checksum,
            timed_out: meta.timed_out,
            metrics: run.metrics,
            transfer_ms: run.transfer_ms,
            rung: meta.rung,
            diag: meta.diag,
        });
    }

    let c = cache.compile(m, opts, true);
    let mut gpu = Gpu::new();
    if let Some(p) = fault.filter(|p| p.kind == FaultKind::Mem) {
        gpu.mem.inject_fault_after(p.at);
    }
    let compile_ms = c.meta.work as f64 / uu_core::WORK_PER_MS;
    let run = (bench.run)(m, &mut gpu).map_err(|exec| MeasureError {
        exec,
        rung: c.meta.rung,
        failures: c.meta.diag.clone(),
        compile_ms,
        code_size: c.meta.code_size,
        timed_out: c.meta.timed_out,
    })?;
    let repeats = bench.info.launch_repeats.max(1) as f64;
    let record = uu_serve::RunRecord {
        time_ms: run.kernel_time_ms * repeats,
        checksum: run.checksum,
        transfer_ms: run.transfer_ms(),
        metrics: run.metrics,
    };
    cache.store_run(run_key, &c.meta, &record);
    Ok(Measurement {
        time_ms: record.time_ms,
        code_size: c.meta.code_size,
        compile_ms,
        checksum: record.checksum,
        timed_out: c.meta.timed_out,
        metrics: record.metrics,
        transfer_ms: record.transfer_ms,
        rung: c.meta.rung,
        diag: c.meta.diag,
    })
}

/// The daemon-backed measurement path. `None` means "this point cannot
/// (or should not) go through the daemon — use the local path": the
/// transform has no config name, the module text the daemon returned does
/// not parse, or the request failed outright. `Some(res)` is a complete
/// measurement built from the daemon's compile metadata — identical to a
/// local compile's by the remote/local parity contract (the daemon builds
/// the same [`PipelineOptions`] from the headers, and diag/rung/work
/// round-trip losslessly through the response).
fn measure_through_remote(
    bench: &Benchmark,
    m: &uu_ir::Module,
    opts: &PipelineOptions,
    skip_run: Option<&Measurement>,
    fault: Option<FaultPlan>,
    backend: Backend<'_>,
    remote: &uu_serve::Remote,
) -> Option<Result<Measurement, MeasureError>> {
    use uu_serve::CompileCache;

    let config = uu_serve::config_name(&opts.transform)?;

    // A local run artifact still beats a network round trip: warm
    // regenerations skip the daemon entirely for executed points.
    let run_key = backend.cache.map(|_| {
        CompileCache::run_key(
            CompileCache::compile_key(m, opts),
            &workload_tag(bench, fault.as_ref()),
        )
    });
    if skip_run.is_none() {
        if let (Some(cache), Some(rk)) = (backend.cache, run_key) {
            if let Some((meta, run)) = cache.lookup_run(rk) {
                return Some(Ok(Measurement {
                    time_ms: run.time_ms,
                    code_size: meta.code_size,
                    compile_ms: meta.work as f64 / uu_core::WORK_PER_MS,
                    checksum: run.checksum,
                    timed_out: meta.timed_out,
                    metrics: run.metrics,
                    transfer_ms: run.transfer_ms,
                    rung: meta.rung,
                    diag: meta.diag,
                }));
            }
        }
    }

    let filter = match &opts.filter {
        LoopFilter::All => None,
        LoopFilter::Only { func, loop_id } => Some((func.as_str(), *loop_id)),
    };
    let fault_spec = opts.fault.as_ref().map(uu_core::FaultPlan::spec);
    let want_module = skip_run.is_none();
    let rc = remote
        .compile(&m.to_string(), &config, filter, fault_spec.as_deref(), want_module)
        .ok()?;
    let compile_ms = rc.meta.work as f64 / uu_core::WORK_PER_MS;

    if let Some(base) = skip_run {
        // Cold points only consume compile metadata; the kernel provably
        // never launches, so the run half is the baseline's.
        return Some(Ok(Measurement {
            time_ms: base.time_ms,
            code_size: rc.meta.code_size,
            compile_ms,
            checksum: base.checksum,
            timed_out: rc.meta.timed_out,
            metrics: base.metrics,
            transfer_ms: base.transfer_ms,
            rung: rc.meta.rung,
            diag: rc.meta.diag,
        }));
    }

    // Hot point: simulate the daemon-optimized module locally. Printed IR
    // round-trips exactly (module_hash is print-stable), so this is the
    // same simulation a local compile would have run.
    let optimized = uu_ir::parse_module(rc.module_text.as_deref()?).ok()?;
    let mut gpu = Gpu::new();
    if let Some(p) = fault.filter(|p| p.kind == FaultKind::Mem) {
        gpu.mem.inject_fault_after(p.at);
    }
    let run = match (bench.run)(&optimized, &mut gpu) {
        Ok(run) => run,
        Err(exec) => {
            return Some(Err(MeasureError {
                exec,
                rung: rc.meta.rung,
                failures: rc.meta.diag.clone(),
                compile_ms,
                code_size: rc.meta.code_size,
                timed_out: rc.meta.timed_out,
            }))
        }
    };
    let repeats = bench.info.launch_repeats.max(1) as f64;
    let record = uu_serve::RunRecord {
        time_ms: run.kernel_time_ms * repeats,
        checksum: run.checksum,
        transfer_ms: run.transfer_ms(),
        metrics: run.metrics,
    };
    if let (Some(cache), Some(rk)) = (backend.cache, run_key) {
        cache.store_run(rk, &rc.meta, &record);
    }
    Some(Ok(Measurement {
        time_ms: record.time_ms,
        code_size: rc.meta.code_size,
        compile_ms,
        checksum: record.checksum,
        timed_out: rc.meta.timed_out,
        metrics: record.metrics,
        transfer_ms: record.transfer_ms,
        rung: rc.meta.rung,
        diag: rc.meta.diag,
    }))
}

/// Measure the baseline configuration of a benchmark.
///
/// # Errors
///
/// See [`measure`].
pub fn measure_baseline(bench: &Benchmark) -> Result<Measurement, MeasureError> {
    measure(bench, Transform::Baseline, LoopFilter::All, None)
}

/// One unit of per-loop sweep work: apply `transform` to exactly
/// `loop_ref` of `bench` and measure it against the precomputed baseline.
///
/// Tasks share nothing mutable — each builds its own module and simulated
/// GPU — so a batch of them is safe to fan out across a `uu-par` pool; the
/// sweep driver does exactly that.
#[derive(Debug, Clone)]
pub struct PointTask<'a> {
    /// The benchmark to compile and run.
    pub bench: &'a Benchmark,
    /// Its baseline measurement (skip-run source for cold loops, reference
    /// for the hot-loop equivalence check).
    pub base: &'a Measurement,
    /// The single targeted loop.
    pub loop_ref: LoopRef,
    /// Whether that loop lives in a launched (hot) kernel.
    pub hot: bool,
    /// Configuration name (`uu2`, `unroll4`, `unmerge`, …).
    pub config: &'static str,
    /// The transform behind `config`.
    pub transform: Transform,
    /// Fault-injection plan forwarded to the compile/execute of this point
    /// (`None` in production sweeps unless `UU_FAULT` is set).
    pub fault: Option<FaultPlan>,
    /// Shared content-addressed artifact cache; `None` compiles and runs
    /// everything from scratch. Cached and cacheless measurements are
    /// identical by construction, so this only changes wall time.
    pub cache: Option<&'a uu_serve::CompileCache>,
    /// Optional compile daemon; like the cache, it changes wall time
    /// only — any point the daemon cannot serve compiles locally.
    pub remote: Option<&'a uu_serve::Remote>,
}

impl PointTask<'_> {
    /// Compile + execute this point (cold loops reuse the baseline run)
    /// and check semantic equivalence for hot loops.
    ///
    /// Never panics: a simulator trap degrades the point to the baseline's
    /// numbers (ratio 1.0) with the fault recorded in
    /// [`Measurement::diag`], and a checksum mismatch — a miscompile —
    /// is recorded the same way instead of aborting the sweep. Every
    /// failure path is deterministic, so faulted sweeps stay
    /// byte-identical at any worker count.
    pub fn measure(&self) -> Measurement {
        let what = format!(
            "{}/{}/{}",
            self.bench.info.name, self.loop_ref.func, self.config
        );
        let filter = LoopFilter::Only {
            func: self.loop_ref.func.clone(),
            loop_id: self.loop_ref.loop_id,
        };
        let skip = if self.hot { None } else { Some(self.base) };
        let mut m = match measure_backed(
            self.bench,
            self.transform.clone(),
            filter,
            skip,
            self.fault,
            Backend {
                cache: self.cache,
                remote: self.remote,
            },
        ) {
            Ok(m) => m,
            Err(e) => {
                let mut degraded = self.base.clone();
                degraded.compile_ms = e.compile_ms;
                degraded.code_size = e.code_size;
                degraded.timed_out = e.timed_out;
                degraded.rung = e.rung;
                degraded.diag = format!("{what}: {e}");
                return degraded;
            }
        };
        if self.hot {
            if let Some(d) = equivalence_diag(self.base, &m, &what) {
                if m.diag.is_empty() {
                    m.diag = d;
                } else {
                    m.diag = format!("{}; {d}", m.diag);
                }
            }
        }
        m
    }
}

/// The per-loop sweep configurations of the paper's Figures 6–8.
pub fn sweep_configs() -> Vec<(&'static str, Transform)> {
    use uu_core::UnmergeOptions;
    vec![
        ("uu2", Transform::Uu {
            factor: 2,
            unmerge: UnmergeOptions::default(),
        }),
        ("uu4", Transform::Uu {
            factor: 4,
            unmerge: UnmergeOptions::default(),
        }),
        ("uu8", Transform::Uu {
            factor: 8,
            unmerge: UnmergeOptions::default(),
        }),
        ("unroll2", Transform::Unroll { factor: 2 }),
        ("unroll4", Transform::Unroll { factor: 4 }),
        ("unroll8", Transform::Unroll { factor: 8 }),
        ("unmerge", Transform::Unmerge),
    ]
}

/// Diagnose a semantic-equivalence violation: `Some(description)` when the
/// transformed measurement's checksum diverges from the baseline's — a
/// miscompilation, which must never be reported as a speedup.
pub fn equivalence_diag(base: &Measurement, got: &Measurement, what: &str) -> Option<String> {
    (got.checksum != base.checksum).then(|| {
        format!(
            "MISCOMPILE under {what}: checksum {} != baseline {}",
            got.checksum, base.checksum
        )
    })
}

/// Assert that a transformed measurement preserved semantics.
///
/// Test helper; production sweeps record [`equivalence_diag`] instead of
/// panicking.
///
/// # Panics
///
/// Panics on checksum mismatch.
pub fn assert_equivalent(base: &Measurement, got: &Measurement, what: &str) {
    if let Some(d) = equivalence_diag(base, got, what) {
        panic!("{d}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uu_kernels::all_benchmarks;

    fn bench(name: &str) -> Benchmark {
        all_benchmarks()
            .into_iter()
            .find(|b| b.info.name == name)
            .unwrap()
    }

    #[test]
    fn loop_list_matches_table() {
        for b in all_benchmarks() {
            assert_eq!(loop_list(&b).len(), b.info.table_loops, "{}", b.info.name);
        }
    }

    #[test]
    fn baseline_measures_bezier() {
        let b = bench("bezier-surface");
        let m = measure_baseline(&b).unwrap();
        assert!(m.time_ms > 0.0);
        assert!(m.code_size > 0);
        assert!(!m.timed_out);
    }

    #[test]
    fn uu_on_hot_loop_preserves_semantics_and_speeds_up_bezier() {
        let b = bench("bezier-surface");
        let base = measure_baseline(&b).unwrap();
        let got = measure(
            &b,
            Transform::Uu {
                factor: 2,
                unmerge: Default::default(),
            },
            LoopFilter::Only {
                func: "bezier_blend".into(),
                loop_id: 0,
            },
            None,
        )
        .unwrap();
        assert_equivalent(&base, &got, "uu2 bezier");
        assert!(
            got.time_ms < base.time_ms,
            "u&u should speed up the bezier hot loop: {} vs {}",
            got.time_ms,
            base.time_ms
        );
        assert!(got.code_size > base.code_size);
    }

    #[test]
    fn launch_repeats_scale_time_but_not_ratios() {
        // complex has launch_repeats = 37000; ratios must be unaffected.
        let b = bench("complex");
        let base = measure_baseline(&b).unwrap();
        assert!(
            base.time_ms > 1.0,
            "repeats must lift complex into the ms range: {}",
            base.time_ms
        );
        let uu = measure(
            &b,
            Transform::Uu {
                factor: 2,
                unmerge: Default::default(),
            },
            LoopFilter::Only {
                func: "complex_pow".into(),
                loop_id: 0,
            },
            None,
        )
        .unwrap();
        let ratio = base.time_ms / uu.time_ms;
        assert!(ratio < 0.7, "complex uu2 slowdown survives scaling: {ratio}");
    }

    #[test]
    fn cold_loop_skip_run_reuses_baseline_time() {
        let b = bench("bezier-surface");
        let base = measure_baseline(&b).unwrap();
        let got = measure(
            &b,
            Transform::Uu {
                factor: 2,
                unmerge: Default::default(),
            },
            LoopFilter::Only {
                func: "aux_counted_0".into(),
                loop_id: 0,
            },
            Some(&base),
        )
        .unwrap();
        assert_eq!(got.time_ms, base.time_ms);
        assert_eq!(got.checksum, base.checksum);
    }
}

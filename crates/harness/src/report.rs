//! Text and CSV emission for the regenerated tables and figures.

use std::fs;
use std::io::Write;
use std::path::Path;

/// Write a CSV file with a header row.
///
/// # Panics
///
/// Panics on I/O errors — the harness treats an unwritable results
/// directory as fatal.
pub fn write_csv(path: &Path, header: &str, rows: &[String]) {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir).expect("create results directory");
    }
    let mut f = fs::File::create(path).expect("create csv");
    writeln!(f, "{header}").unwrap();
    for r in rows {
        writeln!(f, "{r}").unwrap();
    }
}

/// Write plain text.
///
/// # Panics
///
/// Panics on I/O errors.
pub fn write_text(path: &Path, text: &str) {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir).expect("create results directory");
    }
    fs::write(path, text).expect("write text");
}

/// Render a fixed-width ASCII table.
pub fn ascii_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for w in &widths {
            out.push('+');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    sep(&mut out);
    for (i, h) in headers.iter().enumerate() {
        out.push_str(&format!("| {:w$} ", h, w = widths[i]));
    }
    out.push_str("|\n");
    sep(&mut out);
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            out.push_str(&format!("| {:w$} ", cell, w = widths[i]));
        }
        out.push_str("|\n");
    }
    sep(&mut out);
    out
}

/// A simple horizontal ASCII bar for ratio data (1.0 = no change).
pub fn bar(ratio: f64, width: usize) -> String {
    let clamped = ratio.clamp(0.0, 4.0);
    let n = ((clamped / 4.0) * width as f64).round() as usize;
    let mut s = "#".repeat(n);
    if s.is_empty() {
        s.push('.');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_table_aligns() {
        let t = ascii_table(
            &["name", "x"],
            &[
                vec!["a".into(), "1.00".into()],
                vec!["longer".into(), "2".into()],
            ],
        );
        assert!(t.contains("| name   | x    |"), "{t}");
        assert!(t.contains("| longer | 2    |"), "{t}");
    }

    #[test]
    fn csv_and_text_roundtrip() {
        let dir = std::env::temp_dir().join("uu_report_test");
        let p = dir.join("t.csv");
        write_csv(&p, "a,b", &["1,2".to_string()]);
        let s = std::fs::read_to_string(&p).unwrap();
        assert_eq!(s, "a,b\n1,2\n");
        let p2 = dir.join("t.txt");
        write_text(&p2, "hello");
        assert_eq!(std::fs::read_to_string(&p2).unwrap(), "hello");
    }

    #[test]
    fn bars_scale() {
        assert_eq!(bar(0.0, 10), ".");
        assert!(bar(4.0, 10).len() == 10);
        assert!(bar(2.0, 10).len() < 10);
    }
}

//! Text and CSV emission for the regenerated tables and figures.
//!
//! All writes are atomic (temp file + rename in the destination
//! directory), so a run killed or faulted mid-write never leaves a
//! truncated report behind — readers see either the old file or the
//! complete new one. I/O errors are surfaced as [`std::io::Result`]s, not
//! panics; the CLI turns them into a nonzero exit.

use std::fs;
use std::io;
use std::path::Path;

/// Atomically replace `path` with `contents`: write a sibling temp file
/// (same directory, so the rename cannot cross filesystems) and rename it
/// over the destination.
///
/// # Errors
///
/// Propagates directory-creation, write and rename failures.
pub fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    let dir = path.parent().filter(|d| !d.as_os_str().is_empty());
    if let Some(dir) = dir {
        fs::create_dir_all(dir)?;
    }
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let tmp = path.with_file_name(format!(".{}.tmp", file_name.to_string_lossy()));
    fs::write(&tmp, contents)?;
    fs::rename(&tmp, path).inspect_err(|_| {
        let _ = fs::remove_file(&tmp);
    })
}

/// Write a CSV file with a header row (atomically).
///
/// # Errors
///
/// Propagates I/O errors — the harness treats an unwritable results
/// directory as fatal and exits nonzero.
pub fn write_csv(path: &Path, header: &str, rows: &[String]) -> io::Result<()> {
    let mut s = String::with_capacity(header.len() + 1 + rows.iter().map(|r| r.len() + 1).sum::<usize>());
    s.push_str(header);
    s.push('\n');
    for r in rows {
        s.push_str(r);
        s.push('\n');
    }
    write_atomic(path, &s)
}

/// Write plain text (atomically).
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_text(path: &Path, text: &str) -> io::Result<()> {
    write_atomic(path, text)
}

/// Render a fixed-width ASCII table.
pub fn ascii_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for w in &widths {
            out.push('+');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    sep(&mut out);
    for (i, h) in headers.iter().enumerate() {
        out.push_str(&format!("| {:w$} ", h, w = widths[i]));
    }
    out.push_str("|\n");
    sep(&mut out);
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            out.push_str(&format!("| {:w$} ", cell, w = widths[i]));
        }
        out.push_str("|\n");
    }
    sep(&mut out);
    out
}

/// A simple horizontal ASCII bar for ratio data (1.0 = no change).
pub fn bar(ratio: f64, width: usize) -> String {
    let clamped = ratio.clamp(0.0, 4.0);
    let n = ((clamped / 4.0) * width as f64).round() as usize;
    let mut s = "#".repeat(n);
    if s.is_empty() {
        s.push('.');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_table_aligns() {
        let t = ascii_table(
            &["name", "x"],
            &[
                vec!["a".into(), "1.00".into()],
                vec!["longer".into(), "2".into()],
            ],
        );
        assert!(t.contains("| name   | x    |"), "{t}");
        assert!(t.contains("| longer | 2    |"), "{t}");
    }

    #[test]
    fn csv_and_text_roundtrip() {
        let dir = std::env::temp_dir().join("uu_report_test");
        let p = dir.join("t.csv");
        write_csv(&p, "a,b", &["1,2".to_string()]).unwrap();
        let s = std::fs::read_to_string(&p).unwrap();
        assert_eq!(s, "a,b\n1,2\n");
        let p2 = dir.join("t.txt");
        write_text(&p2, "hello").unwrap();
        assert_eq!(std::fs::read_to_string(&p2).unwrap(), "hello");
        // Atomicity: no temp files linger after successful writes.
        assert!(std::fs::read_dir(&dir).unwrap().all(|e| {
            !e.unwrap().file_name().to_string_lossy().ends_with(".tmp")
        }));
    }

    #[test]
    fn unwritable_destination_surfaces_an_error() {
        // A directory where the file should be → error, not panic.
        let dir = std::env::temp_dir().join("uu_report_test_dir");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(write_text(&dir, "x").is_err());
    }

    #[test]
    fn bars_scale() {
        assert_eq!(bar(0.0, 10), ".");
        assert!(bar(4.0, 10).len() == 10);
        assert!(bar(2.0, 10).len() < 10);
    }
}

//! The three-way unmerge/meld study: u&u vs DARM-style melding vs both.
//!
//! The paper's unmerging pass *splits* merged control flow so each path can
//! specialize; DARM melds divergent diamonds so a warp no longer serializes
//! both arms. The literature has never run the two head-to-head — this
//! study does, per hot loop, on the same per-loop sweep machinery as
//! Figures 6–8:
//!
//! * **u&u** — `uu2` / `uu4` / `uu8`, exactly the sweep's configurations;
//! * **meld** — [`uu_core::Transform::Meld`] alone;
//! * **both** — `uu<k>+meld`: u&u first, then melding whatever divergent
//!   diamonds remain in the transformed body.
//!
//! Only hot loops are measured: a cold loop's kernel never launches, so all
//! three legs provably tie at 1.0 and would only pad the report. Because
//! hot loops are never subsampled, the study's output is identical in
//! `--fast` and full runs, and — like the sweep — byte-identical at any
//! `UU_JOBS` worker count: the task list fixes the output order up front
//! and every point's noise seed keys on the point, not on scheduling.
//!
//! Rendered as `fig9` (per-point data + per-app summary) and `table2`
//! (per-loop verdicts) by [`crate::figures`].

use crate::experiment::{loop_list, measure_backed, Backend, LoopRef, PointTask};
use crate::stats::median_of_20;
use crate::sweep::{seed_for, sentinel_baseline, LoopPoint, FRONTEND_MS};
use uu_core::{FaultPlan, LoopFilter, Transform, UnmergeOptions};
use uu_kernels::Benchmark;

/// The study's measurement configurations, in report order.
pub fn study_configs() -> Vec<(&'static str, Transform)> {
    vec![
        ("uu2", Transform::Uu {
            factor: 2,
            unmerge: UnmergeOptions::default(),
        }),
        ("uu4", Transform::Uu {
            factor: 4,
            unmerge: UnmergeOptions::default(),
        }),
        ("uu8", Transform::Uu {
            factor: 8,
            unmerge: UnmergeOptions::default(),
        }),
        ("meld", Transform::Meld),
        ("uu2+meld", Transform::UuMeld {
            factor: 2,
            unmerge: UnmergeOptions::default(),
        }),
        ("uu4+meld", Transform::UuMeld {
            factor: 4,
            unmerge: UnmergeOptions::default(),
        }),
        ("uu8+meld", Transform::UuMeld {
            factor: 8,
            unmerge: UnmergeOptions::default(),
        }),
    ]
}

/// The study output: one [`LoopPoint`] per (app, hot loop, configuration).
#[derive(Debug, Clone)]
pub struct Study {
    /// All per-loop points, in (bench, loop, config) order.
    pub points: Vec<LoopPoint>,
}

/// Run the three-way study across `UU_JOBS` workers, reading `UU_FAULT`
/// for a fault-injection plan.
pub fn run_study(benches: &[Benchmark]) -> Study {
    run_study_jobs(benches, uu_par::num_jobs())
}

/// [`run_study`] with an explicit worker count.
pub fn run_study_jobs(benches: &[Benchmark], jobs: usize) -> Study {
    run_study_faulted(benches, jobs, FaultPlan::from_env())
}

/// [`run_study_jobs`] with an explicit fault plan (tests inject directly
/// instead of mutating the process environment).
pub fn run_study_faulted(
    benches: &[Benchmark],
    jobs: usize,
    fault: Option<FaultPlan>,
) -> Study {
    run_study_cached(benches, jobs, fault, None)
}

/// [`run_study_faulted`] through an optional content-addressed artifact
/// cache shared with the sweep: the study's `uu2`/`uu4`/`uu8` legs hit
/// the very artifacts the sweep produced for the same loops, and warm
/// reruns skip compile and simulation alike — with byte-identical output.
pub fn run_study_cached(
    benches: &[Benchmark],
    jobs: usize,
    fault: Option<FaultPlan>,
    cache: Option<&uu_serve::CompileCache>,
) -> Study {
    run_study_backed(benches, jobs, fault, Backend::local(cache))
}

/// [`run_study_cached`] through a full [`Backend`] — cache, compile
/// daemon, or both; see [`crate::sweep::run_sweep_backed`] for the
/// contract (the backend changes wall time, never report bytes).
pub fn run_study_backed(
    benches: &[Benchmark],
    jobs: usize,
    fault: Option<FaultPlan>,
    backend: Backend<'_>,
) -> Study {
    let cache = backend.cache;
    // Phase 1: per-application baselines (the denominator of every
    // speedup). Seeds match the sweep's, so a configuration shared by both
    // reports (e.g. `uu2`) produces the same numbers in both.
    let bases: Vec<crate::experiment::Measurement> =
        uu_par::par_map_jobs(jobs, benches, |_, bench| {
            let app = bench.info.name;
            eprintln!("  study baseline {app}...");
            measure_backed(bench, Transform::Baseline, LoopFilter::All, None, fault, backend)
                .unwrap_or_else(|e| sentinel_baseline(format!("{app}/baseline: {e}")))
        });

    // Phase 2: flat (bench, hot loop, config) task list, fanned out.
    let mut tasks: Vec<PointTask<'_>> = Vec::new();
    for (bench, base) in benches.iter().zip(&bases) {
        for l in loop_list(bench) {
            if !bench.info.hot_kernels.contains(&l.func.as_str()) {
                continue;
            }
            for (cname, transform) in study_configs() {
                tasks.push(PointTask {
                    bench,
                    base,
                    loop_ref: l.clone(),
                    hot: true,
                    config: cname,
                    transform,
                    fault,
                    cache,
                    remote: backend.remote,
                });
            }
        }
    }
    let measurements = uu_par::par_map_jobs(jobs, &tasks, |_, t| t.measure());

    let points = tasks
        .iter()
        .zip(measurements)
        .map(|(t, m)| {
            let info = &t.bench.info;
            let app = info.name.to_string();
            let baseline_med = median_of_20(
                t.base.time_ms,
                info.paper_rsd_pct,
                seed_for(&app, &LoopRef { func: "baseline".into(), loop_id: 0 }, "base"),
            );
            let med = median_of_20(
                m.time_ms,
                info.paper_rsd_pct,
                seed_for(&app, &t.loop_ref, t.config),
            );
            let rest = info.binary_rest_size as f64;
            LoopPoint {
                app,
                loop_ref: t.loop_ref.clone(),
                hot: t.hot,
                config: t.config.to_string(),
                speedup: baseline_med / med,
                size_ratio: (rest + m.code_size as f64) / (rest + t.base.code_size as f64),
                compile_ratio: (FRONTEND_MS + m.compile_ms) / (FRONTEND_MS + t.base.compile_ms),
                timed_out: m.timed_out,
                rung: m.rung,
                diag: m.diag,
            }
        })
        .collect();
    Study { points }
}

/// Per-loop verdict of the three-way comparison.
#[derive(Debug, Clone)]
pub struct Verdict {
    /// Application name.
    pub app: String,
    /// The compared loop.
    pub loop_ref: LoopRef,
    /// Best u&u speedup and the factor configuration that achieved it.
    pub best_uu: (String, f64),
    /// Meld-only speedup.
    pub meld: f64,
    /// Best u&u+meld speedup and its configuration.
    pub best_both: (String, f64),
    /// Which leg wins: `u&u`, `meld`, `both`, or `tie` (within ±2%).
    pub winner: &'static str,
}

/// Reduce a study to per-loop verdicts, in study point order.
pub fn verdicts(study: &Study) -> Vec<Verdict> {
    let mut out: Vec<Verdict> = Vec::new();
    for p in &study.points {
        if out
            .iter()
            .any(|v| v.app == p.app && v.loop_ref == p.loop_ref)
        {
            continue;
        }
        let of = |pred: &dyn Fn(&str) -> bool| -> (String, f64) {
            study
                .points
                .iter()
                .filter(|q| q.app == p.app && q.loop_ref == p.loop_ref && pred(&q.config))
                .map(|q| (q.config.clone(), q.speedup))
                .fold((String::new(), f64::MIN), |acc, x| {
                    if x.1 > acc.1 {
                        x
                    } else {
                        acc
                    }
                })
        };
        let best_uu = of(&|c| c.starts_with("uu") && !c.ends_with("+meld"));
        let meld = of(&|c| c == "meld").1;
        let best_both = of(&|c| c.ends_with("+meld"));
        let winner = {
            let (u, m, b) = (best_uu.1, meld, best_both.1);
            let top = u.max(m).max(b);
            let tol = top / 1.02;
            match (u >= tol, m >= tol, b >= tol) {
                (true, false, false) => "u&u",
                (false, true, false) => "meld",
                (false, false, true) => "both",
                _ => "tie",
            }
        };
        out.push(Verdict {
            app: p.app.clone(),
            loop_ref: p.loop_ref.clone(),
            best_uu,
            meld,
            best_both,
            winner,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use uu_kernels::all_benchmarks;

    #[test]
    fn study_covers_every_hot_loop_with_all_configs() {
        let benches: Vec<Benchmark> = all_benchmarks()
            .into_iter()
            .filter(|b| b.info.name == "mandelbrot")
            .collect();
        let s = run_study_jobs(&benches, 2);
        assert!(!s.points.is_empty());
        assert!(s.points.len().is_multiple_of(study_configs().len()));
        for p in &s.points {
            assert!(p.hot);
            assert!(p.speedup > 0.0, "{p:?}");
            assert!(
                p.diag.is_empty(),
                "study point must be clean (no miscompile): {p:?}"
            );
        }
        let v = verdicts(&s);
        assert_eq!(v.len(), s.points.len() / study_configs().len());
        for verdict in &v {
            assert!(["u&u", "meld", "both", "tie"].contains(&verdict.winner));
        }
    }
}

//! Small statistics helpers plus the synthetic measurement-noise model.
//!
//! The simulator is deterministic; the paper's methodology (20 runs, median,
//! relative standard deviation) only makes sense with hardware noise. The
//! harness therefore layers a seeded multiplicative Gaussian on the
//! simulated time, with σ calibrated per application to the RSD column of
//! Table I. This is a *documented synthetic substitution* (see DESIGN.md):
//! it exercises the methodology without inventing performance.

use uu_check::Rng;

/// Median of a sample (averages the middle pair for even sizes).
pub fn median(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "median of empty sample");
    let mut v = xs.to_vec();
    // total_cmp: NaN-safe (a degraded measurement must not panic the
    // median; NaNs sort to the ends and leave the middle untouched).
    v.sort_by(f64::total_cmp);
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

/// Arithmetic mean.
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "mean of empty sample");
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Relative standard deviation in percent.
pub fn rsd_pct(xs: &[f64]) -> f64 {
    let m = mean(xs);
    if m == 0.0 {
        return 0.0;
    }
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
    100.0 * var.sqrt() / m.abs()
}

/// Geometric mean (inputs must be positive).
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geomean of empty sample");
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Draw `n` noisy observations of a deterministic `time`, with relative
/// standard deviation `rsd_pct` (as a percentage), deterministically from
/// `seed`.
pub fn noisy_runs(time: f64, rsd_pct: f64, n: usize, seed: u64) -> Vec<f64> {
    let mut rng = Rng::seed_from_u64(seed);
    let sigma = rsd_pct / 100.0;
    (0..n)
        .map(|_| {
            // Box-Muller via two uniforms.
            let u1: f64 = rng.gen_range_f64(1e-12, 1.0);
            let u2: f64 = rng.gen_range_f64(0.0, 1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            (time * (1.0 + sigma * z)).max(time * 0.2)
        })
        .collect()
}

/// The paper's per-measurement protocol: median of 20 noisy runs.
pub fn median_of_20(time: f64, rsd: f64, seed: u64) -> f64 {
    median(&noisy_runs(time, rsd, 20, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[5.0]), 5.0);
    }

    #[test]
    fn rsd_of_constant_is_zero() {
        assert_eq!(rsd_pct(&[2.0, 2.0, 2.0]), 0.0);
    }

    #[test]
    fn geomean_basic() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn noise_is_deterministic_and_calibrated() {
        let a = noisy_runs(100.0, 5.0, 1000, 7);
        let b = noisy_runs(100.0, 5.0, 1000, 7);
        assert_eq!(a, b);
        let c = noisy_runs(100.0, 5.0, 1000, 8);
        assert_ne!(a, c);
        // Measured RSD lands near the requested 5%.
        let got = rsd_pct(&a);
        assert!((got - 5.0).abs() < 1.0, "rsd {got}");
        // Mean stays near the true time.
        assert!((mean(&a) - 100.0).abs() < 1.0);
    }

    #[test]
    fn median_of_20_is_stable_under_low_noise() {
        let m = median_of_20(50.0, 0.1, 3);
        assert!((m - 50.0).abs() < 0.5);
    }
}

//! The per-loop experiment sweep feeding Figures 6, 7 and 8.
//!
//! Following the paper's methodology (§IV-B): the pass is applied to *one
//! loop at a time*, for each unroll factor and comparator configuration, and
//! each data point is the median of 20 (noise-modelled) runs against the
//! baseline median.

use crate::experiment::{
    equivalence_diag, loop_list, measure_backed, sweep_configs, Backend, LoopRef, Measurement,
    PointTask,
};
use crate::stats::median_of_20;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use uu_core::{FaultPlan, HeuristicOptions, LoopFilter, Rung, Transform};
use uu_kernels::Benchmark;

/// Stand-in for the frontend + backend compile time that our pipeline does
/// not model (Clang parsing CUDA headers, PTX codegen, ptxas): a real
/// `clang -O3` CUDA compile of these benchmarks takes seconds. Added to
/// both sides of every compile-time ratio so the ratios sit on the paper's
/// scale.
pub const FRONTEND_MS: f64 = 3000.0;

/// One (application, loop, configuration) data point.
#[derive(Debug, Clone)]
pub struct LoopPoint {
    /// Application name.
    pub app: String,
    /// The targeted loop.
    pub loop_ref: LoopRef,
    /// Whether the loop lives in a launched (hot) kernel.
    pub hot: bool,
    /// Configuration name (`uu2`, `unroll4`, `unmerge`, …).
    pub config: String,
    /// Median-of-20 speedup over the baseline median.
    pub speedup: f64,
    /// Code size relative to baseline.
    pub size_ratio: f64,
    /// Compile time relative to baseline.
    pub compile_ratio: f64,
    /// Whether compilation timed out.
    pub timed_out: bool,
    /// Degradation-ladder rung the point's compile landed on
    /// ([`Rung::Full`] when every pass succeeded).
    pub rung: Rung,
    /// Contained-failure diagnostics (pass failures, runtime faults,
    /// equivalence violations); empty when clean.
    pub diag: String,
}

/// Per-application summary of the heuristic configuration.
#[derive(Debug, Clone)]
pub struct AppSummary {
    /// Application name.
    pub app: String,
    /// Baseline measurement (noise-free time).
    pub baseline: Measurement,
    /// Heuristic measurement.
    pub heuristic: Measurement,
    /// Median-of-20 baseline time with noise.
    pub baseline_med: f64,
    /// Median-of-20 heuristic time with noise.
    pub heuristic_med: f64,
    /// Paper-calibrated RSD used by the noise model.
    pub rsd: f64,
    /// Size of the non-kernel part of the binary (see `BenchmarkInfo`).
    pub rest_size: u64,
    /// Baseline/heuristic contained-failure diagnostics; empty when both
    /// app-level measurements are clean.
    pub diag: String,
}

impl AppSummary {
    /// Heuristic speedup over baseline.
    pub fn speedup(&self) -> f64 {
        self.baseline_med / self.heuristic_med
    }

    /// Heuristic whole-binary code-size ratio (kernel code + the rest of
    /// the application binary).
    pub fn size_ratio(&self) -> f64 {
        let rest = self.rest_size as f64;
        (rest + self.heuristic.code_size as f64) / (rest + self.baseline.code_size as f64)
    }

    /// Heuristic compile-time ratio (with the frontend stand-in).
    pub fn compile_ratio(&self) -> f64 {
        (FRONTEND_MS + self.heuristic.compile_ms) / (FRONTEND_MS + self.baseline.compile_ms)
    }
}

/// The full sweep output.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// All per-loop points.
    pub points: Vec<LoopPoint>,
    /// Per-application baseline + heuristic summaries.
    pub apps: Vec<AppSummary>,
}

pub(crate) fn seed_for(app: &str, l: &LoopRef, config: &str) -> u64 {
    let mut h = DefaultHasher::new();
    (app, &l.func, l.loop_id, config).hash(&mut h);
    h.finish()
}

/// Run the sweep for the given benchmarks across `UU_JOBS` workers (see
/// [`run_sweep_jobs`]).
///
/// `fast` restricts cold loops to three per application (hot loops are
/// always measured) — used by tests and the benches; the real figures use
/// the full population.
pub fn run_sweep(benches: &[Benchmark], fast: bool) -> Sweep {
    run_sweep_jobs(benches, fast, uu_par::num_jobs())
}

/// [`run_sweep`] with an explicit worker count. Reads `UU_FAULT` for a
/// deterministic fault-injection plan; [`run_sweep_faulted`] takes one
/// explicitly.
///
/// The product space is embarrassingly parallel and is walked in two
/// fan-out phases: per-application baselines + heuristic runs first, then
/// the flat (application, loop, configuration) point list. Every point is
/// an isolated compile + simulate with its own noise-model seed
/// ([`seed_for`] keys on the point, not on execution order), and `uu-par`
/// merges results in input order, so the returned [`Sweep`] — and every
/// report derived from it — is byte-identical at any worker count;
/// `jobs = 1` runs the exact serial loop of old. Fault containment keeps
/// this property: every degradation decision is a pure function of the
/// point, never of scheduling.
pub fn run_sweep_jobs(benches: &[Benchmark], fast: bool, jobs: usize) -> Sweep {
    run_sweep_faulted(benches, fast, jobs, FaultPlan::from_env())
}

/// The baseline every other number is ratioed against must exist even when
/// the baseline run itself faults (e.g. an injected memory fault): a
/// sentinel with unit time keeps every downstream ratio finite and the
/// report renderable, with the fault recorded in `diag`.
pub(crate) fn sentinel_baseline(diag: String) -> Measurement {
    Measurement {
        time_ms: 1.0,
        code_size: 1,
        compile_ms: 0.0,
        checksum: 0.0,
        timed_out: false,
        metrics: Default::default(),
        transfer_ms: 0.0,
        rung: Rung::Unoptimized,
        diag,
    }
}

/// [`run_sweep_jobs`] with an explicit fault-injection plan (tests inject
/// directly instead of mutating the process environment).
pub fn run_sweep_faulted(
    benches: &[Benchmark],
    fast: bool,
    jobs: usize,
    fault: Option<FaultPlan>,
) -> Sweep {
    run_sweep_cached(benches, fast, jobs, fault, None)
}

/// [`run_sweep_faulted`] through an optional content-addressed artifact
/// cache (see [`uu_serve::CompileCache`]). Points share compiles across
/// (kernel, loop, config) triples and a warm cache serves previously
/// measured executions outright; cached and cacheless sweeps are
/// byte-identical at any worker count — the cache only changes wall time.
pub fn run_sweep_cached(
    benches: &[Benchmark],
    fast: bool,
    jobs: usize,
    fault: Option<FaultPlan>,
    cache: Option<&uu_serve::CompileCache>,
) -> Sweep {
    run_sweep_backed(benches, fast, jobs, fault, Backend::local(cache))
}

/// [`run_sweep_cached`] through a full [`Backend`] — cache, compile
/// daemon, or both. With a daemon, every nameable compile is shipped to
/// it (sharing its cross-process artifact cache); anything the daemon
/// cannot serve — and every simulation — runs locally. The backend is a
/// pure wall-time lever: sweep bytes are identical across cacheless,
/// cached, and daemon-backed runs at any worker count.
pub fn run_sweep_backed(
    benches: &[Benchmark],
    fast: bool,
    jobs: usize,
    fault: Option<FaultPlan>,
    backend: Backend<'_>,
) -> Sweep {
    let cache = backend.cache;
    // Phase 1: per-application baseline + whole-app heuristic. A faulted
    // baseline or heuristic degrades to a diagnosed sentinel instead of
    // aborting the sweep.
    let apps_and_bases: Vec<(AppSummary, Measurement)> =
        uu_par::par_map_jobs(jobs, benches, |_, bench| {
            let app = bench.info.name.to_string();
            eprintln!("  sweeping {app} ({} loops)...", bench.info.table_loops);
            let base =
                measure_backed(bench, Transform::Baseline, LoopFilter::All, None, fault, backend)
                    .unwrap_or_else(|e| sentinel_baseline(format!("{app}/baseline: {e}")));
            let baseline_med = median_of_20(
                base.time_ms,
                bench.info.paper_rsd_pct,
                seed_for(&app, &LoopRef { func: "baseline".into(), loop_id: 0 }, "base"),
            );
            let mut heur = measure_backed(
                bench,
                Transform::UuHeuristic(HeuristicOptions::default()),
                LoopFilter::All,
                None,
                fault,
                backend,
            )
            .unwrap_or_else(|e| {
                let mut h = base.clone();
                h.rung = e.rung;
                h.diag = format!("{app}/heuristic: {e}");
                h
            });
            if let Some(d) = equivalence_diag(&base, &heur, &format!("{app} heuristic")) {
                heur.diag = if heur.diag.is_empty() {
                    d
                } else {
                    format!("{}; {d}", heur.diag)
                };
            }
            let heuristic_med = median_of_20(
                heur.time_ms,
                bench.info.paper_rsd_pct,
                seed_for(&app, &LoopRef { func: "heuristic".into(), loop_id: 0 }, "heur"),
            );
            let diag = [&base.diag, &heur.diag]
                .iter()
                .filter(|d| !d.is_empty())
                .map(|d| d.as_str())
                .collect::<Vec<_>>()
                .join("; ");
            let summary = AppSummary {
                app,
                baseline: base.clone(),
                heuristic: heur,
                baseline_med,
                heuristic_med,
                rsd: bench.info.paper_rsd_pct,
                rest_size: bench.info.binary_rest_size,
                diag,
            };
            (summary, base)
        });

    // Phase 2: flatten the per-loop product in the serial nested-loop
    // order (bench → loop → config) and fan the measurements out. The
    // task list fixes the output order up front; scheduling only decides
    // who computes what.
    let (apps, bases): (Vec<AppSummary>, Vec<Measurement>) =
        apps_and_bases.into_iter().unzip();
    let mut tasks: Vec<PointTask<'_>> = Vec::new();
    for (bench, base) in benches.iter().zip(&bases) {
        let mut cold_seen = 0usize;
        for l in loop_list(bench) {
            let hot = bench.info.hot_kernels.contains(&l.func.as_str());
            if !hot {
                cold_seen += 1;
                if fast && cold_seen > 3 {
                    continue;
                }
            }
            for (cname, transform) in sweep_configs() {
                tasks.push(PointTask {
                    bench,
                    base,
                    loop_ref: l.clone(),
                    hot,
                    config: cname,
                    transform,
                    fault,
                    cache,
                    remote: backend.remote,
                });
            }
        }
    }
    let measurements = uu_par::par_map_jobs(jobs, &tasks, |_, t| t.measure());

    let points = tasks
        .iter()
        .zip(measurements)
        .map(|(t, m)| {
            let info = &t.bench.info;
            let summary = apps
                .iter()
                .find(|a| a.app == info.name)
                .expect("phase 1 covered every benchmark");
            let med = median_of_20(
                m.time_ms,
                info.paper_rsd_pct,
                seed_for(&summary.app, &t.loop_ref, t.config),
            );
            let rest = info.binary_rest_size as f64;
            LoopPoint {
                app: summary.app.clone(),
                loop_ref: t.loop_ref.clone(),
                hot: t.hot,
                config: t.config.to_string(),
                speedup: summary.baseline_med / med,
                size_ratio: (rest + m.code_size as f64) / (rest + t.base.code_size as f64),
                compile_ratio: (FRONTEND_MS + m.compile_ms) / (FRONTEND_MS + t.base.compile_ms),
                timed_out: m.timed_out,
                rung: m.rung,
                diag: m.diag,
            }
        })
        .collect();
    Sweep { points, apps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uu_kernels::all_benchmarks;

    #[test]
    fn fast_sweep_on_two_apps_produces_consistent_points() {
        let benches: Vec<Benchmark> = all_benchmarks()
            .into_iter()
            .filter(|b| b.info.name == "bezier-surface" || b.info.name == "mandelbrot")
            .collect();
        let sweep = run_sweep(&benches, true);
        assert_eq!(sweep.apps.len(), 2);
        // 7 configs per measured loop.
        assert!(sweep.points.len().is_multiple_of(7));
        for p in &sweep.points {
            assert!(p.speedup > 0.0, "{p:?}");
            assert!(p.size_ratio > 0.0);
            assert!(p.compile_ratio > 0.0);
        }
        // Cold loops sit at ≈1.0 speedup (only noise moves them).
        for p in sweep.points.iter().filter(|p| !p.hot) {
            assert!(
                (p.speedup - 1.0).abs() < 0.25,
                "cold loop should be ≈1.0: {p:?}"
            );
        }
        // The bezier hot loop must show a u&u win at some factor.
        let best = sweep
            .points
            .iter()
            .filter(|p| p.hot && p.app == "bezier-surface" && p.config.starts_with("uu"))
            .map(|p| p.speedup)
            .fold(0.0f64, f64::max);
        assert!(best > 1.05, "bezier u&u best {best}");
    }
}

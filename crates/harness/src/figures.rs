//! Regeneration of the paper's Table I and Figures 6–8 from a [`Sweep`].

use crate::report::{ascii_table, bar, write_csv, write_text};
use crate::stats::{geomean, noisy_runs, rsd_pct};
use crate::sweep::Sweep;
use std::io;
use std::path::Path;

/// Emit `table1.txt` / `table1.csv`: the Table I reproduction.
///
/// # Errors
///
/// Propagates report-write I/O failures.
pub fn table1(sweep: &Sweep, out: &Path, benches: &[uu_kernels::Benchmark]) -> io::Result<()> {
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (s, b) in sweep.apps.iter().zip(benches) {
        assert_eq!(s.app, b.info.name);
        let base_runs = noisy_runs(s.baseline.time_ms, s.rsd, 20, 11);
        let heur_runs = noisy_runs(s.heuristic.time_ms, s.rsd, 20, 12);
        let pct_c = 100.0 * s.baseline.time_ms / (s.baseline.time_ms + s.baseline.transfer_ms);
        rows.push(vec![
            s.app.clone(),
            b.info.category.to_string(),
            b.info.table_loops.to_string(),
            format!("{pct_c:.2}%"),
            format!(
                "{:.4} ± {:.2}%",
                crate::stats::mean(&base_runs),
                rsd_pct(&base_runs)
            ),
            format!(
                "{:.4} ± {:.2}%",
                crate::stats::mean(&heur_runs),
                rsd_pct(&heur_runs)
            ),
        ]);
        csv.push(format!(
            "{},{},{},{:.2},{:.6},{:.2},{:.6},{:.2}",
            s.app,
            b.info.table_loops,
            b.info.cli.replace(',', ";"),
            pct_c,
            crate::stats::mean(&base_runs),
            rsd_pct(&base_runs),
            crate::stats::mean(&heur_runs),
            rsd_pct(&heur_runs),
        ));
    }
    let text = format!(
        "Table I — benchmark overview (simulated; times in simulated ms)\n{}",
        ascii_table(
            &[
                "Name",
                "Category",
                "L",
                "%C",
                "Baseline mean ± RSD",
                "Heuristic mean ± RSD"
            ],
            &rows
        )
    );
    write_text(&out.join("table1.txt"), &text)?;
    write_csv(
        &out.join("table1.csv"),
        "name,loops,cli,compute_pct,baseline_mean_ms,baseline_rsd_pct,heuristic_mean_ms,heuristic_rsd_pct",
        &csv,
    )?;
    Ok(())
}

/// Emit Figure 6a/6b/6c data (`fig6{a,b,c}.csv`) and an ASCII summary.
///
/// # Errors
///
/// Propagates report-write I/O failures.
pub fn fig6(sweep: &Sweep, out: &Path) -> io::Result<()> {
    for (fig, field, label) in [
        ("fig6a", 0usize, "speedup"),
        ("fig6b", 1, "code size increase"),
        ("fig6c", 2, "compile time increase"),
    ] {
        let mut csv = Vec::new();
        for p in sweep
            .points
            .iter()
            .filter(|p| p.config.starts_with("uu") && p.config != "unmerge")
        {
            let v = [p.speedup, p.size_ratio, p.compile_ratio][field];
            csv.push(format!(
                "{},{},{},{},{:.6},{},{}",
                p.app,
                p.loop_ref.func,
                p.loop_ref.loop_id,
                p.config,
                v,
                p.timed_out,
                p.rung.as_str()
            ));
        }
        // Heuristic rows (one per app).
        for s in &sweep.apps {
            let v = [s.speedup(), s.size_ratio(), s.compile_ratio()][field];
            csv.push(format!(
                "{},heuristic,,heuristic,{v:.6},false,{}",
                s.app,
                s.heuristic.rung.as_str()
            ));
        }
        write_csv(
            &out.join(format!("{fig}.csv")),
            "app,func,loop,config,value,timed_out,rung",
            &csv,
        )?;

        // ASCII: per-app best/worst/heuristic.
        let mut rows = Vec::new();
        for s in &sweep.apps {
            let vals: Vec<f64> = sweep
                .points
                .iter()
                .filter(|p| p.app == s.app && p.config.starts_with("uu"))
                .map(|p| [p.speedup, p.size_ratio, p.compile_ratio][field])
                .collect();
            if vals.is_empty() {
                continue;
            }
            let best = vals.iter().cloned().fold(f64::MIN, f64::max);
            let worst = vals.iter().cloned().fold(f64::MAX, f64::min);
            let heur = [s.speedup(), s.size_ratio(), s.compile_ratio()][field];
            rows.push(vec![
                s.app.clone(),
                format!("{worst:.3}"),
                format!("{best:.3}"),
                format!("{heur:.3}"),
                bar(heur, 24),
            ]);
        }
        let heur_all: Vec<f64> = sweep
            .apps
            .iter()
            .map(|s| [s.speedup(), s.size_ratio(), s.compile_ratio()][field])
            .collect();
        let text = format!(
            "Figure 6{} — {label} of u&u (factors 2/4/8 per loop) and heuristic\n{}\nheuristic geomean: {:.3}\n",
            ["a", "b", "c"][field],
            ascii_table(&["app", "min", "max", "heuristic", ""], &rows),
            geomean(&heur_all),
        );
        write_text(&out.join(format!("{fig}.txt")), &text)?;
    }
    Ok(())
}

/// Emit Figure 7: per-application best speedup per configuration.
///
/// # Errors
///
/// Propagates report-write I/O failures.
pub fn fig7(sweep: &Sweep, out: &Path) -> io::Result<()> {
    let configs = ["uu2", "uu4", "uu8", "unroll2", "unroll4", "unroll8", "unmerge"];
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for s in &sweep.apps {
        let mut row = vec![s.app.clone()];
        let mut line = s.app.clone();
        for c in configs {
            let best = sweep
                .points
                .iter()
                .filter(|p| p.app == s.app && p.config == c)
                .map(|p| p.speedup)
                .fold(f64::NAN, f64::max);
            row.push(format!("{best:.3}"));
            line.push_str(&format!(",{best:.6}"));
        }
        rows.push(row);
        csv.push(line);
    }
    let text = format!(
        "Figure 7 — best per-loop speedup per application and configuration\n{}",
        ascii_table(
            &["app", "uu2", "uu4", "uu8", "unroll2", "unroll4", "unroll8", "unmerge"],
            &rows
        )
    );
    write_text(&out.join("fig7.txt"), &text)?;
    write_csv(
        &out.join("fig7.csv"),
        "app,uu2,uu4,uu8,unroll2,unroll4,unroll8,unmerge",
        &csv,
    )?;
    Ok(())
}

/// Emit Figure 8a/8b scatter data: u&u speedup vs unroll (8a) / unmerge
/// (8b) per loop.
///
/// # Errors
///
/// Propagates report-write I/O failures.
pub fn fig8(sweep: &Sweep, out: &Path) -> io::Result<()> {
    let mut a = Vec::new();
    let mut b = Vec::new();
    // Index once: (app, func, loop, config) → speedup (the sweep has one
    // point per key; a linear scan per point would be quadratic).
    let index: std::collections::HashMap<(&str, &str, usize, &str), f64> = sweep
        .points
        .iter()
        .map(|p| {
            (
                (
                    p.app.as_str(),
                    p.loop_ref.func.as_str(),
                    p.loop_ref.loop_id,
                    p.config.as_str(),
                ),
                p.speedup,
            )
        })
        .collect();
    for factor in ["2", "4", "8"] {
        for p in sweep.points.iter().filter(|p| p.config == format!("uu{factor}")) {
            let partner = |cfg: &str| {
                index
                    .get(&(
                        p.app.as_str(),
                        p.loop_ref.func.as_str(),
                        p.loop_ref.loop_id,
                        cfg,
                    ))
                    .copied()
            };
            if let Some(u) = partner(&format!("unroll{factor}")) {
                a.push(format!(
                    "{},{},{},{},{:.6},{:.6}",
                    p.app, p.loop_ref.func, p.loop_ref.loop_id, factor, p.speedup, u
                ));
            }
            if let Some(um) = partner("unmerge") {
                b.push(format!(
                    "{},{},{},{},{:.6},{:.6}",
                    p.app, p.loop_ref.func, p.loop_ref.loop_id, factor, p.speedup, um
                ));
            }
        }
    }
    write_csv(
        &out.join("fig8a.csv"),
        "app,func,loop,factor,uu_speedup,unroll_speedup",
        &a,
    )?;
    write_csv(
        &out.join("fig8b.csv"),
        "app,func,loop,factor,uu_speedup,unmerge_speedup",
        &b,
    )?;
    write_text(
        &out.join("fig8.txt"),
        &format!(
            "Figure 8a (u&u vs unroll, per loop & factor)\n{}\nFigure 8b (u&u vs unmerge)\n{}",
            scatter_summary(&a, "unroll")?,
            scatter_summary(&b, "unmerge")?
        ),
    )?;
    Ok(())
}

/// ASCII summary of fig8 scatter rows: counts by region relative to the
/// diagonal. Row parsing follows the Result-based figure I/O idiom — a
/// malformed or short row is an [`io::ErrorKind::InvalidData`] error
/// naming the offending row, never a panic: in a long-running report
/// service one bad row must fail the one report, not the process.
///
/// # Errors
///
/// Returns `InvalidData` when a row has fewer than 6 columns or a
/// non-numeric speedup column.
fn scatter_summary(rows: &[String], other: &str) -> io::Result<String> {
    let col = |row: &str, cols: &[&str], i: usize| -> io::Result<f64> {
        cols.get(i)
            .and_then(|c| c.parse::<f64>().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("malformed fig8 row (column {i}): {row:?}"),
                )
            })
    };
    let mut below = 0;
    let mut near = 0;
    let mut above = 0;
    for r in rows {
        let cols: Vec<&str> = r.split(',').collect();
        let uu = col(r, &cols, 4)?;
        let ot = col(r, &cols, 5)?;
        if uu > ot * 1.02 {
            below += 1;
        } else if ot > uu * 1.02 {
            above += 1;
        } else {
            near += 1;
        }
    }
    Ok(format!(
        "u&u wins: {below}   ties (±2%): {near}   {other} wins: {above}   (n = {})\n",
        rows.len()
    ))
}

/// Emit `faults.csv` / `faults.txt`: the fault-tolerance report listing
/// every data point that did not compile-and-run cleanly — its degradation
/// rung and contained-failure diagnostics. Always written (an empty table
/// on a clean sweep) so downstream tooling and the CI determinism diff see
/// a stable file set.
///
/// # Errors
///
/// Propagates report-write I/O failures.
pub fn faults(sweep: &Sweep, out: &Path) -> io::Result<()> {
    // CSV-quote the diag column: diagnostics contain commas and newlines.
    let quote = |s: &str| format!("\"{}\"", s.replace('"', "\"\"").replace('\n', " | "));
    let mut csv = Vec::new();
    let mut rows = Vec::new();
    for s in &sweep.apps {
        if s.baseline.rung != uu_core::Rung::Full
            || s.heuristic.rung != uu_core::Rung::Full
            || !s.diag.is_empty()
        {
            let rung = s.baseline.rung.max(s.heuristic.rung);
            csv.push(format!(
                "{},app,,heuristic,{},{}",
                s.app,
                rung.as_str(),
                quote(&s.diag)
            ));
            rows.push(vec![
                s.app.clone(),
                "<app>".to_string(),
                "heuristic".to_string(),
                rung.as_str().to_string(),
                truncate(&s.diag, 80),
            ]);
        }
    }
    for p in &sweep.points {
        if p.rung == uu_core::Rung::Full && p.diag.is_empty() {
            continue;
        }
        csv.push(format!(
            "{},{},{},{},{},{}",
            p.app,
            p.loop_ref.func,
            p.loop_ref.loop_id,
            p.config,
            p.rung.as_str(),
            quote(&p.diag)
        ));
        rows.push(vec![
            p.app.clone(),
            format!("{}#{}", p.loop_ref.func, p.loop_ref.loop_id),
            p.config.clone(),
            p.rung.as_str().to_string(),
            truncate(&p.diag, 80),
        ]);
    }
    let text = if rows.is_empty() {
        "Fault report — all points compiled and ran cleanly (rung: full)\n".to_string()
    } else {
        format!(
            "Fault report — {} point(s) degraded or diagnosed\n{}",
            rows.len(),
            ascii_table(&["app", "loop", "config", "rung", "diagnostic"], &rows)
        )
    };
    write_csv(&out.join("faults.csv"), "app,func,loop,config,rung,diag", &csv)?;
    write_text(&out.join("faults.txt"), &text)?;
    Ok(())
}

/// Emit Figure 9: the three-way unmerge/meld study — every (hot loop,
/// configuration) point as CSV, plus an ASCII per-application summary of
/// the best speedup each leg (u&u, meld, u&u+meld) achieves.
///
/// # Errors
///
/// Propagates report-write I/O failures.
pub fn fig9(study: &crate::study::Study, out: &Path) -> io::Result<()> {
    let quote = |s: &str| format!("\"{}\"", s.replace('"', "\"\"").replace('\n', " | "));
    let mut csv = Vec::new();
    for p in &study.points {
        csv.push(format!(
            "{},{},{},{},{:.6},{:.6},{:.6},{},{},{}",
            p.app,
            p.loop_ref.func,
            p.loop_ref.loop_id,
            p.config,
            p.speedup,
            p.size_ratio,
            p.compile_ratio,
            p.timed_out,
            p.rung.as_str(),
            quote(&p.diag)
        ));
    }
    write_csv(
        &out.join("fig9.csv"),
        "app,func,loop,config,speedup,size_ratio,compile_ratio,timed_out,rung,diag",
        &csv,
    )?;

    // ASCII: per-app best of each leg, plus geomeans across apps.
    let mut apps: Vec<&str> = Vec::new();
    for p in &study.points {
        if !apps.contains(&p.app.as_str()) {
            apps.push(&p.app);
        }
    }
    let best = |app: &str, pred: &dyn Fn(&str) -> bool| -> f64 {
        study
            .points
            .iter()
            .filter(|p| p.app == app && pred(&p.config))
            .map(|p| p.speedup)
            .fold(f64::MIN, f64::max)
    };
    let mut rows = Vec::new();
    let (mut uus, mut melds, mut boths) = (Vec::new(), Vec::new(), Vec::new());
    for app in &apps {
        let u = best(app, &|c| c.starts_with("uu") && !c.ends_with("+meld"));
        let m = best(app, &|c| c == "meld");
        let b = best(app, &|c| c.ends_with("+meld"));
        uus.push(u);
        melds.push(m);
        boths.push(b);
        rows.push(vec![
            app.to_string(),
            format!("{u:.3}"),
            format!("{m:.3}"),
            format!("{b:.3}"),
            bar(u.max(m).max(b), 24),
        ]);
    }
    let text = format!(
        "Figure 9 — three-way study: best per-loop speedup of u&u (2/4/8), meld, and u&u+meld (2/4/8)\n{}\ngeomean: u&u {:.3}   meld {:.3}   u&u+meld {:.3}\n",
        ascii_table(&["app", "u&u", "meld", "u&u+meld", ""], &rows),
        geomean(&uus),
        geomean(&melds),
        geomean(&boths),
    );
    write_text(&out.join("fig9.txt"), &text)?;
    Ok(())
}

/// Emit Table II: the per-loop verdicts of the three-way study — which of
/// u&u, meld, or the combination wins each hot loop (±2% tie band).
///
/// # Errors
///
/// Propagates report-write I/O failures.
pub fn table2(study: &crate::study::Study, out: &Path) -> io::Result<()> {
    let verdicts = crate::study::verdicts(study);
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for v in &verdicts {
        rows.push(vec![
            v.app.clone(),
            format!("{}#{}", v.loop_ref.func, v.loop_ref.loop_id),
            format!("{} ({})", fmt3(v.best_uu.1), v.best_uu.0),
            fmt3(v.meld),
            format!("{} ({})", fmt3(v.best_both.1), v.best_both.0),
            v.winner.to_string(),
        ]);
        csv.push(format!(
            "{},{},{},{},{:.6},meld,{:.6},{},{:.6},{}",
            v.app,
            v.loop_ref.func,
            v.loop_ref.loop_id,
            v.best_uu.0,
            v.best_uu.1,
            v.meld,
            v.best_both.0,
            v.best_both.1,
            v.winner,
        ));
    }
    let mut tally: Vec<(&str, usize)> = Vec::new();
    for w in ["u&u", "meld", "both", "tie"] {
        let n = verdicts.iter().filter(|v| v.winner == w).count();
        tally.push((w, n));
    }
    let text = format!(
        "Table II — per-loop verdicts of the three-way unmerge/meld study (±2% tie band)\n{}\nwins: {}\n",
        ascii_table(
            &["app", "loop", "best u&u", "meld", "best u&u+meld", "winner"],
            &rows
        ),
        tally
            .iter()
            .map(|(w, n)| format!("{w} {n}"))
            .collect::<Vec<_>>()
            .join("   "),
    );
    write_text(&out.join("table2.txt"), &text)?;
    write_csv(
        &out.join("table2.csv"),
        "app,func,loop,best_uu_config,best_uu,meld_config,meld,best_both_config,best_both,winner",
        &csv,
    )?;
    Ok(())
}

fn fmt3(v: f64) -> String {
    format!("{v:.3}")
}

fn truncate(s: &str, n: usize) -> String {
    let one_line = s.replace('\n', " | ");
    if one_line.chars().count() <= n {
        one_line
    } else {
        let cut: String = one_line.chars().take(n).collect();
        format!("{cut}…")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::run_sweep;
    use uu_kernels::all_benchmarks;

    #[test]
    fn scatter_summary_counts_regions() {
        let rows = vec![
            "app,f,0,2,2.000000,1.000000".to_string(), // u&u wins
            "app,f,1,2,1.000000,2.000000".to_string(), // other wins
            "app,f,2,2,1.000000,1.010000".to_string(), // tie within 2%
        ];
        let s = scatter_summary(&rows, "unroll").unwrap();
        assert_eq!(s, "u&u wins: 1   ties (±2%): 1   unroll wins: 1   (n = 3)\n");
    }

    #[test]
    fn scatter_summary_rejects_malformed_rows_without_panicking() {
        // Regression: these rows used to `unwrap()` inside the summarize
        // closure and panic the whole report pass.
        for bad in [
            "short,row",                        // too few columns
            "app,f,0,2,not-a-number,1.0",       // non-numeric uu column
            "app,f,0,2,1.0,NaN?",               // non-numeric partner column
            "",                                 // empty row
        ] {
            let rows = vec![bad.to_string()];
            let e = scatter_summary(&rows, "unroll")
                .expect_err(&format!("row {bad:?} must be rejected"));
            assert_eq!(e.kind(), io::ErrorKind::InvalidData);
            assert!(e.to_string().contains("malformed fig8 row"), "{e}");
        }
        // And a malformed row among good ones still fails the summary
        // (reports never silently drop data points).
        let rows = vec![
            "app,f,0,2,2.0,1.0".to_string(),
            "oops".to_string(),
        ];
        assert!(scatter_summary(&rows, "unroll").is_err());
    }

    #[test]
    fn figures_emit_files_for_small_sweep() {
        let benches: Vec<_> = all_benchmarks()
            .into_iter()
            .filter(|b| b.info.name == "bezier-surface")
            .collect();
        let sweep = run_sweep(&benches, true);
        let dir = std::env::temp_dir().join("uu_fig_test");
        let _ = std::fs::remove_dir_all(&dir);
        table1(&sweep, &dir, &benches).unwrap();
        fig6(&sweep, &dir).unwrap();
        fig7(&sweep, &dir).unwrap();
        fig8(&sweep, &dir).unwrap();
        faults(&sweep, &dir).unwrap();
        for f in [
            "table1.txt",
            "table1.csv",
            "fig6a.csv",
            "fig6b.csv",
            "fig6c.csv",
            "fig6a.txt",
            "fig7.txt",
            "fig7.csv",
            "fig8a.csv",
            "fig8b.csv",
            "fig8.txt",
            "faults.csv",
            "faults.txt",
        ] {
            assert!(dir.join(f).exists(), "{f} missing");
        }
        let t1 = std::fs::read_to_string(dir.join("table1.txt")).unwrap();
        assert!(t1.contains("bezier-surface"));
        // A clean sweep reports a clean fault table.
        let ft = std::fs::read_to_string(dir.join("faults.txt")).unwrap();
        assert!(ft.contains("cleanly"), "{ft}");
    }
}

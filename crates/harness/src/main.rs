//! Command-line entry point: `uu-harness <command> [--fast] [--out DIR]`.
//!
//! Batch commands (`all`, `table1`, `fig6`–`fig9`, `table2`, `study`,
//! `indepth`, `decisions`, `dump`) regenerate the paper's reports. The
//! service commands turn the same pipeline into a long-running daemon:
//!
//! * `serve --socket PATH` (or `--stdio`) — compile-service daemon
//!   answering framed requests (see `uu-serve`);
//! * `client --socket PATH [--config C] [--fault SPEC] [--verb V]
//!   [--timeout-ms N] [--no-retry]` — one request against a running
//!   daemon, using `--bench NAME`'s module (or a module read from
//!   stdin). Requests retry `busy` and transient failures with capped
//!   exponential backoff unless `--no-retry` is given; verbs include the
//!   service-health set (`ping`, `health`, `ready`, `stats`,
//!   `shutdown`).
//!
//! Batch commands honour the artifact-cache environment knobs:
//! `UU_CACHE_DIR=<dir>` enables the persistent content-addressed cache,
//! `UU_CACHE=mem` an in-process one — and `UU_SERVE_SOCKET=<path>` ships
//! every nameable compile to a running daemon (sharing its cross-process
//! cache), falling back to local compiles whenever the daemon can't
//! serve a point. All three leave every report byte-identical to a
//! cacheless run.

use std::path::{Path, PathBuf};
use uu_harness::{figures, indepth, study, sweep};
use uu_kernels::all_benchmarks;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out = flag("--out").map(PathBuf::from).unwrap_or_else(|| PathBuf::from("results"));
    let only: Option<String> = flag("--bench");
    let flag_values: Vec<String> = [
        "--out",
        "--bench",
        "--config",
        "--socket",
        "--fault",
        "--verb",
        "--timeout-ms",
    ]
    .iter()
    .filter_map(|f| flag(f))
    .collect();
    let cmd = args
        .iter()
        .find(|a| !a.starts_with("--") && !flag_values.contains(a))
        .map(String::as_str)
        .unwrap_or("all");

    let benches: Vec<_> = all_benchmarks()
        .into_iter()
        .filter(|b| only.as_deref().map(|o| b.info.name == o).unwrap_or(true))
        .collect();
    if benches.is_empty() {
        eprintln!("no benchmark matches --bench filter");
        std::process::exit(2);
    }

    match cmd {
        "table1" | "fig6a" | "fig6b" | "fig6c" | "fig6" | "fig7" | "fig8a" | "fig8b"
        | "fig8" | "all" => {
            let cache = uu_serve::CompileCache::from_env();
            let remote = uu_serve::Remote::from_env();
            let backend = uu_harness::Backend {
                cache: cache.as_ref(),
                remote: remote.as_ref(),
            };
            eprintln!(
                "running sweep over {} benchmark(s){}{}{} ...",
                benches.len(),
                if fast { " (fast)" } else { "" },
                if cache.is_some() { " [cached]" } else { "" },
                if remote.is_some() { " [daemon]" } else { "" }
            );
            let fault = uu_core::FaultPlan::from_env();
            let jobs = uu_par::num_jobs();
            let s = sweep::run_sweep_backed(&benches, fast, jobs, fault, backend);
            let emitted = (|| -> std::io::Result<()> {
                match cmd {
                    "table1" => figures::table1(&s, &out, &benches)?,
                    "fig6" | "fig6a" | "fig6b" | "fig6c" => figures::fig6(&s, &out)?,
                    "fig7" => figures::fig7(&s, &out)?,
                    "fig8" | "fig8a" | "fig8b" => figures::fig8(&s, &out)?,
                    _ => {
                        figures::table1(&s, &out, &benches)?;
                        figures::fig6(&s, &out)?;
                        figures::fig7(&s, &out)?;
                        figures::fig8(&s, &out)?;
                        let cases = indepth::collect();
                        indepth::report(&cases, &out)?;
                        eprintln!("running three-way unmerge/meld study...");
                        let st = study::run_study_backed(&benches, jobs, fault, backend);
                        figures::fig9(&st, &out)?;
                        figures::table2(&st, &out)?;
                    }
                }
                // Every sweep-based command also emits the fault report,
                // so a faulted run is diagnosable from the results dir.
                figures::faults(&s, &out)
            })();
            if let Err(e) = emitted {
                eprintln!("could not write results to {}: {e}", out.display());
                std::process::exit(1);
            }
            eprintln!("wrote results to {}", out.display());
            report_cache(cache.as_ref());
            // Print the headline table to stdout for quick inspection.
            if matches!(cmd, "table1" | "all") {
                if let Ok(t) = std::fs::read_to_string(out.join("table1.txt")) {
                    println!("{t}");
                }
            }
            if matches!(cmd, "fig7" | "all") {
                if let Ok(t) = std::fs::read_to_string(out.join("fig7.txt")) {
                    println!("{t}");
                }
            }
        }
        "study" | "fig9" | "table2" => {
            // The three-way unmerge/meld study (hot loops only; identical
            // in fast and full runs, byte-identical at any UU_JOBS).
            let cache = uu_serve::CompileCache::from_env();
            let remote = uu_serve::Remote::from_env();
            eprintln!(
                "running three-way unmerge/meld study over {} benchmark(s)...",
                benches.len()
            );
            let st = study::run_study_backed(
                &benches,
                uu_par::num_jobs(),
                uu_core::FaultPlan::from_env(),
                uu_harness::Backend {
                    cache: cache.as_ref(),
                    remote: remote.as_ref(),
                },
            );
            let emitted = (|| -> std::io::Result<()> {
                figures::fig9(&st, &out)?;
                figures::table2(&st, &out)
            })();
            if let Err(e) = emitted {
                eprintln!("could not write results to {}: {e}", out.display());
                std::process::exit(1);
            }
            eprintln!("wrote results to {}", out.display());
            report_cache(cache.as_ref());
            if let Ok(t) = std::fs::read_to_string(out.join("table2.txt")) {
                println!("{t}");
            }
        }
        "indepth" => {
            let cases = indepth::collect();
            if let Err(e) = indepth::report(&cases, &out) {
                eprintln!("could not write results to {}: {e}", out.display());
                std::process::exit(1);
            }
            if let Ok(t) = std::fs::read_to_string(out.join("indepth.txt")) {
                println!("{t}");
            }
        }
        "serve" => {
            // Long-running compile service. The cache honours the same env
            // knobs as the batch commands; without one, it runs an
            // in-memory cache (a daemon without a cache would re-do every
            // repeat compile).
            let cache = uu_serve::CompileCache::from_env()
                .unwrap_or_else(uu_serve::CompileCache::new_mem);
            let r = if args.iter().any(|a| a == "--stdio") {
                eprintln!("uu-serve: serving on stdio");
                uu_serve::serve_stdio(&cache)
            } else {
                let sock = flag("--socket").unwrap_or_else(|| "uu-serve.sock".to_string());
                eprintln!("uu-serve: serving on {sock}");
                uu_serve::serve_unix(Path::new(&sock), &cache)
            };
            let stats = cache.stats();
            eprintln!(
                "uu-serve: exiting; {} hits / {} misses ({:.1}% hit rate)",
                stats.hits(),
                stats.misses(),
                stats.hit_rate() * 100.0
            );
            if let Err(e) = r {
                eprintln!("uu-serve: {e}");
                std::process::exit(1);
            }
        }
        "client" => {
            let sock = flag("--socket").unwrap_or_else(|| "uu-serve.sock".to_string());
            let verb = flag("--verb").unwrap_or_else(|| "compile".to_string());
            let req = match verb.as_str() {
                "compile" => {
                    let config = flag("--config").unwrap_or_else(|| "uu4".to_string());
                    // `--bench NAME` sends that benchmark's module; with the
                    // default filter (all benches), read the module from stdin.
                    let module_text = if only.is_some() {
                        (benches[0].build)().to_string()
                    } else {
                        let mut s = String::new();
                        use std::io::Read as _;
                        if std::io::stdin().read_to_string(&mut s).is_err() || s.is_empty() {
                            eprintln!("client: pass --bench NAME or pipe a module on stdin");
                            std::process::exit(2);
                        }
                        s
                    };
                    let mut req = uu_serve::Message::new("compile")
                        .header("config", &config)
                        .with_body(module_text);
                    if let Some(fault) = flag("--fault") {
                        req = req.header("fault", fault);
                    }
                    if let Some(t) = flag("--timeout-ms") {
                        req = req.header("timeout-ms", t);
                    }
                    if !args.iter().any(|a| a == "--print-ir") {
                        req = req.header("want-module", 0);
                    }
                    req
                }
                v @ ("stats" | "ping" | "health" | "ready" | "shutdown") => {
                    uu_serve::Message::new(v)
                }
                other => {
                    eprintln!(
                        "client: unknown --verb `{other}` \
                         (compile|stats|ping|health|ready|shutdown)"
                    );
                    std::process::exit(2);
                }
            };
            // Busy shedding and injected transport faults are retried with
            // deterministic capped backoff; --no-retry sends exactly one
            // attempt (probing a saturated daemon's `busy` response).
            let remote = if args.iter().any(|a| a == "--no-retry") {
                uu_serve::Remote::new(&sock).with_attempts(1)
            } else {
                uu_serve::Remote::new(&sock)
            };
            let resp = remote.request(&req);
            match resp {
                Ok(resp) => {
                    println!("{}", resp.verb);
                    for (k, v) in &resp.headers {
                        println!("{k}: {v}");
                    }
                    if !resp.body.is_empty() {
                        println!();
                        print!("{}", resp.body);
                    }
                    if resp.verb != "ok" {
                        std::process::exit(1);
                    }
                }
                Err(e) => {
                    eprintln!("client: {e}");
                    std::process::exit(1);
                }
            }
        }
        "dump" => {
            // Print each hot kernel after optimization under a config given
            // by --config (see `uu_serve::config_names`).
            let config = flag("--config").unwrap_or_else(|| "uu4".to_string());
            let Some(transform) = uu_serve::parse_config(&config) else {
                eprintln!(
                    "unknown --config `{config}`; expected {}",
                    uu_serve::config_names()
                );
                std::process::exit(2);
            };
            // Compile in parallel; print in benchmark order.
            let dumps = uu_par::par_map(&benches, |_, b| {
                let mut m = (b.build)();
                uu_core::compile(
                    &mut m,
                    &uu_core::PipelineOptions {
                        transform: transform.clone(),
                        ..Default::default()
                    },
                );
                let mut text = String::new();
                for hot in b.info.hot_kernels {
                    if let Some(id) = m.find(hot) {
                        text.push_str(&format!(
                            "; {} under {config}\n{}\n",
                            b.info.name,
                            m.function(id)
                        ));
                    }
                }
                text
            });
            for d in dumps {
                print!("{d}");
            }
        }
        "decisions" => {
            // Dump the heuristic's per-loop reasoning (paper §III-C).
            // Compile in parallel; print in benchmark order.
            let dumps = uu_par::par_map(&benches, |_, b| {
                let mut m = (b.build)();
                let outcome = uu_core::compile(
                    &mut m,
                    &uu_core::PipelineOptions {
                        transform: uu_core::Transform::UuHeuristic(Default::default()),
                        ..Default::default()
                    },
                );
                let mut text = format!("== {} ==\n", b.info.name);
                for (func, d) in outcome.decisions {
                    text.push_str(&format!(
                        "  {func:<24} loop@{:<6} p={:<4} s={:<5} -> {:?}\n",
                        d.header.to_string(),
                        d.paths,
                        d.size,
                        d.decision
                    ));
                }
                text
            });
            for d in dumps {
                print!("{d}");
            }
        }
        other => {
            eprintln!(
                "unknown command `{other}`; expected one of: all, table1, fig6[a|b|c], fig7, fig8[a|b], study, fig9, table2, indepth, decisions, dump, serve, client"
            );
            std::process::exit(2);
        }
    }
}

/// After a cached batch run, surface the cache's versioned stats on
/// stderr (reports on stdout/disk stay byte-identical to cacheless runs).
fn report_cache(cache: Option<&uu_serve::CompileCache>) {
    if let Some(c) = cache {
        let st = c.stats();
        eprintln!(
            "cache: {} hits / {} misses ({:.1}% hit rate), {} work units saved",
            st.hits(),
            st.misses(),
            st.hit_rate() * 100.0,
            st.work_saved
        );
        eprintln!("cache stats JSON:\n{}", st.to_json());
    }
}

//! Command-line entry point: `uu-harness <command> [--fast] [--out DIR]`.

use std::path::PathBuf;
use uu_harness::{figures, indepth, study, sweep};
use uu_kernels::all_benchmarks;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    let only: Option<String> = args
        .iter()
        .position(|a| a == "--bench")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let cmd = args
        .iter()
        .find(|a| !a.starts_with("--") && Some(a.as_str()) != only.as_deref())
        .map(String::as_str)
        .unwrap_or("all");

    let benches: Vec<_> = all_benchmarks()
        .into_iter()
        .filter(|b| only.as_deref().map(|o| b.info.name == o).unwrap_or(true))
        .collect();
    if benches.is_empty() {
        eprintln!("no benchmark matches --bench filter");
        std::process::exit(2);
    }

    match cmd {
        "table1" | "fig6a" | "fig6b" | "fig6c" | "fig6" | "fig7" | "fig8a" | "fig8b"
        | "fig8" | "all" => {
            eprintln!(
                "running sweep over {} benchmark(s){} ...",
                benches.len(),
                if fast { " (fast)" } else { "" }
            );
            let s = sweep::run_sweep(&benches, fast);
            let emitted = (|| -> std::io::Result<()> {
                match cmd {
                    "table1" => figures::table1(&s, &out, &benches)?,
                    "fig6" | "fig6a" | "fig6b" | "fig6c" => figures::fig6(&s, &out)?,
                    "fig7" => figures::fig7(&s, &out)?,
                    "fig8" | "fig8a" | "fig8b" => figures::fig8(&s, &out)?,
                    _ => {
                        figures::table1(&s, &out, &benches)?;
                        figures::fig6(&s, &out)?;
                        figures::fig7(&s, &out)?;
                        figures::fig8(&s, &out)?;
                        let cases = indepth::collect();
                        indepth::report(&cases, &out)?;
                        eprintln!("running three-way unmerge/meld study...");
                        let st = study::run_study(&benches);
                        figures::fig9(&st, &out)?;
                        figures::table2(&st, &out)?;
                    }
                }
                // Every sweep-based command also emits the fault report,
                // so a faulted run is diagnosable from the results dir.
                figures::faults(&s, &out)
            })();
            if let Err(e) = emitted {
                eprintln!("could not write results to {}: {e}", out.display());
                std::process::exit(1);
            }
            eprintln!("wrote results to {}", out.display());
            // Print the headline table to stdout for quick inspection.
            if matches!(cmd, "table1" | "all") {
                if let Ok(t) = std::fs::read_to_string(out.join("table1.txt")) {
                    println!("{t}");
                }
            }
            if matches!(cmd, "fig7" | "all") {
                if let Ok(t) = std::fs::read_to_string(out.join("fig7.txt")) {
                    println!("{t}");
                }
            }
        }
        "study" | "fig9" | "table2" => {
            // The three-way unmerge/meld study (hot loops only; identical
            // in fast and full runs, byte-identical at any UU_JOBS).
            eprintln!(
                "running three-way unmerge/meld study over {} benchmark(s)...",
                benches.len()
            );
            let st = study::run_study(&benches);
            let emitted = (|| -> std::io::Result<()> {
                figures::fig9(&st, &out)?;
                figures::table2(&st, &out)
            })();
            if let Err(e) = emitted {
                eprintln!("could not write results to {}: {e}", out.display());
                std::process::exit(1);
            }
            eprintln!("wrote results to {}", out.display());
            if let Ok(t) = std::fs::read_to_string(out.join("table2.txt")) {
                println!("{t}");
            }
        }
        "indepth" => {
            let cases = indepth::collect();
            if let Err(e) = indepth::report(&cases, &out) {
                eprintln!("could not write results to {}: {e}", out.display());
                std::process::exit(1);
            }
            if let Ok(t) = std::fs::read_to_string(out.join("indepth.txt")) {
                println!("{t}");
            }
        }
        "dump" => {
            // Print each hot kernel after optimization under a config given
            // by --config (baseline|unroll<k>|unmerge|uu<k>|heuristic).
            let config = args
                .iter()
                .position(|a| a == "--config")
                .and_then(|i| args.get(i + 1))
                .cloned()
                .unwrap_or_else(|| "uu4".to_string());
            let transform = match config.as_str() {
                "baseline" => uu_core::Transform::Baseline,
                "unmerge" => uu_core::Transform::Unmerge,
                "heuristic" => uu_core::Transform::UuHeuristic(Default::default()),
                "meld" => uu_core::Transform::Meld,
                c if c.starts_with("unroll") => uu_core::Transform::Unroll {
                    factor: c[6..].parse().unwrap_or(4),
                },
                c if c.starts_with("uu") && c.ends_with("+meld") => {
                    uu_core::Transform::UuMeld {
                        factor: c[2..c.len() - 5].parse().unwrap_or(4),
                        unmerge: Default::default(),
                    }
                }
                c if c.starts_with("uu") => uu_core::Transform::Uu {
                    factor: c[2..].parse().unwrap_or(4),
                    unmerge: Default::default(),
                },
                other => {
                    eprintln!("unknown --config `{other}`");
                    std::process::exit(2);
                }
            };
            // Compile in parallel; print in benchmark order.
            let dumps = uu_par::par_map(&benches, |_, b| {
                let mut m = (b.build)();
                uu_core::compile(
                    &mut m,
                    &uu_core::PipelineOptions {
                        transform: transform.clone(),
                        ..Default::default()
                    },
                );
                let mut text = String::new();
                for hot in b.info.hot_kernels {
                    if let Some(id) = m.find(hot) {
                        text.push_str(&format!(
                            "; {} under {config}\n{}\n",
                            b.info.name,
                            m.function(id)
                        ));
                    }
                }
                text
            });
            for d in dumps {
                print!("{d}");
            }
        }
        "decisions" => {
            // Dump the heuristic's per-loop reasoning (paper §III-C).
            // Compile in parallel; print in benchmark order.
            let dumps = uu_par::par_map(&benches, |_, b| {
                let mut m = (b.build)();
                let outcome = uu_core::compile(
                    &mut m,
                    &uu_core::PipelineOptions {
                        transform: uu_core::Transform::UuHeuristic(Default::default()),
                        ..Default::default()
                    },
                );
                let mut text = format!("== {} ==\n", b.info.name);
                for (func, d) in outcome.decisions {
                    text.push_str(&format!(
                        "  {func:<24} loop@{:<6} p={:<4} s={:<5} -> {:?}\n",
                        d.header.to_string(),
                        d.paths,
                        d.size,
                        d.decision
                    ));
                }
                text
            });
            for d in dumps {
                print!("{d}");
            }
        }
        other => {
            eprintln!(
                "unknown command `{other}`; expected one of: all, table1, fig6[a|b|c], fig7, fig8[a|b], study, fig9, table2, indepth, decisions, dump"
            );
            std::process::exit(2);
        }
    }
}

//! §V in-depth analysis: hardware-counter deltas for XSBench, rainflow and
//! complex — the paper's explanation of *why* u&u wins or loses.

use crate::experiment::{equivalence_diag, measure, measure_baseline, Measurement};
use crate::report::{ascii_table, write_text};
use std::path::Path;
use uu_core::{LoopFilter, Transform, UnmergeOptions};
use uu_kernels::{all_benchmarks, Benchmark};

/// One counter-comparison case.
#[derive(Debug, Clone)]
pub struct CounterCase {
    /// Application.
    pub app: String,
    /// Factor used (the paper's §V choices).
    pub factor: u32,
    /// Baseline measurement.
    pub base: Measurement,
    /// u&u measurement.
    pub uu: Measurement,
}

fn bench(name: &str) -> Benchmark {
    all_benchmarks()
        .into_iter()
        .find(|b| b.info.name == name)
        .unwrap_or_else(|| panic!("unknown benchmark {name}"))
}

/// Collect the three §V cases: XSBench @8, rainflow @4, complex @8.
///
/// The cases are independent (each builds its own module and GPU), so
/// they fan out across the `UU_JOBS` pool; `uu-par`'s ordered merge keeps
/// the report order fixed. A case whose measurement faults (or whose
/// checksums diverge — a miscompile) is dropped with a diagnostic on
/// stderr rather than aborting the run; the report renders the survivors.
pub fn collect() -> Vec<CounterCase> {
    let cases = [
        ("XSBench", "xs_lookup", 8u32),
        ("rainflow", "rainflow_scan", 4),
        ("complex", "complex_pow", 8),
    ];
    uu_par::par_map(&cases, |_, (app, func, factor)| {
        let b = bench(app);
        let base = match measure_baseline(&b) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("indepth: {app} baseline failed: {e}");
                return None;
            }
        };
        let uu = match measure(
            &b,
            Transform::Uu {
                factor: *factor,
                unmerge: UnmergeOptions::default(),
            },
            LoopFilter::Only {
                func: (*func).to_string(),
                loop_id: 0,
            },
            None,
        ) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("indepth: {app} u&u failed: {e}");
                return None;
            }
        };
        if let Some(d) = equivalence_diag(&base, &uu, app) {
            eprintln!("indepth: {d}");
            return None;
        }
        Some(CounterCase {
            app: (*app).to_string(),
            factor: *factor,
            base,
            uu,
        })
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Emit `indepth.txt`: counter tables in the style of the paper's §V.
///
/// # Errors
///
/// Propagates report-write I/O failures.
pub fn report(cases: &[CounterCase], out: &Path) -> std::io::Result<()> {
    let clock = uu_simt::GpuParams::default().clock_ghz;
    let warp = uu_simt::GpuParams::default().warp_size;
    let mut text = String::from("In-depth analysis (paper §V): counters baseline vs u&u\n\n");
    for c in cases {
        let rows = vec![
            row("kernel time (ms)", c.base.time_ms, c.uu.time_ms),
            row(
                "inst_misc",
                c.base.metrics.thread_misc as f64,
                c.uu.metrics.thread_misc as f64,
            ),
            row(
                "inst_control",
                c.base.metrics.thread_control as f64,
                c.uu.metrics.thread_control as f64,
            ),
            row(
                "warp_execution_efficiency (%)",
                c.base.metrics.warp_execution_efficiency(warp),
                c.uu.metrics.warp_execution_efficiency(warp),
            ),
            row("IPC", c.base.metrics.ipc(), c.uu.metrics.ipc()),
            row(
                "gld_throughput (GB/s)",
                c.base.metrics.gld_throughput_gbs(clock),
                c.uu.metrics.gld_throughput_gbs(clock),
            ),
            row(
                "stall_inst_fetch (%)",
                c.base.metrics.stall_inst_fetch(),
                c.uu.metrics.stall_inst_fetch(),
            ),
        ];
        text.push_str(&format!("== {} (u&u factor {}) ==\n", c.app, c.factor));
        text.push_str(&ascii_table(&["counter", "baseline", "u&u", "ratio"], &rows));
        text.push('\n');
    }
    write_text(&out.join("indepth.txt"), &text)
}

fn row(name: &str, base: f64, uu: f64) -> Vec<String> {
    let ratio = if base != 0.0 { uu / base } else { f64::NAN };
    vec![
        name.to_string(),
        format!("{base:.4}"),
        format!("{uu:.4}"),
        format!("{ratio:.3}"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xsbench_case_shows_misc_reduction_and_divergence() {
        let b = bench("XSBench");
        let base = measure_baseline(&b).unwrap();
        let uu = measure(
            &b,
            Transform::Uu {
                factor: 8,
                unmerge: UnmergeOptions::default(),
            },
            LoopFilter::Only {
                func: "xs_lookup".into(),
                loop_id: 0,
            },
            None,
        )
        .unwrap();
        assert_eq!(uu.checksum, base.checksum);
        // The paper's §V signature: inst_misc drops sharply while warp
        // execution efficiency drops too (selp → divergent branches).
        assert!(
            (uu.metrics.thread_misc as f64) < 0.7 * base.metrics.thread_misc as f64,
            "misc: {} vs {}",
            uu.metrics.thread_misc,
            base.metrics.thread_misc
        );
        let w = uu_simt::GpuParams::default().warp_size;
        assert!(
            uu.metrics.warp_execution_efficiency(w)
                < base.metrics.warp_execution_efficiency(w)
        );
    }
}

//! # uu-harness — regenerating the paper's evaluation
//!
//! The experiment driver for reproducing Table I and Figures 6–8 of
//! *Enhancing Performance through Control-Flow Unmerging and Loop Unrolling
//! on GPUs* (CGO 2024), plus the §V hardware-counter analysis.
//!
//! ## Methodology (paper §IV-B, faithfully reproduced)
//!
//! * five configurations: baseline (`-O3` stand-in), `unroll`, `unmerge`,
//!   `u&u` (factors 2/4/8), and the `u&u` heuristic (`c = 1024`,
//!   `u_max = 8`);
//! * transforms applied **one loop at a time**, early in the pipeline;
//! * each data point is the **median of 20 runs**; the simulator being
//!   deterministic, runs are drawn from a seeded noise model calibrated to
//!   the paper's per-application RSD (a documented substitution);
//! * speedup uses the **sum of kernel times**; `%C` weighs kernels against
//!   a PCIe transfer model;
//! * every transformed binary's output **checksum must equal the
//!   baseline's** — a mismatch aborts the run (a speedup from a miscompile
//!   is not a speedup).
//!
//! Run `cargo run --release -p uu-harness -- all` to regenerate everything
//! into `results/`. Beyond the paper's own evaluation, the [`study`]
//! module runs the three-way unmerge/meld comparison (u&u vs DARM-style
//! melding vs both) rendered as `fig9` / `table2`.

#![warn(missing_docs)]

pub mod experiment;
pub mod figures;
pub mod indepth;
pub mod report;
pub mod stats;
pub mod study;
pub mod sweep;

pub use experiment::{measure, measure_backed, measure_baseline, Backend, Measurement};
pub use study::{run_study, run_study_backed, Study};
pub use sweep::{run_sweep, run_sweep_backed, Sweep};

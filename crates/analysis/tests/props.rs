//! Property tests for the analyses: structural invariants of the dominator
//! tree and the loop forest must hold on every generated kernel, and both
//! analyses must be deterministic functions of the IR.

use uu_check::{build_kernel, check, Config, KernelSpec};
use uu_analysis::{DomTree, LoopForest};

#[test]
fn dominator_tree_invariants() {
    check(
        "dominator_tree_invariants",
        &Config::from_env(64),
        |spec: &KernelSpec| {
            let f = build_kernel(spec);
            let dom = DomTree::compute(&f);
            if dom.root() != f.entry() {
                return Err("dom tree root is not the entry block".into());
            }
            for &b in f.layout() {
                if !dom.is_reachable(b) {
                    continue;
                }
                if !dom.dominates(f.entry(), b) {
                    return Err(format!("entry does not dominate reachable {b:?}"));
                }
                if b != f.entry() {
                    let idom = dom
                        .idom(b)
                        .ok_or_else(|| format!("reachable non-entry {b:?} has no idom"))?;
                    if !dom.strictly_dominates(idom, b) {
                        return Err(format!("idom {idom:?} does not strictly dominate {b:?}"));
                    }
                }
                // Every predecessor-reachable block's idom dominates all its
                // predecessors' common dominators; cheap spot check: the idom
                // dominates the block but not vice versa.
                if b != f.entry() && dom.dominates(b, dom.idom(b).unwrap()) {
                    return Err(format!("{b:?} dominates its own idom"));
                }
            }
            Ok(())
        },
    );
}

#[test]
fn loop_forest_invariants() {
    check(
        "loop_forest_invariants",
        &Config::from_env(64),
        |spec: &KernelSpec| {
            let f = build_kernel(spec);
            let dom = DomTree::compute(&f);
            let forest = LoopForest::compute(&f, &dom);
            for l in forest.loops() {
                if !l.blocks.contains(&l.header) {
                    return Err(format!("loop {:?}: header not in blocks", l.header));
                }
                for &latch in &l.latches {
                    if !l.blocks.contains(&latch) {
                        return Err(format!("loop {:?}: latch {latch:?} not in blocks", l.header));
                    }
                    if !f.successors(latch).contains(&l.header) {
                        return Err(format!(
                            "loop {:?}: latch {latch:?} has no back edge to header",
                            l.header
                        ));
                    }
                }
                for &b in &l.blocks {
                    if !dom.dominates(l.header, b) {
                        return Err(format!(
                            "loop {:?}: header does not dominate member {b:?}",
                            l.header
                        ));
                    }
                }
                if l.depth == 0 {
                    return Err(format!("loop {:?}: zero depth", l.header));
                }
            }
            Ok(())
        },
    );
}

#[test]
fn analyses_are_deterministic() {
    check(
        "analyses_are_deterministic",
        &Config::from_env(32),
        |spec: &KernelSpec| {
            let f = build_kernel(spec);
            let fmt = |f: &uu_ir::Function| {
                let dom = DomTree::compute(f);
                let forest = LoopForest::compute(f, &dom);
                let idoms: Vec<_> = f.layout().iter().map(|&b| (b, dom.idom(b))).collect();
                let loops: Vec<_> = forest
                    .loops()
                    .iter()
                    .map(|l| (l.header, l.blocks.clone(), l.latches.clone(), l.depth))
                    .collect();
                format!("{idoms:?}\n{loops:?}")
            };
            let a = fmt(&f);
            let b = fmt(&f);
            if a != b {
                return Err(format!("recompute differed:\n{a}\nvs\n{b}"));
            }
            Ok(())
        },
    );
}

//! Per-function cache of CFG-derived analyses with pass-declared
//! invalidation.
//!
//! The cleanup driver runs the same short pass list for up to eight rounds,
//! and historically every dominator-hungry pass (GVN, condprop) recomputed
//! [`DomTree`] — and sometimes [`LoopForest`] — from scratch on entry. Most
//! of those recomputations are wasted: a pass that only rewrites
//! instructions inside blocks (GVN, condprop, instsimplify, DCE) leaves the
//! block graph — and therefore every CFG-derived analysis — untouched.
//!
//! [`AnalysisCache`] memoizes both analyses behind [`Rc`] handles (cheap to
//! hand to a pass that is about to mutate the function) and the pipeline
//! invalidates with one rule, declared per pass:
//!
//! > invalidate iff the invocation reported a change **and** the pass does
//! > not preserve the CFG.
//!
//! A guarded invocation that rolls back (verifier rejection, injected
//! panic) restores the function exactly, so the cache stays valid without
//! special-casing; fault injections that mutate instructions in place
//! (operator flips) never touch the block graph.

use crate::{DomTree, LoopForest};
use std::rc::Rc;
use uu_ir::Function;

/// Memoized CFG-derived analyses for one function.
///
/// Handles are [`Rc`]-shared: `dominators()` hands out a clone of the
/// cached tree so the caller can keep it across its own mutations of the
/// function (sound only while those mutations preserve the CFG — which is
/// exactly what the invalidation rule enforces at the pipeline level).
#[derive(Default)]
pub struct AnalysisCache {
    dom: Option<Rc<DomTree>>,
    loops: Option<Rc<LoopForest>>,
    /// Number of cache misses (fresh computations) — test/diagnostic hook.
    misses: usize,
}

impl AnalysisCache {
    /// An empty cache; the first query computes.
    pub fn new() -> Self {
        Self::default()
    }

    /// The dominator tree of `f`, computing it on first use.
    pub fn dominators(&mut self, f: &Function) -> Rc<DomTree> {
        if self.dom.is_none() {
            self.misses += 1;
            self.dom = Some(Rc::new(DomTree::compute(f)));
        }
        Rc::clone(self.dom.as_ref().unwrap())
    }

    /// The loop forest of `f`, computing it (and the dominator tree it
    /// depends on) on first use.
    pub fn loop_forest(&mut self, f: &Function) -> Rc<LoopForest> {
        if self.loops.is_none() {
            let dom = self.dominators(f);
            self.misses += 1;
            self.loops = Some(Rc::new(LoopForest::compute(f, &dom)));
        }
        Rc::clone(self.loops.as_ref().unwrap())
    }

    /// Drop every cached analysis: call after a pass changed the CFG.
    pub fn invalidate(&mut self) {
        self.dom = None;
        self.loops = None;
    }

    /// How many fresh analysis computations this cache has performed.
    pub fn misses(&self) -> usize {
        self.misses
    }
}

//! Trip-count computation for canonical counted loops.
//!
//! The baseline `-O3` pipeline (like LLVM's) fully unrolls small loops with
//! known trip counts; the bspline-vgh result in the paper (identical code
//! size at factors 4 and 8 because the trip count is 4) depends on this.
//! Only the canonical shape is recognized:
//!
//! ```text
//! header: %i = phi [init, preheader], [%i.next, latch]
//!         %c = icmp pred %i, bound        ; pred ∈ {slt, sle, sgt, sge, ne, ult, ule}
//!         br %c, body..., exit
//! latch:  %i.next = add %i, step          ; constant step
//! ```

use crate::loops::{LoopForest, LoopId};
use uu_ir::{BlockId, Function, ICmpPred, InstKind, Value};

/// A recognized induction variable and exit condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountedLoop {
    /// Constant initial value of the induction phi.
    pub init: i64,
    /// Constant per-iteration step.
    pub step: i64,
    /// Constant loop bound.
    pub bound: i64,
    /// Exit predicate (loop continues while `i <pred> bound`).
    pub pred: ICmpPred,
    /// Number of iterations the body executes.
    pub trip_count: u64,
}

/// Try to recognize loop `id` as a canonical counted loop and compute its
/// trip count. Returns `None` for anything non-canonical (multiple latches,
/// non-constant bounds, exotic exits).
pub fn trip_count(f: &Function, forest: &LoopForest, id: LoopId) -> Option<CountedLoop> {
    let l = forest.get(id);
    if l.latches.len() != 1 {
        return None;
    }
    let latch = l.latches[0];
    let header = l.header;
    // Header terminator must be a condbr with exactly one exit.
    let term = f.terminator(header)?;
    let InstKind::CondBr {
        cond,
        if_true,
        if_false,
    } = f.inst(term).kind
    else {
        return None;
    };
    let (exit_is_false, _body) = if l.contains(if_true) && !l.contains(if_false) {
        (true, if_true)
    } else if l.contains(if_false) && !l.contains(if_true) {
        (false, if_false)
    } else {
        return None;
    };
    // Condition must be icmp(pred, phi, const).
    let cond_inst = cond.as_inst()?;
    let InstKind::ICmp { pred, lhs, rhs } = f.inst(cond_inst).kind else {
        return None;
    };
    let (phi_val, bound, pred) = match (lhs, rhs) {
        (Value::Inst(p), Value::Const(c)) if is_header_phi(f, header, p) => {
            (p, c.as_i64()?, pred)
        }
        (Value::Const(c), Value::Inst(p)) if is_header_phi(f, header, p) => {
            (p, c.as_i64()?, pred.swapped())
        }
        _ => return None,
    };
    // Continue-predicate: if the exit is on the false edge, the loop runs
    // while pred holds; if the exit is on the true edge, while !pred holds.
    let cont_pred = if exit_is_false { pred } else { pred.inverted() };
    // Phi incomings: init from outside, step from latch.
    let InstKind::Phi { ref incomings } = f.inst(phi_val).kind else {
        return None;
    };
    let mut init = None;
    let mut next = None;
    for (b, v) in incomings {
        if *b == latch {
            next = Some(*v);
        } else if !l.contains(*b) {
            init = v.as_const().and_then(|c| c.as_i64());
        }
    }
    let init = init?;
    let next = next?.as_inst()?;
    let InstKind::Bin {
        op: uu_ir::BinOp::Add,
        lhs,
        rhs,
    } = f.inst(next).kind
    else {
        return None;
    };
    let step = match (lhs, rhs) {
        (Value::Inst(p), Value::Const(c)) if p == phi_val => c.as_i64()?,
        (Value::Const(c), Value::Inst(p)) if p == phi_val => c.as_i64()?,
        _ => return None,
    };
    if step == 0 {
        return None;
    }
    let tc = compute_trip_count(init, step, bound, cont_pred)?;
    Some(CountedLoop {
        init,
        step,
        bound,
        pred: cont_pred,
        trip_count: tc,
    })
}

fn is_header_phi(f: &Function, header: BlockId, inst: uu_ir::InstId) -> bool {
    f.phis(header).contains(&inst)
}

/// A canonical affine loop whose bound is a runtime value: the shape that
/// runtime unrolling (LLVM `-unroll-runtime`) handles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AffineLoop {
    /// The induction phi (in the header).
    pub phi: uu_ir::InstId,
    /// Initial value (any value defined outside the loop).
    pub init: Value,
    /// Constant per-iteration step (non-zero).
    pub step: i64,
    /// Loop bound (any value defined outside the loop).
    pub bound: Value,
    /// The comparison instruction in the header.
    pub cmp: uu_ir::InstId,
    /// Continue-predicate: the loop body runs while `i <pred> bound`.
    pub pred: ICmpPred,
    /// Whether the exit is taken on the false edge of the header branch.
    pub exit_is_false: bool,
}

/// Recognize loop `id` as a canonical affine loop with a (possibly runtime)
/// bound. Accepts only monotone shapes: `slt`/`sle` with positive step, or
/// `sgt`/`sge` with negative step.
pub fn affine_loop(f: &Function, forest: &LoopForest, id: LoopId) -> Option<AffineLoop> {
    let l = forest.get(id);
    if l.latches.len() != 1 {
        return None;
    }
    let latch = l.latches[0];
    let header = l.header;
    let term = f.terminator(header)?;
    let InstKind::CondBr {
        cond,
        if_true,
        if_false,
    } = f.inst(term).kind
    else {
        return None;
    };
    let exit_is_false = if l.contains(if_true) && !l.contains(if_false) {
        true
    } else if l.contains(if_false) && !l.contains(if_true) {
        false
    } else {
        return None;
    };
    let cmp = cond.as_inst()?;
    let InstKind::ICmp { pred, lhs, rhs } = f.inst(cmp).kind else {
        return None;
    };
    let value_outside = |v: Value| match v {
        Value::Inst(i) => !l.blocks.iter().any(|b| f.block(*b).insts.contains(&i)),
        _ => true,
    };
    let (phi, bound, pred) = match (lhs, rhs) {
        (Value::Inst(p), b) if is_header_phi(f, header, p) && value_outside(b) => (p, b, pred),
        (b, Value::Inst(p)) if is_header_phi(f, header, p) && value_outside(b) => {
            (p, b, pred.swapped())
        }
        _ => return None,
    };
    let cont_pred = if exit_is_false { pred } else { pred.inverted() };
    let InstKind::Phi { ref incomings } = f.inst(phi).kind else {
        return None;
    };
    let mut init = None;
    let mut next = None;
    for (b, v) in incomings {
        if *b == latch {
            next = Some(*v);
        } else if !l.contains(*b) {
            init = Some(*v);
        }
    }
    let (init, next) = (init?, next?.as_inst()?);
    if !value_outside(init) {
        return None;
    }
    let InstKind::Bin { op, lhs, rhs } = f.inst(next).kind else {
        return None;
    };
    let step = match (op, lhs, rhs) {
        (uu_ir::BinOp::Add, Value::Inst(p), Value::Const(c)) if p == phi => c.as_i64()?,
        (uu_ir::BinOp::Add, Value::Const(c), Value::Inst(p)) if p == phi => c.as_i64()?,
        (uu_ir::BinOp::Sub, Value::Inst(p), Value::Const(c)) if p == phi => {
            c.as_i64()?.checked_neg()?
        }
        _ => return None,
    };
    // Monotone shapes only.
    let ok = matches!(
        (cont_pred, step > 0),
        (ICmpPred::Slt, true) | (ICmpPred::Sle, true) | (ICmpPred::Sgt, false)
            | (ICmpPred::Sge, false)
    );
    if !ok || step == 0 {
        return None;
    }
    Some(AffineLoop {
        phi,
        init,
        step,
        bound,
        cmp,
        pred: cont_pred,
        exit_is_false,
    })
}

fn compute_trip_count(init: i64, step: i64, bound: i64, pred: ICmpPred) -> Option<u64> {
    // Iterate symbolically in closed form. `i` runs init, init+step, ... and
    // the body executes while `i <pred> bound` holds.
    let holds = |i: i64| -> bool {
        match pred {
            ICmpPred::Slt => i < bound,
            ICmpPred::Sle => i <= bound,
            ICmpPred::Sgt => i > bound,
            ICmpPred::Sge => i >= bound,
            ICmpPred::Ne => i != bound,
            ICmpPred::Ult => (i as u64) < bound as u64,
            ICmpPred::Ule => (i as u64) <= bound as u64,
            _ => false,
        }
    };
    if !holds(init) {
        return Some(0);
    }
    // Closed forms for the common monotone cases.
    match pred {
        ICmpPred::Slt if step > 0 => Some(((bound - init + step - 1) / step) as u64),
        ICmpPred::Sle if step > 0 => Some(((bound - init) / step + 1) as u64),
        ICmpPred::Sgt if step < 0 => Some(((init - bound + (-step) - 1) / (-step)) as u64),
        ICmpPred::Sge if step < 0 => Some(((init - bound) / (-step) + 1) as u64),
        ICmpPred::Ne if step != 0 && (bound - init) % step == 0 && (bound - init) / step > 0 => {
            Some(((bound - init) / step) as u64)
        }
        ICmpPred::Ult if step > 0 => {
            Some((bound as u64 - init as u64).div_ceil(step as u64))
        }
        _ => None, // possibly non-terminating or too complex
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DomTree;
    use uu_ir::{FunctionBuilder, Param, Type, Value};

    fn counted(init: i64, step: i64, bound: i64, pred: ICmpPred) -> uu_ir::Function {
        let mut f = uu_ir::Function::new("k", vec![Param::new("n", Type::I64)], Type::Void);
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let h = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.switch_to(entry);
        b.br(h);
        b.switch_to(h);
        let i = b.phi(Type::I64);
        b.add_phi_incoming(i, entry, Value::imm(init));
        let c = b.icmp(pred, i, Value::imm(bound));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let i1 = b.add(i, Value::imm(step));
        b.add_phi_incoming(i, body, i1);
        b.br(h);
        b.switch_to(exit);
        b.ret(None);
        f
    }

    fn tc_of(f: &uu_ir::Function) -> Option<CountedLoop> {
        let dom = DomTree::compute(f);
        let forest = LoopForest::compute(f, &dom);
        trip_count(f, &forest, LoopId(0))
    }

    #[test]
    fn simple_up_count() {
        let f = counted(0, 1, 10, ICmpPred::Slt);
        let cl = tc_of(&f).unwrap();
        assert_eq!(cl.trip_count, 10);
        assert_eq!(cl.init, 0);
        assert_eq!(cl.step, 1);
    }

    #[test]
    fn strided_up_count() {
        let f = counted(0, 3, 10, ICmpPred::Slt);
        assert_eq!(tc_of(&f).unwrap().trip_count, 4); // 0,3,6,9
    }

    #[test]
    fn inclusive_bound() {
        let f = counted(1, 1, 4, ICmpPred::Sle);
        assert_eq!(tc_of(&f).unwrap().trip_count, 4); // 1,2,3,4
    }

    #[test]
    fn down_count() {
        let f = counted(4, -1, 0, ICmpPred::Sgt);
        assert_eq!(tc_of(&f).unwrap().trip_count, 4); // 4,3,2,1
    }

    #[test]
    fn down_count_inclusive() {
        let f = counted(4, -1, 1, ICmpPred::Sge);
        assert_eq!(tc_of(&f).unwrap().trip_count, 4); // 4,3,2,1
    }

    #[test]
    fn ne_bound() {
        let f = counted(0, 2, 8, ICmpPred::Ne);
        assert_eq!(tc_of(&f).unwrap().trip_count, 4);
    }

    #[test]
    fn zero_trip() {
        let f = counted(10, 1, 10, ICmpPred::Slt);
        assert_eq!(tc_of(&f).unwrap().trip_count, 0);
    }

    #[test]
    fn non_terminating_shape_rejected() {
        // i > bound with positive step never exits via closed form.
        let f = counted(10, 1, 0, ICmpPred::Sgt);
        assert_eq!(tc_of(&f), None);
    }

    #[test]
    fn non_constant_bound_rejected() {
        // Bound is the argument, not a constant.
        let mut f = uu_ir::Function::new("k", vec![Param::new("n", Type::I64)], Type::Void);
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let h = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.switch_to(entry);
        b.br(h);
        b.switch_to(h);
        let i = b.phi(Type::I64);
        b.add_phi_incoming(i, entry, Value::imm(0i64));
        let c = b.icmp(ICmpPred::Slt, i, Value::Arg(0));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let i1 = b.add(i, Value::imm(1i64));
        b.add_phi_incoming(i, body, i1);
        b.br(h);
        b.switch_to(exit);
        b.ret(None);
        assert_eq!(tc_of(&f), None);
    }
}

//! TTI-style cost model.
//!
//! Two costs are distinguished, mirroring LLVM's `TargetTransformInfo`:
//!
//! * **code size** — what the unrolling heuristics bound (`f(p,s,u) < c`);
//! * **latency** — what the SIMT simulator charges per issued instruction.

use crate::loops::{LoopForest, LoopId};
use uu_ir::{BinOp, Function, InstId, InstKind, Intrinsic};

/// Code-size cost of one instruction, in abstract units (roughly: lowered
/// machine instructions). Phis are free (they lower to moves in predecessors
/// which are usually coalesced); everything else costs 1, except big math
/// intrinsics which expand to short sequences.
pub fn inst_size(f: &Function, id: InstId) -> u64 {
    match &f.inst(id).kind {
        InstKind::Phi { .. } => 0,
        InstKind::Intr { which, .. } => match which {
            Intrinsic::Exp | Intrinsic::Log | Intrinsic::Sin | Intrinsic::Cos => 4,
            Intrinsic::Sqrt => 2,
            _ => 1,
        },
        _ => 1,
    }
}

/// Issue latency of one instruction in cycles, loosely modelled after a
/// Volta SM: most ALU ops are 4 cycles, double-precision and transcendental
/// ops are longer, memory issue cost is separate (the simulator adds DRAM
/// latency on top).
pub fn inst_latency(f: &Function, id: InstId) -> u64 {
    match &f.inst(id).kind {
        InstKind::Phi { .. } => 0,
        InstKind::Bin { op, .. } => match op {
            BinOp::SDiv | BinOp::UDiv | BinOp::SRem | BinOp::URem => 20,
            BinOp::FDiv => 16,
            BinOp::FAdd | BinOp::FSub | BinOp::FMul => 4,
            _ => 4,
        },
        InstKind::ICmp { .. } | InstKind::FCmp { .. } => 4,
        InstKind::Select { .. } => 4,
        InstKind::Cast { .. } => 4,
        InstKind::Gep { .. } => 4,
        InstKind::Load { .. } => 4,  // issue cost; memory latency added by simulator
        InstKind::Store { .. } => 4,
        InstKind::Intr { which, .. } => match which {
            Intrinsic::Exp | Intrinsic::Log | Intrinsic::Sin | Intrinsic::Cos => 32,
            Intrinsic::Sqrt => 16,
            Intrinsic::Syncthreads => 8,
            _ => 4,
        },
        InstKind::Br { .. } | InstKind::CondBr { .. } | InstKind::Ret { .. } => 4,
    }
}

/// Code-size cost of a whole block.
pub fn block_size(f: &Function, b: uu_ir::BlockId) -> u64 {
    f.block(b).insts.iter().map(|i| inst_size(f, *i)).sum()
}

/// Code-size cost of a loop (all blocks, header included) — the `s` of the
/// heuristic's `f(p, s, u)`.
pub fn loop_size(f: &Function, forest: &LoopForest, id: LoopId) -> u64 {
    forest
        .get(id)
        .blocks
        .iter()
        .map(|b| block_size(f, *b))
        .sum()
}

/// Code-size cost of a whole function (linked blocks only).
pub fn function_size(f: &Function) -> u64 {
    f.layout().iter().map(|b| block_size(f, *b)).sum()
}

/// Code-size cost of a whole module — the basis for the paper's Figure 6b
/// "binary size" comparisons (we compare lowered instruction counts since we
/// have no machine backend).
pub fn module_size(m: &uu_ir::Module) -> u64 {
    m.iter().map(|(_, f)| function_size(f)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DomTree;
    use uu_ir::{FunctionBuilder, ICmpPred, Param, Type, Value};

    #[test]
    fn sizes_and_latencies() {
        let mut f = uu_ir::Function::new("k", vec![Param::new("p", Type::Ptr)], Type::Void);
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        b.switch_to(entry);
        let x = b.load(Type::F64, Value::Arg(0));
        let y = b.fdiv(x, Value::imm(2.0f64));
        let z = b.intr(Intrinsic::Sqrt, vec![y], Type::F64);
        b.store(Value::Arg(0), z);
        b.ret(None);
        // load, fdiv, sqrt(2), store, ret = 1+1+2+1+1 = 6
        assert_eq!(function_size(&f), 6);
        let insts: Vec<_> = f.block(entry).insts.clone();
        assert_eq!(inst_latency(&f, insts[1]), 16); // fdiv
        assert_eq!(inst_latency(&f, insts[2]), 16); // sqrt
        assert_eq!(inst_latency(&f, insts[0]), 4); // load issue
    }

    #[test]
    fn phis_are_free_in_size() {
        let mut f = uu_ir::Function::new("k", vec![Param::new("n", Type::I64)], Type::Void);
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let h = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.switch_to(entry);
        b.br(h);
        b.switch_to(h);
        let i = b.phi(Type::I64);
        b.add_phi_incoming(i, entry, Value::imm(0i64));
        let c = b.icmp(ICmpPred::Slt, i, Value::Arg(0));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let i1 = b.add(i, Value::imm(1i64));
        b.add_phi_incoming(i, body, i1);
        b.br(h);
        b.switch_to(exit);
        b.ret(None);
        let dom = DomTree::compute(&f);
        let forest = LoopForest::compute(&f, &dom);
        // header: phi(0) + icmp + condbr = 2; body: add + br = 2
        assert_eq!(loop_size(&f, &forest, LoopId(0)), 4);
        let mut m = uu_ir::Module::new("m");
        let fsize = function_size(&f);
        m.add_function(f);
        assert_eq!(module_size(&m), fsize);
    }

    use crate::loops::LoopId;
}

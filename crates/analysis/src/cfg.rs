//! Control-flow graph traversals and edge classification.

use uu_ir::{BlockId, EntitySet, Function};

/// Blocks in reverse post-order from the entry.
///
/// Reverse post-order visits every block before its successors except along
/// back edges, the canonical iteration order for forward dataflow.
pub fn reverse_post_order(f: &Function) -> Vec<BlockId> {
    let mut post = Vec::new();
    let mut state = vec![0u8; f.layout().iter().map(|b| b.index() + 1).max().unwrap_or(0)];
    // Iterative DFS with an explicit stack of (block, next-successor-index).
    let mut stack: Vec<(BlockId, usize)> = vec![(f.entry(), 0)];
    state[f.entry().index()] = 1;
    while let Some(&mut (b, ref mut next)) = stack.last_mut() {
        let succs = f.successors(b);
        if *next < succs.len() {
            let s = succs[*next];
            *next += 1;
            if state[s.index()] == 0 {
                state[s.index()] = 1;
                stack.push((s, 0));
            }
        } else {
            post.push(b);
            stack.pop();
        }
    }
    post.reverse();
    post
}

/// Post-order from the entry (the reverse of [`reverse_post_order`]).
pub fn post_order(f: &Function) -> Vec<BlockId> {
    let mut rpo = reverse_post_order(f);
    rpo.reverse();
    rpo
}

/// An edge `from → to` in the CFG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Source block.
    pub from: BlockId,
    /// Destination block.
    pub to: BlockId,
}

/// Back edges of the CFG: edges `a → b` where `b` is an ancestor of `a` on
/// the DFS spanning tree (equivalently, for reducible CFGs, where `b`
/// dominates `a`).
///
/// Uses the dominance definition, so it identifies exactly the natural-loop
/// back edges on reducible graphs — the only kind the transforms accept.
pub fn back_edges(f: &Function, dom: &crate::DomTree) -> Vec<Edge> {
    let mut out = Vec::new();
    for &b in f.layout() {
        for s in f.successors(b) {
            if dom.dominates(s, b) {
                out.push(Edge { from: b, to: s });
            }
        }
    }
    out
}

/// Whether the CFG is reducible: every retreating edge (w.r.t. a DFS) is a
/// back edge to a dominator. GPU kernels compiled from structured C/CUDA are
/// reducible; the u&u transforms refuse irreducible regions.
pub fn is_reducible(f: &Function, dom: &crate::DomTree) -> bool {
    // Compute DFS numbers.
    let rpo = reverse_post_order(f);
    let mut order = vec![usize::MAX; rpo.iter().map(|b| b.index() + 1).max().unwrap_or(0)];
    for (i, b) in rpo.iter().enumerate() {
        order[b.index()] = i;
    }
    for &b in &rpo {
        for s in f.successors(b) {
            // Retreating edge: target earlier in RPO.
            if order[s.index()] <= order[b.index()] && !dom.dominates(s, b) {
                return false;
            }
        }
    }
    true
}

/// Split the critical edge `from → to` (or any edge) by inserting a fresh
/// block containing a single unconditional branch, updating phi incomings in
/// `to`. Returns the new block.
///
/// # Panics
///
/// Panics if there is no `from → to` edge.
pub fn split_edge(f: &mut Function, from: BlockId, to: BlockId) -> BlockId {
    assert!(
        f.successors(from).contains(&to),
        "split_edge: no edge {from} -> {to}"
    );
    let mid = f.add_block();
    // Retarget the terminator of `from`.
    let term = f.terminator(from).expect("source block has a terminator");
    f.inst_mut(term).kind.replace_block(to, mid);
    // The new block branches to `to`.
    f.append_inst(
        mid,
        uu_ir::Inst::new(uu_ir::InstKind::Br { target: to }, uu_ir::Type::Void),
    );
    // Phis in `to` now flow through `mid`.
    for phi in f.phis(to) {
        if let uu_ir::InstKind::Phi { incomings } = &mut f.inst_mut(phi).kind {
            for (p, _) in incomings.iter_mut() {
                if *p == from {
                    *p = mid;
                }
            }
        }
    }
    mid
}

/// The set of blocks on any path from `from` to `to` without passing through
/// `through_exclude` (used for region queries in tests).
pub fn blocks_between(f: &Function, from: BlockId, to: BlockId) -> EntitySet<BlockId> {
    // Forward reachability from `from` intersected with backward reachability
    // from `to`.
    let mut fwd = EntitySet::new();
    let mut stack = vec![from];
    while let Some(b) = stack.pop() {
        if fwd.insert(b) {
            for s in f.successors(b) {
                stack.push(s);
            }
        }
    }
    let preds = f.predecessors();
    let mut bwd = EntitySet::new();
    let mut stack = vec![to];
    while let Some(b) = stack.pop() {
        if bwd.insert(b) {
            for &p in &preds[b.index()] {
                stack.push(p);
            }
        }
    }
    fwd.iter().filter(|b| bwd.contains(*b)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DomTree;
    use uu_ir::{FunctionBuilder, ICmpPred, Param, Type, Value};

    fn diamond() -> uu_ir::Function {
        let mut f = uu_ir::Function::new("d", vec![Param::new("c", Type::I1)], Type::I64);
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let t = b.create_block();
        let e = b.create_block();
        let j = b.create_block();
        b.switch_to(entry);
        b.cond_br(Value::Arg(0), t, e);
        b.switch_to(t);
        b.br(j);
        b.switch_to(e);
        b.br(j);
        b.switch_to(j);
        let p = b.phi(Type::I64);
        b.add_phi_incoming(p, t, Value::imm(1i64));
        b.add_phi_incoming(p, e, Value::imm(2i64));
        b.ret(Some(p));
        f
    }

    fn looped() -> uu_ir::Function {
        let mut f = uu_ir::Function::new("l", vec![Param::new("n", Type::I64)], Type::I64);
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let h = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.switch_to(entry);
        b.br(h);
        b.switch_to(h);
        let i = b.phi(Type::I64);
        b.add_phi_incoming(i, entry, Value::imm(0i64));
        let c = b.icmp(ICmpPred::Slt, i, Value::Arg(0));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let i1 = b.add(i, Value::imm(1i64));
        b.add_phi_incoming(i, body, i1);
        b.br(h);
        b.switch_to(exit);
        b.ret(Some(i));
        f
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_all() {
        let f = diamond();
        let rpo = reverse_post_order(&f);
        assert_eq!(rpo.len(), 4);
        assert_eq!(rpo[0], f.entry());
        // join must come after both arms
        let pos = |b: BlockId| rpo.iter().position(|x| *x == b).unwrap();
        assert!(pos(BlockId::from_index(3)) > pos(BlockId::from_index(1)));
        assert!(pos(BlockId::from_index(3)) > pos(BlockId::from_index(2)));
    }

    #[test]
    fn post_order_is_reverse() {
        let f = diamond();
        let mut po = post_order(&f);
        po.reverse();
        assert_eq!(po, reverse_post_order(&f));
    }

    #[test]
    fn finds_back_edge() {
        let f = looped();
        let dom = DomTree::compute(&f);
        let be = back_edges(&f, &dom);
        assert_eq!(be.len(), 1);
        assert_eq!(be[0].to, BlockId::from_index(1));
        assert_eq!(be[0].from, BlockId::from_index(2));
        assert!(is_reducible(&f, &dom));
    }

    #[test]
    fn diamond_has_no_back_edges() {
        let f = diamond();
        let dom = DomTree::compute(&f);
        assert!(back_edges(&f, &dom).is_empty());
        assert!(is_reducible(&f, &dom));
    }

    #[test]
    fn irreducible_cfg_detected() {
        // entry branches into both halves of a 2-node cycle: neither node
        // dominates the other, so the retreating edge is not a back edge.
        let mut f = uu_ir::Function::new("irr", vec![Param::new("c", Type::I1)], Type::Void);
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let x = b.create_block();
        let y = b.create_block();
        let exit = b.create_block();
        b.switch_to(entry);
        b.cond_br(Value::Arg(0), x, y);
        b.switch_to(x);
        b.cond_br(Value::Arg(0), y, exit);
        b.switch_to(y);
        b.cond_br(Value::Arg(0), x, exit);
        b.switch_to(exit);
        b.ret(None);
        let dom = DomTree::compute(&f);
        assert!(!is_reducible(&f, &dom));
        // And no natural loop is reported for the irreducible cycle.
        let forest = crate::LoopForest::compute(&f, &dom);
        assert!(forest.is_empty());
    }

    #[test]
    fn split_edge_updates_phis() {
        let mut f = diamond();
        let t = BlockId::from_index(1);
        let j = BlockId::from_index(3);
        let mid = split_edge(&mut f, t, j);
        uu_ir::verify_function(&f).unwrap();
        assert_eq!(f.successors(t), vec![mid]);
        assert_eq!(f.successors(mid), vec![j]);
    }

    #[test]
    fn blocks_between_region() {
        let f = diamond();
        let set = blocks_between(&f, f.entry(), BlockId::from_index(3));
        assert_eq!(set.len(), 4);
    }
}

//! Natural-loop detection and the loop forest.
//!
//! Loops are discovered from back edges (`latch → header` where the header
//! dominates the latch), merged per header, and nested into a forest. Loop
//! IDs are deterministic: loops are numbered by the reverse-post-order index
//! of their headers, which is what gives the paper's "consistent,
//! deterministic unique ids" users can name on the command line.

use crate::cfg::{back_edges, reverse_post_order};
use crate::dominators::DomTree;
use uu_ir::{BlockId, EntitySet, Function};

/// Index of a loop within a [`LoopForest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LoopId(pub usize);

/// A single natural loop.
#[derive(Debug, Clone)]
pub struct Loop {
    /// The loop header (unique entry point from outside).
    pub header: BlockId,
    /// Blocks with a back edge to the header.
    pub latches: Vec<BlockId>,
    /// All blocks of the loop, header included, sorted by index.
    pub blocks: Vec<BlockId>,
    /// Enclosing loop, if nested.
    pub parent: Option<LoopId>,
    /// Directly nested loops.
    pub children: Vec<LoopId>,
    /// Nesting depth: 1 for top-level loops.
    pub depth: u32,
}

impl Loop {
    /// Whether `b` belongs to this loop.
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.binary_search(&b).is_ok()
    }

    /// Whether this loop has no nested loops.
    pub fn is_innermost(&self) -> bool {
        self.children.is_empty()
    }
}

/// All natural loops of a function, with nesting structure.
#[derive(Debug, Clone)]
pub struct LoopForest {
    loops: Vec<Loop>,
}

impl LoopForest {
    /// Discover the loops of `f` given its dominator tree.
    pub fn compute(f: &Function, dom: &DomTree) -> Self {
        let rpo = reverse_post_order(f);
        let mut order = vec![usize::MAX; rpo.iter().map(|b| b.index() + 1).max().unwrap_or(1)];
        for (i, b) in rpo.iter().enumerate() {
            order[b.index()] = i;
        }
        // Group back edges per header.
        let mut headers: Vec<BlockId> = Vec::new();
        let mut latches_of: Vec<Vec<BlockId>> = Vec::new();
        for e in back_edges(f, dom) {
            match headers.iter().position(|h| *h == e.to) {
                Some(i) => latches_of[i].push(e.from),
                None => {
                    headers.push(e.to);
                    latches_of.push(vec![e.from]);
                }
            }
        }
        // Deterministic order: by RPO index of header (outer loops first in
        // RPO; ties impossible since headers are unique).
        let mut idx: Vec<usize> = (0..headers.len()).collect();
        idx.sort_by_key(|&i| order[headers[i].index()]);

        let preds = f.predecessors();
        let mut loops: Vec<Loop> = Vec::new();
        for &i in &idx {
            let header = headers[i];
            let mut latches = latches_of[i].clone();
            latches.sort();
            // Natural loop body: header + backwards reachability from the
            // latches without crossing the header.
            let mut set: EntitySet<BlockId> = [header].into_iter().collect();
            let mut stack: Vec<BlockId> = latches.clone();
            while let Some(b) = stack.pop() {
                set.insert(b);
                if b == header {
                    continue;
                }
                for &p in &preds[b.index()] {
                    if set.insert(p) {
                        stack.push(p);
                    }
                }
            }
            // EntitySet iterates in index order, so this is already sorted.
            let blocks: Vec<BlockId> = set.iter().collect();
            loops.push(Loop {
                header,
                latches,
                blocks,
                parent: None,
                children: Vec::new(),
                depth: 1,
            });
        }
        // Nesting: parent = smallest strictly-containing loop.
        let n = loops.len();
        for a in 0..n {
            let mut best: Option<usize> = None;
            for b in 0..n {
                if a == b {
                    continue;
                }
                let la = &loops[a];
                let lb = &loops[b];
                if lb.blocks.len() > la.blocks.len() && lb.contains(la.header) {
                    // check full containment
                    if la.blocks.iter().all(|x| lb.contains(*x)) {
                        best = match best {
                            None => Some(b),
                            Some(cur) if loops[cur].blocks.len() > lb.blocks.len() => Some(b),
                            other => other,
                        };
                    }
                }
            }
            loops[a].parent = best.map(LoopId);
        }
        for a in 0..n {
            if let Some(LoopId(p)) = loops[a].parent {
                loops[p].children.push(LoopId(a));
            }
        }
        // Depth by walking parents.
        for a in 0..n {
            let mut d = 1;
            let mut cur = loops[a].parent;
            while let Some(LoopId(p)) = cur {
                d += 1;
                cur = loops[p].parent;
            }
            loops[a].depth = d;
        }
        LoopForest { loops }
    }

    /// All loops, in deterministic ID order.
    pub fn loops(&self) -> &[Loop] {
        &self.loops
    }

    /// Number of loops.
    pub fn len(&self) -> usize {
        self.loops.len()
    }

    /// Whether there are no loops.
    pub fn is_empty(&self) -> bool {
        self.loops.is_empty()
    }

    /// Access one loop.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn get(&self, id: LoopId) -> &Loop {
        &self.loops[id.0]
    }

    /// The innermost loop containing `b`, if any.
    pub fn innermost_containing(&self, b: BlockId) -> Option<LoopId> {
        self.loops
            .iter()
            .enumerate()
            .filter(|(_, l)| l.contains(b))
            .max_by_key(|(_, l)| l.depth)
            .map(|(i, _)| LoopId(i))
    }

    /// Loop IDs ordered innermost-first (deepest depth first, stable within
    /// a depth), the order the u&u heuristic visits loop nests in.
    pub fn innermost_first(&self) -> Vec<LoopId> {
        let mut ids: Vec<LoopId> = (0..self.loops.len()).map(LoopId).collect();
        ids.sort_by_key(|id| std::cmp::Reverse(self.loops[id.0].depth));
        ids
    }

    /// Exit edges of a loop: `(from_inside, to_outside)` pairs.
    pub fn exit_edges(&self, f: &Function, id: LoopId) -> Vec<(BlockId, BlockId)> {
        let l = self.get(id);
        let mut out = Vec::new();
        for &b in &l.blocks {
            for s in f.successors(b) {
                if !l.contains(s) {
                    out.push((b, s));
                }
            }
        }
        out
    }

    /// The unique preheader of a loop: the single predecessor of the header
    /// from outside the loop whose only successor is the header.
    pub fn preheader(&self, f: &Function, id: LoopId) -> Option<BlockId> {
        let l = self.get(id);
        let preds = f.predecessors();
        let outside: Vec<BlockId> = preds[l.header.index()]
            .iter()
            .copied()
            .filter(|p| !l.contains(*p))
            .collect();
        match outside.as_slice() {
            [p] if f.successors(*p) == vec![l.header] => Some(*p),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uu_ir::{FunctionBuilder, ICmpPred, Param, Type, Value};

    /// Two-level nest: outer loop over i, inner loop over j.
    fn nested() -> uu_ir::Function {
        let mut f = uu_ir::Function::new("nest", vec![Param::new("n", Type::I64)], Type::Void);
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let oh = b.create_block(); // 1 outer header
        let ih = b.create_block(); // 2 inner header
        let ibody = b.create_block(); // 3 inner body
        let olatch = b.create_block(); // 4 outer latch
        let exit = b.create_block(); // 5
        b.switch_to(entry);
        b.br(oh);
        b.switch_to(oh);
        let i = b.phi(Type::I64);
        b.add_phi_incoming(i, entry, Value::imm(0i64));
        let ci = b.icmp(ICmpPred::Slt, i, Value::Arg(0));
        b.cond_br(ci, ih, exit);
        b.switch_to(ih);
        let j = b.phi(Type::I64);
        b.add_phi_incoming(j, oh, Value::imm(0i64));
        let cj = b.icmp(ICmpPred::Slt, j, Value::Arg(0));
        b.cond_br(cj, ibody, olatch);
        b.switch_to(ibody);
        let j1 = b.add(j, Value::imm(1i64));
        b.add_phi_incoming(j, ibody, j1);
        b.br(ih);
        b.switch_to(olatch);
        let i1 = b.add(i, Value::imm(1i64));
        b.add_phi_incoming(i, olatch, i1);
        b.br(oh);
        b.switch_to(exit);
        b.ret(None);
        f
    }

    #[test]
    fn finds_nested_loops() {
        let f = nested();
        uu_ir::verify_function(&f).unwrap();
        let dom = DomTree::compute(&f);
        let forest = LoopForest::compute(&f, &dom);
        assert_eq!(forest.len(), 2);
        // Deterministic order: outer header (RPO-earlier) first.
        let outer = &forest.loops()[0];
        let inner = &forest.loops()[1];
        assert_eq!(outer.header, BlockId::from_index(1));
        assert_eq!(inner.header, BlockId::from_index(2));
        assert_eq!(outer.depth, 1);
        assert_eq!(inner.depth, 2);
        assert_eq!(inner.parent, Some(LoopId(0)));
        assert_eq!(outer.children, vec![LoopId(1)]);
        assert!(outer.contains(BlockId::from_index(4)));
        assert!(inner.is_innermost());
        assert!(!outer.is_innermost());
        // Inner loop blocks: header + body.
        assert_eq!(inner.blocks.len(), 2);
        // Outer loop: oh, ih, ibody, olatch.
        assert_eq!(outer.blocks.len(), 4);
    }

    #[test]
    fn innermost_first_ordering() {
        let f = nested();
        let dom = DomTree::compute(&f);
        let forest = LoopForest::compute(&f, &dom);
        let order = forest.innermost_first();
        assert_eq!(order[0], LoopId(1));
        assert_eq!(order[1], LoopId(0));
    }

    #[test]
    fn innermost_containing_picks_deepest() {
        let f = nested();
        let dom = DomTree::compute(&f);
        let forest = LoopForest::compute(&f, &dom);
        let ibody = BlockId::from_index(3);
        assert_eq!(forest.innermost_containing(ibody), Some(LoopId(1)));
        let olatch = BlockId::from_index(4);
        assert_eq!(forest.innermost_containing(olatch), Some(LoopId(0)));
        assert_eq!(forest.innermost_containing(f.entry()), None);
    }

    #[test]
    fn exits_and_preheader() {
        let f = nested();
        let dom = DomTree::compute(&f);
        let forest = LoopForest::compute(&f, &dom);
        let outer = LoopId(0);
        let inner = LoopId(1);
        let oe = forest.exit_edges(&f, outer);
        assert_eq!(oe, vec![(BlockId::from_index(1), BlockId::from_index(5))]);
        let ie = forest.exit_edges(&f, inner);
        assert_eq!(ie, vec![(BlockId::from_index(2), BlockId::from_index(4))]);
        // entry is the outer preheader.
        assert_eq!(forest.preheader(&f, outer), Some(f.entry()));
        // Inner header's outside pred is the outer header, whose successors
        // are two blocks — not a dedicated preheader.
        assert_eq!(forest.preheader(&f, inner), None);
    }

    #[test]
    fn no_loops_in_straightline() {
        let mut f = uu_ir::Function::new("s", vec![], Type::Void);
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        b.switch_to(entry);
        b.ret(None);
        let dom = DomTree::compute(&f);
        let forest = LoopForest::compute(&f, &dom);
        assert!(forest.is_empty());
    }

    #[test]
    fn multi_latch_loop_merges() {
        // A loop with two latches (continue-style).
        let mut f = uu_ir::Function::new("ml", vec![Param::new("c", Type::I1)], Type::Void);
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let h = b.create_block(); // 1
        let x = b.create_block(); // 2
        let l1 = b.create_block(); // 3
        let l2 = b.create_block(); // 4
        let exit = b.create_block(); // 5
        b.switch_to(entry);
        b.br(h);
        b.switch_to(h);
        b.cond_br(Value::Arg(0), x, exit);
        b.switch_to(x);
        b.cond_br(Value::Arg(0), l1, l2);
        b.switch_to(l1);
        b.br(h);
        b.switch_to(l2);
        b.br(h);
        b.switch_to(exit);
        b.ret(None);
        uu_ir::verify_function(&f).unwrap();
        let dom = DomTree::compute(&f);
        let forest = LoopForest::compute(&f, &dom);
        assert_eq!(forest.len(), 1);
        let l = &forest.loops()[0];
        assert_eq!(l.latches.len(), 2);
        assert_eq!(l.blocks.len(), 4);
    }
}

//! Convergence analysis.
//!
//! Convergent operations (`__syncthreads`) must not be made control-dependent
//! on additional conditions, so the u&u pass refuses to transform any loop
//! containing one (paper §III-C). This module answers that query.

use crate::loops::{LoopForest, LoopId};
use uu_ir::{BlockId, Function};

/// Whether basic block `b` contains a convergent instruction.
pub fn block_has_convergent(f: &Function, b: BlockId) -> bool {
    f.block(b)
        .insts
        .iter()
        .any(|i| f.inst(*i).kind.is_convergent())
}

/// Whether any block of loop `id` contains a convergent instruction.
pub fn loop_has_convergent(f: &Function, forest: &LoopForest, id: LoopId) -> bool {
    forest
        .get(id)
        .blocks
        .iter()
        .any(|b| block_has_convergent(f, *b))
}

/// Whether the function contains any convergent instruction at all.
pub fn function_has_convergent(f: &Function) -> bool {
    f.layout().iter().any(|b| block_has_convergent(f, *b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DomTree;
    use uu_ir::{FunctionBuilder, ICmpPred, Param, Type, Value};

    fn loop_fn(with_sync: bool) -> uu_ir::Function {
        let mut f = uu_ir::Function::new("k", vec![Param::new("n", Type::I64)], Type::Void);
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let h = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.switch_to(entry);
        b.br(h);
        b.switch_to(h);
        let i = b.phi(Type::I64);
        b.add_phi_incoming(i, entry, Value::imm(0i64));
        let c = b.icmp(ICmpPred::Slt, i, Value::Arg(0));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        if with_sync {
            b.syncthreads();
        }
        let i1 = b.add(i, Value::imm(1i64));
        b.add_phi_incoming(i, body, i1);
        b.br(h);
        b.switch_to(exit);
        b.ret(None);
        f
    }

    #[test]
    fn detects_syncthreads_in_loop() {
        let f = loop_fn(true);
        let dom = DomTree::compute(&f);
        let forest = LoopForest::compute(&f, &dom);
        assert!(loop_has_convergent(&f, &forest, crate::LoopId(0)));
        assert!(function_has_convergent(&f));
    }

    #[test]
    fn clean_loop_is_not_convergent() {
        let f = loop_fn(false);
        let dom = DomTree::compute(&f);
        let forest = LoopForest::compute(&f, &dom);
        assert!(!loop_has_convergent(&f, &forest, crate::LoopId(0)));
        assert!(!function_has_convergent(&f));
    }
}

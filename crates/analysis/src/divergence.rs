//! Thread-ID taint (divergence) analysis.
//!
//! The paper's §V analysis of the `complex` benchmark traces its slowdown to
//! a branch whose condition depends on the thread id: every warp diverges on
//! it, and u&u lengthens the divergent paths. The proposed remedy — "a taint
//! analysis that checks whether a condition depends on the values of e.g.
//! `threadIdx`, and not apply our transformation in these cases" — is
//! implemented here and wired into the heuristic as the optional
//! *divergence guard* ablation.
//!
//! Taint sources are `threadIdx.x` reads. Taint propagates through all
//! value-producing instructions, including loads whose *address* is tainted
//! (different threads read different cells, so the data is thread-varying).
//! Kernel arguments are uniform (the same for all threads).

use crate::loops::{LoopForest, LoopId};
use std::collections::HashSet;
use uu_ir::{Function, InstId, InstKind, Intrinsic, Value};

/// Result of the taint analysis: the set of thread-dependent (divergent)
/// instruction results.
#[derive(Debug, Clone)]
pub struct Divergence {
    tainted: HashSet<InstId>,
}

impl Divergence {
    /// Run the analysis on `f` to a fixed point.
    pub fn compute(f: &Function) -> Self {
        let mut tainted: HashSet<InstId> = HashSet::new();
        // Seed: threadIdx reads.
        for (id, inst) in f.iter_insts() {
            if let InstKind::Intr { which, .. } = &inst.kind {
                if which.is_thread_id() {
                    tainted.insert(id);
                }
            }
        }
        // Propagate to a fixed point (phis make this iterative).
        let mut changed = true;
        while changed {
            changed = false;
            for (id, inst) in f.iter_insts() {
                if tainted.contains(&id) {
                    continue;
                }
                if matches!(
                    inst.kind,
                    InstKind::Store { .. }
                        | InstKind::Br { .. }
                        | InstKind::CondBr { .. }
                        | InstKind::Ret { .. }
                ) {
                    continue;
                }
                let mut any = false;
                inst.kind.for_each_operand(|v| {
                    if let Value::Inst(d) = v {
                        if tainted.contains(d) {
                            any = true;
                        }
                    }
                });
                if any && tainted.insert(id) {
                    changed = true;
                }
            }
        }
        Divergence { tainted }
    }

    /// Whether the value is thread-dependent.
    pub fn is_divergent(&self, v: Value) -> bool {
        match v {
            Value::Inst(id) => self.tainted.contains(&id),
            // Arguments and constants are uniform across the grid.
            Value::Arg(_) | Value::Const(_) => false,
        }
    }

    /// Number of divergent values found.
    pub fn num_divergent(&self) -> usize {
        self.tainted.len()
    }
}

/// Whether any conditional branch inside loop `id` has a thread-dependent
/// condition — the divergence-guard query used by the heuristic.
pub fn loop_has_divergent_branch(
    f: &Function,
    forest: &LoopForest,
    id: LoopId,
    div: &Divergence,
) -> bool {
    for &b in &forest.get(id).blocks {
        if let Some(t) = f.terminator(b) {
            if let InstKind::CondBr { cond, .. } = f.inst(t).kind {
                if div.is_divergent(cond) {
                    return true;
                }
            }
        }
    }
    false
}

/// Convenience: does the function read the thread id at all?
pub fn uses_thread_id(f: &Function) -> bool {
    f.iter_insts().any(|(_, i)| {
        matches!(&i.kind, InstKind::Intr { which, .. } if *which == Intrinsic::ThreadIdxX)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DomTree;
    use uu_ir::{BinOp, FunctionBuilder, ICmpPred, Param, Type};

    /// The `complex` loop shape: `while (n > 0) { if (n & 1) ...; n >>= 1 }`
    /// with `n` seeded from the global thread id.
    fn complex_like(seed_from_tid: bool) -> uu_ir::Function {
        let mut f = uu_ir::Function::new("cx", vec![Param::new("n0", Type::I64)], Type::Void);
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let h = b.create_block();
        let odd = b.create_block();
        let latch = b.create_block();
        let exit = b.create_block();
        b.switch_to(entry);
        let n0 = if seed_from_tid {
            b.global_thread_id()
        } else {
            Value::Arg(0)
        };
        b.br(h);
        b.switch_to(h);
        let n = b.phi(Type::I64);
        b.add_phi_incoming(n, entry, n0);
        let c = b.icmp(ICmpPred::Sgt, n, Value::imm(0i64));
        b.cond_br(c, odd, exit);
        b.switch_to(odd);
        let bit = b.and(n, Value::imm(1i64));
        let isodd = b.icmp(ICmpPred::Ne, bit, Value::imm(0i64));
        b.cond_br(isodd, latch, latch); // both edges to latch; condition still divergent
        b.switch_to(latch);
        let n2 = b.bin(BinOp::AShr, n, Value::imm(1i64));
        b.add_phi_incoming(n, latch, n2);
        b.br(h);
        b.switch_to(exit);
        b.ret(None);
        f
    }

    #[test]
    fn tid_seeded_loop_is_divergent() {
        let f = complex_like(true);
        let div = Divergence::compute(&f);
        let dom = DomTree::compute(&f);
        let forest = LoopForest::compute(&f, &dom);
        assert!(div.num_divergent() > 0);
        assert!(loop_has_divergent_branch(&f, &forest, LoopId(0), &div));
        assert!(uses_thread_id(&f));
    }

    #[test]
    fn uniform_loop_is_not_divergent() {
        let f = complex_like(false);
        let div = Divergence::compute(&f);
        let dom = DomTree::compute(&f);
        let forest = LoopForest::compute(&f, &dom);
        assert_eq!(div.num_divergent(), 0);
        assert!(!loop_has_divergent_branch(&f, &forest, LoopId(0), &div));
        assert!(!uses_thread_id(&f));
    }

    #[test]
    fn taint_flows_through_loads() {
        // load(base + tid*8) is divergent data.
        let mut f = uu_ir::Function::new("ld", vec![Param::new("p", Type::Ptr)], Type::Void);
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        b.switch_to(entry);
        let gid = b.global_thread_id();
        let addr = b.gep(Value::Arg(0), gid, 8);
        let x = b.load(Type::F64, addr);
        let y = b.fadd(x, Value::imm(1.0f64));
        b.store(addr, y);
        b.ret(None);
        let div = Divergence::compute(&f);
        assert!(div.is_divergent(x));
        assert!(div.is_divergent(y));
        assert!(div.is_divergent(addr));
        assert!(!div.is_divergent(Value::Arg(0)));
    }

    #[test]
    fn uniform_load_stays_uniform() {
        let mut f = uu_ir::Function::new("u", vec![Param::new("p", Type::Ptr)], Type::Void);
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        b.switch_to(entry);
        let x = b.load(Type::F64, Value::Arg(0));
        let y = b.fadd(x, Value::imm(1.0f64));
        b.store(Value::Arg(0), y);
        b.ret(None);
        let div = Divergence::compute(&f);
        assert!(!div.is_divergent(x));
        assert!(!div.is_divergent(y));
    }
}

//! Thread-ID taint (divergence) analysis.
//!
//! The paper's §V analysis of the `complex` benchmark traces its slowdown to
//! a branch whose condition depends on the thread id: every warp diverges on
//! it, and u&u lengthens the divergent paths. The proposed remedy — "a taint
//! analysis that checks whether a condition depends on the values of e.g.
//! `threadIdx`, and not apply our transformation in these cases" — is
//! implemented here and wired into the heuristic as the optional
//! *divergence guard* ablation.
//!
//! Taint sources are `threadIdx.x` reads. Taint propagates through all
//! value-producing instructions, including loads whose *address* is tainted
//! (different threads read different cells, so the data is thread-varying).
//! Kernel arguments are uniform (the same for all threads).

use crate::dominators::DomTree;
use crate::loops::{LoopForest, LoopId};
use uu_ir::{BlockId, EntitySet, Function, InstId, InstKind, Intrinsic, Value};

/// Result of the taint analysis: the set of thread-dependent (divergent)
/// instruction results.
#[derive(Debug, Clone)]
pub struct Divergence {
    tainted: EntitySet<InstId>,
}

impl Divergence {
    /// Run the analysis on `f` to a fixed point.
    pub fn compute(f: &Function) -> Self {
        let mut tainted: EntitySet<InstId> = EntitySet::new();
        // Seed: threadIdx reads.
        for (id, inst) in f.iter_insts() {
            if let InstKind::Intr { which, .. } = &inst.kind {
                if which.is_thread_id() {
                    tainted.insert(id);
                }
            }
        }
        // Propagate to a fixed point (phis make this iterative).
        let mut changed = true;
        while changed {
            changed = false;
            for (id, inst) in f.iter_insts() {
                if tainted.contains(id) {
                    continue;
                }
                if matches!(
                    inst.kind,
                    InstKind::Store { .. }
                        | InstKind::Br { .. }
                        | InstKind::CondBr { .. }
                        | InstKind::Ret { .. }
                ) {
                    continue;
                }
                let mut any = false;
                inst.kind.for_each_operand(|v| {
                    if let Value::Inst(d) = v {
                        if tainted.contains(*d) {
                            any = true;
                        }
                    }
                });
                if any && tainted.insert(id) {
                    changed = true;
                }
            }
        }
        Divergence { tainted }
    }

    /// Whether the value is thread-dependent.
    pub fn is_divergent(&self, v: Value) -> bool {
        match v {
            Value::Inst(id) => self.tainted.contains(id),
            // Arguments and constants are uniform across the grid.
            Value::Arg(_) | Value::Const(_) => false,
        }
    }

    /// Number of divergent values found.
    pub fn num_divergent(&self) -> usize {
        self.tainted.len()
    }
}

/// Sound warp-level uniformity: the query surface behind the simulator's
/// scalarization of warp-uniform values.
///
/// [`Divergence`] is a pure *data* taint — exactly what the paper's
/// divergence guard calls for, but not sound as "this value is identical in
/// every active lane", because divergent *control* also makes values vary
/// per lane even when their operands are uniform:
///
/// 1. **Join rule (sync dependence).** A phi at a join point reachable from
///    both sides of a thread-divergent branch reads a lane-varying
///    predecessor, so its result varies across lanes even if every incoming
///    value is uniform.
/// 2. **Temporal rule.** A value defined inside a loop with a
///    thread-divergent exit branch and used outside the loop is frozen at a
///    different iteration in each lane, so the post-loop use sees
///    lane-varying data even though each iteration's value was uniform.
///
/// `Uniformity` closes the data taint under both control rules, iterated to
/// a fixed point (a tainted phi can make a branch condition tainted, which
/// re-triggers both rules). The join rule uses plain CFG reachability from
/// the two branch successors — an overapproximation of the divergent region
/// that is sound for any reconvergence discipline, including the
/// immediate-post-dominator stack the simulator models.
#[derive(Debug, Clone)]
pub struct Uniformity {
    tainted: EntitySet<InstId>,
}

impl Uniformity {
    /// Run the analysis on `f` to a fixed point.
    pub fn compute(f: &Function) -> Self {
        let mut tainted: EntitySet<InstId> = EntitySet::new();
        for (id, inst) in f.iter_insts() {
            if let InstKind::Intr { which, .. } = &inst.kind {
                if which.is_thread_id() {
                    tainted.insert(id);
                }
            }
        }

        let dom = DomTree::compute(f);
        let forest = LoopForest::compute(f, &dom);
        let preds = f.predecessors();
        let nblocks = preds.len();

        // reach[b] = linked blocks reachable from linked block b (incl. b).
        let mut reach = vec![vec![false; nblocks]; nblocks];
        for &b in f.layout() {
            let r = &mut reach[b.index()];
            let mut stack = vec![b];
            while let Some(x) = stack.pop() {
                if std::mem::replace(&mut r[x.index()], true) {
                    continue;
                }
                for s in f.successors(x) {
                    stack.push(s);
                }
            }
        }

        // use_blocks: for each inst slot, the linked blocks that use it as an
        // operand (for the temporal rule's "used outside the loop" test).
        let mut use_blocks: Vec<Vec<BlockId>> = vec![Vec::new(); f.num_inst_slots()];
        for &b in f.layout() {
            for &uid in &f.block(b).insts {
                f.inst(uid).kind.for_each_operand(|v| {
                    if let Value::Inst(d) = v {
                        use_blocks[d.index()].push(b);
                    }
                });
            }
        }

        let mut changed = true;
        while changed {
            changed = false;
            // Data rule: identical to `Divergence`.
            for (id, inst) in f.iter_insts() {
                if tainted.contains(id) {
                    continue;
                }
                if matches!(
                    inst.kind,
                    InstKind::Store { .. }
                        | InstKind::Br { .. }
                        | InstKind::CondBr { .. }
                        | InstKind::Ret { .. }
                ) {
                    continue;
                }
                let mut any = false;
                inst.kind.for_each_operand(|v| {
                    if let Value::Inst(d) = v {
                        if tainted.contains(*d) {
                            any = true;
                        }
                    }
                });
                if any && tainted.insert(id) {
                    changed = true;
                }
            }
            // Control rules, driven by each thread-divergent branch.
            for &b in f.layout() {
                let Some(t) = f.terminator(b) else { continue };
                let InstKind::CondBr {
                    cond,
                    if_true,
                    if_false,
                } = f.inst(t).kind
                else {
                    continue;
                };
                // A branch with both edges to one target never splits lanes.
                if if_true == if_false {
                    continue;
                }
                let div_cond = match cond {
                    Value::Inst(id) => tainted.contains(id),
                    Value::Arg(_) | Value::Const(_) => false,
                };
                if !div_cond {
                    continue;
                }
                // Join rule: taint phis of every join reachable from both
                // successors.
                for &j in f.layout() {
                    if preds[j.index()].len() < 2 {
                        continue;
                    }
                    if reach[if_true.index()][j.index()] && reach[if_false.index()][j.index()] {
                        for phi in f.phis(j) {
                            if tainted.insert(phi) {
                                changed = true;
                            }
                        }
                    }
                }
                // Temporal rule: if this branch exits a containing loop,
                // lanes leave that loop on different iterations, so every
                // loop-defined value used outside the loop varies per lane.
                let mut lp = forest.innermost_containing(b);
                while let Some(lid) = lp {
                    let l = forest.get(lid);
                    let exits = !l.contains(if_true) || !l.contains(if_false);
                    if exits {
                        for &lb in &l.blocks {
                            for &def in &f.block(lb).insts {
                                if tainted.contains(def) {
                                    continue;
                                }
                                let escapes =
                                    use_blocks[def.index()].iter().any(|ub| !l.contains(*ub));
                                if escapes && tainted.insert(def) {
                                    changed = true;
                                }
                            }
                        }
                    }
                    lp = l.parent;
                }
            }
        }
        Uniformity { tainted }
    }

    /// Whether the value is identical across all active lanes of any warp.
    pub fn is_uniform(&self, v: Value) -> bool {
        !self.is_divergent(v)
    }

    /// Whether the value may differ between lanes of a warp.
    pub fn is_divergent(&self, v: Value) -> bool {
        match v {
            Value::Inst(id) => self.tainted.contains(id),
            Value::Arg(_) | Value::Const(_) => false,
        }
    }

    /// Number of lane-varying values found.
    pub fn num_divergent(&self) -> usize {
        self.tainted.len()
    }
}

/// Whether any conditional branch inside loop `id` has a thread-dependent
/// condition — the divergence-guard query used by the heuristic.
pub fn loop_has_divergent_branch(
    f: &Function,
    forest: &LoopForest,
    id: LoopId,
    div: &Divergence,
) -> bool {
    for &b in &forest.get(id).blocks {
        if let Some(t) = f.terminator(b) {
            if let InstKind::CondBr { cond, .. } = f.inst(t).kind {
                if div.is_divergent(cond) {
                    return true;
                }
            }
        }
    }
    false
}

/// Convenience: does the function read the thread id at all?
pub fn uses_thread_id(f: &Function) -> bool {
    f.iter_insts().any(|(_, i)| {
        matches!(&i.kind, InstKind::Intr { which, .. } if *which == Intrinsic::ThreadIdxX)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DomTree;
    use uu_ir::{BinOp, FunctionBuilder, ICmpPred, Param, Type};

    /// The `complex` loop shape: `while (n > 0) { if (n & 1) ...; n >>= 1 }`
    /// with `n` seeded from the global thread id.
    fn complex_like(seed_from_tid: bool) -> uu_ir::Function {
        let mut f = uu_ir::Function::new("cx", vec![Param::new("n0", Type::I64)], Type::Void);
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let h = b.create_block();
        let odd = b.create_block();
        let latch = b.create_block();
        let exit = b.create_block();
        b.switch_to(entry);
        let n0 = if seed_from_tid {
            b.global_thread_id()
        } else {
            Value::Arg(0)
        };
        b.br(h);
        b.switch_to(h);
        let n = b.phi(Type::I64);
        b.add_phi_incoming(n, entry, n0);
        let c = b.icmp(ICmpPred::Sgt, n, Value::imm(0i64));
        b.cond_br(c, odd, exit);
        b.switch_to(odd);
        let bit = b.and(n, Value::imm(1i64));
        let isodd = b.icmp(ICmpPred::Ne, bit, Value::imm(0i64));
        b.cond_br(isodd, latch, latch); // both edges to latch; condition still divergent
        b.switch_to(latch);
        let n2 = b.bin(BinOp::AShr, n, Value::imm(1i64));
        b.add_phi_incoming(n, latch, n2);
        b.br(h);
        b.switch_to(exit);
        b.ret(None);
        f
    }

    #[test]
    fn tid_seeded_loop_is_divergent() {
        let f = complex_like(true);
        let div = Divergence::compute(&f);
        let dom = DomTree::compute(&f);
        let forest = LoopForest::compute(&f, &dom);
        assert!(div.num_divergent() > 0);
        assert!(loop_has_divergent_branch(&f, &forest, LoopId(0), &div));
        assert!(uses_thread_id(&f));
    }

    #[test]
    fn uniform_loop_is_not_divergent() {
        let f = complex_like(false);
        let div = Divergence::compute(&f);
        let dom = DomTree::compute(&f);
        let forest = LoopForest::compute(&f, &dom);
        assert_eq!(div.num_divergent(), 0);
        assert!(!loop_has_divergent_branch(&f, &forest, LoopId(0), &div));
        assert!(!uses_thread_id(&f));
    }

    #[test]
    fn taint_flows_through_loads() {
        // load(base + tid*8) is divergent data.
        let mut f = uu_ir::Function::new("ld", vec![Param::new("p", Type::Ptr)], Type::Void);
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        b.switch_to(entry);
        let gid = b.global_thread_id();
        let addr = b.gep(Value::Arg(0), gid, 8);
        let x = b.load(Type::F64, addr);
        let y = b.fadd(x, Value::imm(1.0f64));
        b.store(addr, y);
        b.ret(None);
        let div = Divergence::compute(&f);
        assert!(div.is_divergent(x));
        assert!(div.is_divergent(y));
        assert!(div.is_divergent(addr));
        assert!(!div.is_divergent(Value::Arg(0)));
    }

    /// Diamond joined by a phi of two *uniform* constants, branched on a
    /// thread-divergent condition: `Divergence` (data-only) calls the phi
    /// uniform, `Uniformity`'s join rule must not.
    fn divergent_diamond() -> (uu_ir::Function, Value) {
        let mut f = uu_ir::Function::new("dj", vec![Param::new("n", Type::I64)], Type::Void);
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let left = b.create_block();
        let right = b.create_block();
        let join = b.create_block();
        b.switch_to(entry);
        let gid = b.global_thread_id();
        let c = b.icmp(ICmpPred::Slt, gid, Value::imm(16i64));
        b.cond_br(c, left, right);
        b.switch_to(left);
        b.br(join);
        b.switch_to(right);
        b.br(join);
        b.switch_to(join);
        let m = b.phi(Type::I64);
        b.add_phi_incoming(m, left, Value::imm(1i64));
        b.add_phi_incoming(m, right, Value::imm(2i64));
        b.ret(None);
        (f, m)
    }

    #[test]
    fn join_rule_taints_phi_of_divergent_branch() {
        let (f, m) = divergent_diamond();
        let data = Divergence::compute(&f);
        let uni = Uniformity::compute(&f);
        // The data taint misses the control dependence; the join rule closes it.
        assert!(!data.is_divergent(m));
        assert!(uni.is_divergent(m));
    }

    #[test]
    fn uniform_branch_phi_stays_uniform() {
        // Same diamond but branched on a uniform argument comparison.
        let mut f = uu_ir::Function::new("uj", vec![Param::new("n", Type::I64)], Type::Void);
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let left = b.create_block();
        let right = b.create_block();
        let join = b.create_block();
        b.switch_to(entry);
        let c = b.icmp(ICmpPred::Slt, Value::Arg(0), Value::imm(16i64));
        b.cond_br(c, left, right);
        b.switch_to(left);
        b.br(join);
        b.switch_to(right);
        b.br(join);
        b.switch_to(join);
        let m = b.phi(Type::I64);
        b.add_phi_incoming(m, left, Value::imm(1i64));
        b.add_phi_incoming(m, right, Value::imm(2i64));
        b.ret(None);
        let uni = Uniformity::compute(&f);
        assert!(uni.is_uniform(m));
        assert_eq!(uni.num_divergent(), 0);
    }

    #[test]
    fn temporal_rule_taints_loop_values_escaping_divergent_exit() {
        // `tri`-shaped loop: `while (i < tid) { acc += 1; i += 1 }; use acc`.
        // Each lane exits at a different iteration, so the escaping `acc`
        // (and the loop counter) are lane-varying outside the loop even
        // though per-iteration arithmetic on them is data-uniform.
        let mut f = uu_ir::Function::new("tri", vec![Param::new("p", Type::Ptr)], Type::Void);
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let h = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.switch_to(entry);
        let gid = b.global_thread_id();
        b.br(h);
        b.switch_to(h);
        let i = b.phi(Type::I64);
        let acc = b.phi(Type::I64);
        b.add_phi_incoming(i, entry, Value::imm(0i64));
        b.add_phi_incoming(acc, entry, Value::imm(0i64));
        let c = b.icmp(ICmpPred::Slt, i, gid);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let acc2 = b.add(acc, Value::imm(1i64));
        let i2 = b.add(i, Value::imm(1i64));
        b.add_phi_incoming(i, body, i2);
        b.add_phi_incoming(acc, body, acc2);
        b.br(h);
        b.switch_to(exit);
        let addr = b.gep(Value::Arg(0), gid, 8);
        b.store(addr, acc);
        b.ret(None);
        let data = Divergence::compute(&f);
        let uni = Uniformity::compute(&f);
        // Data taint sees the condition but not the escaping accumulator.
        assert!(data.is_divergent(c));
        assert!(!data.is_divergent(acc));
        // Temporal rule: `acc` escapes a divergently-exited loop, and the
        // data rule then carries the taint into its add.
        assert!(uni.is_divergent(acc));
        assert!(uni.is_divergent(acc2));
        // `i` never escapes the loop: at every in-loop read it is identical
        // across the lanes still active, so it precisely stays uniform.
        assert!(uni.is_uniform(i));
    }

    #[test]
    fn uniform_trip_count_loop_stays_uniform() {
        // `while (i < n) { s += 2; i += 1 }; use s` with uniform `n`: every
        // lane runs the same iterations, so the escaping sum is uniform.
        let mut f = uu_ir::Function::new("ut", vec![Param::new("n", Type::I64)], Type::I64);
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let h = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.switch_to(entry);
        b.br(h);
        b.switch_to(h);
        let i = b.phi(Type::I64);
        let s = b.phi(Type::I64);
        b.add_phi_incoming(i, entry, Value::imm(0i64));
        b.add_phi_incoming(s, entry, Value::imm(0i64));
        let c = b.icmp(ICmpPred::Slt, i, Value::Arg(0));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let s2 = b.add(s, Value::imm(2i64));
        let i2 = b.add(i, Value::imm(1i64));
        b.add_phi_incoming(i, body, i2);
        b.add_phi_incoming(s, body, s2);
        b.br(h);
        b.switch_to(exit);
        b.ret(Some(s));
        let uni = Uniformity::compute(&f);
        assert!(uni.is_uniform(s));
        assert!(uni.is_uniform(i));
        assert_eq!(uni.num_divergent(), 0);
    }

    #[test]
    fn uniformity_refines_divergence_on_complex_shape() {
        // Every data-divergent value is also Uniformity-divergent (the
        // control rules only ever *add* taint).
        let f = complex_like(true);
        let data = Divergence::compute(&f);
        let uni = Uniformity::compute(&f);
        for (id, _) in f.iter_insts() {
            if data.is_divergent(Value::Inst(id)) {
                assert!(uni.is_divergent(Value::Inst(id)));
            }
        }
        assert!(uni.num_divergent() >= data.num_divergent());
    }

    #[test]
    fn uniform_load_stays_uniform() {
        let mut f = uu_ir::Function::new("u", vec![Param::new("p", Type::Ptr)], Type::Void);
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        b.switch_to(entry);
        let x = b.load(Type::F64, Value::Arg(0));
        let y = b.fadd(x, Value::imm(1.0f64));
        b.store(Value::Arg(0), y);
        b.ret(None);
        let div = Divergence::compute(&f);
        assert!(!div.is_divergent(x));
        assert!(!div.is_divergent(y));
    }
}

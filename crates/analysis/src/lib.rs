//! # uu-analysis — CFG, dominance, loop and divergence analyses
//!
//! The analysis layer under the u&u transformation (reproducing *Enhancing
//! Performance through Control-Flow Unmerging and Loop Unrolling on GPUs*,
//! CGO 2024). It provides the same queries the paper's LLVM pass relies on:
//!
//! * [`DomTree`] / [`PostDomTree`] — dominators (Cooper–Harvey–Kennedy) and
//!   post-dominators with a virtual exit; the latter also drive the SIMT
//!   simulator's reconvergence stack.
//! * [`LoopForest`] — natural loops with deterministic IDs, nesting, exits
//!   and preheaders (LLVM `LoopInfo`).
//! * [`convergence`] — "does this loop contain `__syncthreads`?", the safety
//!   check that stops u&u from duplicating convergent operations.
//! * [`paths`] — acyclic path counting and the heuristic's size estimate
//!   `f(p, s, u) = Σ p^i · s`.
//! * [`cost`] — a TTI-style size/latency model.
//! * [`tripcount`] — canonical counted-loop recognition for the baseline
//!   full unroller.
//! * [`Divergence`] — thread-id taint analysis, the paper's proposed
//!   divergence guard (§V, future work).
//!
//! ## Example
//!
//! ```
//! use uu_ir::{Function, FunctionBuilder, ICmpPred, Param, Type, Value};
//! use uu_analysis::{DomTree, LoopForest};
//!
//! // i = 0; while (i < n) i += 1;
//! let mut f = Function::new("count", vec![Param::new("n", Type::I64)], Type::Void);
//! let entry = f.entry();
//! let mut b = FunctionBuilder::new(&mut f);
//! let (h, body, exit) = (b.create_block(), b.create_block(), b.create_block());
//! b.switch_to(entry);
//! b.br(h);
//! b.switch_to(h);
//! let i = b.phi(Type::I64);
//! b.add_phi_incoming(i, entry, Value::imm(0i64));
//! let c = b.icmp(ICmpPred::Slt, i, Value::Arg(0));
//! b.cond_br(c, body, exit);
//! b.switch_to(body);
//! let i1 = b.add(i, Value::imm(1i64));
//! b.add_phi_incoming(i, body, i1);
//! b.br(h);
//! b.switch_to(exit);
//! b.ret(None);
//!
//! let dom = DomTree::compute(&f);
//! let loops = LoopForest::compute(&f, &dom);
//! assert_eq!(loops.len(), 1);
//! assert_eq!(loops.loops()[0].header, h);
//! ```

#![warn(missing_docs)]

mod cache;
pub mod cfg;
pub mod convergence;
pub mod cost;
pub mod divergence;
mod dominators;
mod loops;
pub mod paths;
pub mod tripcount;

pub use cache::AnalysisCache;
pub use cfg::{back_edges, is_reducible, post_order, reverse_post_order, split_edge, Edge};
pub use divergence::{loop_has_divergent_branch, Divergence, Uniformity};
pub use dominators::{DomTree, PostDomTree};
pub use loops::{Loop, LoopForest, LoopId};
pub use paths::{count_loop_paths, uu_size_estimate};
pub use tripcount::{affine_loop, trip_count, AffineLoop, CountedLoop};

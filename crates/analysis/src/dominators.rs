//! Dominator and post-dominator trees (Cooper–Harvey–Kennedy).

use crate::cfg::reverse_post_order;
use uu_ir::{BlockId, Function};

/// The dominator tree of a function's CFG.
///
/// Computed with the Cooper–Harvey–Kennedy "engineered" algorithm: iterate
/// `idom[b] = intersect(processed preds)` over reverse post-order until a
/// fixed point.
///
/// # Examples
///
/// ```
/// use uu_ir::{Function, FunctionBuilder, Param, Type, Value};
/// use uu_analysis::DomTree;
/// let mut f = Function::new("d", vec![Param::new("c", Type::I1)], Type::Void);
/// let entry = f.entry();
/// let mut b = FunctionBuilder::new(&mut f);
/// let t = b.create_block();
/// let j = b.create_block();
/// b.switch_to(entry);
/// b.cond_br(Value::Arg(0), t, j);
/// b.switch_to(t);
/// b.br(j);
/// b.switch_to(j);
/// b.ret(None);
/// let dom = DomTree::compute(&f);
/// assert!(dom.dominates(entry, j));
/// assert!(!dom.dominates(t, j));
/// ```
#[derive(Debug, Clone)]
pub struct DomTree {
    /// `idom[b.index()]`: the immediate dominator, `None` for the entry and
    /// for unreachable blocks.
    idom: Vec<Option<BlockId>>,
    /// RPO index per block (`usize::MAX` for unreachable blocks).
    order: Vec<usize>,
    /// Blocks in reverse post-order.
    rpo: Vec<BlockId>,
    /// Dominator-tree child adjacency in CSR form: the children of `b` are
    /// `kids[kid_start[b.index()]..kid_start[b.index() + 1]]`, in RPO order.
    kid_start: Vec<u32>,
    kids: Vec<BlockId>,
    entry: BlockId,
}

impl DomTree {
    /// Compute the dominator tree of `f`.
    pub fn compute(f: &Function) -> Self {
        let rpo = reverse_post_order(f);
        let preds = f.predecessors();
        Self::compute_from(f.entry(), &rpo, |b| preds[b.index()].as_slice())
    }

    /// Shared worklist core, parameterized over the predecessor function so
    /// the post-dominator computation can reuse it on the reversed CFG.
    /// `preds_of` must be cheap: it is called once per predecessor list per
    /// fixpoint iteration (hand it a slice of a precomputed map, never a
    /// closure that rebuilds the map).
    fn compute_from<'p>(
        entry: BlockId,
        rpo: &[BlockId],
        preds_of: impl Fn(BlockId) -> &'p [BlockId],
    ) -> Self {
        let max_ix = rpo.iter().map(|b| b.index() + 1).max().unwrap_or(1);
        let mut order = vec![usize::MAX; max_ix];
        for (i, b) in rpo.iter().enumerate() {
            order[b.index()] = i;
        }
        let mut idom: Vec<Option<BlockId>> = vec![None; max_ix];
        idom[entry.index()] = Some(entry);
        let intersect = |idom: &[Option<BlockId>], order: &[usize], mut a: BlockId, mut b: BlockId| {
            while a != b {
                while order[a.index()] > order[b.index()] {
                    a = idom[a.index()].unwrap();
                }
                while order[b.index()] > order[a.index()] {
                    b = idom[b.index()].unwrap();
                }
            }
            a
        };
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in preds_of(b) {
                    if p.index() >= max_ix || order[p.index()] == usize::MAX {
                        continue; // unreachable predecessor
                    }
                    if idom[p.index()].is_none() {
                        continue; // not yet processed
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &order, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        // Entry's idom is conventionally None (it was set to itself for the
        // fixed point computation).
        idom[entry.index()] = None;
        // Child adjacency (CSR): count per parent, prefix-sum, then fill in
        // RPO order so each child list comes out RPO-sorted.
        let mut kid_start = vec![0u32; max_ix + 1];
        for &b in rpo {
            if let Some(p) = idom[b.index()] {
                kid_start[p.index() + 1] += 1;
            }
        }
        for i in 1..kid_start.len() {
            kid_start[i] += kid_start[i - 1];
        }
        let mut kids = vec![entry; kid_start[max_ix] as usize];
        let mut cursor = kid_start.clone();
        for &b in rpo {
            if let Some(p) = idom[b.index()] {
                kids[cursor[p.index()] as usize] = b;
                cursor[p.index()] += 1;
            }
        }
        DomTree {
            idom,
            order,
            rpo: rpo.to_vec(),
            kid_start,
            kids,
            entry,
        }
    }

    /// The immediate dominator of `b` (`None` for the entry or unreachable
    /// blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom.get(b.index()).copied().flatten()
    }

    /// Whether `a` dominates `b` (reflexive: every block dominates itself).
    ///
    /// Unreachable blocks dominate nothing and are dominated by nothing.
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if a.index() >= self.order.len()
            || b.index() >= self.order.len()
            || self.order[b.index()] == usize::MAX
            || self.order[a.index()] == usize::MAX
        {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(d) => cur = d,
                None => return false,
            }
        }
    }

    /// Whether `a` strictly dominates `b`.
    pub fn strictly_dominates(&self, a: BlockId, b: BlockId) -> bool {
        a != b && self.dominates(a, b)
    }

    /// Whether `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        b.index() < self.order.len() && self.order[b.index()] != usize::MAX
    }

    /// Blocks in reverse post-order (reachable blocks only).
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }

    /// The entry (root) of the tree.
    pub fn root(&self) -> BlockId {
        self.entry
    }

    /// Children of `b` in the dominator tree, in RPO order.
    pub fn children(&self, b: BlockId) -> &[BlockId] {
        let ix = b.index();
        if ix + 1 >= self.kid_start.len() {
            return &[];
        }
        &self.kids[self.kid_start[ix] as usize..self.kid_start[ix + 1] as usize]
    }
}

/// The post-dominator tree, computed over the reversed CFG with a virtual
/// exit node joining all `ret` blocks.
///
/// Used to find immediate post-dominators — the reconvergence points the SIMT
/// simulator pushes on its divergence stack, matching real GPU behaviour.
#[derive(Debug, Clone)]
pub struct PostDomTree {
    /// `ipdom[b.index()]`: immediate post-dominator within the real blocks;
    /// `None` when the only post-dominator is the virtual exit.
    ipdom: Vec<Option<BlockId>>,
    max_ix: usize,
}

impl PostDomTree {
    /// Compute the post-dominator tree of `f`.
    pub fn compute(f: &Function) -> Self {
        let layout: Vec<BlockId> = f.layout().to_vec();
        let max_ix = layout.iter().map(|b| b.index() + 1).max().unwrap_or(1);
        // Virtual exit gets index max_ix.
        let vexit = BlockId::from_index(max_ix);
        // Successors in the reversed graph = predecessors in the real graph,
        // plus: vexit's "preds" (i.e. real succs) are the ret blocks.
        let preds = f.predecessors();
        let mut rets = Vec::new();
        for &b in &layout {
            if f.successors(b).is_empty() {
                rets.push(b);
            }
        }
        // Build reverse-graph RPO starting from vexit. Successors in the
        // reversed graph = predecessors in the real graph; vexit's are the
        // ret blocks.
        let rsucc = |b: BlockId| -> &[BlockId] {
            if b == vexit {
                &rets
            } else {
                &preds[b.index()]
            }
        };
        // DFS post-order on reversed graph.
        let mut state = vec![0u8; max_ix + 1];
        let mut post = Vec::new();
        let mut stack: Vec<(BlockId, usize)> = vec![(vexit, 0)];
        state[vexit.index()] = 1;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            let ss = rsucc(b);
            if *next < ss.len() {
                let s = ss[*next];
                *next += 1;
                if state[s.index()] == 0 {
                    state[s.index()] = 1;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        let rpo = post;
        // Predecessors in the reversed graph = successors in the real graph,
        // plus vexit as a "predecessor" of every ret block; precomputed once
        // (vexit's slot stays empty).
        let mut rpreds: Vec<Vec<BlockId>> = vec![Vec::new(); max_ix + 1];
        for &b in &layout {
            let mut out = f.successors(b);
            if out.is_empty() {
                out.push(vexit);
            }
            rpreds[b.index()] = out;
        }
        let tree = DomTree::compute_from(vexit, &rpo, |b| rpreds[b.index()].as_slice());
        let mut ipdom = vec![None; max_ix];
        for &b in &layout {
            if let Some(d) = tree.idom(b) {
                if d != vexit {
                    ipdom[b.index()] = Some(d);
                }
            }
        }
        PostDomTree { ipdom, max_ix }
    }

    /// Immediate post-dominator of `b`, or `None` if it is the virtual exit
    /// (i.e. `b` exits the function directly or is unreachable).
    pub fn ipdom(&self, b: BlockId) -> Option<BlockId> {
        self.ipdom.get(b.index()).copied().flatten()
    }

    /// Whether `a` post-dominates `b` (reflexive).
    pub fn post_dominates(&self, a: BlockId, b: BlockId) -> bool {
        if a.index() >= self.max_ix || b.index() >= self.max_ix {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.ipdom(cur) {
                Some(d) => cur = d,
                None => return false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uu_ir::{FunctionBuilder, ICmpPred, Param, Type, Value};

    /// entry → header → {body → latch → header | exit}; diamond inside body.
    fn loop_with_diamond() -> (uu_ir::Function, Vec<BlockId>) {
        let mut f = uu_ir::Function::new(
            "k",
            vec![Param::new("n", Type::I64), Param::new("c", Type::I1)],
            Type::I64,
        );
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let header = b.create_block(); // 1
        let bodyt = b.create_block(); // 2
        let bodyf = b.create_block(); // 3
        let latch = b.create_block(); // 4
        let exit = b.create_block(); // 5
        b.switch_to(entry);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64);
        b.add_phi_incoming(i, entry, Value::imm(0i64));
        let c = b.icmp(ICmpPred::Slt, i, Value::Arg(0));
        b.cond_br(c, bodyt, exit);
        b.switch_to(bodyt);
        b.cond_br(Value::Arg(1), bodyf, latch);
        b.switch_to(bodyf);
        b.br(latch);
        b.switch_to(latch);
        let i1 = b.add(i, Value::imm(1i64));
        b.add_phi_incoming(i, latch, i1);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(i));
        (f, vec![entry, header, bodyt, bodyf, latch, exit])
    }

    #[test]
    fn dominator_relations() {
        let (f, ids) = loop_with_diamond();
        let dom = DomTree::compute(&f);
        let [entry, header, bodyt, bodyf, latch, exit] = ids[..] else {
            unreachable!()
        };
        assert_eq!(dom.idom(header), Some(entry));
        assert_eq!(dom.idom(bodyt), Some(header));
        assert_eq!(dom.idom(bodyf), Some(bodyt));
        assert_eq!(dom.idom(latch), Some(bodyt));
        assert_eq!(dom.idom(exit), Some(header));
        assert!(dom.dominates(header, latch));
        assert!(dom.dominates(header, header));
        assert!(!dom.dominates(bodyf, latch));
        assert!(dom.strictly_dominates(entry, exit));
        assert!(!dom.strictly_dominates(exit, exit));
        assert_eq!(dom.root(), entry);
        assert!(dom.children(header).contains(&bodyt));
    }

    #[test]
    fn unreachable_blocks_excluded() {
        let (mut f, _) = loop_with_diamond();
        let dead = f.add_block();
        let mut b = FunctionBuilder::new(&mut f);
        b.switch_to(dead);
        b.ret(Some(Value::imm(0i64)));
        let dom = DomTree::compute(&f);
        assert!(!dom.is_reachable(dead));
        assert!(!dom.dominates(f.entry(), dead));
        assert!(!dom.dominates(dead, f.entry()));
    }

    #[test]
    fn post_dominators() {
        let (f, ids) = loop_with_diamond();
        let pdom = PostDomTree::compute(&f);
        let [_, header, bodyt, bodyf, latch, exit] = ids[..] else {
            unreachable!()
        };
        // The latch post-dominates both arms of the diamond.
        assert_eq!(pdom.ipdom(bodyt), Some(latch));
        assert_eq!(pdom.ipdom(bodyf), Some(latch));
        assert_eq!(pdom.ipdom(latch), Some(header));
        // header's ipdom is exit (the loop always terminates through it).
        assert_eq!(pdom.ipdom(header), Some(exit));
        assert_eq!(pdom.ipdom(exit), None);
        assert!(pdom.post_dominates(exit, header));
        assert!(pdom.post_dominates(latch, bodyf));
        assert!(!pdom.post_dominates(bodyf, bodyt));
    }

    #[test]
    fn straightline_postdom_chain() {
        let mut f = uu_ir::Function::new("s", vec![], Type::Void);
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let mid = b.create_block();
        let end = b.create_block();
        b.switch_to(entry);
        b.br(mid);
        b.switch_to(mid);
        b.br(end);
        b.switch_to(end);
        b.ret(None);
        let pdom = PostDomTree::compute(&f);
        assert_eq!(pdom.ipdom(entry), Some(mid));
        assert_eq!(pdom.ipdom(mid), Some(end));
        assert_eq!(pdom.ipdom(end), None);
    }
}

//! Counting control-flow paths through a loop body.
//!
//! The u&u heuristic estimates post-transform size as
//! `f(p, s, u) = Σ_{i=0}^{u-1} p^i · s` where `p` is the number of acyclic
//! paths through the loop body (paper §III-A). This module computes `p`:
//! the number of distinct paths from the header back to any latch, with
//! inner loops collapsed to single super-nodes (they are unmerged, not
//! unrolled, so they contribute one node each).

use crate::loops::{LoopForest, LoopId};
use uu_ir::{BlockId, EntitySet, Function, SecondaryMap};

/// Number of acyclic header→latch paths in loop `id`, saturating at
/// `u64::MAX`. Inner loops are collapsed onto their headers.
pub fn count_loop_paths(f: &Function, forest: &LoopForest, id: LoopId) -> u64 {
    let l = forest.get(id);
    // Map each block to its representative: the header of the outermost
    // inner loop (within `l`) containing it, or itself.
    let repr = |b: BlockId| -> BlockId {
        let mut cur = forest.innermost_containing(b);
        let mut best = b;
        while let Some(lid) = cur {
            if lid == id {
                break;
            }
            let inner = forest.get(lid);
            // Only collapse loops nested inside `l`.
            if l.contains(inner.header) {
                best = inner.header;
            }
            cur = inner.parent;
        }
        best
    };
    // Build the collapsed DAG over representatives, dropping back edges to
    // the header of `l` (we count a path as complete when it takes one).
    // paths(x) = number of paths from x to "taken a back edge".
    // Memoized DFS; the collapsed graph is acyclic because `l`'s only cycles
    // run through its header (reducible CFG) or through inner loops (now
    // collapsed).
    fn dfs(
        f: &Function,
        l: &crate::loops::Loop,
        repr: &dyn Fn(BlockId) -> BlockId,
        node: BlockId,
        header: BlockId,
        memo: &mut SecondaryMap<BlockId, Option<u64>>,
        visiting: &mut EntitySet<BlockId>,
    ) -> u64 {
        if let Some(v) = *memo.get(node) {
            return v;
        }
        if visiting.contains(node) {
            // Irreducible or unexpected cycle: treat conservatively as one.
            return 1;
        }
        visiting.insert(node);
        // Successors of the collapsed node: union of successors of all
        // blocks it represents that leave the collapsed group.
        let mut total: u64 = 0;
        let group: Vec<BlockId> = l
            .blocks
            .iter()
            .copied()
            .filter(|b| repr(*b) == node)
            .collect();
        for &g in &group {
            for s in f.successors(g) {
                if !l.contains(s) {
                    continue; // exit edge: not a body path
                }
                if s == header {
                    total = total.saturating_add(1); // back edge completes a path
                    continue;
                }
                let rs = repr(s);
                if rs == node {
                    continue; // internal edge of the collapsed group
                }
                let sub = dfs(f, l, repr, rs, header, memo, visiting);
                total = total.saturating_add(sub);
            }
        }
        visiting.remove(node);
        memo.set(node, Some(total));
        total
    }

    let mut memo = SecondaryMap::new();
    let mut visiting = EntitySet::new();
    let p = dfs(
        f,
        l,
        &repr,
        repr(l.header),
        l.header,
        &mut memo,
        &mut visiting,
    );
    p.max(1)
}

/// The paper's size estimate `f(p, s, u) = Σ_{i=0}^{u-1} p^i · s`, saturating.
pub fn uu_size_estimate(paths: u64, size: u64, unroll: u32) -> u64 {
    let mut total: u64 = 0;
    let mut pow: u64 = 1;
    for i in 0..unroll {
        total = total.saturating_add(pow.saturating_mul(size));
        if i + 1 < unroll {
            pow = pow.saturating_mul(paths);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DomTree;
    use uu_ir::{FunctionBuilder, ICmpPred, Param, Type, Value};

    /// Loop whose body is a diamond: 2 paths.
    fn diamond_loop() -> uu_ir::Function {
        let mut f = uu_ir::Function::new(
            "k",
            vec![Param::new("n", Type::I64), Param::new("c", Type::I1)],
            Type::Void,
        );
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let h = b.create_block(); // 1
        let t = b.create_block(); // 2
        let e = b.create_block(); // 3
        let latch = b.create_block(); // 4
        let exit = b.create_block(); // 5
        b.switch_to(entry);
        b.br(h);
        b.switch_to(h);
        let i = b.phi(Type::I64);
        b.add_phi_incoming(i, entry, Value::imm(0i64));
        let c = b.icmp(ICmpPred::Slt, i, Value::Arg(0));
        b.cond_br(c, t, exit);
        b.switch_to(t);
        b.cond_br(Value::Arg(1), e, latch);
        b.switch_to(e);
        b.br(latch);
        b.switch_to(latch);
        let i1 = b.add(i, Value::imm(1i64));
        b.add_phi_incoming(i, latch, i1);
        b.br(h);
        b.switch_to(exit);
        b.ret(None);
        f
    }

    #[test]
    fn diamond_counts_two_paths() {
        let f = diamond_loop();
        let dom = DomTree::compute(&f);
        let forest = LoopForest::compute(&f, &dom);
        assert_eq!(count_loop_paths(&f, &forest, LoopId(0)), 2);
    }

    #[test]
    fn straight_body_counts_one_path() {
        let mut f = uu_ir::Function::new("k", vec![Param::new("n", Type::I64)], Type::Void);
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let h = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.switch_to(entry);
        b.br(h);
        b.switch_to(h);
        let i = b.phi(Type::I64);
        b.add_phi_incoming(i, entry, Value::imm(0i64));
        let c = b.icmp(ICmpPred::Slt, i, Value::Arg(0));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let i1 = b.add(i, Value::imm(1i64));
        b.add_phi_incoming(i, body, i1);
        b.br(h);
        b.switch_to(exit);
        b.ret(None);
        let dom = DomTree::compute(&f);
        let forest = LoopForest::compute(&f, &dom);
        assert_eq!(count_loop_paths(&f, &forest, LoopId(0)), 1);
    }

    /// Two sequential diamonds: 4 paths (as in the bezier-surface loop).
    #[test]
    fn two_diamonds_count_four_paths() {
        let mut f = uu_ir::Function::new(
            "k",
            vec![
                Param::new("n", Type::I64),
                Param::new("c1", Type::I1),
                Param::new("c2", Type::I1),
            ],
            Type::Void,
        );
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let h = b.create_block();
        let d1t = b.create_block();
        let d1j = b.create_block();
        let d2t = b.create_block();
        let latch = b.create_block();
        let exit = b.create_block();
        b.switch_to(entry);
        b.br(h);
        b.switch_to(h);
        let i = b.phi(Type::I64);
        b.add_phi_incoming(i, entry, Value::imm(0i64));
        let c = b.icmp(ICmpPred::Slt, i, Value::Arg(0));
        b.cond_br(c, d1t, exit);
        b.switch_to(d1t);
        b.cond_br(Value::Arg(1), d1j, d1j); // both arms to join: still 2 edges
        b.switch_to(d1j);
        b.cond_br(Value::Arg(2), d2t, latch);
        b.switch_to(d2t);
        b.br(latch);
        b.switch_to(latch);
        let i1 = b.add(i, Value::imm(1i64));
        b.add_phi_incoming(i, latch, i1);
        b.br(h);
        b.switch_to(exit);
        b.ret(None);
        let dom = DomTree::compute(&f);
        let forest = LoopForest::compute(&f, &dom);
        // d1t has two parallel edges to d1j (2 paths), then d1j splits into
        // 2 more: 4 total.
        assert_eq!(count_loop_paths(&f, &forest, LoopId(0)), 4);
    }

    #[test]
    fn inner_loops_collapse_to_one_node() {
        // Outer loop containing an inner loop: the inner loop contributes a
        // single unit, so the outer body has 1 path.
        let mut f = uu_ir::Function::new("nest", vec![Param::new("n", Type::I64)], Type::Void);
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let oh = b.create_block();
        let ih = b.create_block();
        let ibody = b.create_block();
        let olatch = b.create_block();
        let exit = b.create_block();
        b.switch_to(entry);
        b.br(oh);
        b.switch_to(oh);
        let i = b.phi(Type::I64);
        b.add_phi_incoming(i, entry, Value::imm(0i64));
        let ci = b.icmp(ICmpPred::Slt, i, Value::Arg(0));
        b.cond_br(ci, ih, exit);
        b.switch_to(ih);
        let j = b.phi(Type::I64);
        b.add_phi_incoming(j, oh, Value::imm(0i64));
        let cj = b.icmp(ICmpPred::Slt, j, Value::Arg(0));
        b.cond_br(cj, ibody, olatch);
        b.switch_to(ibody);
        let j1 = b.add(j, Value::imm(1i64));
        b.add_phi_incoming(j, ibody, j1);
        b.br(ih);
        b.switch_to(olatch);
        let i1 = b.add(i, Value::imm(1i64));
        b.add_phi_incoming(i, olatch, i1);
        b.br(oh);
        b.switch_to(exit);
        b.ret(None);
        let dom = DomTree::compute(&f);
        let forest = LoopForest::compute(&f, &dom);
        // Loop 0 is the outer loop (header RPO order).
        assert_eq!(count_loop_paths(&f, &forest, LoopId(0)), 1);
        assert_eq!(count_loop_paths(&f, &forest, LoopId(1)), 1);
    }

    #[test]
    fn size_estimate_formula() {
        // f(2, 10, 3) = 10 + 2*10 + 4*10 = 70
        assert_eq!(uu_size_estimate(2, 10, 3), 70);
        assert_eq!(uu_size_estimate(1, 10, 4), 40);
        assert_eq!(uu_size_estimate(3, 5, 1), 5);
        // Saturation, not overflow.
        assert_eq!(uu_size_estimate(u64::MAX, u64::MAX, 8), u64::MAX);
    }
}

//! Property tests for the dense entity side-tables: under any op sequence,
//! [`SecondaryMap`] must agree with a `HashMap` + default-on-miss reference
//! model, and [`EntitySet`] must agree with a `HashSet` — including the
//! `bool` results of insert/remove and the ascending iteration order.

use std::collections::{HashMap, HashSet};
use uu_check::{check, Config, Gen, Rng};
use uu_ir::{EntityKey, EntitySet, InstId, SecondaryMap};

/// Key space bound: dense tables allocate up to the max index, so fuzzed
/// keys stay small while still exercising multi-word bitsets (512 > 64*8).
const KEYS: u64 = 512;

/// A randomized op sequence. Field 0 picks the op, field 1 the key, field 2
/// the value (maps only).
#[derive(Clone, Debug)]
struct Ops(Vec<(u8, u16, i64)>);

impl Gen for Ops {
    fn generate(rng: &mut Rng) -> Self {
        let len = rng.gen_range_usize(0, 200);
        Ops(
            (0..len)
                .map(|_| {
                    (
                        rng.next_u64() as u8,
                        rng.gen_range_u64(0, KEYS) as u16,
                        rng.next_u64() as i64,
                    )
                })
                .collect(),
        )
    }

    fn shrink(&self) -> Vec<Self> {
        self.0.shrink().into_iter().map(Ops).collect()
    }
}

fn key(raw: u16) -> InstId {
    InstId::from_index(raw as usize % KEYS as usize)
}

#[test]
fn secondary_map_matches_hashmap_model() {
    check("secondary_map_matches_hashmap_model", &Config::from_env(128), |ops: &Ops| {
        let mut dense: SecondaryMap<InstId, i64> = SecondaryMap::new();
        let mut model: HashMap<usize, i64> = HashMap::new();
        for &(op, raw, val) in &ops.0 {
            let k = key(raw);
            match op % 4 {
                0 => {
                    dense.set(k, val);
                    model.insert(k.index(), val);
                }
                1 => {
                    // get: missing keys read as the default (0).
                    let got = *dense.get(k);
                    let want = model.get(&k.index()).copied().unwrap_or(0);
                    if got != want {
                        return Err(format!("get({}) = {got}, model says {want}", k.index()));
                    }
                }
                2 => {
                    // get_mut materializes the default, then we mutate.
                    *dense.get_mut(k) += 1;
                    *model.entry(k.index()).or_insert(0) += 1;
                }
                _ => {
                    // Index read must agree too.
                    let got = dense[k];
                    let want = model.get(&k.index()).copied().unwrap_or(0);
                    if got != want {
                        return Err(format!("[{}] = {got}, model says {want}", k.index()));
                    }
                }
            }
        }
        // Final sweep: every key in the space agrees with the model.
        for ix in 0..KEYS as usize {
            let got = *dense.get(InstId::from_index(ix));
            let want = model.get(&ix).copied().unwrap_or(0);
            if got != want {
                return Err(format!("final get({ix}) = {got}, model says {want}"));
            }
        }
        // iter() yields allocated slots in index order, values matching.
        let mut prev = None;
        for (k, &v) in dense.iter() {
            if prev.is_some_and(|p: usize| p >= k.index()) {
                return Err(format!("iter out of order at {}", k.index()));
            }
            prev = Some(k.index());
            let want = model.get(&k.index()).copied().unwrap_or(0);
            if v != want {
                return Err(format!("iter({}) = {v}, model says {want}", k.index()));
            }
        }
        Ok(())
    });
}

#[test]
fn entity_set_matches_hashset_model() {
    check("entity_set_matches_hashset_model", &Config::from_env(128), |ops: &Ops| {
        let mut dense: EntitySet<InstId> = EntitySet::new();
        let mut model: HashSet<usize> = HashSet::new();
        for &(op, raw, _) in &ops.0 {
            let k = key(raw);
            match op % 4 {
                0 => {
                    let a = dense.insert(k);
                    let b = model.insert(k.index());
                    if a != b {
                        return Err(format!("insert({}) = {a}, model says {b}", k.index()));
                    }
                }
                1 => {
                    let a = dense.remove(k);
                    let b = model.remove(&k.index());
                    if a != b {
                        return Err(format!("remove({}) = {a}, model says {b}", k.index()));
                    }
                }
                2 => {
                    let a = dense.contains(k);
                    let b = model.contains(&k.index());
                    if a != b {
                        return Err(format!("contains({}) = {a}, model says {b}", k.index()));
                    }
                }
                _ => {
                    if dense.len() != model.len() {
                        return Err(format!(
                            "len {} != model len {}",
                            dense.len(),
                            model.len()
                        ));
                    }
                }
            }
        }
        if dense.len() != model.len() || dense.is_empty() != model.is_empty() {
            return Err(format!(
                "final len {} != model len {}",
                dense.len(),
                model.len()
            ));
        }
        // Iteration is exactly the model's content in ascending index order.
        let got: Vec<usize> = dense.iter().map(EntityKey::index).collect();
        let mut want: Vec<usize> = model.iter().copied().collect();
        want.sort_unstable();
        if got != want {
            return Err(format!("iter {got:?} != sorted model {want:?}"));
        }
        // Clone and FromIterator round-trip preserve the content.
        let cloned = dense.clone();
        let rebuilt: EntitySet<InstId> = got.iter().map(|&ix| InstId::from_index(ix)).collect();
        for &ix in &want {
            let k = InstId::from_index(ix);
            if !cloned.contains(k) || !rebuilt.contains(k) {
                return Err(format!("clone/from_iter lost {ix}"));
            }
        }
        if cloned.len() != want.len() || rebuilt.len() != want.len() {
            return Err("clone/from_iter len mismatch".to_string());
        }
        Ok(())
    });
}

//! Property tests for the IR layer: the printer and parser must be exact
//! inverses on every well-formed kernel, and the verifier must accept what
//! the builder produces.

use uu_check::{build_kernel, check, Config, KernelSpec};
use uu_ir::{parse_function, verify_function};

#[test]
fn built_kernels_verify() {
    check(
        "built_kernels_verify",
        &Config::from_env(64),
        |spec: &KernelSpec| {
            let f = build_kernel(spec);
            verify_function(&f).map_err(|e| format!("builder produced invalid IR: {e}\n{f}"))
        },
    );
}

/// One print→parse round normalizes value numbering to textual order;
/// after that, print→parse→print must be a fixpoint.
#[test]
fn print_parse_reaches_fixpoint_after_one_round() {
    check(
        "print_parse_reaches_fixpoint_after_one_round",
        &Config::from_env(64),
        |spec: &KernelSpec| {
            let f = build_kernel(spec);
            let text = f.to_string();
            let g = parse_function(&text).map_err(|e| format!("parse failed: {e}\n{text}"))?;
            verify_function(&g).map_err(|e| format!("reparsed IR invalid: {e}\n{g}"))?;
            let normalized = g.to_string();
            let h = parse_function(&normalized)
                .map_err(|e| format!("reparse failed: {e}\n{normalized}"))?;
            let text3 = h.to_string();
            if normalized != text3 {
                return Err(format!(
                    "printer/parser not idempotent after normalization.\n\
                     normalized:\n{normalized}\nthird print:\n{text3}"
                ));
            }
            Ok(())
        },
    );
}

//! Constant folding of individual instructions.
//!
//! This module is the single source of truth for the *evaluation semantics*
//! of pure instructions: the optimizer's SCCP pass and the SIMT simulator
//! both delegate here, so a folded program cannot diverge from an executed
//! one.

use crate::constant::Constant;
use crate::inst::{BinOp, CastOp, FCmpPred, ICmpPred, Inst, InstKind, Intrinsic};
use crate::types::Type;

/// Evaluate a binary operation over two constants.
///
/// Returns `None` on type mismatch. Integer division/remainder by zero
/// evaluates to zero (a total semantics chosen for the simulator; real GPUs
/// leave it undefined).
#[inline]
pub fn fold_bin(op: BinOp, lhs: Constant, rhs: Constant) -> Option<Constant> {
    if op.is_float() {
        let a = lhs.as_f64()?;
        let b = rhs.as_f64()?;
        let r = match op {
            BinOp::FAdd => a + b,
            BinOp::FSub => a - b,
            BinOp::FMul => a * b,
            BinOp::FDiv => a / b,
            _ => unreachable!(),
        };
        return Some(match lhs.ty() {
            Type::F32 => Constant::f32(r as f32),
            _ => Constant::f64(r),
        });
    }
    let a = lhs.as_i64()?;
    let b = rhs.as_i64()?;
    let ty = lhs.ty();
    let wrap = |v: i64| -> Constant {
        match ty {
            Type::I1 => Constant::I1(v & 1 != 0),
            Type::I32 => Constant::I32(v as i32),
            _ => Constant::I64(v),
        }
    };
    let bits = ty.int_bits().unwrap_or(64);
    let umask = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
    let ua = (a as u64) & umask;
    let ub = (b as u64) & umask;
    let shamt = (ub % bits as u64) as u32;
    let r = match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::SDiv => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        BinOp::UDiv => {
            if ub == 0 {
                0
            } else {
                (ua / ub) as i64
            }
        }
        BinOp::SRem => {
            if b == 0 {
                0
            } else {
                a.wrapping_rem(b)
            }
        }
        BinOp::URem => {
            if ub == 0 {
                0
            } else {
                (ua % ub) as i64
            }
        }
        BinOp::Shl => ((ua << shamt) & umask) as i64,
        BinOp::LShr => (ua >> shamt) as i64,
        BinOp::AShr => match ty {
            Type::I32 => ((a as i32) >> shamt) as i64,
            _ => a >> shamt,
        },
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        _ => unreachable!(),
    };
    Some(wrap(r))
}

/// Evaluate an integer comparison over two constants.
#[inline]
pub fn fold_icmp(pred: ICmpPred, lhs: Constant, rhs: Constant) -> Option<Constant> {
    let a = lhs.as_i64()?;
    let b = rhs.as_i64()?;
    let bits = lhs.ty().int_bits().unwrap_or(64);
    let umask = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
    let ua = (a as u64) & umask;
    let ub = (b as u64) & umask;
    let r = match pred {
        ICmpPred::Eq => a == b,
        ICmpPred::Ne => a != b,
        ICmpPred::Slt => a < b,
        ICmpPred::Sle => a <= b,
        ICmpPred::Sgt => a > b,
        ICmpPred::Sge => a >= b,
        ICmpPred::Ult => ua < ub,
        ICmpPred::Ule => ua <= ub,
        ICmpPred::Ugt => ua > ub,
        ICmpPred::Uge => ua >= ub,
    };
    Some(Constant::I1(r))
}

/// Evaluate a float comparison over two constants.
#[inline]
pub fn fold_fcmp(pred: FCmpPred, lhs: Constant, rhs: Constant) -> Option<Constant> {
    let a = lhs.as_f64()?;
    let b = rhs.as_f64()?;
    let r = match pred {
        FCmpPred::Oeq => a == b,
        FCmpPred::Une => a != b || a.is_nan() || b.is_nan(),
        FCmpPred::Olt => a < b,
        FCmpPred::Ole => a <= b,
        FCmpPred::Ogt => a > b,
        FCmpPred::Oge => a >= b,
    };
    Some(Constant::I1(r))
}

/// Evaluate a cast over a constant, producing a value of `to` type.
#[inline]
pub fn fold_cast(op: CastOp, value: Constant, to: Type) -> Option<Constant> {
    match op {
        CastOp::Sext => {
            let v = value.as_i64()?;
            // `as_i64` already sign-extends I32/I1 (I1 true == 1, which for
            // sext semantics should become -1; LLVM sext i1 true == -1).
            let v = if value.ty() == Type::I1 && v == 1 { -1 } else { v };
            Some(match to {
                Type::I32 => Constant::I32(v as i32),
                _ => Constant::I64(v),
            })
        }
        CastOp::Zext => {
            let v = value.as_i64()?;
            let bits = value.ty().int_bits()?;
            let umask = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
            let v = ((v as u64) & umask) as i64;
            Some(match to {
                Type::I32 => Constant::I32(v as i32),
                _ => Constant::I64(v),
            })
        }
        CastOp::Trunc => {
            let v = value.as_i64()?;
            Some(match to {
                Type::I1 => Constant::I1(v & 1 != 0),
                Type::I32 => Constant::I32(v as i32),
                _ => Constant::I64(v),
            })
        }
        CastOp::SiToFp => {
            let v = value.as_i64()?;
            Some(match to {
                Type::F32 => Constant::f32(v as f32),
                _ => Constant::f64(v as f64),
            })
        }
        CastOp::FpToSi => {
            let v = value.as_f64()?;
            let v = if v.is_nan() { 0.0 } else { v };
            Some(match to {
                Type::I32 => Constant::I32(v as i32),
                _ => Constant::I64(v as i64),
            })
        }
        CastOp::FpCast => {
            let v = value.as_f64()?;
            Some(match to {
                Type::F32 => Constant::f32(v as f32),
                _ => Constant::f64(v),
            })
        }
        CastOp::IntToPtr | CastOp::PtrToInt => {
            let v = value.as_i64()?;
            Some(Constant::I64(v))
        }
    }
}

/// Evaluate a pure math intrinsic over constant arguments.
///
/// Returns `None` for non-pure intrinsics (thread geometry, barriers) — those
/// depend on execution context.
#[inline]
pub fn fold_intrinsic(which: Intrinsic, args: &[Constant], ty: Type) -> Option<Constant> {
    let f = |v: f64| -> Constant {
        match ty {
            Type::F32 => Constant::f32(v as f32),
            _ => Constant::f64(v),
        }
    };
    match which {
        Intrinsic::Sqrt => Some(f(args.first()?.as_f64()?.sqrt())),
        Intrinsic::Fabs => Some(f(args.first()?.as_f64()?.abs())),
        Intrinsic::Exp => Some(f(args.first()?.as_f64()?.exp())),
        Intrinsic::Log => Some(f(args.first()?.as_f64()?.ln())),
        Intrinsic::Sin => Some(f(args.first()?.as_f64()?.sin())),
        Intrinsic::Cos => Some(f(args.first()?.as_f64()?.cos())),
        Intrinsic::FMin => Some(f(args.first()?.as_f64()?.min(args.get(1)?.as_f64()?))),
        Intrinsic::FMax => Some(f(args.first()?.as_f64()?.max(args.get(1)?.as_f64()?))),
        Intrinsic::SMin => {
            let a = args.first()?.as_i64()?;
            let b = args.get(1)?.as_i64()?;
            Some(match ty {
                Type::I32 => Constant::I32(a.min(b) as i32),
                _ => Constant::I64(a.min(b)),
            })
        }
        Intrinsic::SMax => {
            let a = args.first()?.as_i64()?;
            let b = args.get(1)?.as_i64()?;
            Some(match ty {
                Type::I32 => Constant::I32(a.max(b) as i32),
                _ => Constant::I64(a.max(b)),
            })
        }
        _ => None,
    }
}

/// Fold a whole instruction if every operand is constant.
pub(crate) fn fold_inst(inst: &Inst) -> Option<Constant> {
    match &inst.kind {
        InstKind::Bin { op, lhs, rhs } => fold_bin(*op, lhs.as_const()?, rhs.as_const()?),
        InstKind::ICmp { pred, lhs, rhs } => fold_icmp(*pred, lhs.as_const()?, rhs.as_const()?),
        InstKind::FCmp { pred, lhs, rhs } => fold_fcmp(*pred, lhs.as_const()?, rhs.as_const()?),
        InstKind::Select {
            cond,
            on_true,
            on_false,
        } => {
            let c = cond.as_const()?.as_bool()?;
            if c {
                on_true.as_const()
            } else {
                on_false.as_const()
            }
        }
        InstKind::Cast { op, value } => fold_cast(*op, value.as_const()?, inst.ty),
        InstKind::Gep { base, index, scale } => {
            let b = base.as_const()?.as_i64()?;
            let i = index.as_const()?.as_i64()?;
            Some(Constant::I64(b.wrapping_add(i.wrapping_mul(*scale as i64))))
        }
        InstKind::Intr { which, args } => {
            let consts: Option<Vec<Constant>> = args.iter().map(|a| a.as_const()).collect();
            fold_intrinsic(*which, &consts?, inst.ty)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entities::Value;

    #[test]
    fn int_arith() {
        let c = |v: i64| Constant::I64(v);
        assert_eq!(fold_bin(BinOp::Add, c(2), c(3)), Some(c(5)));
        assert_eq!(fold_bin(BinOp::Sub, c(2), c(3)), Some(c(-1)));
        assert_eq!(fold_bin(BinOp::Mul, c(4), c(3)), Some(c(12)));
        assert_eq!(fold_bin(BinOp::SDiv, c(7), c(2)), Some(c(3)));
        assert_eq!(fold_bin(BinOp::SDiv, c(7), c(0)), Some(c(0)));
        assert_eq!(fold_bin(BinOp::SRem, c(7), c(3)), Some(c(1)));
        assert_eq!(fold_bin(BinOp::URem, c(7), c(0)), Some(c(0)));
        assert_eq!(fold_bin(BinOp::Shl, c(1), c(4)), Some(c(16)));
        assert_eq!(fold_bin(BinOp::LShr, c(16), c(2)), Some(c(4)));
        assert_eq!(fold_bin(BinOp::AShr, c(-8), c(1)), Some(c(-4)));
        assert_eq!(fold_bin(BinOp::And, c(6), c(3)), Some(c(2)));
        assert_eq!(fold_bin(BinOp::Or, c(6), c(3)), Some(c(7)));
        assert_eq!(fold_bin(BinOp::Xor, c(6), c(3)), Some(c(5)));
    }

    #[test]
    fn i32_wraps() {
        let c = |v: i32| Constant::I32(v);
        assert_eq!(fold_bin(BinOp::Add, c(i32::MAX), c(1)), Some(c(i32::MIN)));
        assert_eq!(
            fold_bin(BinOp::LShr, c(-1), c(1)),
            Some(c(((u32::MAX) >> 1) as i32))
        );
    }

    #[test]
    fn float_arith() {
        let c = Constant::f64;
        assert_eq!(fold_bin(BinOp::FAdd, c(1.5), c(2.0)), Some(c(3.5)));
        assert_eq!(fold_bin(BinOp::FDiv, c(1.0), c(4.0)), Some(c(0.25)));
        // f32 rounds through f32 precision.
        assert_eq!(
            fold_bin(BinOp::FMul, Constant::f32(0.5), Constant::f32(3.0)),
            Some(Constant::f32(1.5))
        );
    }

    #[test]
    fn comparisons() {
        assert_eq!(
            fold_icmp(ICmpPred::Slt, Constant::I64(-1), Constant::I64(1)),
            Some(Constant::I1(true))
        );
        assert_eq!(
            fold_icmp(ICmpPred::Ult, Constant::I64(-1), Constant::I64(1)),
            Some(Constant::I1(false))
        );
        assert_eq!(
            fold_fcmp(FCmpPred::Ogt, Constant::f64(2.0), Constant::f64(1.0)),
            Some(Constant::I1(true))
        );
        assert_eq!(
            fold_fcmp(FCmpPred::Olt, Constant::f64(f64::NAN), Constant::f64(1.0)),
            Some(Constant::I1(false))
        );
        assert_eq!(
            fold_fcmp(FCmpPred::Une, Constant::f64(f64::NAN), Constant::f64(1.0)),
            Some(Constant::I1(true))
        );
    }

    #[test]
    fn casts() {
        assert_eq!(
            fold_cast(CastOp::Sext, Constant::I32(-1), Type::I64),
            Some(Constant::I64(-1))
        );
        assert_eq!(
            fold_cast(CastOp::Zext, Constant::I32(-1), Type::I64),
            Some(Constant::I64(u32::MAX as i64))
        );
        assert_eq!(
            fold_cast(CastOp::Sext, Constant::I1(true), Type::I32),
            Some(Constant::I32(-1))
        );
        assert_eq!(
            fold_cast(CastOp::Zext, Constant::I1(true), Type::I32),
            Some(Constant::I32(1))
        );
        assert_eq!(
            fold_cast(CastOp::Trunc, Constant::I64(0x1_0000_0001), Type::I32),
            Some(Constant::I32(1))
        );
        assert_eq!(
            fold_cast(CastOp::SiToFp, Constant::I64(3), Type::F64),
            Some(Constant::f64(3.0))
        );
        assert_eq!(
            fold_cast(CastOp::FpToSi, Constant::f64(3.9), Type::I64),
            Some(Constant::I64(3))
        );
        assert_eq!(
            fold_cast(CastOp::FpCast, Constant::f64(0.5), Type::F32),
            Some(Constant::f32(0.5))
        );
    }

    #[test]
    fn intrinsics() {
        assert_eq!(
            fold_intrinsic(Intrinsic::Sqrt, &[Constant::f64(9.0)], Type::F64),
            Some(Constant::f64(3.0))
        );
        assert_eq!(
            fold_intrinsic(
                Intrinsic::SMin,
                &[Constant::I64(2), Constant::I64(-5)],
                Type::I64
            ),
            Some(Constant::I64(-5))
        );
        assert_eq!(
            fold_intrinsic(Intrinsic::ThreadIdxX, &[], Type::I32),
            None,
            "thread geometry is context dependent and must not fold"
        );
    }

    #[test]
    fn whole_inst_fold() {
        let add = Inst::new(
            InstKind::Bin {
                op: BinOp::Add,
                lhs: Value::imm(2i64),
                rhs: Value::imm(3i64),
            },
            Type::I64,
        );
        assert_eq!(add.fold(), Some(Constant::I64(5)));

        let gep = Inst::new(
            InstKind::Gep {
                base: Value::imm(100i64),
                index: Value::imm(3i64),
                scale: 8,
            },
            Type::Ptr,
        );
        assert_eq!(gep.fold(), Some(Constant::I64(124)));

        let sel = Inst::new(
            InstKind::Select {
                cond: Value::imm(true),
                on_true: Value::imm(1i32),
                on_false: Value::imm(2i32),
            },
            Type::I32,
        );
        assert_eq!(sel.fold(), Some(Constant::I32(1)));

        let unfoldable = Inst::new(
            InstKind::Bin {
                op: BinOp::Add,
                lhs: Value::Arg(0),
                rhs: Value::imm(3i64),
            },
            Type::I64,
        );
        assert_eq!(unfoldable.fold(), None);
    }
}

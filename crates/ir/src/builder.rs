//! Ergonomic construction of IR functions.

use crate::entities::{BlockId, InstId, Value};
use crate::function::Function;
use crate::inst::{BinOp, CastOp, FCmpPred, ICmpPred, Inst, InstKind, Intrinsic};
use crate::types::Type;

/// A cursor-style builder appending instructions to a current block.
///
/// # Examples
///
/// ```
/// use uu_ir::{Function, FunctionBuilder, Param, Type, Value};
/// let mut f = Function::new("addone", vec![Param::new("x", Type::I64)], Type::I64);
/// let entry = f.entry();
/// let mut b = FunctionBuilder::new(&mut f);
/// b.switch_to(entry);
/// let one = Value::imm(1i64);
/// let sum = b.add(Value::Arg(0), one);
/// b.ret(Some(sum));
/// ```
#[derive(Debug)]
pub struct FunctionBuilder<'f> {
    func: &'f mut Function,
    current: Option<BlockId>,
}

impl<'f> FunctionBuilder<'f> {
    /// Create a builder over `func` with no current block selected.
    pub fn new(func: &'f mut Function) -> Self {
        FunctionBuilder {
            func,
            current: None,
        }
    }

    /// The function being built.
    pub fn func(&self) -> &Function {
        self.func
    }

    /// Mutable access to the function being built.
    pub fn func_mut(&mut self) -> &mut Function {
        self.func
    }

    /// Create a new block (does not change the insertion point).
    pub fn create_block(&mut self) -> BlockId {
        self.func.add_block()
    }

    /// Set the insertion point to the end of `block`.
    pub fn switch_to(&mut self, block: BlockId) {
        self.current = Some(block);
    }

    /// The current insertion block.
    ///
    /// # Panics
    ///
    /// Panics if no block has been selected with [`FunctionBuilder::switch_to`].
    pub fn current(&self) -> BlockId {
        self.current.expect("builder has no current block")
    }

    fn emit(&mut self, kind: InstKind, ty: Type) -> InstId {
        let cur = self.current();
        self.func.append_inst(cur, Inst::new(kind, ty))
    }

    fn emit_value(&mut self, kind: InstKind, ty: Type) -> Value {
        Value::Inst(self.emit(kind, ty))
    }

    /// Emit a binary operation; the result type is the type of `lhs`.
    pub fn bin(&mut self, op: BinOp, lhs: Value, rhs: Value) -> Value {
        let ty = self.func.value_type(lhs);
        self.emit_value(InstKind::Bin { op, lhs, rhs }, ty)
    }

    /// Integer/pointer addition.
    pub fn add(&mut self, lhs: Value, rhs: Value) -> Value {
        self.bin(BinOp::Add, lhs, rhs)
    }

    /// Integer subtraction.
    pub fn sub(&mut self, lhs: Value, rhs: Value) -> Value {
        self.bin(BinOp::Sub, lhs, rhs)
    }

    /// Integer multiplication.
    pub fn mul(&mut self, lhs: Value, rhs: Value) -> Value {
        self.bin(BinOp::Mul, lhs, rhs)
    }

    /// Signed division.
    pub fn sdiv(&mut self, lhs: Value, rhs: Value) -> Value {
        self.bin(BinOp::SDiv, lhs, rhs)
    }

    /// Unsigned division.
    pub fn udiv(&mut self, lhs: Value, rhs: Value) -> Value {
        self.bin(BinOp::UDiv, lhs, rhs)
    }

    /// Signed remainder.
    pub fn srem(&mut self, lhs: Value, rhs: Value) -> Value {
        self.bin(BinOp::SRem, lhs, rhs)
    }

    /// Shift left.
    pub fn shl(&mut self, lhs: Value, rhs: Value) -> Value {
        self.bin(BinOp::Shl, lhs, rhs)
    }

    /// Logical shift right.
    pub fn lshr(&mut self, lhs: Value, rhs: Value) -> Value {
        self.bin(BinOp::LShr, lhs, rhs)
    }

    /// Arithmetic shift right.
    pub fn ashr(&mut self, lhs: Value, rhs: Value) -> Value {
        self.bin(BinOp::AShr, lhs, rhs)
    }

    /// Bitwise and.
    pub fn and(&mut self, lhs: Value, rhs: Value) -> Value {
        self.bin(BinOp::And, lhs, rhs)
    }

    /// Bitwise or.
    pub fn or(&mut self, lhs: Value, rhs: Value) -> Value {
        self.bin(BinOp::Or, lhs, rhs)
    }

    /// Bitwise xor.
    pub fn xor(&mut self, lhs: Value, rhs: Value) -> Value {
        self.bin(BinOp::Xor, lhs, rhs)
    }

    /// Float addition.
    pub fn fadd(&mut self, lhs: Value, rhs: Value) -> Value {
        self.bin(BinOp::FAdd, lhs, rhs)
    }

    /// Float subtraction.
    pub fn fsub(&mut self, lhs: Value, rhs: Value) -> Value {
        self.bin(BinOp::FSub, lhs, rhs)
    }

    /// Float multiplication.
    pub fn fmul(&mut self, lhs: Value, rhs: Value) -> Value {
        self.bin(BinOp::FMul, lhs, rhs)
    }

    /// Float division.
    pub fn fdiv(&mut self, lhs: Value, rhs: Value) -> Value {
        self.bin(BinOp::FDiv, lhs, rhs)
    }

    /// Integer comparison.
    pub fn icmp(&mut self, pred: ICmpPred, lhs: Value, rhs: Value) -> Value {
        self.emit_value(InstKind::ICmp { pred, lhs, rhs }, Type::I1)
    }

    /// Float comparison.
    pub fn fcmp(&mut self, pred: FCmpPred, lhs: Value, rhs: Value) -> Value {
        self.emit_value(InstKind::FCmp { pred, lhs, rhs }, Type::I1)
    }

    /// Predicated select.
    pub fn select(&mut self, cond: Value, on_true: Value, on_false: Value) -> Value {
        let ty = self.func.value_type(on_true);
        self.emit_value(
            InstKind::Select {
                cond,
                on_true,
                on_false,
            },
            ty,
        )
    }

    /// Type cast to `to`.
    pub fn cast(&mut self, op: CastOp, value: Value, to: Type) -> Value {
        self.emit_value(InstKind::Cast { op, value }, to)
    }

    /// Load a value of type `ty` from `ptr`.
    pub fn load(&mut self, ty: Type, ptr: Value) -> Value {
        self.emit_value(InstKind::Load { ptr }, ty)
    }

    /// Store `value` to `ptr`.
    pub fn store(&mut self, ptr: Value, value: Value) {
        self.emit(InstKind::Store { ptr, value }, Type::Void);
    }

    /// Address computation `base + index * scale`.
    pub fn gep(&mut self, base: Value, index: Value, scale: u64) -> Value {
        self.emit_value(InstKind::Gep { base, index, scale }, Type::Ptr)
    }

    /// Emit an empty phi of type `ty`; fill incomings later via
    /// [`FunctionBuilder::add_phi_incoming`]. The phi is placed at the block
    /// head.
    pub fn phi(&mut self, ty: Type) -> Value {
        let cur = self.current();
        let id = self
            .func
            .prepend_inst(cur, Inst::new(InstKind::Phi { incomings: vec![] }, ty));
        Value::Inst(id)
    }

    /// Append an incoming `(pred, value)` pair to a phi created by
    /// [`FunctionBuilder::phi`].
    ///
    /// # Panics
    ///
    /// Panics if `phi` is not a phi instruction of this function.
    pub fn add_phi_incoming(&mut self, phi: Value, pred: BlockId, value: Value) {
        let id = phi.as_inst().expect("phi must be an instruction");
        match &mut self.func.inst_mut(id).kind {
            InstKind::Phi { incomings } => incomings.push((pred, value)),
            _ => panic!("add_phi_incoming on non-phi"),
        }
    }

    /// Call an intrinsic. `fw` selects the float width of math intrinsics
    /// (ignored by thread-geometry intrinsics).
    pub fn intr(&mut self, which: Intrinsic, args: Vec<Value>, fw: Type) -> Value {
        let ty = which.result_type(fw);
        self.emit_value(InstKind::Intr { which, args }, ty)
    }

    /// `threadIdx.x` as an `i32`.
    pub fn thread_idx(&mut self) -> Value {
        self.intr(Intrinsic::ThreadIdxX, vec![], Type::I32)
    }

    /// `blockIdx.x` as an `i32`.
    pub fn block_idx(&mut self) -> Value {
        self.intr(Intrinsic::BlockIdxX, vec![], Type::I32)
    }

    /// `blockDim.x` as an `i32`.
    pub fn block_dim(&mut self) -> Value {
        self.intr(Intrinsic::BlockDimX, vec![], Type::I32)
    }

    /// The global thread id `blockIdx.x * blockDim.x + threadIdx.x`, widened
    /// to `i64`.
    pub fn global_thread_id(&mut self) -> Value {
        let tid = self.thread_idx();
        let bid = self.block_idx();
        let bdim = self.block_dim();
        let base = self.mul(bid, bdim);
        let gid = self.add(base, tid);
        self.cast(CastOp::Sext, gid, Type::I64)
    }

    /// `__syncthreads()`.
    pub fn syncthreads(&mut self) {
        let cur = self.current();
        self.func.append_inst(
            cur,
            Inst::new(
                InstKind::Intr {
                    which: Intrinsic::Syncthreads,
                    args: vec![],
                },
                Type::Void,
            ),
        );
    }

    /// Unconditional branch.
    pub fn br(&mut self, target: BlockId) {
        self.emit(InstKind::Br { target }, Type::Void);
    }

    /// Conditional branch.
    pub fn cond_br(&mut self, cond: Value, if_true: BlockId, if_false: BlockId) {
        self.emit(
            InstKind::CondBr {
                cond,
                if_true,
                if_false,
            },
            Type::Void,
        );
    }

    /// Return.
    pub fn ret(&mut self, value: Option<Value>) {
        self.emit(InstKind::Ret { value }, Type::Void);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::Param;

    #[test]
    fn builds_straightline() {
        let mut f = Function::new(
            "k",
            vec![Param::new("a", Type::I64), Param::new("b", Type::I64)],
            Type::I64,
        );
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        b.switch_to(entry);
        let s = b.add(Value::Arg(0), Value::Arg(1));
        let d = b.mul(s, Value::imm(2i64));
        b.ret(Some(d));
        assert_eq!(f.num_insts(), 3);
        assert!(f.terminator(entry).is_some());
    }

    #[test]
    fn builds_loop_with_phi() {
        // i = 0; while (i < n) i++; return i
        let mut f = Function::new("count", vec![Param::new("n", Type::I64)], Type::I64);
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let header = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.switch_to(entry);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64);
        b.add_phi_incoming(i, entry, Value::imm(0i64));
        let c = b.icmp(ICmpPred::Slt, i, Value::Arg(0));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let i1 = b.add(i, Value::imm(1i64));
        b.add_phi_incoming(i, body, i1);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(i));

        assert_eq!(f.num_blocks(), 4);
        let phis = f.phis(header);
        assert_eq!(phis.len(), 1);
        match &f.inst(phis[0]).kind {
            InstKind::Phi { incomings } => assert_eq!(incomings.len(), 2),
            _ => unreachable!(),
        }
    }

    #[test]
    fn global_thread_id_shape() {
        let mut f = Function::new("k", vec![], Type::Void);
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        b.switch_to(entry);
        let gid = b.global_thread_id();
        assert_eq!(f.value_type(gid), Type::I64);
    }

    #[test]
    fn types_flow_through() {
        let mut f = Function::new("k", vec![Param::new("p", Type::Ptr)], Type::Void);
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        b.switch_to(entry);
        let addr = b.gep(Value::Arg(0), Value::imm(2i64), 8);
        assert_eq!(f.value_type(addr), Type::Ptr);
        let mut b = FunctionBuilder::new(&mut f);
        b.switch_to(entry);
        let v = b.load(Type::F64, addr);
        assert_eq!(f.value_type(v), Type::F64);
    }

    #[test]
    #[should_panic(expected = "no current block")]
    fn panics_without_block() {
        let mut f = Function::new("k", vec![], Type::Void);
        let mut b = FunctionBuilder::new(&mut f);
        b.ret(None);
    }
}

//! Textual rendering of IR, in an LLVM-flavoured syntax.
//!
//! The printed form is meant for humans and tests; it is stable enough to
//! snapshot in unit tests but is not a serialization format.

use crate::entities::{BlockId, InstId, Value};
use crate::function::Function;
use crate::inst::InstKind;
use crate::module::Module;
use std::fmt;

/// Render a value in the context of `func` (arguments print their names).
pub fn value_to_string(func: &Function, v: Value) -> String {
    match v {
        Value::Inst(id) => format!("%{}", id.index()),
        Value::Arg(i) => format!("%{}", func.params()[i as usize].name),
        Value::Const(c) => c.to_string(),
    }
}

/// Render one instruction (without trailing newline).
pub fn inst_to_string(func: &Function, id: InstId) -> String {
    let inst = func.inst(id);
    let v = |x: Value| value_to_string(func, x);
    let lhs = if inst.ty == crate::Type::Void {
        String::new()
    } else {
        format!("%{} = ", id.index())
    };
    let body = match &inst.kind {
        InstKind::Bin { op, lhs, rhs } => {
            format!("{op} {} {}, {}", inst.ty, v(*lhs), v(*rhs))
        }
        InstKind::ICmp { pred, lhs, rhs } => {
            format!(
                "icmp {pred} {} {}, {}",
                func.value_type(*lhs),
                v(*lhs),
                v(*rhs)
            )
        }
        InstKind::FCmp { pred, lhs, rhs } => {
            format!(
                "fcmp {pred} {} {}, {}",
                func.value_type(*lhs),
                v(*lhs),
                v(*rhs)
            )
        }
        InstKind::Select {
            cond,
            on_true,
            on_false,
        } => format!(
            "select {} {}, {}, {}",
            inst.ty,
            v(*cond),
            v(*on_true),
            v(*on_false)
        ),
        InstKind::Cast { op, value } => format!(
            "{op} {} {} to {}",
            func.value_type(*value),
            v(*value),
            inst.ty
        ),
        InstKind::Load { ptr } => format!("load {}, {}", inst.ty, v(*ptr)),
        InstKind::Store { ptr, value } => format!(
            "store {} {}, {}",
            func.value_type(*value),
            v(*value),
            v(*ptr)
        ),
        InstKind::Gep { base, index, scale } => {
            format!("gep {}, {} x{}", v(*base), v(*index), scale)
        }
        InstKind::Phi { incomings } => {
            let parts: Vec<String> = incomings
                .iter()
                .map(|(b, val)| format!("[{}, {}]", v(*val), b))
                .collect();
            format!("phi {} {}", inst.ty, parts.join(", "))
        }
        InstKind::Intr { which, args } => {
            let parts: Vec<String> = args.iter().map(|a| v(*a)).collect();
            format!("call {} @{which}({})", inst.ty, parts.join(", "))
        }
        InstKind::Br { target } => format!("br {target}"),
        InstKind::CondBr {
            cond,
            if_true,
            if_false,
        } => format!("br i1 {}, {if_true}, {if_false}", v(*cond)),
        InstKind::Ret { value } => match value {
            Some(x) => format!("ret {} {}", func.value_type(*x), v(*x)),
            None => "ret void".to_string(),
        },
    };
    format!("{lhs}{body}")
}

/// Render one block, including its label line.
pub fn block_to_string(func: &Function, b: BlockId) -> String {
    let mut out = format!("{b}:\n");
    for &i in &func.block(b).insts {
        out.push_str("  ");
        out.push_str(&inst_to_string(func, i));
        out.push('\n');
    }
    out
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let params: Vec<String> = self
            .params()
            .iter()
            .map(|p| {
                if p.restrict {
                    format!("{} restrict %{}", p.ty, p.name)
                } else {
                    format!("{} %{}", p.ty, p.name)
                }
            })
            .collect();
        writeln!(
            f,
            "fn @{}({}) -> {} {{",
            self.name(),
            params.join(", "),
            self.ret_ty()
        )?;
        for &b in self.layout() {
            f.write_str(&block_to_string(self, b))?;
        }
        writeln!(f, "}}")
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "; module {}", self.name())?;
        for (_, func) in self.iter() {
            writeln!(f, "{func}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::function::Param;
    use crate::inst::ICmpPred;
    use crate::types::Type;

    #[test]
    fn prints_function() {
        let mut f = Function::new("max0", vec![Param::new("x", Type::I64)], Type::I64);
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        b.switch_to(entry);
        let c = b.icmp(ICmpPred::Sgt, Value::Arg(0), Value::imm(0i64));
        let s = b.select(c, Value::Arg(0), Value::imm(0i64));
        b.ret(Some(s));
        let text = f.to_string();
        assert!(text.contains("fn @max0(i64 %x) -> i64 {"), "{text}");
        assert!(text.contains("icmp sgt i64 %x, 0"), "{text}");
        assert!(text.contains("select i64 %0, %x, 0"), "{text}");
        assert!(text.contains("ret i64 %1"), "{text}");
    }

    #[test]
    fn prints_module_and_blocks() {
        let mut m = Module::new("demo");
        let mut f = Function::new("k", vec![], Type::Void);
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let next = b.create_block();
        b.switch_to(entry);
        b.br(next);
        b.switch_to(next);
        b.ret(None);
        m.add_function(f);
        let text = m.to_string();
        assert!(text.contains("; module demo"));
        assert!(text.contains("bb0:"));
        assert!(text.contains("br bb1"));
        assert!(text.contains("ret void"));
    }

    #[test]
    fn prints_phi_and_memory() {
        let mut f = Function::new("k", vec![Param::new("p", Type::Ptr)], Type::Void);
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        b.switch_to(entry);
        let addr = b.gep(Value::Arg(0), Value::imm(1i64), 8);
        let x = b.load(Type::F64, addr);
        b.store(addr, x);
        b.ret(None);
        let text = f.to_string();
        assert!(text.contains("gep %p, 1 x8"), "{text}");
        assert!(text.contains("load f64, %0"), "{text}");
        assert!(text.contains("store f64 %1, %0"), "{text}");
    }
}

//! Functions (kernels): instruction and block arenas plus block layout.

use crate::entities::{BlockId, InstId, Value};
use crate::inst::{Inst, InstKind};
use crate::types::Type;
use std::collections::BTreeMap;

/// A formal parameter of a function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Human-readable name, used by the printer.
    pub name: String,
    /// Parameter type.
    pub ty: Type,
    /// `__restrict__`: for pointer parameters, a promise that memory reached
    /// through this pointer is not reached through any other parameter.
    /// The optimizer's alias analysis exploits this, exactly as the paper's
    /// rainflow analysis does (its arrays are `__restrict__`-qualified).
    pub restrict: bool,
}

impl Param {
    /// Construct a parameter (without `__restrict__`).
    pub fn new(name: impl Into<String>, ty: Type) -> Self {
        Param {
            name: name.into(),
            ty,
            restrict: false,
        }
    }

    /// Construct a `__restrict__`-qualified pointer parameter.
    pub fn restrict(name: impl Into<String>, ty: Type) -> Self {
        Param {
            name: name.into(),
            ty,
            restrict: true,
        }
    }
}

/// A basic block: an ordered list of instruction IDs. The last instruction of
/// a complete block is its terminator; phi nodes, if any, come first.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Block {
    /// Instructions in program order.
    pub insts: Vec<InstId>,
}

/// User pragma attached to a loop (identified by its header block),
/// mirroring `#pragma unroll`. The u&u heuristic refrains from transforming
/// pragma-annotated loops (paper §III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopPragma {
    /// `#pragma unroll N` — the user requested explicit unrolling.
    Unroll(u32),
    /// `#pragma nounroll` — the user forbade unrolling.
    NoUnroll,
}

/// A function: arenas of instructions and blocks, a block layout (the order
/// blocks are emitted/printed in, with the entry first), parameters, and a
/// return type.
///
/// Instruction and block IDs are stable: removing a block from the layout
/// does not invalidate IDs, it only unlinks the block from the function body.
///
/// # Examples
///
/// ```
/// use uu_ir::{Function, Param, Type, FunctionBuilder, Value};
/// let mut f = Function::new("id", vec![Param::new("x", Type::I64)], Type::I64);
/// let entry = f.entry();
/// let mut b = FunctionBuilder::new(&mut f);
/// b.switch_to(entry);
/// b.ret(Some(Value::Arg(0)));
/// assert_eq!(f.num_blocks(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Function {
    name: String,
    params: Vec<Param>,
    ret_ty: Type,
    insts: Vec<Inst>,
    blocks: Vec<Block>,
    layout: Vec<BlockId>,
    loop_pragmas: BTreeMap<BlockId, LoopPragma>,
    journal: Journal,
}

/// First-write undo journal backing the delta snapshots of
/// [`Function::snapshot_begin`].
///
/// While armed, every mutation of a pre-snapshot arena slot records the
/// slot's pre-image once (a bit per slot marks "already saved"); arena
/// *growth* needs no recording because rollback truncates to the high-water
/// marks captured at arm time. The layout and pragma map are tiny and
/// change shape freely, so they are saved eagerly. All buffers are retained
/// across arm/commit cycles: a pass pipeline arming per invocation reuses
/// one allocation set per function.
#[derive(Debug, Clone, Default)]
struct Journal {
    active: bool,
    insts_len: usize,
    blocks_len: usize,
    layout: Vec<BlockId>,
    pragmas: BTreeMap<BlockId, LoopPragma>,
    saved_insts: Vec<(u32, Inst)>,
    saved_blocks: Vec<(u32, Block)>,
    inst_bits: Vec<u64>,
    block_bits: Vec<u64>,
}

impl Journal {
    /// Mark slot `ix` as saved; returns whether it was unmarked before.
    fn mark(bits: &mut [u64], ix: usize) -> bool {
        let (w, b) = (ix / 64, ix % 64);
        let fresh = bits[w] & (1 << b) == 0;
        bits[w] |= 1 << b;
        fresh
    }

    /// Record the pre-image of instruction slot `ix` if it predates the
    /// snapshot and has not been saved yet.
    fn save_inst(&mut self, ix: usize, insts: &[Inst]) {
        if ix < self.insts_len && Self::mark(&mut self.inst_bits, ix) {
            self.saved_insts.push((ix as u32, insts[ix].clone()));
        }
    }

    /// Record the pre-image of block slot `ix` if it predates the snapshot
    /// and has not been saved yet.
    fn save_block(&mut self, ix: usize, blocks: &[Block]) {
        if ix < self.blocks_len && Self::mark(&mut self.block_bits, ix) {
            self.saved_blocks.push((ix as u32, blocks[ix].clone()));
        }
    }
}

impl Function {
    /// Create a function with a fresh (empty) entry block.
    pub fn new(name: impl Into<String>, params: Vec<Param>, ret_ty: Type) -> Self {
        let mut f = Function {
            name: name.into(),
            params,
            ret_ty,
            insts: Vec::new(),
            blocks: Vec::new(),
            layout: Vec::new(),
            loop_pragmas: BTreeMap::new(),
            journal: Journal::default(),
        };
        f.add_block();
        f
    }

    /// Function name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Formal parameters.
    pub fn params(&self) -> &[Param] {
        &self.params
    }

    /// Return type.
    pub fn ret_ty(&self) -> Type {
        self.ret_ty
    }

    /// The entry block (always the first block in layout).
    ///
    /// # Panics
    ///
    /// Panics if the function has no blocks (cannot happen for functions
    /// created through [`Function::new`]).
    pub fn entry(&self) -> BlockId {
        self.layout[0]
    }

    /// Append a new empty block to the arena and layout.
    pub fn add_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block::default());
        self.layout.push(id);
        id
    }

    /// Number of blocks currently in the layout.
    pub fn num_blocks(&self) -> usize {
        self.layout.len()
    }

    /// Total number of instruction arena slots (including unlinked ones).
    pub fn num_inst_slots(&self) -> usize {
        self.insts.len()
    }

    /// Number of instructions currently linked into blocks in the layout.
    pub fn num_insts(&self) -> usize {
        self.layout
            .iter()
            .map(|b| self.block(*b).insts.len())
            .sum()
    }

    /// Blocks in layout order.
    pub fn layout(&self) -> &[BlockId] {
        &self.layout
    }

    /// Move `block` to the end of the layout (no-op if absent).
    pub fn move_block_to_end(&mut self, block: BlockId) {
        self.layout.retain(|b| *b != block);
        self.layout.push(block);
    }

    /// Unlink a block from the layout. Its arena slot (and instructions)
    /// remain but are no longer part of the function body.
    pub fn remove_block(&mut self, block: BlockId) {
        self.layout.retain(|b| *b != block);
    }

    /// Restore a previously removed block to the end of the layout.
    pub fn relink_block(&mut self, block: BlockId) {
        if !self.layout.contains(&block) {
            self.layout.push(block);
        }
    }

    /// Whether `block` is currently in the layout.
    pub fn is_linked(&self, block: BlockId) -> bool {
        self.layout.contains(&block)
    }

    /// Immutable access to a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a valid block of this function.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Mutable access to a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a valid block of this function.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        if self.journal.active {
            self.journal.save_block(id.index(), &self.blocks);
        }
        &mut self.blocks[id.index()]
    }

    /// Immutable access to an instruction.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a valid instruction of this function.
    pub fn inst(&self, id: InstId) -> &Inst {
        &self.insts[id.index()]
    }

    /// Mutable access to an instruction.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a valid instruction of this function.
    pub fn inst_mut(&mut self, id: InstId) -> &mut Inst {
        if self.journal.active {
            self.journal.save_inst(id.index(), &self.insts);
        }
        &mut self.insts[id.index()]
    }

    /// Create an instruction in the arena without linking it into any block.
    pub fn create_inst(&mut self, inst: Inst) -> InstId {
        let id = InstId(self.insts.len() as u32);
        self.insts.push(inst);
        id
    }

    /// Create an instruction and append it to `block`.
    pub fn append_inst(&mut self, block: BlockId, inst: Inst) -> InstId {
        let id = self.create_inst(inst);
        self.block_mut(block).insts.push(id);
        id
    }

    /// Create an instruction and insert it at the front of `block` (after any
    /// existing phi nodes if `inst` is not a phi, at position 0 otherwise).
    pub fn prepend_inst(&mut self, block: BlockId, inst: Inst) -> InstId {
        let is_phi = inst.kind.is_phi();
        let id = self.create_inst(inst);
        let pos = if is_phi {
            0
        } else {
            self.block(block)
                .insts
                .iter()
                .take_while(|i| self.inst(**i).kind.is_phi())
                .count()
        };
        self.block_mut(block).insts.insert(pos, id);
        id
    }

    /// Remove an instruction from `block` (the arena slot survives).
    pub fn unlink_inst(&mut self, block: BlockId, inst: InstId) {
        self.block_mut(block).insts.retain(|i| *i != inst);
    }

    /// The terminator of `block`, if the block is non-empty and ends in one.
    pub fn terminator(&self, block: BlockId) -> Option<InstId> {
        let last = *self.block(block).insts.last()?;
        if self.inst(last).kind.is_terminator() {
            Some(last)
        } else {
            None
        }
    }

    /// Successor blocks of `block` (empty if it lacks a terminator).
    pub fn successors(&self, block: BlockId) -> Vec<BlockId> {
        match self.terminator(block) {
            Some(t) => self.inst(t).kind.successors(),
            None => Vec::new(),
        }
    }

    /// Predecessor map over the current layout: `preds[b.index()]` lists the
    /// layout blocks whose terminator targets `b`. Recomputed on demand.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for &b in &self.layout {
            for s in self.successors(b) {
                preds[s.index()].push(b);
            }
        }
        preds
    }

    /// IDs of the phi instructions at the head of `block`.
    pub fn phis(&self, block: BlockId) -> Vec<InstId> {
        self.block(block)
            .insts
            .iter()
            .copied()
            .take_while(|i| self.inst(*i).kind.is_phi())
            .collect()
    }

    /// The type of any [`Value`] in the context of this function.
    ///
    /// # Panics
    ///
    /// Panics if an `Arg` index is out of range.
    pub fn value_type(&self, v: Value) -> Type {
        match v {
            Value::Inst(id) => self.inst(id).ty,
            Value::Arg(i) => self.params[i as usize].ty,
            Value::Const(c) => c.ty(),
        }
    }

    /// Replace every use of `from` with `to` across all linked instructions.
    pub fn replace_all_uses(&mut self, from: Value, to: Value) {
        for ix in 0..self.insts.len() {
            // Journal the pre-image before the first in-place rewrite.
            if self.journal.active {
                let mut uses = false;
                self.insts[ix].kind.for_each_operand(|v| uses |= *v == from);
                if !uses {
                    continue;
                }
                self.journal.save_inst(ix, &self.insts);
            }
            self.insts[ix].kind.for_each_operand_mut(|v| {
                if *v == from {
                    *v = to;
                }
            });
        }
    }

    /// Attach a loop pragma to the loop whose header is `header`.
    pub fn set_loop_pragma(&mut self, header: BlockId, pragma: LoopPragma) {
        self.loop_pragmas.insert(header, pragma);
    }

    /// The pragma attached to the loop with header `header`, if any.
    pub fn loop_pragma(&self, header: BlockId) -> Option<LoopPragma> {
        self.loop_pragmas.get(&header).copied()
    }

    /// Iterate over `(InstId, &Inst)` for every instruction linked into the
    /// layout, in layout/program order.
    pub fn iter_insts(&self) -> impl Iterator<Item = (InstId, &Inst)> + '_ {
        self.layout
            .iter()
            .flat_map(move |b| self.block(*b).insts.iter())
            .map(move |i| (*i, self.inst(*i)))
    }

    /// Blocks reachable from the entry via terminator edges.
    pub fn reachable_blocks(&self) -> Vec<BlockId> {
        let mut seen = vec![false; self.blocks.len()];
        let mut stack = vec![self.entry()];
        let mut out = Vec::new();
        seen[self.entry().index()] = true;
        while let Some(b) = stack.pop() {
            out.push(b);
            for s in self.successors(b) {
                if !seen[s.index()] {
                    seen[s.index()] = true;
                    stack.push(s);
                }
            }
        }
        out
    }

    /// Drop unreachable blocks from the layout and remove phi incomings that
    /// refer to unlinked predecessors. Returns the number of removed blocks.
    pub fn prune_unreachable(&mut self) -> usize {
        let reach = self.reachable_blocks();
        let mut keep = vec![false; self.blocks.len()];
        for b in &reach {
            keep[b.index()] = true;
        }
        let before = self.layout.len();
        self.layout.retain(|b| keep[b.index()]);
        // Remove phi incomings from now-dead predecessors.
        let layout = self.layout.clone();
        for b in layout {
            for phi in self.phis(b) {
                if let InstKind::Phi { incomings } = &mut self.inst_mut(phi).kind {
                    incomings.retain(|(p, _)| keep[p.index()]);
                }
            }
        }
        before - self.layout.len()
    }

    /// Arm a delta snapshot: until [`Function::snapshot_commit`] or
    /// [`Function::snapshot_rollback`], mutations record just enough undo
    /// information (arena high-water marks plus first-write pre-images of
    /// overwritten slots) for rollback to restore the function exactly —
    /// the cheap replacement for cloning the whole function before a
    /// guarded pass invocation.
    ///
    /// # Panics
    ///
    /// Panics if a snapshot is already armed; nesting is not supported.
    pub fn snapshot_begin(&mut self) {
        assert!(
            !self.journal.active,
            "nested Function snapshots are not supported"
        );
        let j = &mut self.journal;
        j.active = true;
        j.insts_len = self.insts.len();
        j.blocks_len = self.blocks.len();
        j.layout.clear();
        j.layout.extend_from_slice(&self.layout);
        j.pragmas.clone_from(&self.loop_pragmas);
        j.saved_insts.clear();
        j.saved_blocks.clear();
        j.inst_bits.clear();
        j.inst_bits.resize(self.insts.len().div_ceil(64), 0);
        j.block_bits.clear();
        j.block_bits.resize(self.blocks.len().div_ceil(64), 0);
    }

    /// Accept all mutations since [`Function::snapshot_begin`] and disarm
    /// the snapshot, dropping the recorded undo information.
    ///
    /// # Panics
    ///
    /// Panics if no snapshot is armed.
    pub fn snapshot_commit(&mut self) {
        assert!(self.journal.active, "no Function snapshot armed");
        let j = &mut self.journal;
        j.active = false;
        j.saved_insts.clear();
        j.saved_blocks.clear();
        j.pragmas.clear();
    }

    /// Undo every mutation since [`Function::snapshot_begin`] and disarm
    /// the snapshot. The function is restored exactly: overwritten arena
    /// slots get their pre-images back, slots created after arming are
    /// truncated away, and layout/pragmas return to their saved copies.
    ///
    /// # Panics
    ///
    /// Panics if no snapshot is armed.
    pub fn snapshot_rollback(&mut self) {
        assert!(self.journal.active, "no Function snapshot armed");
        for (ix, inst) in self.journal.saved_insts.drain(..) {
            self.insts[ix as usize] = inst;
        }
        self.insts.truncate(self.journal.insts_len);
        for (ix, block) in self.journal.saved_blocks.drain(..) {
            self.blocks[ix as usize] = block;
        }
        self.blocks.truncate(self.journal.blocks_len);
        self.layout.clear();
        self.layout.extend_from_slice(&self.journal.layout);
        self.loop_pragmas = std::mem::take(&mut self.journal.pragmas);
        self.journal.active = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{BinOp, InstKind};

    fn branchy() -> Function {
        // entry -> (a | b) -> join -> ret
        let mut f = Function::new("t", vec![Param::new("c", Type::I1)], Type::I64);
        let entry = f.entry();
        let a = f.add_block();
        let b = f.add_block();
        let join = f.add_block();
        f.append_inst(
            entry,
            Inst::new(
                InstKind::CondBr {
                    cond: Value::Arg(0),
                    if_true: a,
                    if_false: b,
                },
                Type::Void,
            ),
        );
        f.append_inst(a, Inst::new(InstKind::Br { target: join }, Type::Void));
        f.append_inst(b, Inst::new(InstKind::Br { target: join }, Type::Void));
        let phi = f.append_inst(
            join,
            Inst::new(
                InstKind::Phi {
                    incomings: vec![(a, Value::imm(1i64)), (b, Value::imm(2i64))],
                },
                Type::I64,
            ),
        );
        f.append_inst(
            join,
            Inst::new(
                InstKind::Ret {
                    value: Some(Value::Inst(phi)),
                },
                Type::Void,
            ),
        );
        f
    }

    #[test]
    fn construction_and_layout() {
        let f = branchy();
        assert_eq!(f.num_blocks(), 4);
        assert_eq!(f.entry().index(), 0);
        assert_eq!(f.num_insts(), 5);
        assert_eq!(f.params().len(), 1);
        assert_eq!(f.ret_ty(), Type::I64);
    }

    #[test]
    fn successors_and_predecessors() {
        let f = branchy();
        let entry = f.entry();
        assert_eq!(f.successors(entry).len(), 2);
        let preds = f.predecessors();
        let join = BlockId::from_index(3);
        assert_eq!(preds[join.index()].len(), 2);
        assert!(preds[entry.index()].is_empty());
    }

    #[test]
    fn phis_and_value_types() {
        let f = branchy();
        let join = BlockId::from_index(3);
        let phis = f.phis(join);
        assert_eq!(phis.len(), 1);
        assert_eq!(f.value_type(Value::Inst(phis[0])), Type::I64);
        assert_eq!(f.value_type(Value::Arg(0)), Type::I1);
        assert_eq!(f.value_type(Value::imm(1i32)), Type::I32);
    }

    #[test]
    fn replace_all_uses() {
        let mut f = branchy();
        let join = BlockId::from_index(3);
        let phi = f.phis(join)[0];
        f.replace_all_uses(Value::Inst(phi), Value::imm(9i64));
        let ret = f.terminator(join).unwrap();
        match &f.inst(ret).kind {
            InstKind::Ret { value } => {
                assert_eq!(value.unwrap().as_const().unwrap().as_i64(), Some(9))
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn prune_unreachable_removes_dead_phi_inputs() {
        let mut f = branchy();
        let entry = f.entry();
        let a = BlockId::from_index(1);
        let b = BlockId::from_index(2);
        // Rewrite the entry terminator to always go to `a`.
        let term = f.terminator(entry).unwrap();
        f.inst_mut(term).kind = InstKind::Br { target: a };
        let removed = f.prune_unreachable();
        assert_eq!(removed, 1);
        assert!(!f.is_linked(b));
        let join = BlockId::from_index(3);
        let phi = f.phis(join)[0];
        match &f.inst(phi).kind {
            InstKind::Phi { incomings } => assert_eq!(incomings.len(), 1),
            _ => unreachable!(),
        }
    }

    #[test]
    fn unlink_and_prepend() {
        let mut f = branchy();
        let join = BlockId::from_index(3);
        let phi = f.phis(join)[0];
        // Prepending a non-phi lands after phis.
        let add = f.prepend_inst(
            join,
            Inst::new(
                InstKind::Bin {
                    op: BinOp::Add,
                    lhs: Value::Inst(phi),
                    rhs: Value::imm(1i64),
                },
                Type::I64,
            ),
        );
        assert_eq!(f.block(join).insts[1], add);
        f.unlink_inst(join, add);
        assert_eq!(f.block(join).insts.len(), 2);
    }

    #[test]
    fn loop_pragmas() {
        let mut f = branchy();
        let h = f.entry();
        assert_eq!(f.loop_pragma(h), None);
        f.set_loop_pragma(h, LoopPragma::Unroll(4));
        assert_eq!(f.loop_pragma(h), Some(LoopPragma::Unroll(4)));
    }
}

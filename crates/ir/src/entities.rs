//! Arena identifiers and the [`Value`] sum type.
//!
//! Instructions and basic blocks live in per-function arenas and are referred
//! to by small copyable IDs, the usual arrangement for a mutable compiler IR:
//! transforms can clone, rewire and delete entities without invalidating
//! references held elsewhere.

use crate::constant::Constant;
use std::fmt;

/// Identifier of an instruction within a [`Function`](crate::Function).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstId(pub(crate) u32);

/// Identifier of a basic block within a [`Function`](crate::Function).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub(crate) u32);

/// Identifier of a function within a [`Module`](crate::Module).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub(crate) u32);

impl InstId {
    /// Raw arena index. Stable for the lifetime of the function.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstruct from a raw index previously obtained via [`InstId::index`].
    pub fn from_index(ix: usize) -> Self {
        InstId(ix as u32)
    }
}

impl BlockId {
    /// Raw arena index. Stable for the lifetime of the function.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstruct from a raw index previously obtained via
    /// [`BlockId::index`].
    pub fn from_index(ix: usize) -> Self {
        BlockId(ix as u32)
    }
}

impl FuncId {
    /// Raw arena index. Stable for the lifetime of the module.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstruct from a raw index previously obtained via
    /// [`FuncId::index`].
    pub fn from_index(ix: usize) -> Self {
        FuncId(ix as u32)
    }
}

impl fmt::Display for InstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn{}", self.0)
    }
}

/// An SSA value: either the result of an instruction, a function argument, or
/// a constant.
///
/// # Examples
///
/// ```
/// use uu_ir::{Constant, Value};
/// let v = Value::Const(Constant::I32(3));
/// assert_eq!(v.as_const().and_then(|c| c.as_i64()), Some(3));
/// assert!(!v.is_inst());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// The result of instruction `InstId`.
    Inst(InstId),
    /// The `n`-th formal argument of the enclosing function.
    Arg(u32),
    /// An immediate constant.
    Const(Constant),
}

impl Value {
    /// Shorthand for a constant value.
    pub fn imm(c: impl Into<Constant>) -> Self {
        Value::Const(c.into())
    }

    /// The underlying constant, if this value is one.
    pub fn as_const(self) -> Option<Constant> {
        match self {
            Value::Const(c) => Some(c),
            _ => None,
        }
    }

    /// The defining instruction, if this value is an instruction result.
    pub fn as_inst(self) -> Option<InstId> {
        match self {
            Value::Inst(id) => Some(id),
            _ => None,
        }
    }

    /// Whether this value is an instruction result.
    pub fn is_inst(self) -> bool {
        matches!(self, Value::Inst(_))
    }

    /// Whether this value is a constant.
    pub fn is_const(self) -> bool {
        matches!(self, Value::Const(_))
    }
}

impl From<InstId> for Value {
    fn from(id: InstId) -> Self {
        Value::Inst(id)
    }
}

impl From<Constant> for Value {
    fn from(c: Constant) -> Self {
        Value::Const(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip() {
        let i = InstId::from_index(42);
        assert_eq!(i.index(), 42);
        let b = BlockId::from_index(7);
        assert_eq!(b.index(), 7);
        let f = FuncId::from_index(3);
        assert_eq!(f.index(), 3);
    }

    #[test]
    fn display() {
        assert_eq!(InstId::from_index(5).to_string(), "%5");
        assert_eq!(BlockId::from_index(5).to_string(), "bb5");
        assert_eq!(FuncId::from_index(5).to_string(), "fn5");
    }

    #[test]
    fn value_accessors() {
        let v = Value::imm(4i64);
        assert!(v.is_const());
        assert_eq!(v.as_const().unwrap().as_i64(), Some(4));
        assert_eq!(v.as_inst(), None);

        let w = Value::Inst(InstId::from_index(1));
        assert!(w.is_inst());
        assert_eq!(w.as_inst(), Some(InstId::from_index(1)));
        assert_eq!(w.as_const(), None);

        let a = Value::Arg(0);
        assert!(!a.is_inst() && !a.is_const());
    }
}

//! Instructions: opcodes, operand access, and classification.

use crate::constant::Constant;
use crate::entities::{BlockId, Value};
use crate::types::Type;
use std::fmt;

/// Binary arithmetic / bitwise opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Integer addition (wrapping).
    Add,
    /// Integer subtraction (wrapping).
    Sub,
    /// Integer multiplication (wrapping).
    Mul,
    /// Signed integer division. Division by zero yields zero in the
    /// simulator (GPU semantics are undefined; we pick a total behaviour).
    SDiv,
    /// Unsigned integer division.
    UDiv,
    /// Signed remainder.
    SRem,
    /// Unsigned remainder.
    URem,
    /// Shift left.
    Shl,
    /// Logical shift right.
    LShr,
    /// Arithmetic shift right.
    AShr,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Float addition.
    FAdd,
    /// Float subtraction.
    FSub,
    /// Float multiplication.
    FMul,
    /// Float division.
    FDiv,
}

impl BinOp {
    /// Whether the operation is commutative (used for value-numbering
    /// canonicalization).
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinOp::Add
                | BinOp::Mul
                | BinOp::And
                | BinOp::Or
                | BinOp::Xor
                | BinOp::FAdd
                | BinOp::FMul
        )
    }

    /// Whether the operation works on floats.
    pub fn is_float(self) -> bool {
        matches!(self, BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv)
    }

    /// Mnemonic used by the printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::SDiv => "sdiv",
            BinOp::UDiv => "udiv",
            BinOp::SRem => "srem",
            BinOp::URem => "urem",
            BinOp::Shl => "shl",
            BinOp::LShr => "lshr",
            BinOp::AShr => "ashr",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::FAdd => "fadd",
            BinOp::FSub => "fsub",
            BinOp::FMul => "fmul",
            BinOp::FDiv => "fdiv",
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Integer comparison predicates (LLVM `icmp` subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ICmpPred {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less than.
    Slt,
    /// Signed less or equal.
    Sle,
    /// Signed greater than.
    Sgt,
    /// Signed greater or equal.
    Sge,
    /// Unsigned less than.
    Ult,
    /// Unsigned less or equal.
    Ule,
    /// Unsigned greater than.
    Ugt,
    /// Unsigned greater or equal.
    Uge,
}

impl ICmpPred {
    /// The predicate with operands swapped (`a < b` ⇔ `b > a`).
    pub fn swapped(self) -> Self {
        match self {
            ICmpPred::Eq => ICmpPred::Eq,
            ICmpPred::Ne => ICmpPred::Ne,
            ICmpPred::Slt => ICmpPred::Sgt,
            ICmpPred::Sle => ICmpPred::Sge,
            ICmpPred::Sgt => ICmpPred::Slt,
            ICmpPred::Sge => ICmpPred::Sle,
            ICmpPred::Ult => ICmpPred::Ugt,
            ICmpPred::Ule => ICmpPred::Uge,
            ICmpPred::Ugt => ICmpPred::Ult,
            ICmpPred::Uge => ICmpPred::Ule,
        }
    }

    /// The logical negation of the predicate (`!(a < b)` ⇔ `a >= b`).
    pub fn inverted(self) -> Self {
        match self {
            ICmpPred::Eq => ICmpPred::Ne,
            ICmpPred::Ne => ICmpPred::Eq,
            ICmpPred::Slt => ICmpPred::Sge,
            ICmpPred::Sle => ICmpPred::Sgt,
            ICmpPred::Sgt => ICmpPred::Sle,
            ICmpPred::Sge => ICmpPred::Slt,
            ICmpPred::Ult => ICmpPred::Uge,
            ICmpPred::Ule => ICmpPred::Ugt,
            ICmpPred::Ugt => ICmpPred::Ule,
            ICmpPred::Uge => ICmpPred::Ult,
        }
    }

    /// Mnemonic used by the printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            ICmpPred::Eq => "eq",
            ICmpPred::Ne => "ne",
            ICmpPred::Slt => "slt",
            ICmpPred::Sle => "sle",
            ICmpPred::Sgt => "sgt",
            ICmpPred::Sge => "sge",
            ICmpPred::Ult => "ult",
            ICmpPred::Ule => "ule",
            ICmpPred::Ugt => "ugt",
            ICmpPred::Uge => "uge",
        }
    }
}

impl fmt::Display for ICmpPred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Float comparison predicates. All are "ordered" (false on NaN) except
/// [`FCmpPred::Une`], matching how C comparisons lower.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FCmpPred {
    /// Ordered equal.
    Oeq,
    /// Unordered not-equal (true if either operand is NaN).
    Une,
    /// Ordered less than.
    Olt,
    /// Ordered less or equal.
    Ole,
    /// Ordered greater than.
    Ogt,
    /// Ordered greater or equal.
    Oge,
}

impl FCmpPred {
    /// The predicate with operands swapped.
    pub fn swapped(self) -> Self {
        match self {
            FCmpPred::Oeq => FCmpPred::Oeq,
            FCmpPred::Une => FCmpPred::Une,
            FCmpPred::Olt => FCmpPred::Ogt,
            FCmpPred::Ole => FCmpPred::Oge,
            FCmpPred::Ogt => FCmpPred::Olt,
            FCmpPred::Oge => FCmpPred::Ole,
        }
    }

    /// Mnemonic used by the printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FCmpPred::Oeq => "oeq",
            FCmpPred::Une => "une",
            FCmpPred::Olt => "olt",
            FCmpPred::Ole => "ole",
            FCmpPred::Ogt => "ogt",
            FCmpPred::Oge => "oge",
        }
    }
}

impl fmt::Display for FCmpPred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Conversion opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CastOp {
    /// Sign-extend a narrower integer.
    Sext,
    /// Zero-extend a narrower integer.
    Zext,
    /// Truncate a wider integer.
    Trunc,
    /// Signed integer to float.
    SiToFp,
    /// Float to signed integer (round toward zero).
    FpToSi,
    /// `f32` ↔ `f64` conversion.
    FpCast,
    /// Reinterpret an integer as a pointer (no-op in the simulator).
    IntToPtr,
    /// Reinterpret a pointer as an integer (no-op in the simulator).
    PtrToInt,
}

impl CastOp {
    /// Mnemonic used by the printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CastOp::Sext => "sext",
            CastOp::Zext => "zext",
            CastOp::Trunc => "trunc",
            CastOp::SiToFp => "sitofp",
            CastOp::FpToSi => "fptosi",
            CastOp::FpCast => "fpcast",
            CastOp::IntToPtr => "inttoptr",
            CastOp::PtrToInt => "ptrtoint",
        }
    }
}

impl fmt::Display for CastOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// GPU and math intrinsics.
///
/// Thread geometry intrinsics mirror CUDA special registers.
/// [`Intrinsic::Syncthreads`] is *convergent*: it must not be made
/// control-dependent on additional conditions, which is exactly why the u&u
/// pass refuses to transform loops containing it (paper §III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Intrinsic {
    /// `threadIdx.x`.
    ThreadIdxX,
    /// `blockIdx.x`.
    BlockIdxX,
    /// `blockDim.x`.
    BlockDimX,
    /// `gridDim.x`.
    GridDimX,
    /// `__syncthreads()` barrier — convergent.
    Syncthreads,
    /// Square root.
    Sqrt,
    /// Absolute value (float).
    Fabs,
    /// Natural exponential.
    Exp,
    /// Natural logarithm.
    Log,
    /// Sine.
    Sin,
    /// Cosine.
    Cos,
    /// Float minimum.
    FMin,
    /// Float maximum.
    FMax,
    /// Signed integer minimum.
    SMin,
    /// Signed integer maximum.
    SMax,
}

impl Intrinsic {
    /// Whether the intrinsic is convergent (cannot be duplicated onto
    /// divergent paths).
    pub fn is_convergent(self) -> bool {
        matches!(self, Intrinsic::Syncthreads)
    }

    /// Whether the intrinsic reads thread geometry (`threadIdx` etc.) — the
    /// taint sources for divergence analysis.
    pub fn is_thread_id(self) -> bool {
        matches!(self, Intrinsic::ThreadIdxX)
    }

    /// Number of arguments the intrinsic takes.
    pub fn arity(self) -> usize {
        match self {
            Intrinsic::ThreadIdxX
            | Intrinsic::BlockIdxX
            | Intrinsic::BlockDimX
            | Intrinsic::GridDimX
            | Intrinsic::Syncthreads => 0,
            Intrinsic::Sqrt
            | Intrinsic::Fabs
            | Intrinsic::Exp
            | Intrinsic::Log
            | Intrinsic::Sin
            | Intrinsic::Cos => 1,
            Intrinsic::FMin | Intrinsic::FMax | Intrinsic::SMin | Intrinsic::SMax => 2,
        }
    }

    /// Result type of the intrinsic given float width `fw` (`F32` or `F64`)
    /// for the math intrinsics.
    pub fn result_type(self, fw: Type) -> Type {
        match self {
            Intrinsic::ThreadIdxX
            | Intrinsic::BlockIdxX
            | Intrinsic::BlockDimX
            | Intrinsic::GridDimX => Type::I32,
            Intrinsic::Syncthreads => Type::Void,
            Intrinsic::SMin | Intrinsic::SMax => fw,
            _ => fw,
        }
    }

    /// Mnemonic used by the printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Intrinsic::ThreadIdxX => "thread.idx.x",
            Intrinsic::BlockIdxX => "block.idx.x",
            Intrinsic::BlockDimX => "block.dim.x",
            Intrinsic::GridDimX => "grid.dim.x",
            Intrinsic::Syncthreads => "syncthreads",
            Intrinsic::Sqrt => "sqrt",
            Intrinsic::Fabs => "fabs",
            Intrinsic::Exp => "exp",
            Intrinsic::Log => "log",
            Intrinsic::Sin => "sin",
            Intrinsic::Cos => "cos",
            Intrinsic::FMin => "fmin",
            Intrinsic::FMax => "fmax",
            Intrinsic::SMin => "smin",
            Intrinsic::SMax => "smax",
        }
    }
}

impl fmt::Display for Intrinsic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// The payload of an instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum InstKind {
    /// Binary arithmetic: `op lhs, rhs`.
    Bin {
        /// Opcode.
        op: BinOp,
        /// Left operand.
        lhs: Value,
        /// Right operand.
        rhs: Value,
    },
    /// Integer comparison producing `i1`.
    ICmp {
        /// Predicate.
        pred: ICmpPred,
        /// Left operand.
        lhs: Value,
        /// Right operand.
        rhs: Value,
    },
    /// Float comparison producing `i1`.
    FCmp {
        /// Predicate.
        pred: FCmpPred,
        /// Left operand.
        lhs: Value,
        /// Right operand.
        rhs: Value,
    },
    /// Predicated select: `cond ? on_true : on_false` (PTX `selp`).
    Select {
        /// `i1` condition.
        cond: Value,
        /// Value if the condition is true.
        on_true: Value,
        /// Value if the condition is false.
        on_false: Value,
    },
    /// Type conversion.
    Cast {
        /// Conversion opcode.
        op: CastOp,
        /// Source value.
        value: Value,
    },
    /// Load from global memory. The instruction's type is the loaded type.
    Load {
        /// Byte address.
        ptr: Value,
    },
    /// Store to global memory.
    Store {
        /// Byte address.
        ptr: Value,
        /// Value stored; its type determines the access width.
        value: Value,
    },
    /// Address computation: `base + index * scale` (a flattened GEP).
    Gep {
        /// Base pointer.
        base: Value,
        /// Element index (i32 or i64; sign extended).
        index: Value,
        /// Element size in bytes.
        scale: u64,
    },
    /// SSA phi node.
    Phi {
        /// `(predecessor block, incoming value)` pairs.
        incomings: Vec<(BlockId, Value)>,
    },
    /// Intrinsic call.
    Intr {
        /// Which intrinsic.
        which: Intrinsic,
        /// Arguments (arity checked by the verifier).
        args: Vec<Value>,
    },
    /// Unconditional branch.
    Br {
        /// Destination block.
        target: BlockId,
    },
    /// Two-way conditional branch.
    CondBr {
        /// `i1` condition.
        cond: Value,
        /// Taken when the condition is true.
        if_true: BlockId,
        /// Taken when the condition is false.
        if_false: BlockId,
    },
    /// Return from the kernel/function.
    Ret {
        /// Returned value, if the function returns one.
        value: Option<Value>,
    },
}

impl InstKind {
    /// Whether this instruction terminates a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            InstKind::Br { .. } | InstKind::CondBr { .. } | InstKind::Ret { .. }
        )
    }

    /// Whether this instruction is a phi node.
    pub fn is_phi(&self) -> bool {
        matches!(self, InstKind::Phi { .. })
    }

    /// Whether this instruction has side effects that forbid removal even if
    /// the result is unused.
    pub fn has_side_effects(&self) -> bool {
        match self {
            InstKind::Store { .. } | InstKind::Ret { .. } => true,
            InstKind::Br { .. } | InstKind::CondBr { .. } => true,
            InstKind::Intr { which, .. } => which.is_convergent(),
            _ => false,
        }
    }

    /// Whether the instruction reads memory.
    pub fn reads_memory(&self) -> bool {
        matches!(self, InstKind::Load { .. })
    }

    /// Whether the instruction writes memory.
    pub fn writes_memory(&self) -> bool {
        matches!(self, InstKind::Store { .. })
    }

    /// Whether the instruction is convergent.
    pub fn is_convergent(&self) -> bool {
        matches!(self, InstKind::Intr { which, .. } if which.is_convergent())
    }

    /// Collect all value operands, in a fixed order.
    pub fn operands(&self) -> Vec<Value> {
        let mut out = Vec::new();
        self.for_each_operand(|v| out.push(*v));
        out
    }

    /// Visit every value operand by shared reference.
    pub fn for_each_operand(&self, mut f: impl FnMut(&Value)) {
        match self {
            InstKind::Bin { lhs, rhs, .. }
            | InstKind::ICmp { lhs, rhs, .. }
            | InstKind::FCmp { lhs, rhs, .. } => {
                f(lhs);
                f(rhs);
            }
            InstKind::Select {
                cond,
                on_true,
                on_false,
            } => {
                f(cond);
                f(on_true);
                f(on_false);
            }
            InstKind::Cast { value, .. } => f(value),
            InstKind::Load { ptr } => f(ptr),
            InstKind::Store { ptr, value } => {
                f(ptr);
                f(value);
            }
            InstKind::Gep { base, index, .. } => {
                f(base);
                f(index);
            }
            InstKind::Phi { incomings } => {
                for (_, v) in incomings {
                    f(v);
                }
            }
            InstKind::Intr { args, .. } => {
                for a in args {
                    f(a);
                }
            }
            InstKind::Br { .. } => {}
            InstKind::CondBr { cond, .. } => f(cond),
            InstKind::Ret { value } => {
                if let Some(v) = value {
                    f(v);
                }
            }
        }
    }

    /// Visit every value operand by mutable reference.
    pub fn for_each_operand_mut(&mut self, mut f: impl FnMut(&mut Value)) {
        match self {
            InstKind::Bin { lhs, rhs, .. }
            | InstKind::ICmp { lhs, rhs, .. }
            | InstKind::FCmp { lhs, rhs, .. } => {
                f(lhs);
                f(rhs);
            }
            InstKind::Select {
                cond,
                on_true,
                on_false,
            } => {
                f(cond);
                f(on_true);
                f(on_false);
            }
            InstKind::Cast { value, .. } => f(value),
            InstKind::Load { ptr } => f(ptr),
            InstKind::Store { ptr, value } => {
                f(ptr);
                f(value);
            }
            InstKind::Gep { base, index, .. } => {
                f(base);
                f(index);
            }
            InstKind::Phi { incomings } => {
                for (_, v) in incomings {
                    f(v);
                }
            }
            InstKind::Intr { args, .. } => {
                for a in args {
                    f(a);
                }
            }
            InstKind::Br { .. } => {}
            InstKind::CondBr { cond, .. } => f(cond),
            InstKind::Ret { value } => {
                if let Some(v) = value {
                    f(v);
                }
            }
        }
    }

    /// Successor blocks if this is a terminator (empty otherwise).
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            InstKind::Br { target } => vec![*target],
            InstKind::CondBr {
                if_true, if_false, ..
            } => vec![*if_true, *if_false],
            _ => Vec::new(),
        }
    }

    /// Replace every reference to block `from` with `to` in branch targets
    /// and phi incoming labels.
    pub fn replace_block(&mut self, from: BlockId, to: BlockId) {
        match self {
            InstKind::Br { target }
                if *target == from => {
                    *target = to;
                }
            InstKind::CondBr {
                if_true, if_false, ..
            } => {
                if *if_true == from {
                    *if_true = to;
                }
                if *if_false == from {
                    *if_false = to;
                }
            }
            InstKind::Phi { incomings } => {
                for (b, _) in incomings {
                    if *b == from {
                        *b = to;
                    }
                }
            }
            _ => {}
        }
    }
}

/// An instruction: its opcode payload plus its result type.
#[derive(Debug, Clone, PartialEq)]
pub struct Inst {
    /// Opcode and operands.
    pub kind: InstKind,
    /// Result type ([`Type::Void`] for instructions without a result).
    pub ty: Type,
}

impl Inst {
    /// Construct an instruction.
    pub fn new(kind: InstKind, ty: Type) -> Self {
        Inst { kind, ty }
    }

    /// Constant-fold this instruction if all operands are constants.
    ///
    /// Returns `None` when the instruction cannot be folded (non-constant
    /// operands, memory or control instructions).
    pub fn fold(&self) -> Option<Constant> {
        crate::fold::fold_inst(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates_invert_and_swap() {
        assert_eq!(ICmpPred::Slt.inverted(), ICmpPred::Sge);
        assert_eq!(ICmpPred::Slt.swapped(), ICmpPred::Sgt);
        assert_eq!(ICmpPred::Eq.swapped(), ICmpPred::Eq);
        for p in [
            ICmpPred::Eq,
            ICmpPred::Ne,
            ICmpPred::Slt,
            ICmpPred::Sle,
            ICmpPred::Sgt,
            ICmpPred::Sge,
            ICmpPred::Ult,
            ICmpPred::Ule,
            ICmpPred::Ugt,
            ICmpPred::Uge,
        ] {
            assert_eq!(p.inverted().inverted(), p);
            assert_eq!(p.swapped().swapped(), p);
        }
        assert_eq!(FCmpPred::Olt.swapped(), FCmpPred::Ogt);
    }

    #[test]
    fn classification() {
        let br = InstKind::Br {
            target: BlockId::from_index(0),
        };
        assert!(br.is_terminator());
        assert!(br.has_side_effects());
        assert!(!br.is_phi());

        let sync = InstKind::Intr {
            which: Intrinsic::Syncthreads,
            args: vec![],
        };
        assert!(sync.is_convergent());
        assert!(sync.has_side_effects());

        let tid = InstKind::Intr {
            which: Intrinsic::ThreadIdxX,
            args: vec![],
        };
        assert!(!tid.is_convergent());
        assert!(!tid.has_side_effects());

        let ld = InstKind::Load {
            ptr: Value::Arg(0),
        };
        assert!(ld.reads_memory() && !ld.writes_memory());
        let st = InstKind::Store {
            ptr: Value::Arg(0),
            value: Value::imm(1i32),
        };
        assert!(st.writes_memory() && !st.reads_memory());
    }

    #[test]
    fn operand_iteration_and_mutation() {
        let mut k = InstKind::Select {
            cond: Value::Arg(0),
            on_true: Value::Arg(1),
            on_false: Value::imm(2i32),
        };
        assert_eq!(k.operands().len(), 3);
        k.for_each_operand_mut(|v| {
            if *v == Value::Arg(1) {
                *v = Value::imm(9i32);
            }
        });
        assert_eq!(
            k.operands()[1].as_const().and_then(|c| c.as_i64()),
            Some(9)
        );
    }

    #[test]
    fn successors_and_replace_block() {
        let b0 = BlockId::from_index(0);
        let b1 = BlockId::from_index(1);
        let b2 = BlockId::from_index(2);
        let mut cb = InstKind::CondBr {
            cond: Value::Arg(0),
            if_true: b0,
            if_false: b1,
        };
        assert_eq!(cb.successors(), vec![b0, b1]);
        cb.replace_block(b1, b2);
        assert_eq!(cb.successors(), vec![b0, b2]);

        let mut phi = InstKind::Phi {
            incomings: vec![(b0, Value::Arg(0)), (b1, Value::Arg(1))],
        };
        phi.replace_block(b0, b2);
        match &phi {
            InstKind::Phi { incomings } => assert_eq!(incomings[0].0, b2),
            _ => unreachable!(),
        }
    }

    #[test]
    fn intrinsic_metadata() {
        assert!(Intrinsic::Syncthreads.is_convergent());
        assert!(!Intrinsic::Sqrt.is_convergent());
        assert!(Intrinsic::ThreadIdxX.is_thread_id());
        assert_eq!(Intrinsic::FMin.arity(), 2);
        assert_eq!(Intrinsic::Sqrt.arity(), 1);
        assert_eq!(Intrinsic::Syncthreads.arity(), 0);
        assert_eq!(Intrinsic::ThreadIdxX.result_type(Type::F64), Type::I32);
        assert_eq!(Intrinsic::Sqrt.result_type(Type::F64), Type::F64);
    }
}

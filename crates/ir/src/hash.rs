//! Stable content hashing for modules.
//!
//! The compile-service cache (`uu-serve`) addresses artifacts by the hash
//! of the *printed* module text, so the hash contract is exactly the
//! printer/parser round-trip contract: `parse(print(m))` prints
//! identically, therefore hashes identically. The hash must be stable
//! across processes and machines — `std::hash` makes no such promise, so
//! this module pins FNV-1a 64 explicitly.

use crate::module::Module;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64 over `bytes` — the workspace's stable, documented content
/// hash (process- and machine-independent, unlike `DefaultHasher`).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Continue an FNV-1a 64 hash with more bytes (for composite keys).
pub fn fnv1a_continue(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Stable content hash of a module: FNV-1a 64 over its printed text.
///
/// Two modules that print identically hash identically, and a module
/// survives a print → parse → print round trip with the same hash (the
/// parser reconstructs the printed form byte-for-byte). This is the
/// module component of the `uu-serve` cache key.
pub fn module_hash(m: &Module) -> u64 {
    fnv1a(m.to_string().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FunctionBuilder, Module, Param, Type, Value};

    fn sample() -> Module {
        let mut f = crate::Function::new("k", vec![Param::new("n", Type::I64)], Type::I64);
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        b.switch_to(entry);
        let s = b.add(Value::Arg(0), Value::imm(1i64));
        b.ret(Some(s));
        let mut m = Module::new("t");
        m.add_function(f);
        m
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn continue_composes() {
        assert_eq!(fnv1a_continue(fnv1a(b"foo"), b"bar"), fnv1a(b"foobar"));
    }

    #[test]
    fn module_hash_is_round_trip_stable() {
        let m = sample();
        let h = module_hash(&m);
        let reparsed = crate::parse_module(&m.to_string()).unwrap();
        assert_eq!(module_hash(&reparsed), h);
        // And the hash actually distinguishes different modules.
        let mut other = sample();
        let id = other.find("k").unwrap();
        let entry = other.function(id).entry();
        let f = other.function_mut(id);
        let insts = f.block(entry).insts.clone();
        let _ = insts;
        let mut b = FunctionBuilder::new(f);
        let extra = b.create_block();
        b.switch_to(extra);
        b.ret(None);
        assert_ne!(module_hash(&other), h);
    }
}

//! # uu-ir — SSA intermediate representation
//!
//! A compact, LLVM-flavoured SSA IR used throughout the `uu` workspace, which
//! reproduces *Enhancing Performance through Control-Flow Unmerging and Loop
//! Unrolling on GPUs* (CGO 2024). The IR models the subset of LLVM that GPU
//! compute kernels exercise: scalar arithmetic, comparisons, selects
//! (predication), loads/stores into flat global memory, phi nodes, branches
//! and CUDA-style intrinsics (`threadIdx.x`, `__syncthreads`, math).
//!
//! ## Example
//!
//! Build, print and verify a small counting loop:
//!
//! ```
//! use uu_ir::{Function, FunctionBuilder, ICmpPred, Param, Type, Value};
//!
//! let mut f = Function::new("count", vec![Param::new("n", Type::I64)], Type::I64);
//! let entry = f.entry();
//! let mut b = FunctionBuilder::new(&mut f);
//! let header = b.create_block();
//! let body = b.create_block();
//! let exit = b.create_block();
//! b.switch_to(entry);
//! b.br(header);
//! b.switch_to(header);
//! let i = b.phi(Type::I64);
//! b.add_phi_incoming(i, entry, Value::imm(0i64));
//! let c = b.icmp(ICmpPred::Slt, i, Value::Arg(0));
//! b.cond_br(c, body, exit);
//! b.switch_to(body);
//! let next = b.add(i, Value::imm(1i64));
//! b.add_phi_incoming(i, body, next);
//! b.br(header);
//! b.switch_to(exit);
//! b.ret(Some(i));
//!
//! uu_ir::verify_function(&f).unwrap();
//! println!("{f}");
//! ```
//!
//! ## Design notes
//!
//! * Instructions and blocks live in per-function arenas addressed by stable
//!   IDs ([`InstId`], [`BlockId`]); transforms clone and rewire freely without
//!   invalidating references.
//! * [`fold`] is the single source of truth for evaluation semantics; the
//!   optimizer and the SIMT simulator both call into it, so constant folding
//!   can never disagree with execution.
//! * [`verify_function`] checks block structure, phi/predecessor agreement,
//!   types and SSA dominance; every transform in `uu-core` is verified after
//!   application in tests.

#![warn(missing_docs)]

mod builder;
mod constant;
mod entities;
pub mod fold;
mod function;
pub mod hash;
mod inst;
mod module;
pub mod parser;
pub mod printer;
pub mod table;
mod types;
mod verify;

pub use builder::FunctionBuilder;
pub use constant::Constant;
pub use entities::{BlockId, FuncId, InstId, Value};
pub use function::{Block, Function, LoopPragma, Param};
pub use hash::{fnv1a, fnv1a_continue, module_hash};
pub use inst::{BinOp, CastOp, FCmpPred, ICmpPred, Inst, InstKind, Intrinsic};
pub use module::Module;
pub use parser::{parse_function, parse_module, ParseError};
pub use table::{EntityKey, EntitySet, SecondaryMap};
pub use types::Type;
pub use verify::{verify_function, verify_module, VerifyError};

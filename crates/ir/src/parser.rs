//! Parser for the textual IR syntax emitted by [`printer`](crate::printer).
//!
//! The printed and parsed forms round-trip: `parse(print(f))` produces a
//! function that prints identically. This makes test fixtures and example
//! kernels writable as text:
//!
//! ```
//! let f = uu_ir::parse_function(r#"
//! fn @count(i64 %n) -> i64 {
//! bb0:
//!   br bb1
//! bb1:
//!   %1 = phi i64 [0, bb0], [%3, bb2]
//!   %2 = icmp slt i64 %1, %n
//!   br i1 %2, bb2, bb3
//! bb2:
//!   %3 = add i64 %1, 1
//!   br bb1
//! bb3:
//!   ret i64 %1
//! }
//! "#).unwrap();
//! uu_ir::verify_function(&f).unwrap();
//! ```

use crate::{
    BinOp, BlockId, CastOp, Constant, FCmpPred, Function, ICmpPred, Inst, InstId, InstKind,
    Intrinsic, Param, Type, Value,
};
use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;

/// A parse failure, with the offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number within the input.
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error on line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

/// Symbolic operand before resolution.
#[derive(Debug, Clone, PartialEq)]
enum Tok {
    /// `%3` — an instruction result by textual id.
    InstRef(u32),
    /// `%name` — a parameter reference.
    ParamRef(String),
    /// A literal constant of the annotated type.
    Lit(String),
}

fn parse_tok(s: &str) -> Tok {
    if let Some(rest) = s.strip_prefix('%') {
        if let Ok(n) = rest.parse::<u32>() {
            Tok::InstRef(n)
        } else {
            Tok::ParamRef(rest.to_string())
        }
    } else {
        Tok::Lit(s.to_string())
    }
}

fn parse_type(s: &str, line: usize) -> Result<Type, ParseError> {
    match s {
        "i1" => Ok(Type::I1),
        "i32" => Ok(Type::I32),
        "i64" => Ok(Type::I64),
        "f32" => Ok(Type::F32),
        "f64" => Ok(Type::F64),
        "ptr" => Ok(Type::Ptr),
        "void" => Ok(Type::Void),
        other => err(line, format!("unknown type `{other}`")),
    }
}

fn parse_const(s: &str, ty: Type, line: usize) -> Result<Constant, ParseError> {
    let c = match ty {
        Type::I1 => match s {
            "true" => Constant::I1(true),
            "false" => Constant::I1(false),
            _ => return err(line, format!("bad i1 literal `{s}`")),
        },
        Type::I32 => Constant::I32(
            s.parse()
                .map_err(|_| ParseError {
                    line,
                    message: format!("bad i32 literal `{s}`"),
                })?,
        ),
        Type::I64 | Type::Ptr => Constant::I64(
            s.parse()
                .map_err(|_| ParseError {
                    line,
                    message: format!("bad i64 literal `{s}`"),
                })?,
        ),
        Type::F32 => Constant::f32(s.parse().map_err(|_| ParseError {
            line,
            message: format!("bad f32 literal `{s}`"),
        })?),
        Type::F64 => Constant::f64(s.parse().map_err(|_| ParseError {
            line,
            message: format!("bad f64 literal `{s}`"),
        })?),
        Type::Void => return err(line, "void literal"),
    };
    Ok(c)
}

fn binop_of(s: &str) -> Option<BinOp> {
    Some(match s {
        "add" => BinOp::Add,
        "sub" => BinOp::Sub,
        "mul" => BinOp::Mul,
        "sdiv" => BinOp::SDiv,
        "udiv" => BinOp::UDiv,
        "srem" => BinOp::SRem,
        "urem" => BinOp::URem,
        "shl" => BinOp::Shl,
        "lshr" => BinOp::LShr,
        "ashr" => BinOp::AShr,
        "and" => BinOp::And,
        "or" => BinOp::Or,
        "xor" => BinOp::Xor,
        "fadd" => BinOp::FAdd,
        "fsub" => BinOp::FSub,
        "fmul" => BinOp::FMul,
        "fdiv" => BinOp::FDiv,
        _ => return None,
    })
}

fn icmp_of(s: &str) -> Option<ICmpPred> {
    Some(match s {
        "eq" => ICmpPred::Eq,
        "ne" => ICmpPred::Ne,
        "slt" => ICmpPred::Slt,
        "sle" => ICmpPred::Sle,
        "sgt" => ICmpPred::Sgt,
        "sge" => ICmpPred::Sge,
        "ult" => ICmpPred::Ult,
        "ule" => ICmpPred::Ule,
        "ugt" => ICmpPred::Ugt,
        "uge" => ICmpPred::Uge,
        _ => return None,
    })
}

fn fcmp_of(s: &str) -> Option<FCmpPred> {
    Some(match s {
        "oeq" => FCmpPred::Oeq,
        "une" => FCmpPred::Une,
        "olt" => FCmpPred::Olt,
        "ole" => FCmpPred::Ole,
        "ogt" => FCmpPred::Ogt,
        "oge" => FCmpPred::Oge,
        _ => return None,
    })
}

fn cast_of(s: &str) -> Option<CastOp> {
    Some(match s {
        "sext" => CastOp::Sext,
        "zext" => CastOp::Zext,
        "trunc" => CastOp::Trunc,
        "sitofp" => CastOp::SiToFp,
        "fptosi" => CastOp::FpToSi,
        "fpcast" => CastOp::FpCast,
        "inttoptr" => CastOp::IntToPtr,
        "ptrtoint" => CastOp::PtrToInt,
        _ => return None,
    })
}

fn intrinsic_of(s: &str) -> Option<Intrinsic> {
    Some(match s {
        "thread.idx.x" => Intrinsic::ThreadIdxX,
        "block.idx.x" => Intrinsic::BlockIdxX,
        "block.dim.x" => Intrinsic::BlockDimX,
        "grid.dim.x" => Intrinsic::GridDimX,
        "syncthreads" => Intrinsic::Syncthreads,
        "sqrt" => Intrinsic::Sqrt,
        "fabs" => Intrinsic::Fabs,
        "exp" => Intrinsic::Exp,
        "log" => Intrinsic::Log,
        "sin" => Intrinsic::Sin,
        "cos" => Intrinsic::Cos,
        "fmin" => Intrinsic::FMin,
        "fmax" => Intrinsic::FMax,
        "smin" => Intrinsic::SMin,
        "smax" => Intrinsic::SMax,
        _ => None?,
    })
}

/// One parsed-but-unresolved instruction.
#[derive(Debug)]
struct PendingInst {
    text_id: Option<u32>,
    line: usize,
    kind: PendingKind,
    block: BlockId,
}

#[derive(Debug)]
enum PendingKind {
    Bin(BinOp, Type, Tok, Tok),
    ICmp(ICmpPred, Type, Tok, Tok),
    FCmp(FCmpPred, Type, Tok, Tok),
    Select(Type, Tok, Tok, Tok),
    Cast(CastOp, Type, Tok, Type),
    Load(Type, Tok),
    Store(Type, Tok, Tok),
    Gep(Tok, Tok, u64),
    Phi(Type, Vec<(String, Tok)>),
    Intr(Type, Intrinsic, Vec<Tok>),
    Br(String),
    CondBr(Tok, String, String),
    RetVoid,
    Ret(Type, Tok),
}

/// Parse one function from the printer's textual form.
///
/// # Errors
///
/// Returns a [`ParseError`] naming the offending line for malformed input.
/// Parsing does not run the verifier; call
/// [`verify_function`](crate::verify_function) on the result if structural
/// validity matters.
pub fn parse_function(text: &str) -> Result<Function, ParseError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with(';'));

    // Header: fn @name(params) -> ty {
    let (hline, header) = lines
        .next()
        .ok_or(ParseError {
            line: 0,
            message: "empty input".into(),
        })?;
    let header = header
        .strip_prefix("fn @")
        .ok_or(ParseError {
            line: hline,
            message: "expected `fn @name(...)`".into(),
        })?;
    let open = header.find('(').ok_or(ParseError {
        line: hline,
        message: "missing `(`".into(),
    })?;
    let close = header.rfind(')').ok_or(ParseError {
        line: hline,
        message: "missing `)`".into(),
    })?;
    let name = &header[..open];
    let mut params = Vec::new();
    let plist = &header[open + 1..close];
    if !plist.trim().is_empty() {
        for p in plist.split(',') {
            let mut it = p.split_whitespace();
            let ty = parse_type(it.next().unwrap_or(""), hline)?;
            // Optional `restrict` qualifier between the type and the name
            // (`ptr restrict %x`) — aliasing facts are optimizer-visible,
            // so the round trip must carry them.
            let mut tok = it.next();
            let restrict = tok == Some("restrict");
            if restrict {
                tok = it.next();
            }
            let pname = tok.and_then(|s| s.strip_prefix('%')).ok_or(ParseError {
                line: hline,
                message: format!("bad parameter `{p}`"),
            })?;
            params.push(if restrict {
                Param::restrict(pname, ty)
            } else {
                Param::new(pname, ty)
            });
        }
    }
    let ret = header[close + 1..]
        .trim()
        .strip_prefix("->")
        .map(|s| s.trim().trim_end_matches('{').trim())
        .ok_or(ParseError {
            line: hline,
            message: "missing `-> ty {`".into(),
        })?;
    let ret_ty = parse_type(ret, hline)?;

    let mut f = Function::new(name, params.clone(), ret_ty);
    let param_ix: HashMap<String, u32> = params
        .iter()
        .enumerate()
        .map(|(i, p)| (p.name.clone(), i as u32))
        .collect();

    // Pass 1: collect blocks and pending instructions.
    let mut block_ids: HashMap<String, BlockId> = HashMap::new();
    let mut block_of = |f: &mut Function, label: &str| -> BlockId {
        if let Some(&b) = block_ids.get(label) {
            return b;
        }
        // Block 0 already exists from Function::new.
        let b = if block_ids.is_empty() {
            f.entry()
        } else {
            f.add_block()
        };
        block_ids.insert(label.to_string(), b);
        b
    };
    let mut pendings: Vec<PendingInst> = Vec::new();
    let mut current: Option<BlockId> = None;
    for (lno, line) in lines {
        if line == "}" {
            break;
        }
        if let Some(label) = line.strip_suffix(':') {
            current = Some(block_of(&mut f, label));
            continue;
        }
        let block = current.ok_or(ParseError {
            line: lno,
            message: "instruction before first block label".into(),
        })?;
        let (text_id, body) = match line.strip_prefix('%') {
            Some(rest) if rest.contains('=') => {
                let eq = rest.find('=').unwrap();
                let id: u32 = rest[..eq].trim().parse().map_err(|_| ParseError {
                    line: lno,
                    message: "bad result id".into(),
                })?;
                (Some(id), rest[eq + 1..].trim())
            }
            _ => (None, line),
        };
        let kind = parse_body(body, lno)?;
        pendings.push(PendingInst {
            text_id,
            line: lno,
            kind,
            block,
        });
    }

    // Pre-create all instructions so forward references resolve — and
    // honor the printed ids while doing it. The printer emits raw
    // `InstId` indices, so the text carries the original numbering of
    // every *valued* instruction; void instructions print no id and are
    // slotted into the unused numbers in textual order. Preserving the
    // numbering (exactly when the printed ids are gap-free, by rank
    // otherwise) matters beyond aesthetics: id order is observable by
    // optimizer tie-breaks, so a module that round-trips through text —
    // a disk artifact, a wire body — must re-optimize exactly like the
    // original. The remote-compile backend depends on this.
    let mut taken: HashSet<u32> = HashSet::new();
    for p in &pendings {
        if let Some(t) = p.text_id {
            if !taken.insert(t) {
                return err(p.line, format!("duplicate result id %{t}"));
            }
        }
    }
    let mut free = (0u32..).filter(|n| !taken.contains(n));
    let targets: Vec<u32> = pendings
        .iter()
        .map(|p| p.text_id.unwrap_or_else(|| free.next().expect("u32 space")))
        .collect();
    // Dense `InstId`s are allocation-ordered, so creating placeholders
    // in ascending target order reproduces the numbering; blocks are
    // then filled in textual order, which is the original layout.
    let mut order: Vec<usize> = (0..pendings.len()).collect();
    order.sort_by_key(|&i| targets[i]);
    let mut ids_by_pending: Vec<Option<InstId>> = vec![None; pendings.len()];
    for &i in &order {
        let ty = pending_type(&pendings[i].kind);
        let id = f.create_inst(Inst::new(InstKind::Ret { value: None }, ty));
        ids_by_pending[i] = Some(id);
    }
    let ids: Vec<InstId> = ids_by_pending
        .into_iter()
        .map(|id| id.expect("every pending instruction was created"))
        .collect();
    let mut text_map: HashMap<u32, InstId> = HashMap::new();
    for (p, &id) in pendings.iter().zip(&ids) {
        f.block_mut(p.block).insts.push(id);
        if let Some(t) = p.text_id {
            text_map.insert(t, id);
        }
    }

    // Pass 2: resolve operands.
    let resolve = |tok: &Tok, ty: Type, line: usize| -> Result<Value, ParseError> {
        match tok {
            Tok::InstRef(n) => text_map
                .get(n)
                .map(|i| Value::Inst(*i))
                .ok_or(ParseError {
                    line,
                    message: format!("undefined value %{n}"),
                }),
            Tok::ParamRef(name) => param_ix
                .get(name)
                .map(|i| Value::Arg(*i))
                .ok_or(ParseError {
                    line,
                    message: format!("unknown parameter %{name}"),
                }),
            Tok::Lit(s) => Ok(Value::Const(parse_const(s, ty, line)?)),
        }
    };
    let block_ref = |label: &str, line: usize| -> Result<BlockId, ParseError> {
        block_ids.get(label).copied().ok_or(ParseError {
            line,
            message: format!("unknown block `{label}`"),
        })
    };

    for (p, &id) in pendings.iter().zip(&ids) {
        let l = p.line;
        let kind = match &p.kind {
            PendingKind::Bin(op, ty, a, b) => InstKind::Bin {
                op: *op,
                lhs: resolve(a, *ty, l)?,
                rhs: resolve(b, *ty, l)?,
            },
            PendingKind::ICmp(pr, ty, a, b) => InstKind::ICmp {
                pred: *pr,
                lhs: resolve(a, *ty, l)?,
                rhs: resolve(b, *ty, l)?,
            },
            PendingKind::FCmp(pr, ty, a, b) => InstKind::FCmp {
                pred: *pr,
                lhs: resolve(a, *ty, l)?,
                rhs: resolve(b, *ty, l)?,
            },
            PendingKind::Select(ty, c, a, b) => InstKind::Select {
                cond: resolve(c, Type::I1, l)?,
                on_true: resolve(a, *ty, l)?,
                on_false: resolve(b, *ty, l)?,
            },
            PendingKind::Cast(op, from, v, _to) => InstKind::Cast {
                op: *op,
                value: resolve(v, *from, l)?,
            },
            PendingKind::Load(_ty, ptr) => InstKind::Load {
                ptr: resolve(ptr, Type::Ptr, l)?,
            },
            PendingKind::Store(vty, v, ptr) => InstKind::Store {
                ptr: resolve(ptr, Type::Ptr, l)?,
                value: resolve(v, *vty, l)?,
            },
            PendingKind::Gep(base, ix, scale) => InstKind::Gep {
                base: resolve(base, Type::Ptr, l)?,
                index: resolve(ix, Type::I64, l)?,
                scale: *scale,
            },
            PendingKind::Phi(ty, incomings) => {
                let mut inc = Vec::new();
                for (label, v) in incomings {
                    inc.push((block_ref(label, l)?, resolve(v, *ty, l)?));
                }
                InstKind::Phi { incomings: inc }
            }
            PendingKind::Intr(fw, which, args) => {
                let mut a = Vec::new();
                for t in args {
                    a.push(resolve(t, *fw, l)?);
                }
                InstKind::Intr { which: *which, args: a }
            }
            PendingKind::Br(label) => InstKind::Br {
                target: block_ref(label, l)?,
            },
            PendingKind::CondBr(c, t, e) => InstKind::CondBr {
                cond: resolve(c, Type::I1, l)?,
                if_true: block_ref(t, l)?,
                if_false: block_ref(e, l)?,
            },
            PendingKind::RetVoid => InstKind::Ret { value: None },
            PendingKind::Ret(ty, v) => InstKind::Ret {
                value: Some(resolve(v, *ty, l)?),
            },
        };
        f.inst_mut(id).kind = kind;
    }
    Ok(f)
}

fn pending_type(k: &PendingKind) -> Type {
    match k {
        PendingKind::Bin(_, ty, _, _) => *ty,
        PendingKind::ICmp(..) | PendingKind::FCmp(..) => Type::I1,
        PendingKind::Select(ty, ..) => *ty,
        PendingKind::Cast(_, _, _, to) => *to,
        PendingKind::Load(ty, _) => *ty,
        PendingKind::Phi(ty, _) => *ty,
        PendingKind::Intr(ty, which, _) => which.result_type(*ty),
        PendingKind::Gep(..) => Type::Ptr,
        _ => Type::Void,
    }
}

fn split_args(s: &str) -> Vec<String> {
    s.split(',').map(|x| x.trim().to_string()).collect()
}

fn parse_body(body: &str, line: usize) -> Result<PendingKind, ParseError> {
    let mut words = body.split_whitespace();
    let head = words.next().ok_or(ParseError {
        line,
        message: "empty instruction".into(),
    })?;
    let rest = body[head.len()..].trim();
    if let Some(op) = binop_of(head) {
        // add i64 a, b
        let mut it = rest.splitn(2, ' ');
        let ty = parse_type(it.next().unwrap_or(""), line)?;
        let args = split_args(it.next().unwrap_or(""));
        if args.len() != 2 {
            return err(line, "binop expects two operands");
        }
        return Ok(PendingKind::Bin(op, ty, parse_tok(&args[0]), parse_tok(&args[1])));
    }
    match head {
        "icmp" | "fcmp" => {
            // icmp slt i64 a, b
            let mut it = rest.splitn(3, ' ');
            let pred = it.next().unwrap_or("");
            let ty = parse_type(it.next().unwrap_or(""), line)?;
            let args = split_args(it.next().unwrap_or(""));
            if args.len() != 2 {
                return err(line, "cmp expects two operands");
            }
            if head == "icmp" {
                let p = icmp_of(pred).ok_or(ParseError {
                    line,
                    message: format!("bad icmp predicate `{pred}`"),
                })?;
                Ok(PendingKind::ICmp(p, ty, parse_tok(&args[0]), parse_tok(&args[1])))
            } else {
                let p = fcmp_of(pred).ok_or(ParseError {
                    line,
                    message: format!("bad fcmp predicate `{pred}`"),
                })?;
                Ok(PendingKind::FCmp(p, ty, parse_tok(&args[0]), parse_tok(&args[1])))
            }
        }
        "select" => {
            // select ty c, a, b
            let mut it = rest.splitn(2, ' ');
            let ty = parse_type(it.next().unwrap_or(""), line)?;
            let args = split_args(it.next().unwrap_or(""));
            if args.len() != 3 {
                return err(line, "select expects three operands");
            }
            Ok(PendingKind::Select(
                ty,
                parse_tok(&args[0]),
                parse_tok(&args[1]),
                parse_tok(&args[2]),
            ))
        }
        "load" => {
            // load ty, ptr
            let args = split_args(rest);
            if args.len() != 2 {
                return err(line, "load expects `ty, ptr`");
            }
            Ok(PendingKind::Load(parse_type(&args[0], line)?, parse_tok(&args[1])))
        }
        "store" => {
            // store ty v, ptr
            let mut it = rest.splitn(2, ' ');
            let ty = parse_type(it.next().unwrap_or(""), line)?;
            let args = split_args(it.next().unwrap_or(""));
            if args.len() != 2 {
                return err(line, "store expects `ty v, ptr`");
            }
            Ok(PendingKind::Store(ty, parse_tok(&args[0]), parse_tok(&args[1])))
        }
        "gep" => {
            // gep base, index xSCALE
            let args = split_args(rest);
            if args.len() != 2 {
                return err(line, "gep expects `base, index xN`");
            }
            let mut it = args[1].split_whitespace();
            let ix = parse_tok(it.next().unwrap_or(""));
            let scale = it
                .next()
                .and_then(|s| s.strip_prefix('x'))
                .and_then(|s| s.parse().ok())
                .ok_or(ParseError {
                    line,
                    message: "gep scale must be `xN`".into(),
                })?;
            Ok(PendingKind::Gep(parse_tok(&args[0]), ix, scale))
        }
        "phi" => {
            // phi ty [v, bbN], [v, bbM]
            let mut it = rest.splitn(2, ' ');
            let ty = parse_type(it.next().unwrap_or(""), line)?;
            let mut incomings = Vec::new();
            for part in it.next().unwrap_or("").split("],") {
                let part = part.trim().trim_start_matches('[').trim_end_matches(']');
                if part.is_empty() {
                    continue;
                }
                let mut kv = part.splitn(2, ',');
                let v = parse_tok(kv.next().unwrap_or("").trim());
                let label = kv.next().unwrap_or("").trim().to_string();
                if label.is_empty() {
                    return err(line, "phi incoming missing block label");
                }
                incomings.push((label, v));
            }
            Ok(PendingKind::Phi(ty, incomings))
        }
        "call" => {
            // call ty @name(args)
            let mut it = rest.splitn(2, ' ');
            let ty = parse_type(it.next().unwrap_or(""), line)?;
            let callee = it.next().unwrap_or("").trim();
            let open = callee.find('(').ok_or(ParseError {
                line,
                message: "call missing `(`".into(),
            })?;
            let name = callee[..open].trim().strip_prefix('@').ok_or(ParseError {
                line,
                message: "call missing `@`".into(),
            })?;
            let which = intrinsic_of(name).ok_or(ParseError {
                line,
                message: format!("unknown intrinsic `@{name}`"),
            })?;
            let inner = callee[open + 1..].trim_end_matches(')');
            let args = if inner.trim().is_empty() {
                Vec::new()
            } else {
                split_args(inner).iter().map(|a| parse_tok(a)).collect()
            };
            Ok(PendingKind::Intr(ty, which, args))
        }
        "br" => {
            if let Some(rest) = rest.strip_prefix("i1 ") {
                let args = split_args(rest);
                if args.len() != 3 {
                    return err(line, "conditional br expects `i1 c, bbT, bbF`");
                }
                Ok(PendingKind::CondBr(
                    parse_tok(&args[0]),
                    args[1].clone(),
                    args[2].clone(),
                ))
            } else {
                Ok(PendingKind::Br(rest.to_string()))
            }
        }
        "ret" => {
            if rest == "void" {
                Ok(PendingKind::RetVoid)
            } else {
                let mut it = rest.splitn(2, ' ');
                let ty = parse_type(it.next().unwrap_or(""), line)?;
                Ok(PendingKind::Ret(ty, parse_tok(it.next().unwrap_or("").trim())))
            }
        }
        other => {
            // Casts: `sext i32 %v to i64`
            if let Some(op) = cast_of(other) {
                let mut it = rest.splitn(2, ' ');
                let from = parse_type(it.next().unwrap_or(""), line)?;
                let tail = it.next().unwrap_or("");
                let mut kv = tail.splitn(2, " to ");
                let v = parse_tok(kv.next().unwrap_or("").trim());
                let to = parse_type(kv.next().unwrap_or("").trim(), line)?;
                return Ok(PendingKind::Cast(op, from, v, to));
            }
            err(line, format!("unknown instruction `{other}`"))
        }
    }
}

/// Parse a whole module: a sequence of functions, with optional
/// `; module NAME` header comment (as the printer emits).
///
/// # Errors
///
/// Returns the first function's [`ParseError`] (line numbers are relative
/// to each function's own text).
pub fn parse_module(text: &str) -> Result<crate::Module, ParseError> {
    let mut name = "module";
    for line in text.lines() {
        let l = line.trim();
        if let Some(rest) = l.strip_prefix("; module ") {
            name = rest.trim();
            break;
        }
        if !l.is_empty() && !l.starts_with(';') {
            break;
        }
    }
    let mut m = crate::Module::new(name);
    // Split on function headers.
    let mut starts: Vec<usize> = Vec::new();
    for (ix, _) in text.match_indices("fn @") {
        starts.push(ix);
    }
    for (i, &start) in starts.iter().enumerate() {
        let end = starts.get(i + 1).copied().unwrap_or(text.len());
        let chunk = &text[start..end];
        // Trim the chunk to its closing brace.
        let body_end = chunk
            .rfind('}')
            .map(|p| p + 1)
            .unwrap_or(chunk.len());
        m.add_function(parse_function(&chunk[..body_end])?);
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{verify_function, FunctionBuilder};

    #[test]
    fn parses_counting_loop_and_verifies() {
        let f = parse_function(
            r#"
fn @count(i64 %n) -> i64 {
bb0:
  br bb1
bb1:
  %1 = phi i64 [0, bb0], [%3, bb2]
  %2 = icmp slt i64 %1, %n
  br i1 %2, bb2, bb3
bb2:
  %3 = add i64 %1, 1
  br bb1
bb3:
  ret i64 %1
}
"#,
        )
        .unwrap();
        verify_function(&f).unwrap();
        assert_eq!(f.name(), "count");
        assert_eq!(f.num_blocks(), 4);
    }

    #[test]
    fn roundtrips_printer_output() {
        // Build with the builder, print, parse, print again: identical.
        let mut f = Function::new(
            "rt",
            vec![Param::new("p", Type::Ptr), Param::new("c", Type::I1)],
            Type::Void,
        );
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let t = b.create_block();
        let j = b.create_block();
        b.switch_to(entry);
        let x = b.load(Type::F64, Value::Arg(0));
        let g = b.gep(Value::Arg(0), Value::imm(2i64), 8);
        let tid = b.thread_idx();
        let w = b.cast(CastOp::Sext, tid, Type::I64);
        let s = b.select(Value::Arg(1), w, Value::imm(0i64));
        let cmp = b.icmp(ICmpPred::Sgt, s, Value::imm(1i64));
        b.cond_br(cmp, t, j);
        b.switch_to(t);
        let y = b.fadd(x, Value::imm(1.5f64));
        b.store(g, y);
        b.br(j);
        b.switch_to(j);
        let m = b.phi(Type::F64);
        b.add_phi_incoming(m, entry, x);
        b.add_phi_incoming(m, t, y);
        let q = b.intr(Intrinsic::Sqrt, vec![m], Type::F64);
        b.store(Value::Arg(0), q);
        b.ret(None);
        verify_function(&f).unwrap();
        let printed = f.to_string();
        let reparsed = parse_function(&printed).unwrap_or_else(|e| panic!("{e}\n{printed}"));
        verify_function(&reparsed).unwrap();
        assert_eq!(reparsed.to_string(), printed);
    }

    #[test]
    fn parses_fcmp_and_float_literals() {
        let f = parse_function(
            r#"
fn @fc(f64 %x) -> i1 {
bb0:
  %1 = fcmp ogt f64 %x, 2.5
  ret i1 %1
}
"#,
        )
        .unwrap();
        verify_function(&f).unwrap();
    }

    #[test]
    fn error_messages_carry_line_numbers() {
        let e = parse_function("fn @x() -> void {\nbb0:\n  frobnicate\n}\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("frobnicate"));

        let e = parse_function("fn @x() -> void {\nbb0:\n  br bb9\n}\n").unwrap_err();
        assert!(e.message.contains("unknown block"));

        let e = parse_function("nonsense").unwrap_err();
        assert!(e.message.contains("fn @name"));
    }

    #[test]
    fn parses_whole_module() {
        let m = parse_module(
            "; module demo\n\nfn @a() -> void {\nbb0:\n  ret void\n}\n\nfn @b(i64 %x) -> i64 {\nbb0:\n  ret i64 %x\n}\n",
        )
        .unwrap();
        assert_eq!(m.name(), "demo");
        assert_eq!(m.num_functions(), 2);
        assert!(m.find("a").is_some());
        assert!(m.find("b").is_some());
        crate::verify_module(&m).unwrap();
        // Round-trip the printed module.
        let printed = m.to_string();
        let again = parse_module(&printed).unwrap();
        assert_eq!(again.to_string(), printed);
    }

    #[test]
    fn forward_references_resolve() {
        // The phi uses %3 before it is defined.
        let f = parse_function(
            r#"
fn @fwd(i64 %n) -> void {
bb0:
  br bb1
bb1:
  %1 = phi i64 [0, bb0], [%3, bb1]
  %2 = icmp slt i64 %1, %n
  %3 = add i64 %1, 1
  br i1 %2, bb1, bb2
bb2:
  ret void
}
"#,
        )
        .unwrap();
        verify_function(&f).unwrap();
    }
}

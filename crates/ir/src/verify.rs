//! IR well-formedness verifier.
//!
//! The verifier enforces the structural invariants that analyses and
//! transforms rely on:
//!
//! 1. every linked block ends in exactly one terminator, with no terminator
//!    in the middle;
//! 2. phi nodes appear only at block heads, and their incoming labels are
//!    exactly the block's predecessors (no duplicates, none missing);
//! 3. operands are type correct (branch conditions are `i1`, binary operands
//!    match, returns match the function type, intrinsic arities line up);
//! 4. SSA dominance: every use is dominated by its definition (a phi's use
//!    point is the end of the corresponding predecessor);
//! 5. the entry block has no predecessors;
//! 6. argument indices are in range.

use crate::entities::{BlockId, InstId, Value};
use crate::function::Function;
use crate::inst::{InstKind, Intrinsic};
use crate::module::Module;
use crate::types::Type;
use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;

/// A failed verification: one message per violated invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Name of the offending function.
    pub function: String,
    /// All violations found (verification does not stop at the first).
    pub messages: Vec<String>,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "verification of @{} failed:", self.function)?;
        for m in &self.messages {
            writeln!(f, "  - {m}")?;
        }
        Ok(())
    }
}

impl Error for VerifyError {}

/// Verify a whole module.
///
/// # Errors
///
/// Returns the error for the first function that fails to verify.
pub fn verify_module(m: &Module) -> Result<(), VerifyError> {
    for (_, f) in m.iter() {
        verify_function(f)?;
    }
    Ok(())
}

/// Verify a single function.
///
/// # Errors
///
/// Returns a [`VerifyError`] describing every violated invariant.
pub fn verify_function(f: &Function) -> Result<(), VerifyError> {
    let mut errs = Vec::new();
    let layout: Vec<BlockId> = f.layout().to_vec();
    let in_layout: HashSet<BlockId> = layout.iter().copied().collect();

    // --- block structure ---
    for &b in &layout {
        let insts = &f.block(b).insts;
        match insts.last() {
            None => errs.push(format!("{b} is empty (no terminator)")),
            Some(last) => {
                if !f.inst(*last).kind.is_terminator() {
                    errs.push(format!("{b} does not end in a terminator"));
                }
            }
        }
        let mut seen_non_phi = false;
        for (pos, &i) in insts.iter().enumerate() {
            let kind = &f.inst(i).kind;
            if kind.is_terminator() && pos + 1 != insts.len() {
                errs.push(format!("terminator %{} in the middle of {b}", i.index()));
            }
            if kind.is_phi() {
                if seen_non_phi {
                    errs.push(format!("phi %{} after non-phi in {b}", i.index()));
                }
            } else {
                seen_non_phi = true;
            }
        }
        for s in f.successors(b) {
            if !in_layout.contains(&s) {
                errs.push(format!("{b} branches to unlinked block {s}"));
            }
        }
    }

    // --- entry has no predecessors ---
    let preds = f.predecessors();
    if !layout.is_empty() {
        let entry = f.entry();
        if !preds[entry.index()].is_empty() {
            errs.push(format!("entry block {entry} has predecessors"));
        }
    }

    // --- phi incomings match predecessors ---
    for &b in &layout {
        let mut pred_set: Vec<BlockId> = preds[b.index()].clone();
        pred_set.sort();
        for phi in f.phis(b) {
            if let InstKind::Phi { incomings } = &f.inst(phi).kind {
                let mut inc: Vec<BlockId> = incomings.iter().map(|(p, _)| *p).collect();
                inc.sort();
                let mut dedup = inc.clone();
                dedup.dedup();
                if dedup.len() != inc.len() {
                    errs.push(format!("phi %{} in {b} has duplicate incomings", phi.index()));
                }
                if inc != pred_set {
                    errs.push(format!(
                        "phi %{} in {b} incomings {inc:?} do not match predecessors {pred_set:?}",
                        phi.index()
                    ));
                }
            }
        }
    }

    // --- types ---
    for &b in &layout {
        for &i in &f.block(b).insts {
            check_inst_types(f, i, &mut errs);
        }
    }

    // --- SSA dominance ---
    check_dominance(f, &layout, &preds, &mut errs);

    if errs.is_empty() {
        Ok(())
    } else {
        Err(VerifyError {
            function: f.name().to_string(),
            messages: errs,
        })
    }
}

fn check_value(f: &Function, v: Value, errs: &mut Vec<String>, ctx: InstId) {
    if let Value::Arg(i) = v {
        if i as usize >= f.params().len() {
            errs.push(format!("%{}: argument index {i} out of range", ctx.index()));
        }
    }
}

fn check_inst_types(f: &Function, id: InstId, errs: &mut Vec<String>) {
    let inst = f.inst(id);
    inst.kind.for_each_operand(|v| check_value(f, *v, errs, id));
    // Bail out early if any argument index was bad; value_type would panic.
    let mut bad_arg = false;
    inst.kind.for_each_operand(|v| {
        if let Value::Arg(i) = v {
            if *i as usize >= f.params().len() {
                bad_arg = true;
            }
        }
    });
    if bad_arg {
        return;
    }
    let vt = |v: Value| f.value_type(v);
    match &inst.kind {
        InstKind::Bin { op, lhs, rhs } => {
            if vt(*lhs) != vt(*rhs) {
                errs.push(format!(
                    "%{}: binop operand types differ ({} vs {})",
                    id.index(),
                    vt(*lhs),
                    vt(*rhs)
                ));
            }
            if op.is_float() != inst.ty.is_float() {
                errs.push(format!("%{}: {op} on wrong type class", id.index()));
            }
            if vt(*lhs) != inst.ty {
                errs.push(format!("%{}: binop result type mismatch", id.index()));
            }
        }
        InstKind::ICmp { lhs, rhs, .. } => {
            if !(vt(*lhs).is_int() || vt(*lhs) == Type::Ptr) || vt(*lhs) != vt(*rhs) {
                errs.push(format!("%{}: icmp on non-matching ints", id.index()));
            }
            if inst.ty != Type::I1 {
                errs.push(format!("%{}: icmp must produce i1", id.index()));
            }
        }
        InstKind::FCmp { lhs, rhs, .. } => {
            if !vt(*lhs).is_float() || vt(*lhs) != vt(*rhs) {
                errs.push(format!("%{}: fcmp on non-matching floats", id.index()));
            }
            if inst.ty != Type::I1 {
                errs.push(format!("%{}: fcmp must produce i1", id.index()));
            }
        }
        InstKind::Select {
            cond,
            on_true,
            on_false,
        } => {
            if vt(*cond) != Type::I1 {
                errs.push(format!("%{}: select condition not i1", id.index()));
            }
            if vt(*on_true) != vt(*on_false) || vt(*on_true) != inst.ty {
                errs.push(format!("%{}: select arm types mismatch", id.index()));
            }
        }
        InstKind::Load { ptr } => {
            if vt(*ptr) != Type::Ptr && vt(*ptr) != Type::I64 {
                errs.push(format!("%{}: load from non-pointer", id.index()));
            }
            if !inst.ty.is_memory() {
                errs.push(format!("%{}: load of void", id.index()));
            }
        }
        InstKind::Store { ptr, value } => {
            if vt(*ptr) != Type::Ptr && vt(*ptr) != Type::I64 {
                errs.push(format!("%{}: store to non-pointer", id.index()));
            }
            if !vt(*value).is_memory() {
                errs.push(format!("%{}: store of void", id.index()));
            }
        }
        InstKind::Gep { base, index, .. } => {
            if vt(*base) != Type::Ptr && vt(*base) != Type::I64 {
                errs.push(format!("%{}: gep base not a pointer", id.index()));
            }
            if !vt(*index).is_int() {
                errs.push(format!("%{}: gep index not an integer", id.index()));
            }
        }
        InstKind::Phi { incomings } => {
            for (_, v) in incomings {
                if vt(*v) != inst.ty {
                    errs.push(format!("%{}: phi incoming type mismatch", id.index()));
                }
            }
        }
        InstKind::Intr { which, args } => {
            if args.len() != which.arity() {
                errs.push(format!(
                    "%{}: intrinsic {which} expects {} args, got {}",
                    id.index(),
                    which.arity(),
                    args.len()
                ));
            }
            if *which == Intrinsic::Syncthreads && inst.ty != Type::Void {
                errs.push(format!("%{}: syncthreads must be void", id.index()));
            }
        }
        InstKind::CondBr { cond, .. } => {
            if vt(*cond) != Type::I1 {
                errs.push(format!("%{}: branch condition not i1", id.index()));
            }
        }
        InstKind::Ret { value } => match (value, f.ret_ty()) {
            (None, Type::Void) => {}
            (Some(v), t) if vt(*v) == t => {}
            _ => errs.push(format!("%{}: return type mismatch", id.index())),
        },
        InstKind::Br { .. } => {}
        InstKind::Cast { .. } => {}
    }
}

/// Iterative dominator computation local to the verifier (the full analysis
/// lives in `uu-analysis`; the verifier must stay dependency-free).
fn compute_dominators(
    f: &Function,
    layout: &[BlockId],
    preds: &[Vec<BlockId>],
) -> HashMap<BlockId, HashSet<BlockId>> {
    let all: HashSet<BlockId> = layout.iter().copied().collect();
    let mut dom: HashMap<BlockId, HashSet<BlockId>> = HashMap::new();
    let entry = f.entry();
    for &b in layout {
        if b == entry {
            dom.insert(b, [b].into_iter().collect());
        } else {
            dom.insert(b, all.clone());
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        for &b in layout {
            if b == entry {
                continue;
            }
            let mut new: Option<HashSet<BlockId>> = None;
            for &p in &preds[b.index()] {
                if !all.contains(&p) {
                    continue;
                }
                let pd = &dom[&p];
                new = Some(match new {
                    None => pd.clone(),
                    Some(acc) => acc.intersection(pd).copied().collect(),
                });
            }
            let mut new = new.unwrap_or_default();
            new.insert(b);
            if new != dom[&b] {
                dom.insert(b, new);
                changed = true;
            }
        }
    }
    dom
}

fn check_dominance(
    f: &Function,
    layout: &[BlockId],
    preds: &[Vec<BlockId>],
    errs: &mut Vec<String>,
) {
    let dom = compute_dominators(f, layout, preds);
    // Map each linked instruction to (block, position).
    let mut pos_of: HashMap<InstId, (BlockId, usize)> = HashMap::new();
    for &b in layout {
        for (pos, &i) in f.block(b).insts.iter().enumerate() {
            pos_of.insert(i, (b, pos));
        }
    }
    let dominates = |def: (BlockId, usize), usepoint: (BlockId, usize)| -> bool {
        if def.0 == usepoint.0 {
            def.1 < usepoint.1
        } else {
            dom.get(&usepoint.0)
                .map(|d| d.contains(&def.0))
                .unwrap_or(false)
        }
    };
    for &b in layout {
        for (pos, &i) in f.block(b).insts.iter().enumerate() {
            let kind = &f.inst(i).kind;
            if let InstKind::Phi { incomings } = kind {
                for (pb, v) in incomings {
                    if let Value::Inst(def) = v {
                        match pos_of.get(def) {
                            Some(&dp) => {
                                // Use point: end of predecessor block.
                                let endpos = f.block(*pb).insts.len();
                                if !dominates(dp, (*pb, endpos)) {
                                    errs.push(format!(
                                        "phi %{} in {b}: incoming %{} from {pb} not dominated by its def",
                                        i.index(),
                                        def.index()
                                    ));
                                }
                            }
                            None => errs.push(format!(
                                "phi %{} in {b} uses unlinked value %{}",
                                i.index(),
                                def.index()
                            )),
                        }
                    }
                }
            } else {
                kind.for_each_operand(|v| {
                    if let Value::Inst(def) = v {
                        match pos_of.get(def) {
                            Some(&dp) => {
                                if !dominates(dp, (b, pos)) {
                                    errs.push(format!(
                                        "%{} in {b} uses %{} which does not dominate it",
                                        i.index(),
                                        def.index()
                                    ));
                                }
                            }
                            None => errs.push(format!(
                                "%{} in {b} uses unlinked value %{}",
                                i.index(),
                                def.index()
                            )),
                        }
                    }
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::function::Param;
    use crate::inst::{BinOp, ICmpPred, Inst};

    fn counting_loop() -> Function {
        let mut f = Function::new("count", vec![Param::new("n", Type::I64)], Type::I64);
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let header = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.switch_to(entry);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64);
        b.add_phi_incoming(i, entry, Value::imm(0i64));
        let c = b.icmp(ICmpPred::Slt, i, Value::Arg(0));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let i1 = b.add(i, Value::imm(1i64));
        b.add_phi_incoming(i, body, i1);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(i));
        f
    }

    #[test]
    fn accepts_wellformed_loop() {
        let f = counting_loop();
        verify_function(&f).unwrap();
    }

    #[test]
    fn rejects_missing_terminator() {
        let f = Function::new("k", vec![], Type::Void);
        let _ = f.entry(); // empty entry block
        let err = verify_function(&f).unwrap_err();
        assert!(err.messages.iter().any(|m| m.contains("no terminator")));
        assert!(err.to_string().contains("verification of @k failed"));
    }

    #[test]
    fn rejects_bad_phi_incomings() {
        let mut f = counting_loop();
        let header = BlockId::from_index(1);
        let phi = f.phis(header)[0];
        if let InstKind::Phi { incomings } = &mut f.inst_mut(phi).kind {
            incomings.pop();
        }
        let err = verify_function(&f).unwrap_err();
        assert!(err
            .messages
            .iter()
            .any(|m| m.contains("do not match predecessors")));
    }

    #[test]
    fn rejects_type_errors() {
        let mut f = Function::new("k", vec![Param::new("x", Type::I64)], Type::Void);
        let entry = f.entry();
        // i64 + f64 is ill-typed.
        f.append_inst(
            entry,
            Inst::new(
                InstKind::Bin {
                    op: BinOp::Add,
                    lhs: Value::Arg(0),
                    rhs: Value::imm(1.0f64),
                },
                Type::I64,
            ),
        );
        f.append_inst(entry, Inst::new(InstKind::Ret { value: None }, Type::Void));
        let err = verify_function(&f).unwrap_err();
        assert!(err
            .messages
            .iter()
            .any(|m| m.contains("operand types differ")));
    }

    #[test]
    fn rejects_use_before_def() {
        let mut f = Function::new("k", vec![], Type::I64);
        let entry = f.entry();
        // Create an add that uses an instruction defined *after* it.
        let later = f.create_inst(Inst::new(
            InstKind::Bin {
                op: BinOp::Add,
                lhs: Value::imm(1i64),
                rhs: Value::imm(2i64),
            },
            Type::I64,
        ));
        let early = f.create_inst(Inst::new(
            InstKind::Bin {
                op: BinOp::Add,
                lhs: Value::Inst(later),
                rhs: Value::imm(1i64),
            },
            Type::I64,
        ));
        f.block_mut(entry).insts.push(early);
        f.block_mut(entry).insts.push(later);
        let ret = f.create_inst(Inst::new(
            InstKind::Ret {
                value: Some(Value::Inst(later)),
            },
            Type::Void,
        ));
        f.block_mut(entry).insts.push(ret);
        let err = verify_function(&f).unwrap_err();
        assert!(err
            .messages
            .iter()
            .any(|m| m.contains("does not dominate")));
    }

    #[test]
    fn rejects_bad_branch_condition() {
        let mut f = Function::new("k", vec![Param::new("x", Type::I64)], Type::Void);
        let entry = f.entry();
        let other = f.add_block();
        f.append_inst(
            entry,
            Inst::new(
                InstKind::CondBr {
                    cond: Value::Arg(0), // i64, not i1
                    if_true: other,
                    if_false: other,
                },
                Type::Void,
            ),
        );
        f.append_inst(other, Inst::new(InstKind::Ret { value: None }, Type::Void));
        let err = verify_function(&f).unwrap_err();
        assert!(err.messages.iter().any(|m| m.contains("not i1")));
    }

    #[test]
    fn rejects_intrinsic_arity() {
        let mut f = Function::new("k", vec![], Type::Void);
        let entry = f.entry();
        f.append_inst(
            entry,
            Inst::new(
                InstKind::Intr {
                    which: Intrinsic::Sqrt,
                    args: vec![],
                },
                Type::F64,
            ),
        );
        f.append_inst(entry, Inst::new(InstKind::Ret { value: None }, Type::Void));
        let err = verify_function(&f).unwrap_err();
        assert!(err.messages.iter().any(|m| m.contains("expects 1 args")));
    }

    #[test]
    fn verify_module_covers_all_functions() {
        let mut m = Module::new("m");
        m.add_function(counting_loop());
        verify_module(&m).unwrap();
        m.add_function(Function::new("broken", vec![], Type::Void));
        assert!(verify_module(&m).is_err());
    }
}

//! Modules: named collections of functions (kernels).

use crate::entities::FuncId;
use crate::function::Function;

/// A compilation unit holding one or more kernels.
///
/// Kernels in this IR do not call each other (device functions are assumed
/// inlined, as Clang does for CUDA at `-O3`), so the module is a flat list.
///
/// # Examples
///
/// ```
/// use uu_ir::{Module, Function, Type};
/// let mut m = Module::new("app");
/// let id = m.add_function(Function::new("kern", vec![], Type::Void));
/// assert_eq!(m.function(id).name(), "kern");
/// assert_eq!(m.find("kern"), Some(id));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Module {
    name: String,
    functions: Vec<Function>,
}

impl Module {
    /// Create an empty module.
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            functions: Vec::new(),
        }
    }

    /// Module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Add a function, returning its ID.
    pub fn add_function(&mut self, f: Function) -> FuncId {
        let id = FuncId(self.functions.len() as u32);
        self.functions.push(f);
        id
    }

    /// Immutable access to a function.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a function of this module.
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.index()]
    }

    /// Mutable access to a function.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a function of this module.
    pub fn function_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.functions[id.index()]
    }

    /// Number of functions.
    pub fn num_functions(&self) -> usize {
        self.functions.len()
    }

    /// Iterate over `(FuncId, &Function)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (FuncId, &Function)> + '_ {
        self.functions
            .iter()
            .enumerate()
            .map(|(i, f)| (FuncId(i as u32), f))
    }

    /// Find a function by name.
    pub fn find(&self, name: &str) -> Option<FuncId> {
        self.iter().find(|(_, f)| f.name() == name).map(|(i, _)| i)
    }

    /// Total number of linked instructions across all functions — a crude
    /// "IR size" measure.
    pub fn total_insts(&self) -> usize {
        self.functions.iter().map(|f| f.num_insts()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Type;

    #[test]
    fn add_and_find() {
        let mut m = Module::new("m");
        let a = m.add_function(Function::new("a", vec![], Type::Void));
        let b = m.add_function(Function::new("b", vec![], Type::Void));
        assert_eq!(m.num_functions(), 2);
        assert_eq!(m.find("a"), Some(a));
        assert_eq!(m.find("b"), Some(b));
        assert_eq!(m.find("c"), None);
        assert_eq!(m.iter().count(), 2);
    }

    #[test]
    fn total_insts_counts_linked() {
        let mut m = Module::new("m");
        let id = m.add_function(Function::new("a", vec![], Type::Void));
        assert_eq!(m.total_insts(), 0);
        let entry = m.function(id).entry();
        let f = m.function_mut(id);
        let mut b = crate::FunctionBuilder::new(f);
        b.switch_to(entry);
        b.ret(None);
        assert_eq!(m.total_insts(), 1);
    }
}

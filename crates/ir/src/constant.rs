//! Compile-time constant values.
//!
//! Floats are stored as raw IEEE-754 bits so that [`Constant`] can implement
//! `Eq`/`Hash` (required by value numbering in the optimizer). `NaN`s with
//! different payloads therefore compare unequal, which is the conservative
//! direction for an optimizer.

use crate::types::Type;
use std::fmt;

/// A constant IR value.
///
/// # Examples
///
/// ```
/// use uu_ir::{Constant, Type};
/// let c = Constant::f64(1.5);
/// assert_eq!(c.ty(), Type::F64);
/// assert_eq!(c.as_f64(), Some(1.5));
/// assert_eq!(Constant::I32(7).to_string(), "7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Constant {
    /// Boolean constant.
    I1(bool),
    /// 32-bit integer constant (two's complement).
    I32(i32),
    /// 64-bit integer constant (two's complement).
    I64(i64),
    /// 32-bit float constant, stored as raw bits.
    F32Bits(u32),
    /// 64-bit float constant, stored as raw bits.
    F64Bits(u64),
}

impl Constant {
    /// Construct an `f32` constant from its numeric value.
    pub fn f32(v: f32) -> Self {
        Constant::F32Bits(v.to_bits())
    }

    /// Construct an `f64` constant from its numeric value.
    pub fn f64(v: f64) -> Self {
        Constant::F64Bits(v.to_bits())
    }

    /// The zero value of `ty`.
    ///
    /// # Panics
    ///
    /// Panics if `ty` is `Void`.
    pub fn zero(ty: Type) -> Self {
        match ty {
            Type::I1 => Constant::I1(false),
            Type::I32 => Constant::I32(0),
            Type::I64 | Type::Ptr => Constant::I64(0),
            Type::F32 => Constant::f32(0.0),
            Type::F64 => Constant::f64(0.0),
            Type::Void => panic!("no zero constant of type void"),
        }
    }

    /// The type of this constant. Pointer-typed constants are represented as
    /// `I64` (a raw address); there is no dedicated pointer constant.
    #[inline]
    pub fn ty(self) -> Type {
        match self {
            Constant::I1(_) => Type::I1,
            Constant::I32(_) => Type::I32,
            Constant::I64(_) => Type::I64,
            Constant::F32Bits(_) => Type::F32,
            Constant::F64Bits(_) => Type::F64,
        }
    }

    /// Numeric value as `f64` if this is a float constant.
    #[inline]
    pub fn as_f64(self) -> Option<f64> {
        match self {
            Constant::F32Bits(b) => Some(f32::from_bits(b) as f64),
            Constant::F64Bits(b) => Some(f64::from_bits(b)),
            _ => None,
        }
    }

    /// Integer value (sign extended to `i64`) if this is an integer constant.
    #[inline]
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Constant::I1(b) => Some(b as i64),
            Constant::I32(v) => Some(v as i64),
            Constant::I64(v) => Some(v),
            _ => None,
        }
    }

    /// Boolean value if this is an `i1` constant.
    #[inline]
    pub fn as_bool(self) -> Option<bool> {
        match self {
            Constant::I1(b) => Some(b),
            _ => None,
        }
    }

    /// Whether this constant is the additive identity of its type.
    pub fn is_zero(self) -> bool {
        match self {
            Constant::I1(b) => !b,
            Constant::I32(v) => v == 0,
            Constant::I64(v) => v == 0,
            Constant::F32Bits(b) => f32::from_bits(b) == 0.0,
            Constant::F64Bits(b) => f64::from_bits(b) == 0.0,
        }
    }

    /// Whether this constant is the multiplicative identity of its type.
    pub fn is_one(self) -> bool {
        match self {
            Constant::I1(b) => b,
            Constant::I32(v) => v == 1,
            Constant::I64(v) => v == 1,
            Constant::F32Bits(b) => f32::from_bits(b) == 1.0,
            Constant::F64Bits(b) => f64::from_bits(b) == 1.0,
        }
    }
}

impl From<bool> for Constant {
    fn from(v: bool) -> Self {
        Constant::I1(v)
    }
}

impl From<i32> for Constant {
    fn from(v: i32) -> Self {
        Constant::I32(v)
    }
}

impl From<i64> for Constant {
    fn from(v: i64) -> Self {
        Constant::I64(v)
    }
}

impl From<f32> for Constant {
    fn from(v: f32) -> Self {
        Constant::f32(v)
    }
}

impl From<f64> for Constant {
    fn from(v: f64) -> Self {
        Constant::f64(v)
    }
}

impl fmt::Display for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constant::I1(b) => write!(f, "{}", if *b { "true" } else { "false" }),
            Constant::I32(v) => write!(f, "{v}"),
            Constant::I64(v) => write!(f, "{v}"),
            Constant::F32Bits(b) => write!(f, "{:?}", f32::from_bits(*b)),
            Constant::F64Bits(b) => write!(f, "{:?}", f64::from_bits(*b)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        assert_eq!(Constant::f64(2.0).as_f64(), Some(2.0));
        assert_eq!(Constant::f32(2.0).as_f64(), Some(2.0));
        assert_eq!(Constant::I64(-3).as_i64(), Some(-3));
        assert_eq!(Constant::I32(-3).as_i64(), Some(-3));
        assert_eq!(Constant::I1(true).as_i64(), Some(1));
        assert_eq!(Constant::I1(true).as_bool(), Some(true));
        assert_eq!(Constant::I32(1).as_bool(), None);
        assert_eq!(Constant::f64(1.0).as_i64(), None);
    }

    #[test]
    fn zero_and_identities() {
        assert!(Constant::zero(Type::I32).is_zero());
        assert!(Constant::zero(Type::F64).is_zero());
        assert!(Constant::zero(Type::Ptr).is_zero());
        assert!(Constant::I32(1).is_one());
        assert!(Constant::f64(1.0).is_one());
        assert!(!Constant::f64(1.5).is_one());
        // Negative zero still counts as zero numerically.
        assert!(Constant::f64(-0.0).is_zero());
    }

    #[test]
    fn types() {
        assert_eq!(Constant::I1(false).ty(), Type::I1);
        assert_eq!(Constant::f32(0.5).ty(), Type::F32);
        assert_eq!(Constant::f64(0.5).ty(), Type::F64);
    }

    #[test]
    fn eq_is_bitwise_for_floats() {
        assert_eq!(Constant::f64(1.0), Constant::f64(1.0));
        // -0.0 and 0.0 are numerically equal but bitwise distinct: the
        // optimizer must not value-number them together blindly.
        assert_ne!(Constant::f64(-0.0), Constant::f64(0.0));
    }

    #[test]
    fn from_impls() {
        assert_eq!(Constant::from(true), Constant::I1(true));
        assert_eq!(Constant::from(7i32), Constant::I32(7));
        assert_eq!(Constant::from(7i64), Constant::I64(7));
        assert_eq!(Constant::from(0.5f32), Constant::f32(0.5));
        assert_eq!(Constant::from(0.5f64), Constant::f64(0.5));
    }

    #[test]
    fn display() {
        assert_eq!(Constant::I1(true).to_string(), "true");
        assert_eq!(Constant::I64(-9).to_string(), "-9");
        assert_eq!(Constant::f64(1.5).to_string(), "1.5");
    }
}

//! Dense entity side-tables: `Vec`-backed maps and bitsets keyed on the
//! arena ids ([`InstId`], [`BlockId`], [`FuncId`]).
//!
//! The IR stores instructions and blocks in per-function arenas with dense
//! `u32` indices, so per-pass side information never needs hashing: a
//! [`SecondaryMap`] is a plain `Vec` indexed by the raw id (missing keys
//! read as the default value, as in cranelift's `SecondaryMap`), and an
//! [`EntitySet`] is a bitset over one `u64` word per 64 entities. Iteration
//! order is index order — deterministic by construction, which is what
//! keeps report bytes independent of hasher state.
//!
//! [`EntitySet`] word buffers are recycled through a bounded thread-local
//! scratch pool: a hot pass that builds and drops a set per invocation
//! reuses the same allocation instead of touching the allocator each time.

use crate::entities::{BlockId, FuncId, InstId};
use std::cell::RefCell;
use std::marker::PhantomData;

/// An arena id that can key a dense side-table.
pub trait EntityKey: Copy {
    /// The dense index of this id.
    fn index(self) -> usize;
    /// Rebuild the id from a dense index.
    fn from_index(ix: usize) -> Self;
}

impl EntityKey for InstId {
    fn index(self) -> usize {
        self.0 as usize
    }
    fn from_index(ix: usize) -> Self {
        InstId(ix as u32)
    }
}

impl EntityKey for BlockId {
    fn index(self) -> usize {
        self.0 as usize
    }
    fn from_index(ix: usize) -> Self {
        BlockId(ix as u32)
    }
}

impl EntityKey for FuncId {
    fn index(self) -> usize {
        self.0 as usize
    }
    fn from_index(ix: usize) -> Self {
        FuncId(ix as u32)
    }
}

/// A dense map from an entity id to `V`: a `Vec` indexed by the raw id.
///
/// Every slot holds a value; keys that were never written read as the
/// default (`V::default()` unless built with [`SecondaryMap::with_default`]).
/// Writes past the current length grow the table, so no pre-sizing is
/// required (though [`SecondaryMap::with_capacity`] avoids regrowth).
#[derive(Debug, Clone)]
pub struct SecondaryMap<K, V> {
    vals: Vec<V>,
    default: V,
    _key: PhantomData<K>,
}

impl<K: EntityKey, V: Clone + Default> SecondaryMap<K, V> {
    /// An empty map whose missing keys read as `V::default()`.
    pub fn new() -> Self {
        Self::with_default(V::default())
    }

    /// An empty map pre-sized for `cap` entities.
    pub fn with_capacity(cap: usize) -> Self {
        let mut m = Self::new();
        m.vals.reserve(cap);
        m
    }
}

impl<K: EntityKey, V: Clone + Default> Default for SecondaryMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: EntityKey, V: Clone> SecondaryMap<K, V> {
    /// An empty map whose missing keys read as `default`.
    pub fn with_default(default: V) -> Self {
        SecondaryMap {
            vals: Vec::new(),
            default,
            _key: PhantomData,
        }
    }

    /// The value for `k` (the default if never written).
    pub fn get(&self, k: K) -> &V {
        self.vals.get(k.index()).unwrap_or(&self.default)
    }

    /// Mutable access to the value for `k`, growing the table as needed.
    pub fn get_mut(&mut self, k: K) -> &mut V {
        let ix = k.index();
        if ix >= self.vals.len() {
            self.vals.resize(ix + 1, self.default.clone());
        }
        &mut self.vals[ix]
    }

    /// Set the value for `k`, growing the table as needed.
    pub fn set(&mut self, k: K, v: V) {
        *self.get_mut(k) = v;
    }

    /// Reset every slot to the default, keeping the allocation.
    pub fn clear(&mut self) {
        self.vals.clear();
    }

    /// Number of allocated slots (NOT the number of written keys).
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// Whether no slot has been allocated yet.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// All allocated `(key, value)` slots in index order (including slots
    /// still holding the default).
    pub fn iter(&self) -> impl Iterator<Item = (K, &V)> + '_ {
        self.vals.iter().enumerate().map(|(ix, v)| (K::from_index(ix), v))
    }
}

impl<K: EntityKey, V: Clone> std::ops::Index<K> for SecondaryMap<K, V> {
    type Output = V;
    fn index(&self, k: K) -> &V {
        self.get(k)
    }
}

impl<K: EntityKey, V: Clone> std::ops::IndexMut<K> for SecondaryMap<K, V> {
    fn index_mut(&mut self, k: K) -> &mut V {
        self.get_mut(k)
    }
}

/// Size cap of the per-thread [`EntitySet`] word-buffer pool.
const SCRATCH_POOL_CAP: usize = 32;

thread_local! {
    /// Recycled `EntitySet` word buffers (see module docs).
    static SCRATCH: RefCell<Vec<Vec<u64>>> = const { RefCell::new(Vec::new()) };
}

/// A dense set of entity ids: one bit per id.
///
/// `new()` draws its word buffer from a bounded thread-local pool and
/// `Drop` returns it, so hot passes building a set per invocation reuse
/// one allocation. Iteration yields ids in increasing index order.
#[derive(Debug)]
pub struct EntitySet<K> {
    words: Vec<u64>,
    len: usize,
    _key: PhantomData<K>,
}

impl<K: EntityKey> EntitySet<K> {
    /// An empty set (buffer drawn from the thread-local scratch pool).
    pub fn new() -> Self {
        let mut words = SCRATCH
            .with(|p| p.borrow_mut().pop())
            .unwrap_or_default();
        words.iter_mut().for_each(|w| *w = 0);
        EntitySet {
            words,
            len: 0,
            _key: PhantomData,
        }
    }

    /// An empty set pre-sized for `cap` entities.
    pub fn with_capacity(cap: usize) -> Self {
        let mut s = Self::new();
        let want = cap.div_ceil(64);
        if s.words.len() < want {
            s.words.resize(want, 0);
        }
        s
    }

    /// Insert `k`; returns whether it was newly inserted.
    pub fn insert(&mut self, k: K) -> bool {
        let ix = k.index();
        let (w, b) = (ix / 64, ix % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let fresh = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        self.len += fresh as usize;
        fresh
    }

    /// Remove `k`; returns whether it was present.
    pub fn remove(&mut self, k: K) -> bool {
        let ix = k.index();
        let (w, b) = (ix / 64, ix % 64);
        match self.words.get_mut(w) {
            Some(word) if *word & (1 << b) != 0 => {
                *word &= !(1 << b);
                self.len -= 1;
                true
            }
            _ => false,
        }
    }

    /// Whether `k` is in the set.
    pub fn contains(&self, k: K) -> bool {
        let ix = k.index();
        self.words
            .get(ix / 64)
            .is_some_and(|w| w & (1 << (ix % 64)) != 0)
    }

    /// Number of ids in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Remove every id, keeping the allocation.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
        self.len = 0;
    }

    /// Ids in increasing index order.
    pub fn iter(&self) -> impl Iterator<Item = K> + '_ {
        self.words.iter().enumerate().flat_map(|(wix, &word)| {
            let mut rest = word;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let b = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                Some(K::from_index(wix * 64 + b))
            })
        })
    }
}

impl<K: EntityKey> Default for EntitySet<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: EntityKey> Clone for EntitySet<K> {
    fn clone(&self) -> Self {
        let mut s = Self::new();
        if s.words.len() < self.words.len() {
            s.words.resize(self.words.len(), 0);
        }
        s.words[..self.words.len()].copy_from_slice(&self.words);
        s.len = self.len;
        s
    }
}

impl<K: EntityKey> FromIterator<K> for EntitySet<K> {
    fn from_iter<I: IntoIterator<Item = K>>(iter: I) -> Self {
        let mut s = Self::new();
        for k in iter {
            s.insert(k);
        }
        s
    }
}

impl<K> Drop for EntitySet<K> {
    fn drop(&mut self) {
        if self.words.capacity() == 0 {
            return;
        }
        let words = std::mem::take(&mut self.words);
        // Too-small buffers are not worth recycling; a bounded pool keeps
        // the worst case at a few KB per thread.
        let _ = SCRATCH.try_with(|p| {
            let mut pool = p.borrow_mut();
            if pool.len() < SCRATCH_POOL_CAP {
                pool.push(words);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_reads_default_for_missing_keys() {
        let mut m: SecondaryMap<BlockId, u64> = SecondaryMap::new();
        assert_eq!(*m.get(BlockId::from_index(7)), 0);
        m.set(BlockId::from_index(7), 42);
        assert_eq!(m[BlockId::from_index(7)], 42);
        assert_eq!(*m.get(BlockId::from_index(3)), 0);
        assert_eq!(m.len(), 8);
    }

    #[test]
    fn map_with_custom_default() {
        let mut m: SecondaryMap<InstId, usize> = SecondaryMap::with_default(usize::MAX);
        assert_eq!(*m.get(InstId::from_index(0)), usize::MAX);
        m[InstId::from_index(2)] = 5;
        assert_eq!(*m.get(InstId::from_index(2)), 5);
        assert_eq!(*m.get(InstId::from_index(1)), usize::MAX);
    }

    #[test]
    fn set_insert_remove_iterate() {
        let mut s: EntitySet<InstId> = EntitySet::new();
        assert!(s.insert(InstId::from_index(3)));
        assert!(s.insert(InstId::from_index(100)));
        assert!(!s.insert(InstId::from_index(3)));
        assert_eq!(s.len(), 2);
        assert!(s.contains(InstId::from_index(100)));
        assert!(!s.contains(InstId::from_index(99)));
        let got: Vec<usize> = s.iter().map(|k| EntityKey::index(k)).collect();
        assert_eq!(got, vec![3, 100]);
        assert!(s.remove(InstId::from_index(3)));
        assert!(!s.remove(InstId::from_index(3)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn scratch_pool_recycles_buffers() {
        let cap = {
            let mut s: EntitySet<InstId> = EntitySet::new();
            s.insert(InstId::from_index(1000));
            s.words.capacity()
        };
        // The next set must reuse the pooled buffer — same capacity, reset
        // content.
        let s2: EntitySet<InstId> = EntitySet::new();
        assert!(s2.words.capacity() >= cap);
        assert!(s2.is_empty());
        assert!(!s2.contains(InstId::from_index(1000)));
    }
}

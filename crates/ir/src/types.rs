//! Scalar and pointer types of the IR.
//!
//! The type system is deliberately small: it mirrors the subset of LLVM IR
//! that GPU compute kernels exercise — booleans (`i1`), 32/64-bit integers,
//! 32/64-bit floats, and byte-addressed pointers.

use std::fmt;

/// The type of an IR [`Value`](crate::Value).
///
/// # Examples
///
/// ```
/// use uu_ir::Type;
/// assert_eq!(Type::I32.size_bytes(), 4);
/// assert!(Type::F64.is_float());
/// assert_eq!(Type::Ptr.to_string(), "ptr");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Type {
    /// 1-bit boolean, the result of comparisons and the operand of branches.
    I1,
    /// 32-bit signed-agnostic integer.
    I32,
    /// 64-bit signed-agnostic integer.
    I64,
    /// IEEE-754 single precision float.
    F32,
    /// IEEE-754 double precision float.
    F64,
    /// Byte-addressed pointer into simulated global memory.
    Ptr,
    /// The type of instructions that produce no value (stores, branches...).
    Void,
}

impl Type {
    /// Size of an in-memory object of this type, in bytes.
    ///
    /// `I1` loads and stores as a single byte. `Void` has size 0.
    pub fn size_bytes(self) -> u64 {
        match self {
            Type::I1 => 1,
            Type::I32 | Type::F32 => 4,
            Type::I64 | Type::F64 | Type::Ptr => 8,
            Type::Void => 0,
        }
    }

    /// Whether this is one of the integer types (`i1`, `i32`, `i64`).
    pub fn is_int(self) -> bool {
        matches!(self, Type::I1 | Type::I32 | Type::I64)
    }

    /// Whether this is one of the floating point types.
    pub fn is_float(self) -> bool {
        matches!(self, Type::F32 | Type::F64)
    }

    /// Whether values of this type can be stored to / loaded from memory.
    pub fn is_memory(self) -> bool {
        !matches!(self, Type::Void)
    }

    /// Bit width for integer types; `None` otherwise.
    pub fn int_bits(self) -> Option<u32> {
        match self {
            Type::I1 => Some(1),
            Type::I32 => Some(32),
            Type::I64 => Some(64),
            _ => None,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Type::I1 => "i1",
            Type::I32 => "i32",
            Type::I64 => "i64",
            Type::F32 => "f32",
            Type::F64 => "f64",
            Type::Ptr => "ptr",
            Type::Void => "void",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(Type::I1.size_bytes(), 1);
        assert_eq!(Type::I32.size_bytes(), 4);
        assert_eq!(Type::I64.size_bytes(), 8);
        assert_eq!(Type::F32.size_bytes(), 4);
        assert_eq!(Type::F64.size_bytes(), 8);
        assert_eq!(Type::Ptr.size_bytes(), 8);
        assert_eq!(Type::Void.size_bytes(), 0);
    }

    #[test]
    fn classification() {
        assert!(Type::I1.is_int());
        assert!(Type::I64.is_int());
        assert!(!Type::F32.is_int());
        assert!(Type::F32.is_float());
        assert!(!Type::Ptr.is_float());
        assert!(Type::Ptr.is_memory());
        assert!(!Type::Void.is_memory());
    }

    #[test]
    fn int_bits() {
        assert_eq!(Type::I1.int_bits(), Some(1));
        assert_eq!(Type::I32.int_bits(), Some(32));
        assert_eq!(Type::I64.int_bits(), Some(64));
        assert_eq!(Type::F64.int_bits(), None);
    }

    #[test]
    fn display() {
        let all = [
            Type::I1,
            Type::I32,
            Type::I64,
            Type::F32,
            Type::F64,
            Type::Ptr,
            Type::Void,
        ];
        let shown: Vec<String> = all.iter().map(|t| t.to_string()).collect();
        assert_eq!(shown, ["i1", "i32", "i64", "f32", "f64", "ptr", "void"]);
    }
}

//! quicksort — GPU quicksort partition step.
//!
//! Each thread partitions its own segment around a pivot with the classic
//! two-pointer scan: an outer loop driving two inner skip-scans plus a
//! conditional swap. The nest gives the pass its 15-loop population its
//! most intricate hot structure; the gains are small (paper ≈ 1.03×).

use crate::aux::aux_kernels;
use crate::bench::{checksum_f64, launch_into, Benchmark, BenchmarkInfo, RunOutput};
use uu_ir::{FCmpPred, Function, FunctionBuilder, ICmpPred, Module, Param, Type, Value};
use uu_simt::{ExecError, Gpu, KernelArg, LaunchConfig, Metrics};

/// Table I row.
pub const INFO: BenchmarkInfo = BenchmarkInfo {
    name: "quicksort",
    category: "Sorting",
    cli: "10 2048 2048",
    table_loops: 15,
    paper_compute_pct: 80.36,
    paper_rsd_pct: 0.29,
    hot_kernels: &["qs_partition"],
    binary_rest_size: 20000,
    launch_repeats: 15,
};

/// The benchmark registration.
pub fn benchmark() -> Benchmark {
    Benchmark {
        info: INFO,
        build,
        run,
    }
}

/// Hoare partition: outer loop with two inner scan loops and a swap.
pub fn partition_kernel() -> Function {
    let mut f = Function::new(
        "qs_partition",
        vec![
            Param::new("data", Type::Ptr),
            Param::new("out", Type::Ptr),
            Param::new("n", Type::I64),
            Param::new("pivot", Type::F64),
        ],
        Type::Void,
    );
    let entry = f.entry();
    let mut b = FunctionBuilder::new(&mut f);
    let oh = b.create_block(); // outer header
    let lscan_h = b.create_block();
    let lscan_b = b.create_block();
    let rscan_h = b.create_block();
    let rscan_b = b.create_block();
    let check = b.create_block();
    let swap = b.create_block();
    let exit = b.create_block();
    b.switch_to(entry);
    let gid = b.global_thread_id();
    let base = b.mul(gid, Value::Arg(2));
    let n1 = b.sub(Value::Arg(2), Value::imm(1i64));
    b.br(oh);
    b.switch_to(oh);
    let i = b.phi(Type::I64);
    let j = b.phi(Type::I64);
    b.add_phi_incoming(i, entry, Value::imm(0i64));
    b.add_phi_incoming(j, entry, n1);
    let cross0 = b.icmp(ICmpPred::Slt, i, j);
    b.cond_br(cross0, lscan_h, exit);
    // left scan: while (a[i] < pivot) i++
    b.switch_to(lscan_h);
    let il = b.phi(Type::I64);
    b.add_phi_incoming(il, oh, i);
    let pil = b.add(base, il);
    let ail_p = b.gep(Value::Arg(0), pil, 8);
    let ail = b.load(Type::F64, ail_p);
    let lless = b.fcmp(FCmpPred::Olt, ail, Value::Arg(3));
    b.cond_br(lless, lscan_b, rscan_h);
    b.switch_to(lscan_b);
    let il1 = b.add(il, Value::imm(1i64));
    b.add_phi_incoming(il, lscan_b, il1);
    b.br(lscan_h);
    // right scan: while (a[j] > pivot) j--
    b.switch_to(rscan_h);
    let jr = b.phi(Type::I64);
    b.add_phi_incoming(jr, lscan_h, j);
    let pjr = b.add(base, jr);
    let ajr_p = b.gep(Value::Arg(0), pjr, 8);
    let ajr = b.load(Type::F64, ajr_p);
    let rmore = b.fcmp(FCmpPred::Ogt, ajr, Value::Arg(3));
    b.cond_br(rmore, rscan_b, check);
    b.switch_to(rscan_b);
    let jr1 = b.sub(jr, Value::imm(1i64));
    b.add_phi_incoming(jr, rscan_b, jr1);
    b.br(rscan_h);
    // crossing check + swap
    b.switch_to(check);
    let cross = b.icmp(ICmpPred::Slt, il, jr);
    b.cond_br(cross, swap, exit);
    // j at the exit: the outer phi if the outer guard failed, the scanned
    // jr if the crossing check failed.
    b.switch_to(exit);
    let jout = b.phi(Type::I64);
    b.add_phi_incoming(jout, oh, j);
    b.add_phi_incoming(jout, check, jr);
    b.switch_to(swap);
    let pl = b.add(base, il);
    let al_p = b.gep(Value::Arg(0), pl, 8);
    let al = b.load(Type::F64, al_p);
    let pr = b.add(base, jr);
    let ar_p = b.gep(Value::Arg(0), pr, 8);
    let ar = b.load(Type::F64, ar_p);
    b.store(al_p, ar);
    b.store(ar_p, al);
    let il2 = b.add(il, Value::imm(1i64));
    let jr2 = b.sub(jr, Value::imm(1i64));
    b.add_phi_incoming(i, swap, il2);
    b.add_phi_incoming(j, swap, jr2);
    b.br(oh);
    b.switch_to(exit);
    let jf = b.cast(uu_ir::CastOp::SiToFp, jout, Type::F64);
    let po = b.gep(Value::Arg(1), gid, 8);
    b.store(po, jf);
    b.ret(None);
    f
}

fn build() -> Module {
    let mut m = Module::new("quicksort");
    m.add_function(partition_kernel());
    for f in aux_kernels(0x15, INFO.table_loops - 3) {
        m.add_function(f);
    }
    m
}

const N: i64 = 48;
const THREADS: usize = 64;

fn elem(t: usize, i: i64) -> f64 {
    // Values straddling the pivot so scans always terminate at sentinels.
    let v = ((t as f64) * 0.193 + (i as f64) * 0.761).sin();
    if i == 0 {
        -2.0
    } else if i == N - 1 {
        2.0
    } else {
        v
    }
}

fn run(m: &Module, gpu: &mut Gpu) -> Result<RunOutput, ExecError> {
    let mut data = Vec::new();
    for t in 0..THREADS {
        for i in 0..N {
            data.push(elem(t, i));
        }
    }
    let bd = gpu.mem.alloc_f64(&data)?;
    let bo = gpu.mem.alloc_f64(&vec![0.0; THREADS])?;
    let mut acc = (0.0f64, Metrics::default());
    launch_into(
        gpu,
        m,
        "qs_partition",
        LaunchConfig::new(THREADS as u32 / 32, 32),
        &[
            KernelArg::Buffer(bd),
            KernelArg::Buffer(bo),
            KernelArg::I64(N),
            KernelArg::F64(0.0),
        ],
        &mut acc,
    )?;
    let out = gpu.mem.read_f64(bo)?;
    let after = gpu.mem.read_f64(bd)?;
    Ok(RunOutput {
        kernel_time_ms: acc.0,
        metrics: acc.1,
        checksum: checksum_f64(&out) + checksum_f64(&after),
        transfer_bytes: (data.len() * 2 + out.len()) as u64 * 8,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_matches_cpu_reference() {
        let m = build();
        let mut gpu = Gpu::new();
        let got = run(&m, &mut gpu).unwrap();
        let mut data: Vec<f64> = Vec::new();
        for t in 0..THREADS {
            for i in 0..N {
                data.push(elem(t, i));
            }
        }
        let pivot = 0.0f64;
        let mut outs = Vec::new();
        for t in 0..THREADS {
            let seg = &mut data[t * N as usize..(t + 1) * N as usize];
            let (mut i, mut j) = (0i64, N - 1);
            while i < j {
                while seg[i as usize] < pivot {
                    i += 1;
                }
                while seg[j as usize] > pivot {
                    j -= 1;
                }
                if i < j {
                    seg.swap(i as usize, j as usize);
                    i += 1;
                    j -= 1;
                } else {
                    break;
                }
            }
            outs.push(j as f64);
        }
        let expect =
            crate::bench::checksum_f64(&outs) + crate::bench::checksum_f64(&data);
        assert_eq!(got.checksum, expect);
    }
}

//! mandelbrot — escape-time fractal iteration.
//!
//! The escape loop's trip count varies per pixel (thread), so unrolling
//! mostly lengthens divergent paths; the body's single bail-out diamond is
//! what unmerging cleans up. This is the one benchmark where *unmerge alone*
//! beats both unroll and u&u in the paper's Figure 7.

use crate::aux::aux_kernels;
use crate::bench::{checksum_i64, launch_into, Benchmark, BenchmarkInfo, RunOutput};
use uu_ir::{CastOp, FCmpPred, Function, FunctionBuilder, ICmpPred, Module, Param, Type, Value};
use uu_simt::{ExecError, Gpu, KernelArg, LaunchConfig, Metrics};

/// Table I row.
pub const INFO: BenchmarkInfo = BenchmarkInfo {
    name: "mandelbrot",
    category: "CV and image processing",
    cli: "100",
    table_loops: 1,
    paper_compute_pct: 14.47,
    paper_rsd_pct: 0.08,
    hot_kernels: &["mandel_escape"],
    binary_rest_size: 3000,
    launch_repeats: 29,
};

/// The benchmark registration.
pub fn benchmark() -> Benchmark {
    Benchmark {
        info: INFO,
        build,
        run,
    }
}

const MAX_ITER: i64 = 64;

/// The escape-time loop. The body contains a bail-out diamond (`|z|² > 4`
/// skips the update), giving unmerge a merge block to eliminate.
pub fn escape_kernel() -> Function {
    let mut f = Function::new(
        "mandel_escape",
        vec![Param::new("out", Type::Ptr), Param::new("scale", Type::F64)],
        Type::Void,
    );
    let entry = f.entry();
    let mut b = FunctionBuilder::new(&mut f);
    let header = b.create_block();
    let body = b.create_block();
    let live = b.create_block();
    let latch = b.create_block();
    let exit = b.create_block();
    b.switch_to(entry);
    let gid = b.global_thread_id();
    // Pixels are tiled so a warp covers a tiny screen region: the warp base
    // sets the coordinate, lanes add sub-pixel offsets.
    let wbase = b.and(gid, Value::imm(!31i64));
    let lane = b.and(gid, Value::imm(31i64));
    let wf = b.cast(CastOp::SiToFp, wbase, Type::F64);
    let lf = b.cast(CastOp::SiToFp, lane, Type::F64);
    let cr0 = b.fmul(wf, Value::Arg(1));
    let lane_off = b.fmul(lf, Value::imm(0.0004f64));
    let cr1 = b.fadd(cr0, lane_off);
    let cr = b.fsub(cr1, Value::imm(1.5f64));
    let ci = b.fmul(cr, Value::imm(0.37f64));
    b.br(header);
    b.switch_to(header);
    let i = b.phi(Type::I64);
    let zr = b.phi(Type::F64);
    let zi = b.phi(Type::F64);
    let esc = b.phi(Type::I64);
    b.add_phi_incoming(i, entry, Value::imm(0i64));
    b.add_phi_incoming(zr, entry, Value::imm(0.0f64));
    b.add_phi_incoming(zi, entry, Value::imm(0.0f64));
    b.add_phi_incoming(esc, entry, Value::imm(0i64));
    let more = b.icmp(ICmpPred::Slt, i, Value::imm(MAX_ITER));
    b.cond_br(more, body, exit);
    b.switch_to(body);
    let zr2 = b.fmul(zr, zr);
    let zi2 = b.fmul(zi, zi);
    let mag = b.fadd(zr2, zi2);
    let alive = b.fcmp(FCmpPred::Ole, mag, Value::imm(4.0f64));
    b.cond_br(alive, live, latch);
    b.switch_to(live);
    let cross = b.fmul(zr, zi);
    let zi_n0 = b.fadd(cross, cross);
    let zi_n = b.fadd(zi_n0, ci);
    let zr_d = b.fsub(zr2, zi2);
    let zr_n = b.fadd(zr_d, cr);
    let esc_n = b.add(esc, Value::imm(1i64));
    b.br(latch);
    b.switch_to(latch);
    let zrm = b.phi(Type::F64);
    let zim = b.phi(Type::F64);
    let escm = b.phi(Type::I64);
    b.add_phi_incoming(zrm, body, zr);
    b.add_phi_incoming(zrm, live, zr_n);
    b.add_phi_incoming(zim, body, zi);
    b.add_phi_incoming(zim, live, zi_n);
    b.add_phi_incoming(escm, body, esc);
    b.add_phi_incoming(escm, live, esc_n);
    let i1 = b.add(i, Value::imm(1i64));
    b.add_phi_incoming(i, latch, i1);
    b.add_phi_incoming(zr, latch, zrm);
    b.add_phi_incoming(zi, latch, zim);
    b.add_phi_incoming(esc, latch, escm);
    b.br(header);
    b.switch_to(exit);
    let po = b.gep(Value::Arg(0), gid, 8);
    b.store(po, esc);
    b.ret(None);
    f
}

fn build() -> Module {
    let mut m = Module::new("mandelbrot");
    m.add_function(escape_kernel());
    for f in aux_kernels(0x3a, INFO.table_loops.saturating_sub(1)) {
        m.add_function(f);
    }
    m
}

const THREADS: usize = 128;
const SCALE: f64 = 0.021;

fn run(m: &Module, gpu: &mut Gpu) -> Result<RunOutput, ExecError> {
    let bo = gpu.mem.alloc_i64(&vec![0; THREADS])?;
    let mut acc = (0.0f64, Metrics::default());
    launch_into(
        gpu,
        m,
        "mandel_escape",
        LaunchConfig::new(THREADS as u32 / 32, 32),
        &[KernelArg::Buffer(bo), KernelArg::F64(SCALE)],
        &mut acc,
    )?;
    let out = gpu.mem.read_i64(bo)?;
    Ok(RunOutput {
        kernel_time_ms: acc.0,
        metrics: acc.1,
        checksum: checksum_i64(&out),
        // An image-heavy app: most time is spent moving frames (paper %C
        // is 14.5%).
        transfer_bytes: out.len() as u64 * 8 + 3_000_000,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_matches_cpu_reference() {
        let m = build();
        let mut gpu = Gpu::new();
        let got = run(&m, &mut gpu).unwrap();
        let mut expect = Vec::new();
        for t in 0..THREADS {
            let cr = (t & !31) as f64 * SCALE + (t & 31) as f64 * 0.0004 - 1.5;
            let ci = cr * 0.37;
            let (mut zr, mut zi, mut esc) = (0.0f64, 0.0f64, 0i64);
            for _ in 0..MAX_ITER {
                let (zr2, zi2) = (zr * zr, zi * zi);
                if zr2 + zi2 <= 4.0 {
                    let cross = zr * zi;
                    zi = cross + cross + ci;
                    zr = zr2 - zi2 + cr;
                    esc += 1;
                }
            }
            expect.push(esc);
        }
        assert_eq!(got.checksum, crate::bench::checksum_i64(&expect));
    }
}

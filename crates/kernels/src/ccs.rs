//! ccs — condition-dependent correlation subgroups (bicluster mining).
//!
//! The kernels iterate many *small, tight* reduction loops over synthetic
//! constant-pattern expression data (the paper's `Data_Constant` input) that
//! lives in registers. Loop-control overhead is therefore a large fraction
//! of each iteration, and the baseline's runtime unrolling (one exit check
//! per four iterations) pays off richly; when the u&u heuristic claims
//! these loops it suppresses that unrolling without enabling anything — the
//! paper's largest heuristic regression (3463 ms vs 1629 ms, ≈ 0.47×).

use crate::aux::aux_kernels;
use crate::bench::{checksum_f64, launch_into, Benchmark, BenchmarkInfo, RunOutput};
use uu_ir::{CastOp, Function, FunctionBuilder, ICmpPred, Module, Param, Type, Value};
use uu_simt::{ExecError, Gpu, KernelArg, LaunchConfig, Metrics};

/// Table I row.
pub const INFO: BenchmarkInfo = BenchmarkInfo {
    name: "ccs",
    category: "Bioinformatics",
    cli: "-t 0.9 -i Data_Constant_100_1_bicluster.txt -m 50 -p 1 -g 100.0 -r 100",
    table_loops: 9,
    paper_compute_pct: 99.98,
    paper_rsd_pct: 0.2,
    hot_kernels: &["ccs_correlate"],
    binary_rest_size: 800,
    launch_repeats: 35000,
};

/// The benchmark registration.
pub fn benchmark() -> Benchmark {
    Benchmark {
        info: INFO,
        build,
        run,
    }
}

/// Three tight register-resident reduction loops per thread: dot product
/// and the two norms of per-thread synthetic expression rows
/// `a_i = seed + 0.02·i`, `b_i = 0.75 + (0.01·seed)·i`.
pub fn correlation_kernel() -> Function {
    let mut f = Function::new(
        "ccs_correlate",
        vec![
            Param::new("seeds", Type::Ptr),
            Param::new("out", Type::Ptr),
            Param::new("n", Type::I64),
        ],
        Type::Void,
    );
    let entry = f.entry();
    let mut b = FunctionBuilder::new(&mut f);
    b.switch_to(entry);
    let gid = b.global_thread_id();
    let ps = b.gep(Value::Arg(0), gid, 8);
    let seed = b.load(Type::F64, ps);
    let db_step = b.fmul(seed, Value::imm(0.01f64));
    let mut cur = entry;
    let mut sums = Vec::new();
    for which in 0..3 {
        let mut bb = FunctionBuilder::new(&mut f);
        let h = bb.create_block();
        let body = bb.create_block();
        let next = bb.create_block();
        bb.switch_to(cur);
        bb.br(h);
        bb.switch_to(h);
        let i = bb.phi(Type::I64);
        let s = bb.phi(Type::F64);
        bb.add_phi_incoming(i, cur, Value::imm(0i64));
        bb.add_phi_incoming(s, cur, Value::imm(0.0f64));
        let c = bb.icmp(ICmpPred::Slt, i, Value::Arg(2));
        bb.cond_br(c, body, next);
        bb.switch_to(body);
        let fi = bb.cast(CastOp::SiToFp, i, Type::F64);
        let astep = bb.fmul(fi, Value::imm(0.02f64));
        let va = bb.fadd(seed, astep);
        let term = match which {
            0 => {
                let vb0 = bb.fmul(fi, db_step);
                let vb = bb.fadd(vb0, Value::imm(0.75f64));
                bb.fmul(va, vb)
            }
            1 => bb.fmul(va, va),
            _ => {
                let vb0 = bb.fmul(fi, db_step);
                let vb = bb.fadd(vb0, Value::imm(0.75f64));
                bb.fmul(vb, vb)
            }
        };
        let s1 = bb.fadd(s, term);
        let i1 = bb.add(i, Value::imm(1i64));
        bb.add_phi_incoming(i, body, i1);
        bb.add_phi_incoming(s, body, s1);
        bb.br(h);
        bb.switch_to(next);
        sums.push(s);
        cur = next;
    }
    let mut bb = FunctionBuilder::new(&mut f);
    bb.switch_to(cur);
    let denom = bb.fmul(sums[1], sums[2]);
    let denom1 = bb.fadd(denom, Value::imm(1e-9f64));
    let r = bb.fdiv(sums[0], denom1);
    let po = bb.gep(Value::Arg(1), gid, 8);
    bb.store(po, r);
    bb.ret(None);
    f
}

fn build() -> Module {
    let mut m = Module::new("ccs");
    m.add_function(correlation_kernel());
    for f in aux_kernels(0xcc, INFO.table_loops - 3) {
        m.add_function(f);
    }
    m
}

const N: i64 = 96;
const THREADS: usize = 128;

fn seed(t: usize) -> f64 {
    1.0 + (t % 13) as f64 * 0.05
}

fn run(m: &Module, gpu: &mut Gpu) -> Result<RunOutput, ExecError> {
    let seeds: Vec<f64> = (0..THREADS).map(seed).collect();
    let bs = gpu.mem.alloc_f64(&seeds)?;
    let bo = gpu.mem.alloc_f64(&vec![0.0; THREADS])?;
    let mut acc = (0.0f64, Metrics::default());
    launch_into(
        gpu,
        m,
        "ccs_correlate",
        LaunchConfig::new(THREADS as u32 / 32, 32),
        &[
            KernelArg::Buffer(bs),
            KernelArg::Buffer(bo),
            KernelArg::I64(N),
        ],
        &mut acc,
    )?;
    let out = gpu.mem.read_f64(bo)?;
    Ok(RunOutput {
        kernel_time_ms: acc.0,
        metrics: acc.1,
        checksum: checksum_f64(&out),
        transfer_bytes: (seeds.len() + out.len()) as u64 * 8 + 80_000,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correlation_matches_cpu_reference() {
        let m = build();
        let mut gpu = Gpu::new();
        let got = run(&m, &mut gpu).unwrap();
        let mut expect = Vec::new();
        for t in 0..THREADS {
            let sd = seed(t);
            let db = sd * 0.01;
            let (mut dot, mut na, mut nb) = (0.0f64, 0.0f64, 0.0f64);
            for i in 0..N {
                let fi = i as f64;
                let a = sd + fi * 0.02;
                let b = fi * db + 0.75;
                dot += a * b;
                na += a * a;
                nb += b * b;
            }
            expect.push(dot / (na * nb + 1e-9));
        }
        assert_eq!(got.checksum, crate::bench::checksum_f64(&expect));
    }
}

//! libor — LIBOR market-model swaption portfolio.
//!
//! Each thread rolls forward interest-rate paths; an exercise flag decays
//! monotonically (once a swaption is exercised it stays exercised), the
//! small-condition shape u&u exploits for the paper's modest 1.057×.

use crate::aux::aux_kernels;
use crate::bench::{checksum_f64, launch_into, Benchmark, BenchmarkInfo, RunOutput};
use uu_ir::{CastOp, Function, FunctionBuilder, ICmpPred, Module, Param, Type, Value};
use uu_simt::{ExecError, Gpu, KernelArg, LaunchConfig, Metrics};

/// Table I row.
pub const INFO: BenchmarkInfo = BenchmarkInfo {
    name: "libor",
    category: "Finance",
    cli: "100",
    table_loops: 8,
    paper_compute_pct: 99.99,
    paper_rsd_pct: 0.07,
    hot_kernels: &["libor_path"],
    binary_rest_size: 5000,
    launch_repeats: 200000,
};

/// The benchmark registration.
pub fn benchmark() -> Benchmark {
    Benchmark {
        info: INFO,
        build,
        run,
    }
}

/// Path-rolling loop with a monotone exercise flag.
pub fn path_kernel() -> Function {
    let mut f = Function::new(
        "libor_path",
        vec![
            Param::new("exercise", Type::Ptr),
            Param::new("out", Type::Ptr),
            Param::new("steps", Type::I64),
        ],
        Type::Void,
    );
    let entry = f.entry();
    let mut b = FunctionBuilder::new(&mut f);
    let header = b.create_block();
    let body = b.create_block();
    let active = b.create_block();
    let latch = b.create_block();
    let exit = b.create_block();
    b.switch_to(entry);
    let gid = b.global_thread_id();
    let pe = b.gep(Value::Arg(0), gid, 8);
    let ex0 = b.load(Type::I64, pe);
    b.br(header);
    b.switch_to(header);
    let i = b.phi(Type::I64);
    let live = b.phi(Type::I64);
    let rate = b.phi(Type::F64);
    b.add_phi_incoming(i, entry, Value::imm(0i64));
    b.add_phi_incoming(live, entry, ex0);
    b.add_phi_incoming(rate, entry, Value::imm(0.05f64));
    let more = b.icmp(ICmpPred::Slt, i, Value::Arg(2));
    b.cond_br(more, body, exit);
    b.switch_to(body);
    let fi = b.cast(CastOp::SiToFp, i, Type::F64);
    let drift = b.fmul(fi, Value::imm(1e-4f64));
    let rate1 = b.fadd(rate, drift);
    let isl = b.icmp(ICmpPred::Sgt, live, Value::imm(0i64));
    b.cond_br(isl, active, latch);
    b.switch_to(active);
    let dv = b.fdiv(rate1, Value::imm(16.0f64));
    let rate_a = b.fsub(rate1, dv);
    let live_a = b.sub(live, Value::imm(1i64));
    b.br(latch);
    b.switch_to(latch);
    let ratem = b.phi(Type::F64);
    let livem = b.phi(Type::I64);
    b.add_phi_incoming(ratem, body, rate1);
    b.add_phi_incoming(ratem, active, rate_a);
    b.add_phi_incoming(livem, body, live);
    b.add_phi_incoming(livem, active, live_a);
    let i1 = b.add(i, Value::imm(1i64));
    b.add_phi_incoming(i, latch, i1);
    b.add_phi_incoming(live, latch, livem);
    b.add_phi_incoming(rate, latch, ratem);
    b.br(header);
    b.switch_to(exit);
    let po = b.gep(Value::Arg(1), gid, 8);
    b.store(po, rate);
    b.ret(None);
    f
}

fn build() -> Module {
    let mut m = Module::new("libor");
    m.add_function(path_kernel());
    for f in aux_kernels(0x11, INFO.table_loops - 1) {
        m.add_function(f);
    }
    m
}

const STEPS: i64 = 40;
const THREADS: usize = 128;

fn run(m: &Module, gpu: &mut Gpu) -> Result<RunOutput, ExecError> {
    let exercise: Vec<i64> = (0..THREADS).map(|t| ((t / 32) % 2) as i64 * 3).collect();
    let be = gpu.mem.alloc_i64(&exercise)?;
    let bo = gpu.mem.alloc_f64(&vec![0.0; THREADS])?;
    let mut acc = (0.0f64, Metrics::default());
    launch_into(
        gpu,
        m,
        "libor_path",
        LaunchConfig::new(THREADS as u32 / 32, 32),
        &[
            KernelArg::Buffer(be),
            KernelArg::Buffer(bo),
            KernelArg::I64(STEPS),
        ],
        &mut acc,
    )?;
    let out = gpu.mem.read_f64(bo)?;
    Ok(RunOutput {
        kernel_time_ms: acc.0,
        metrics: acc.1,
        checksum: checksum_f64(&out),
        transfer_bytes: (exercise.len() + out.len()) as u64 * 8,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paths_match_cpu_reference() {
        let m = build();
        let mut gpu = Gpu::new();
        let got = run(&m, &mut gpu).unwrap();
        let mut expect = Vec::new();
        for t in 0..THREADS {
            let mut live = ((t / 32) % 2) as i64 * 3;
            let mut rate = 0.05f64;
            for i in 0..STEPS {
                rate += i as f64 * 1e-4;
                if live > 0 {
                    rate -= rate / 16.0;
                    live -= 1;
                }
            }
            expect.push(rate);
        }
        assert_eq!(got.checksum, crate::bench::checksum_f64(&expect));
    }
}

//! coordinates — geodetic coordinate conversion.
//!
//! The kernel iterates six short fixed-trip-count refinement loops. The
//! baseline *fully unrolls* all of them, pushing the kernel past the
//! instruction cache and stalling on fetch; adding the u&u pass tags the
//! loops so the baseline unroller leaves them alone, which happens to be
//! faster — the paper verified this interaction by disabling unrolling
//! explicitly and measuring the same 1.11× speedup (§IV-C RQ1).

use crate::aux::aux_kernels;
use crate::bench::{checksum_f64, launch_into, Benchmark, BenchmarkInfo, RunOutput};
use uu_ir::{CastOp, Function, FunctionBuilder, ICmpPred, Module, Param, Type, Value};
use uu_simt::{ExecError, Gpu, KernelArg, LaunchConfig, Metrics};

/// Table I row.
pub const INFO: BenchmarkInfo = BenchmarkInfo {
    name: "coordinates",
    category: "Geographic information system",
    cli: "10000000 1000",
    table_loops: 6,
    paper_compute_pct: 92.63,
    paper_rsd_pct: 0.06,
    hot_kernels: &["coord_convert"],
    binary_rest_size: 8000,
    launch_repeats: 28,
};

/// The benchmark registration.
pub fn benchmark() -> Benchmark {
    Benchmark {
        info: INFO,
        build,
        run,
    }
}

const TRIP: i64 = 32;
const STAGES: usize = 6;

/// Six sequential refinement loops, each with trip count 32 and a meaty
/// body (the shape that makes full unrolling overflow the i-cache).
pub fn convert_kernel() -> Function {
    let mut f = Function::new(
        "coord_convert",
        vec![Param::new("inp", Type::Ptr), Param::new("out", Type::Ptr)],
        Type::Void,
    );
    let entry = f.entry();
    let mut b = FunctionBuilder::new(&mut f);
    b.switch_to(entry);
    let gid = b.global_thread_id();
    let pa = b.gep(Value::Arg(0), gid, 8);
    let x0 = b.load(Type::F64, pa);
    let mut cur = f.entry();
    let mut x = x0;
    // Six refinement stages.
    for s in 0..STAGES {
        let mut bb = FunctionBuilder::new(&mut f);
        let h = bb.create_block();
        let body = bb.create_block();
        let next = bb.create_block();
        bb.switch_to(cur);
        bb.br(h);
        bb.switch_to(h);
        let i = bb.phi(Type::I64);
        let v = bb.phi(Type::F64);
        bb.add_phi_incoming(i, cur, Value::imm(0i64));
        bb.add_phi_incoming(v, cur, x);
        let c = bb.icmp(ICmpPred::Slt, i, Value::imm(TRIP));
        bb.cond_br(c, body, next);
        bb.switch_to(body);
        // A body of ~16 size units of genuine flops (Bowring-style
        // refinement steps, unrolled arithmetically).
        let k = bb.cast(CastOp::SiToFp, i, Type::F64);
        let t0 = bb.fmul(v, Value::imm(0.99987 + s as f64 * 1e-5));
        let t1 = bb.fadd(t0, k);
        let t2 = bb.fmul(t1, t1);
        let t3 = bb.fadd(t2, Value::imm(1.0f64));
        let t4 = bb.fdiv(t1, t3);
        let t5 = bb.fmul(t4, Value::imm(0.5f64));
        let t6 = bb.fadd(v, t5);
        let t7 = bb.fmul(t6, Value::imm(0.99999f64));
        let t8 = bb.fadd(t7, Value::imm(1e-7f64));
        let t9 = bb.fsub(t8, t5);
        let t10 = bb.fmul(t9, Value::imm(1.0000001f64));
        let u1 = bb.fadd(t10, Value::imm(0.001f64));
        let u2 = bb.fmul(u1, Value::imm(0.9999f64));
        let u3 = bb.fmul(u2, u2);
        let u4 = bb.fadd(u3, Value::imm(2.0f64));
        let u5 = bb.fdiv(u2, u4);
        let u6 = bb.fmul(u5, Value::imm(0.25f64));
        let u7 = bb.fadd(u2, u6);
        let u8 = bb.fmul(u7, Value::imm(1.000001f64));
        let u9 = bb.fadd(u8, Value::imm(1e-8f64));
        let i1 = bb.add(i, Value::imm(1i64));
        bb.add_phi_incoming(i, body, i1);
        bb.add_phi_incoming(v, body, u9);
        bb.br(h);
        bb.switch_to(next);
        x = v;
        cur = next;
    }
    let mut bb = FunctionBuilder::new(&mut f);
    bb.switch_to(cur);
    let po = bb.gep(Value::Arg(1), gid, 8);
    bb.store(po, x);
    bb.ret(None);
    f
}

fn build() -> Module {
    let mut m = Module::new("coordinates");
    m.add_function(convert_kernel());
    for f in aux_kernels(0xc9, INFO.table_loops - STAGES.min(INFO.table_loops)) {
        m.add_function(f);
    }
    m
}

const THREADS: usize = 128;

fn run(m: &Module, gpu: &mut Gpu) -> Result<RunOutput, ExecError> {
    let inp: Vec<f64> = (0..THREADS).map(|i| 40.0 + i as f64 * 0.01).collect();
    let bi = gpu.mem.alloc_f64(&inp)?;
    let bo = gpu.mem.alloc_f64(&vec![0.0; THREADS])?;
    let mut acc = (0.0f64, Metrics::default());
    launch_into(
        gpu,
        m,
        "coord_convert",
        LaunchConfig::new(THREADS as u32 / 32, 32),
        &[KernelArg::Buffer(bi), KernelArg::Buffer(bo)],
        &mut acc,
    )?;
    let out = gpu.mem.read_f64(bo)?;
    Ok(RunOutput {
        kernel_time_ms: acc.0,
        metrics: acc.1,
        checksum: checksum_f64(&out),
        transfer_bytes: (inp.len() + out.len()) as u64 * 8,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convert_matches_cpu_reference() {
        let m = build();
        let mut gpu = Gpu::new();
        let got = run(&m, &mut gpu).unwrap();
        let mut expect = Vec::new();
        for t in 0..THREADS {
            let mut x = 40.0 + t as f64 * 0.01;
            for s in 0..STAGES {
                let mut v = x;
                for i in 0..TRIP {
                    let k = i as f64;
                    let t1 = v * (0.99987 + s as f64 * 1e-5) + k;
                    let t5 = t1 / (t1 * t1 + 1.0) * 0.5;
                    let t10 = (((v + t5) * 0.99999 + 1e-7) - t5) * 1.0000001;
                    let u2 = (t10 + 0.001) * 0.9999;
                    let u5 = u2 / (u2 * u2 + 2.0);
                    v = (u2 + u5 * 0.25) * 1.000001 + 1e-8;
                }
                x = v;
            }
            expect.push(x);
        }
        assert_eq!(got.checksum, crate::bench::checksum_f64(&expect));
    }

    #[test]
    fn six_loops_in_hot_kernel() {
        let f = convert_kernel();
        let dom = uu_analysis::DomTree::compute(&f);
        let forest = uu_analysis::LoopForest::compute(&f, &dom);
        assert_eq!(forest.len(), 6);
    }
}

//! contract — tensor contraction kernels.
//!
//! Six medium reduction loops with per-iteration, data-dependent masks: u&u
//! can prove nothing across iterations, so path duplication only multiplies
//! code. The heuristic transforms many of the loops and the kernel's
//! working set overflows the instruction cache — the paper's contained
//! slowdown (0.83×, the heuristic at least picking small factors), and the
//! largest heuristic compile-time increase (4.58×) because so many loops
//! get transformed.

use crate::aux::aux_kernels;
use crate::bench::{checksum_f64, launch_into, Benchmark, BenchmarkInfo, RunOutput};
use uu_ir::{Function, FunctionBuilder, ICmpPred, Module, Param, Type, Value};
use uu_simt::{ExecError, Gpu, KernelArg, LaunchConfig, Metrics};

/// Table I row.
pub const INFO: BenchmarkInfo = BenchmarkInfo {
    name: "contract",
    category: "Data compression/reduction",
    cli: "64 5",
    table_loops: 46,
    paper_compute_pct: 99.61,
    paper_rsd_pct: 0.76,
    hot_kernels: &["contract_masked"],
    binary_rest_size: 1500,
    launch_repeats: 230,
};

/// The benchmark registration.
pub fn benchmark() -> Benchmark {
    Benchmark {
        info: INFO,
        build,
        run,
    }
}

const STAGES: usize = 6;

/// Six masked contraction loops in sequence. Every iteration's branch
/// depends on freshly loaded data — nothing for u&u to exploit.
pub fn contract_kernel() -> Function {
    let mut f = Function::new(
        "contract_masked",
        vec![
            Param::new("vals", Type::Ptr),
            Param::new("mask", Type::Ptr),
            Param::new("out", Type::Ptr),
            Param::new("n", Type::I64),
        ],
        Type::Void,
    );
    let entry = f.entry();
    let mut b = FunctionBuilder::new(&mut f);
    b.switch_to(entry);
    let gid = b.global_thread_id();
    let base = b.mul(gid, Value::Arg(3));
    let mut cur = entry;
    let mut accs = Vec::new();
    for s in 0..STAGES {
        let mut bb = FunctionBuilder::new(&mut f);
        let h = bb.create_block();
        let body = bb.create_block();
        let take = bb.create_block();
        let latch = bb.create_block();
        let next = bb.create_block();
        bb.switch_to(cur);
        bb.br(h);
        bb.switch_to(h);
        let i = bb.phi(Type::I64);
        let acc = bb.phi(Type::F64);
        bb.add_phi_incoming(i, cur, Value::imm(0i64));
        bb.add_phi_incoming(acc, cur, Value::imm(0.0f64));
        let c = bb.icmp(ICmpPred::Slt, i, Value::Arg(3));
        bb.cond_br(c, body, next);
        bb.switch_to(body);
        let ix = bb.add(base, i);
        let pm = bb.gep(Value::Arg(1), ix, 8);
        let mask = bb.load(Type::I64, pm);
        let bit = bb.and(mask, Value::imm(1i64 << s));
        let hit = bb.icmp(ICmpPred::Ne, bit, Value::imm(0i64));
        bb.cond_br(hit, take, latch);
        bb.switch_to(take);
        let pv = bb.gep(Value::Arg(0), ix, 8);
        let v = bb.load(Type::F64, pv);
        let w = bb.fmul(v, Value::imm(1.0 + s as f64 * 0.1));
        let acc_t = bb.fadd(acc, w);
        bb.br(latch);
        bb.switch_to(latch);
        let accm = bb.phi(Type::F64);
        bb.add_phi_incoming(accm, body, acc);
        bb.add_phi_incoming(accm, take, acc_t);
        let i1 = bb.add(i, Value::imm(1i64));
        bb.add_phi_incoming(i, latch, i1);
        bb.add_phi_incoming(acc, latch, accm);
        bb.br(h);
        bb.switch_to(next);
        accs.push(acc);
        cur = next;
    }
    let mut bb = FunctionBuilder::new(&mut f);
    bb.switch_to(cur);
    let mut total = accs[0];
    for a in accs.iter().skip(1) {
        total = bb.fadd(total, *a);
    }
    let po = bb.gep(Value::Arg(2), gid, 8);
    bb.store(po, total);
    bb.ret(None);
    f
}

fn build() -> Module {
    let mut m = Module::new("contract");
    m.add_function(contract_kernel());
    for f in aux_kernels(0xc7, INFO.table_loops - STAGES) {
        m.add_function(f);
    }
    m
}

const N: i64 = 40;
const THREADS: usize = 128;

fn mask_at(t: usize, i: i64) -> i64 {
    // Sparsity masks are shared per warp (threads of a warp process the
    // same tile of the contraction), keeping the branches coherent.
    (((t / 32) as i64 * 2654435761 + i * 40503) >> 3) & 0x3f
}

fn val_at(t: usize, i: i64) -> f64 {
    ((t as f64) * 0.03 + (i as f64) * 0.17).sin() + 1.5
}

fn run(m: &Module, gpu: &mut Gpu) -> Result<RunOutput, ExecError> {
    let mut vals = Vec::new();
    let mut mask = Vec::new();
    for t in 0..THREADS {
        for i in 0..N {
            vals.push(val_at(t, i));
            mask.push(mask_at(t, i));
        }
    }
    let bv = gpu.mem.alloc_f64(&vals)?;
    let bm = gpu.mem.alloc_i64(&mask)?;
    let bo = gpu.mem.alloc_f64(&vec![0.0; THREADS])?;
    let mut acc = (0.0f64, Metrics::default());
    launch_into(
        gpu,
        m,
        "contract_masked",
        LaunchConfig::new(THREADS as u32 / 32, 32),
        &[
            KernelArg::Buffer(bv),
            KernelArg::Buffer(bm),
            KernelArg::Buffer(bo),
            KernelArg::I64(N),
        ],
        &mut acc,
    )?;
    let out = gpu.mem.read_f64(bo)?;
    Ok(RunOutput {
        kernel_time_ms: acc.0,
        metrics: acc.1,
        checksum: checksum_f64(&out),
        transfer_bytes: (vals.len() + mask.len() + out.len()) as u64 * 8,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contraction_matches_cpu_reference() {
        let m = build();
        let mut gpu = Gpu::new();
        let got = run(&m, &mut gpu).unwrap();
        let mut expect = Vec::new();
        for t in 0..THREADS {
            let mut total = 0.0f64;
            for s in 0..STAGES {
                let mut acc = 0.0f64;
                for i in 0..N {
                    if mask_at(t, i) & (1 << s) != 0 {
                        acc += val_at(t, i) * (1.0 + s as f64 * 0.1);
                    }
                }
                total += acc;
            }
            expect.push(total);
        }
        assert_eq!(got.checksum, crate::bench::checksum_f64(&expect));
    }
}

//! The benchmark registry and common run plumbing.

use uu_ir::Module;
use uu_simt::{ExecError, Gpu, Metrics};

/// Static description of a benchmark — the non-measured columns of the
/// paper's Table I.
#[derive(Debug, Clone, Copy)]
pub struct BenchmarkInfo {
    /// Application name as in Table I.
    pub name: &'static str,
    /// Application domain category.
    pub category: &'static str,
    /// The paper's command line (documentation; our workloads are scaled).
    pub cli: &'static str,
    /// Number of loops the pass discovers (Table I `L`).
    pub table_loops: usize,
    /// The paper's measured fraction of time in compute kernels, for
    /// comparison against our simulated `%C`.
    pub paper_compute_pct: f64,
    /// The paper's baseline relative standard deviation (Table I), which
    /// calibrates the harness's synthetic measurement-noise model.
    pub paper_rsd_pct: f64,
    /// Names of the kernels the workload actually launches; transforms on
    /// any other function cannot change kernel time.
    pub hot_kernels: &'static [&'static str],
    /// Size (in code-size units) of the rest of the application binary —
    /// host code, runtime, libraries — that the paper's whole-binary size
    /// comparison divides by ("if an application is large such as XSBench,
    /// the relative code size increase will not be large"; conversely the
    /// optimized loops of ccs/complex/haccmk/rainflow dominate theirs).
    pub binary_rest_size: u64,
    /// How many times the application launches its kernels end-to-end (the
    /// paper's CLI arguments are mostly iteration counts, e.g. complex's
    /// `10000000 1000`). The workload simulates one representative launch;
    /// total kernel time is `launch_repeats ×` that, which is what weighs
    /// kernels against one-time transfers in Table I's `%C`.
    pub launch_repeats: u32,
}

/// Result of running a benchmark's workload once.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// Sum of all kernel execution times (the paper's timing metric).
    pub kernel_time_ms: f64,
    /// Aggregated hardware counters over all launches.
    pub metrics: Metrics,
    /// Order-independent checksum over every output buffer; must be
    /// identical across compiler configurations.
    pub checksum: f64,
    /// Host↔device transfer volume (both directions) in bytes.
    pub transfer_bytes: u64,
}

impl RunOutput {
    /// Transfer time under a PCIe gen3-ish model (~12 GB/s plus fixed
    /// driver/launch cost).
    pub fn transfer_ms(&self) -> f64 {
        0.02 + self.transfer_bytes as f64 / 12.0e9 * 1e3
    }

    /// Fraction of end-to-end time spent in compute kernels (Table I `%C`).
    pub fn compute_pct(&self) -> f64 {
        100.0 * self.kernel_time_ms / (self.kernel_time_ms + self.transfer_ms())
    }
}

/// A benchmark: metadata, a module builder and a workload runner.
///
/// `build` produces the IR the compiler pipelines transform; `run` executes
/// the *hot* kernels of a (possibly transformed) module on the simulator.
#[derive(Clone, Copy)]
pub struct Benchmark {
    /// Table I metadata.
    pub info: BenchmarkInfo,
    /// Build the application module (hot + auxiliary kernels).
    pub build: fn() -> Module,
    /// Execute the workload, returning timing/counters/checksum.
    ///
    /// # Errors
    ///
    /// Propagates [`ExecError`] from the simulator (a miscompile typically
    /// surfaces as an undefined-value or out-of-bounds error here).
    pub run: fn(&Module, &mut Gpu) -> Result<RunOutput, ExecError>,
}

impl std::fmt::Debug for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Benchmark")
            .field("info", &self.info)
            .finish()
    }
}

/// All 16 benchmarks, in Table I order.
pub fn all_benchmarks() -> Vec<Benchmark> {
    vec![
        crate::bezier::benchmark(),
        crate::bn::benchmark(),
        crate::bspline::benchmark(),
        crate::ccs::benchmark(),
        crate::clink::benchmark(),
        crate::complex::benchmark(),
        crate::contract::benchmark(),
        crate::coordinates::benchmark(),
        crate::haccmk::benchmark(),
        crate::lavamd::benchmark(),
        crate::libor::benchmark(),
        crate::mandelbrot::benchmark(),
        crate::qtclustering::benchmark(),
        crate::quicksort::benchmark(),
        crate::rainflow::benchmark(),
        crate::xsbench::benchmark(),
    ]
}

/// Helper: launch one kernel and fold its report into an accumulator.
pub(crate) fn launch_into(
    gpu: &mut Gpu,
    m: &Module,
    kernel: &str,
    cfg: uu_simt::LaunchConfig,
    args: &[uu_simt::KernelArg],
    acc: &mut (f64, Metrics),
) -> Result<(), ExecError> {
    let id = m.find(kernel).ok_or_else(|| {
        ExecError::BadArguments(format!("kernel @{kernel} missing from module"))
    })?;
    let rep = gpu.launch(m.function(id), cfg, args)?;
    acc.0 += rep.time_ms;
    acc.1.merge(&rep.metrics);
    Ok(())
}

/// Helper: order-independent checksum of an `f64` buffer.
pub(crate) fn checksum_f64(vals: &[f64]) -> f64 {
    vals.iter()
        .enumerate()
        .map(|(i, v)| v * ((i % 17) as f64 + 1.0))
        .sum()
}

/// Helper: checksum of an `i64` buffer.
pub(crate) fn checksum_i64(vals: &[i64]) -> f64 {
    vals.iter()
        .enumerate()
        .map(|(i, v)| (*v as f64) * ((i % 17) as f64 + 1.0))
        .sum()
}

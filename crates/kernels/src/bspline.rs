//! bspline-vgh — B-spline value/gradient/Hessian evaluation.
//!
//! The single hot loop has a trip count of 4 (the cubic B-spline support),
//! which is why the paper observes identical code size at unroll factors 4
//! and 8. Its body guards an expensive division behind a data-dependent,
//! *monotone* flag: the baseline predicates the division (executing it every
//! iteration); u&u proves the flag stays false after the first iteration
//! and deletes both the division and the re-checks — the paper's largest
//! heuristic speedup (1.81×).

use crate::aux::aux_kernels;
use crate::bench::{checksum_f64, launch_into, Benchmark, BenchmarkInfo, RunOutput};
use uu_ir::{CastOp, Function, FunctionBuilder, ICmpPred, Module, Param, Type, Value};
use uu_simt::{ExecError, Gpu, KernelArg, LaunchConfig, Metrics};

/// Table I row.
pub const INFO: BenchmarkInfo = BenchmarkInfo {
    name: "bspline-vgh",
    category: "Simulation",
    cli: "no CLI input",
    table_loops: 1,
    paper_compute_pct: 11.69,
    paper_rsd_pct: 6.46,
    hot_kernels: &["bspline_vgh"],
    binary_rest_size: 3000,
    launch_repeats: 120,
};

/// The benchmark registration.
pub fn benchmark() -> Benchmark {
    Benchmark {
        info: INFO,
        build,
        run,
    }
}

/// The 4-iteration spline evaluation loop.
pub fn vgh_kernel() -> Function {
    let mut f = Function::new(
        "bspline_vgh",
        vec![
            Param::new("coef", Type::Ptr),
            Param::new("flags", Type::Ptr),
            Param::new("out", Type::Ptr),
        ],
        Type::Void,
    );
    let entry = f.entry();
    let mut b = FunctionBuilder::new(&mut f);
    let header = b.create_block();
    let body = b.create_block();
    let heavy = b.create_block();
    let latch = b.create_block();
    let exit = b.create_block();
    b.switch_to(entry);
    let gid = b.global_thread_id();
    let fa = b.gep(Value::Arg(1), gid, 8);
    let flag0 = b.load(Type::I64, fa);
    b.br(header);
    b.switch_to(header);
    let k = b.phi(Type::I64);
    let flag = b.phi(Type::I64);
    let acc = b.phi(Type::F64);
    b.add_phi_incoming(k, entry, Value::imm(0i64));
    b.add_phi_incoming(flag, entry, flag0);
    b.add_phi_incoming(acc, entry, Value::imm(0.0f64));
    let more = b.icmp(ICmpPred::Slt, k, Value::imm(4i64));
    b.cond_br(more, body, exit);
    b.switch_to(body);
    // Coalesced: coefficient k of thread t lives at k*NT + t.
    let bd = b.block_dim();
    let gd = b.intr(uu_ir::Intrinsic::GridDimX, vec![], uu_ir::Type::I32);
    let nt32 = b.mul(bd, gd);
    let nt = b.cast(CastOp::Sext, nt32, Type::I64);
    let krow = b.mul(k, nt);
    let cix = b.add(krow, gid);
    let ca = b.gep(Value::Arg(0), cix, 8);
    let cv = b.load(Type::F64, ca);
    let kf = b.cast(CastOp::SiToFp, k, Type::F64);
    let w = b.fadd(kf, Value::imm(1.5f64));
    let term = b.fmul(cv, w);
    let acc1 = b.fadd(acc, term);
    // Monotone guard: once flag <= 0 it stays there; the heavy path divides.
    let hot = b.icmp(ICmpPred::Sgt, flag, Value::imm(0i64));
    b.cond_br(hot, heavy, latch);
    b.switch_to(heavy);
    // The guarded Hessian correction: two divisions — expensive, pure and
    // small enough that the baseline's predication speculates it on every
    // iteration, which is exactly what u&u's path specialization deletes.
    let d0 = b.fdiv(acc1, w);
    let d1 = b.fdiv(d0, Value::imm(1.25f64));
    let d2 = b.fmul(d1, Value::imm(0.5f64));
    let acc_h = b.fadd(acc1, d2);
    let flag_h = b.sub(flag, Value::imm(1i64));
    b.br(latch);
    b.switch_to(latch);
    let accm = b.phi(Type::F64);
    let flagm = b.phi(Type::I64);
    b.add_phi_incoming(accm, body, acc1);
    b.add_phi_incoming(accm, heavy, acc_h);
    b.add_phi_incoming(flagm, body, flag);
    b.add_phi_incoming(flagm, heavy, flag_h);
    let k1 = b.add(k, Value::imm(1i64));
    b.add_phi_incoming(k, latch, k1);
    b.add_phi_incoming(flag, latch, flagm);
    b.add_phi_incoming(acc, latch, accm);
    b.br(header);
    b.switch_to(exit);
    let po = b.gep(Value::Arg(2), gid, 8);
    b.store(po, acc);
    b.ret(None);
    f
}

fn build() -> Module {
    let mut m = Module::new("bspline-vgh");
    m.add_function(vgh_kernel());
    for f in aux_kernels(0xb5, INFO.table_loops.saturating_sub(1)) {
        m.add_function(f);
    }
    m
}

const THREADS: usize = 128;

fn run(m: &Module, gpu: &mut Gpu) -> Result<RunOutput, ExecError> {
    // coef[k*NT + t]
    let coef: Vec<f64> = (0..4 * THREADS)
        .map(|ix| {
            let (k, t) = (ix / THREADS, ix % THREADS);
            ((t * 4 + k) % 9) as f64 * 0.25 + 0.5
        })
        .collect();
    // Flags are zero for every thread: the heavy path never executes, but
    // only path-duplication can prove it per-path.
    let flags = vec![0i64; THREADS];
    let bc = gpu.mem.alloc_f64(&coef)?;
    let bf = gpu.mem.alloc_i64(&flags)?;
    let bo = gpu.mem.alloc_f64(&vec![0.0; THREADS])?;
    let mut acc = (0.0f64, Metrics::default());
    launch_into(
        gpu,
        m,
        "bspline_vgh",
        LaunchConfig::new(THREADS as u32 / 32, 32),
        &[
            KernelArg::Buffer(bc),
            KernelArg::Buffer(bf),
            KernelArg::Buffer(bo),
        ],
        &mut acc,
    )?;
    let out = gpu.mem.read_f64(bo)?;
    // A large surrounding application: most end-to-end time is transfers
    // (the paper's %C is only 11.7%).
    Ok(RunOutput {
        kernel_time_ms: acc.0,
        metrics: acc.1,
        checksum: checksum_f64(&out),
        transfer_bytes: (coef.len() + flags.len() + out.len()) as u64 * 8 + 4_000_000,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgh_matches_cpu_reference() {
        let m = build();
        let mut gpu = Gpu::new();
        let got = run(&m, &mut gpu).unwrap();
        let mut expect = Vec::new();
        for t in 0..THREADS {
            let (mut acc, mut flag) = (0.0f64, 0i64);
            for k in 0..4 {
                let cv = ((t * 4 + k) % 9) as f64 * 0.25 + 0.5;
                let w = k as f64 + 1.5;
                acc += cv * w;
                if flag > 0 {
                    acc += acc / w / 1.25 * 0.5;
                    flag -= 1;
                }
            }
            expect.push(acc);
        }
        assert_eq!(got.checksum, crate::bench::checksum_f64(&expect));
    }
}

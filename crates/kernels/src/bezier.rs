//! bezier-surface — Bézier surface tessellation (paper Listing 2).
//!
//! The hot loop computes the Bernstein blend factor:
//!
//! ```c
//! while (nn >= 1) {
//!     blend *= nn; nn--;
//!     if (kn > 1)  { blend /= kn;  kn--;  }
//!     if (nkn > 1) { blend /= nkn; nkn--; }
//! }
//! ```
//!
//! Both conditions are *monotone*: once false they stay false. u&u with
//! factor 2 lets the compiler prove exactly that (Figure 5's `FT`/`TF`/`FF`
//! loop copies), eliminating condition re-evaluation and the speculated
//! divisions the baseline's predication executes unconditionally.

use crate::aux::aux_kernels;
use crate::bench::{checksum_f64, launch_into, Benchmark, BenchmarkInfo, RunOutput};
use uu_ir::{CastOp, Function, FunctionBuilder, ICmpPred, Module, Param, Type, Value};
use uu_simt::{ExecError, Gpu, KernelArg, LaunchConfig, Metrics};

/// Table I row.
pub const INFO: BenchmarkInfo = BenchmarkInfo {
    name: "bezier-surface",
    category: "CV and image processing",
    cli: "-n 4096",
    table_loops: 3,
    paper_compute_pct: 67.18,
    paper_rsd_pct: 4.07,
    hot_kernels: &["bezier_blend"],
    binary_rest_size: 4000,
    launch_repeats: 38,
};

/// The benchmark registration.
pub fn benchmark() -> Benchmark {
    Benchmark {
        info: INFO,
        build,
        run,
    }
}

/// The blend-factor kernel (Listing 2 structure).
pub fn blend_kernel() -> Function {
    let mut f = Function::new(
        "bezier_blend",
        vec![
            Param::new("kvals", Type::Ptr),
            Param::new("out", Type::Ptr),
            Param::new("n", Type::I64),
        ],
        Type::Void,
    );
    let entry = f.entry();
    let mut b = FunctionBuilder::new(&mut f);
    let header = b.create_block();
    let body = b.create_block();
    let c1t = b.create_block();
    let m1 = b.create_block();
    let c2t = b.create_block();
    let latch = b.create_block();
    let exit = b.create_block();
    b.switch_to(entry);
    let gid = b.global_thread_id();
    // kn/nkn come from memory so the compiler cannot fold the conditions
    // statically — only path duplication reveals them.
    let ka = b.gep(Value::Arg(0), gid, 8);
    let kn0 = b.load(Type::I64, ka);
    let nkn0 = b.sub(Value::Arg(2), kn0);
    b.br(header);
    b.switch_to(header);
    let nn = b.phi(Type::I64);
    let kn = b.phi(Type::I64);
    let nkn = b.phi(Type::I64);
    let blend = b.phi(Type::F64);
    b.add_phi_incoming(nn, entry, Value::Arg(2));
    b.add_phi_incoming(kn, entry, kn0);
    b.add_phi_incoming(nkn, entry, nkn0);
    b.add_phi_incoming(blend, entry, Value::imm(1.0f64));
    let more = b.icmp(ICmpPred::Sge, nn, Value::imm(1i64));
    b.cond_br(more, body, exit);
    b.switch_to(body);
    let nnf = b.cast(CastOp::SiToFp, nn, Type::F64);
    let blend1 = b.fmul(blend, nnf);
    let nn1 = b.sub(nn, Value::imm(1i64));
    let c1 = b.icmp(ICmpPred::Sgt, kn, Value::imm(1i64));
    b.cond_br(c1, c1t, m1);
    b.switch_to(c1t);
    let knf = b.cast(CastOp::SiToFp, kn, Type::F64);
    let blend2 = b.fdiv(blend1, knf);
    let kn1 = b.sub(kn, Value::imm(1i64));
    b.br(m1);
    b.switch_to(m1);
    let blendm = b.phi(Type::F64);
    let knm = b.phi(Type::I64);
    b.add_phi_incoming(blendm, body, blend1);
    b.add_phi_incoming(blendm, c1t, blend2);
    b.add_phi_incoming(knm, body, kn);
    b.add_phi_incoming(knm, c1t, kn1);
    let c2 = b.icmp(ICmpPred::Sgt, nkn, Value::imm(1i64));
    b.cond_br(c2, c2t, latch);
    b.switch_to(c2t);
    let nknf = b.cast(CastOp::SiToFp, nkn, Type::F64);
    let blend3 = b.fdiv(blendm, nknf);
    let nkn1 = b.sub(nkn, Value::imm(1i64));
    b.br(latch);
    b.switch_to(latch);
    let blendl = b.phi(Type::F64);
    let nknl = b.phi(Type::I64);
    b.add_phi_incoming(blendl, m1, blendm);
    b.add_phi_incoming(blendl, c2t, blend3);
    b.add_phi_incoming(nknl, m1, nkn);
    b.add_phi_incoming(nknl, c2t, nkn1);
    b.add_phi_incoming(nn, latch, nn1);
    b.add_phi_incoming(kn, latch, knm);
    b.add_phi_incoming(nkn, latch, nknl);
    b.add_phi_incoming(blend, latch, blendl);
    b.br(header);
    b.switch_to(exit);
    let oa = b.gep(Value::Arg(1), gid, 8);
    b.store(oa, blend);
    b.ret(None);
    f
}

fn build() -> Module {
    let mut m = Module::new("bezier-surface");
    m.add_function(blend_kernel());
    for f in aux_kernels(0xbe, INFO.table_loops - 1) {
        m.add_function(f);
    }
    m
}

const N: i64 = 32;
const THREADS: usize = 128;

fn run(m: &Module, gpu: &mut Gpu) -> Result<RunOutput, ExecError> {
    // Threads within a warp share the same k so the branches stay warp
    // uniform (as tessellation patches do); k is small, so both conditions
    // go false early and stay false — the elimination target.
    let kvals: Vec<i64> = (0..THREADS).map(|t| 1 + ((t / 32) % 3) as i64).collect();
    let bk = gpu.mem.alloc_i64(&kvals)?;
    let bout = gpu.mem.alloc_f64(&vec![0.0; THREADS])?;
    let mut acc = (0.0f64, Metrics::default());
    launch_into(
        gpu,
        m,
        "bezier_blend",
        LaunchConfig::new(THREADS as u32 / 32, 32),
        &[
            KernelArg::Buffer(bk),
            KernelArg::Buffer(bout),
            KernelArg::I64(N),
        ],
        &mut acc,
    )?;
    let out = gpu.mem.read_f64(bout)?;
    Ok(RunOutput {
        kernel_time_ms: acc.0,
        metrics: acc.1,
        checksum: checksum_f64(&out),
        transfer_bytes: (kvals.len() + out.len()) as u64 * 8,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blend_matches_cpu_reference() {
        let m = build();
        let mut gpu = Gpu::new();
        let got = run(&m, &mut gpu).unwrap();
        let mut expect = Vec::new();
        for t in 0..THREADS {
            let k0 = 1 + ((t / 32) % 3) as i64;
            let (mut nn, mut kn, mut nkn, mut blend) = (N, k0, N - k0, 1.0f64);
            while nn >= 1 {
                blend *= nn as f64;
                nn -= 1;
                if kn > 1 {
                    blend /= kn as f64;
                    kn -= 1;
                }
                if nkn > 1 {
                    blend /= nkn as f64;
                    nkn -= 1;
                }
            }
            expect.push(blend);
        }
        assert_eq!(got.checksum, crate::bench::checksum_f64(&expect));
    }
}

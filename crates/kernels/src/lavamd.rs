//! lavaMD — particle potential within neighbour boxes.
//!
//! The per-particle neighbour loop re-loads the (loop-invariant) box
//! parameters every iteration; unrolled-and-unmerged copies let GVN fold
//! those reloads, a modest but reliable win (the paper's 1.086×).

use crate::aux::aux_kernels;
use crate::bench::{checksum_f64, launch_into, Benchmark, BenchmarkInfo, RunOutput};
use uu_ir::{FCmpPred, Function, FunctionBuilder, ICmpPred, Module, Param, Type, Value};
use uu_simt::{ExecError, Gpu, KernelArg, LaunchConfig, Metrics};

/// Table I row.
pub const INFO: BenchmarkInfo = BenchmarkInfo {
    name: "lavaMD",
    category: "Simulation",
    cli: "-boxes1d 30",
    table_loops: 1,
    paper_compute_pct: 66.52,
    paper_rsd_pct: 0.08,
    hot_kernels: &["lavamd_potential"],
    binary_rest_size: 2000,
    launch_repeats: 37,
};

/// The benchmark registration.
pub fn benchmark() -> Benchmark {
    Benchmark {
        info: INFO,
        build,
        run,
    }
}

/// Neighbour interaction loop with an in-loop reload of box parameters.
pub fn potential_kernel() -> Function {
    let mut f = Function::new(
        "lavamd_potential",
        vec![
            Param::new("pos", Type::Ptr),
            Param::new("boxparam", Type::Ptr),
            Param::new("out", Type::Ptr),
            Param::new("n", Type::I64),
        ],
        Type::Void,
    );
    let entry = f.entry();
    let mut b = FunctionBuilder::new(&mut f);
    let header = b.create_block();
    let body = b.create_block();
    let near = b.create_block();
    let latch = b.create_block();
    let exit = b.create_block();
    b.switch_to(entry);
    let gid = b.global_thread_id();
    let ppos = b.gep(Value::Arg(0), gid, 8);
    let xi = b.load(Type::F64, ppos);
    b.br(header);
    b.switch_to(header);
    let j = b.phi(Type::I64);
    let pot = b.phi(Type::F64);
    b.add_phi_incoming(j, entry, Value::imm(0i64));
    b.add_phi_incoming(pot, entry, Value::imm(0.0f64));
    let more = b.icmp(ICmpPred::Slt, j, Value::Arg(3));
    b.cond_br(more, body, exit);
    b.switch_to(body);
    // Loop-invariant reload: the box cutoff parameter (as the original
    // kernel does through its per-box struct each iteration).
    let pcut = b.gep(Value::Arg(1), Value::imm(0i64), 8);
    let cutoff = b.load(Type::F64, pcut);
    let pxj = b.gep(Value::Arg(0), j, 8);
    let xj = b.load(Type::F64, pxj);
    let d = b.fsub(xj, xi);
    let d2 = b.fmul(d, d);
    let inrange = b.fcmp(FCmpPred::Olt, d2, cutoff);
    b.cond_br(inrange, near, latch);
    b.switch_to(near);
    let soft = b.fadd(d2, Value::imm(0.5f64));
    let invr = b.fdiv(Value::imm(1.0f64), soft);
    let pot_t = b.fadd(pot, invr);
    b.br(latch);
    b.switch_to(latch);
    let potm = b.phi(Type::F64);
    b.add_phi_incoming(potm, body, pot);
    b.add_phi_incoming(potm, near, pot_t);
    let j1 = b.add(j, Value::imm(1i64));
    b.add_phi_incoming(j, latch, j1);
    b.add_phi_incoming(pot, latch, potm);
    b.br(header);
    b.switch_to(exit);
    let po = b.gep(Value::Arg(2), gid, 8);
    b.store(po, pot);
    b.ret(None);
    f
}

fn build() -> Module {
    let mut m = Module::new("lavaMD");
    m.add_function(potential_kernel());
    for f in aux_kernels(0x1a, INFO.table_loops.saturating_sub(1)) {
        m.add_function(f);
    }
    m
}

const N: i64 = 64;
const THREADS: usize = 128;

fn pos(i: i64) -> f64 {
    // Box-binned particles: a warp shares a box, so the cutoff branch is
    // warp-uniform.
    (i / 32) as f64 * 1.6
}

fn run(m: &Module, gpu: &mut Gpu) -> Result<RunOutput, ExecError> {
    let positions: Vec<f64> = (0..N.max(THREADS as i64)).map(pos).collect();
    let boxparam = vec![2.0f64];
    let bp = gpu.mem.alloc_f64(&positions)?;
    let bbox = gpu.mem.alloc_f64(&boxparam)?;
    let bo = gpu.mem.alloc_f64(&vec![0.0; THREADS])?;
    let mut acc = (0.0f64, Metrics::default());
    launch_into(
        gpu,
        m,
        "lavamd_potential",
        LaunchConfig::new(THREADS as u32 / 32, 32),
        &[
            KernelArg::Buffer(bp),
            KernelArg::Buffer(bbox),
            KernelArg::Buffer(bo),
            KernelArg::I64(N),
        ],
        &mut acc,
    )?;
    let out = gpu.mem.read_f64(bo)?;
    Ok(RunOutput {
        kernel_time_ms: acc.0,
        metrics: acc.1,
        checksum: checksum_f64(&out),
        transfer_bytes: (positions.len() + 1 + out.len()) as u64 * 8 + 400_000,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn potential_matches_cpu_reference() {
        let m = build();
        let mut gpu = Gpu::new();
        let got = run(&m, &mut gpu).unwrap();
        let positions: Vec<f64> = (0..N.max(THREADS as i64)).map(pos).collect();
        let mut expect = Vec::new();
        for t in 0..THREADS {
            let xi = positions[t];
            let mut p = 0.0f64;
            for j in 0..N as usize {
                let d = positions[j] - xi;
                if d * d < 2.0 {
                    p += 1.0 / (d * d + 0.5);
                }
            }
            expect.push(p);
        }
        assert_eq!(got.checksum, crate::bench::checksum_f64(&expect));
    }
}

//! bn — Bayesian network structure scoring.
//!
//! The scoring kernels walk per-node parent sets with *monotone* budget
//! counters (a parent budget that only decreases), the same
//! condition-implication shape as bezier-surface: u&u proves the exhausted
//! budget stays exhausted and strips both the re-checks and the speculated
//! updates, giving the paper's 1.27× heuristic speedup.

use crate::aux::aux_kernels;
use crate::bench::{checksum_f64, launch_into, Benchmark, BenchmarkInfo, RunOutput};
use uu_ir::{CastOp, Function, FunctionBuilder, ICmpPred, Module, Param, Type, Value};
use uu_simt::{ExecError, Gpu, KernelArg, LaunchConfig, Metrics};

/// Table I row.
pub const INFO: BenchmarkInfo = BenchmarkInfo {
    name: "bn",
    category: "Machine learning",
    cli: "result",
    table_loops: 11,
    paper_compute_pct: 97.28,
    paper_rsd_pct: 1.52,
    hot_kernels: &["bn_score", "bn_rescore"],
    binary_rest_size: 8000,
    launch_repeats: 320,
};

/// The benchmark registration.
pub fn benchmark() -> Benchmark {
    Benchmark {
        info: INFO,
        build,
        run,
    }
}

/// Parent-set scoring loop with a decreasing budget guard.
pub fn score_kernel() -> Function {
    let mut f = Function::new(
        "bn_score",
        vec![
            Param::new("budgets", Type::Ptr),
            Param::new("out", Type::Ptr),
            Param::new("steps", Type::I64),
        ],
        Type::Void,
    );
    let entry = f.entry();
    let mut b = FunctionBuilder::new(&mut f);
    let header = b.create_block();
    let body = b.create_block();
    let spend = b.create_block();
    let latch = b.create_block();
    let exit = b.create_block();
    b.switch_to(entry);
    let gid = b.global_thread_id();
    let pb = b.gep(Value::Arg(0), gid, 8);
    let budget0 = b.load(Type::I64, pb);
    b.br(header);
    b.switch_to(header);
    let i = b.phi(Type::I64);
    let budget = b.phi(Type::I64);
    let score = b.phi(Type::F64);
    b.add_phi_incoming(i, entry, Value::imm(0i64));
    b.add_phi_incoming(budget, entry, budget0);
    b.add_phi_incoming(score, entry, Value::imm(0.0f64));
    let more = b.icmp(ICmpPred::Slt, i, Value::Arg(2));
    b.cond_br(more, body, exit);
    b.switch_to(body);
    let fi = b.cast(CastOp::SiToFp, i, Type::F64);
    let base_s = b.fmul(fi, Value::imm(0.01f64));
    let score1 = b.fadd(score, base_s);
    let has = b.icmp(ICmpPred::Sgt, budget, Value::imm(0i64));
    b.cond_br(has, spend, latch);
    b.switch_to(spend);
    let bonus = b.fdiv(score1, Value::imm(3.0f64));
    let score_s = b.fadd(score1, bonus);
    let budget_s = b.sub(budget, Value::imm(1i64));
    b.br(latch);
    b.switch_to(latch);
    let scorem = b.phi(Type::F64);
    let budgetm = b.phi(Type::I64);
    b.add_phi_incoming(scorem, body, score1);
    b.add_phi_incoming(scorem, spend, score_s);
    b.add_phi_incoming(budgetm, body, budget);
    b.add_phi_incoming(budgetm, spend, budget_s);
    let i1 = b.add(i, Value::imm(1i64));
    b.add_phi_incoming(i, latch, i1);
    b.add_phi_incoming(budget, latch, budgetm);
    b.add_phi_incoming(score, latch, scorem);
    b.br(header);
    b.switch_to(exit);
    let po = b.gep(Value::Arg(1), gid, 8);
    b.store(po, score);
    b.ret(None);
    f
}

/// Second scoring pass with a different weighting (same monotone shape).
pub fn rescore_kernel() -> Function {
    let mut f = Function::new(
        "bn_rescore",
        vec![
            Param::new("budgets", Type::Ptr),
            Param::new("out", Type::Ptr),
            Param::new("steps", Type::I64),
        ],
        Type::Void,
    );
    let entry = f.entry();
    let mut b = FunctionBuilder::new(&mut f);
    let header = b.create_block();
    let body = b.create_block();
    let spend = b.create_block();
    let latch = b.create_block();
    let exit = b.create_block();
    b.switch_to(entry);
    let gid = b.global_thread_id();
    let pb = b.gep(Value::Arg(0), gid, 8);
    let budget0 = b.load(Type::I64, pb);
    b.br(header);
    b.switch_to(header);
    let i = b.phi(Type::I64);
    let budget = b.phi(Type::I64);
    let score = b.phi(Type::F64);
    b.add_phi_incoming(i, entry, Value::imm(0i64));
    b.add_phi_incoming(budget, entry, budget0);
    b.add_phi_incoming(score, entry, Value::imm(1.0f64));
    let more = b.icmp(ICmpPred::Slt, i, Value::Arg(2));
    b.cond_br(more, body, exit);
    b.switch_to(body);
    let fi = b.cast(CastOp::SiToFp, i, Type::F64);
    let base_s = b.fmul(fi, Value::imm(0.002f64));
    let score1 = b.fadd(score, base_s);
    let has = b.icmp(ICmpPred::Sgt, budget, Value::imm(2i64));
    b.cond_br(has, spend, latch);
    b.switch_to(spend);
    let bonus = b.fdiv(score1, Value::imm(7.0f64));
    let score_s = b.fsub(score1, bonus);
    let budget_s = b.sub(budget, Value::imm(2i64));
    b.br(latch);
    b.switch_to(latch);
    let scorem = b.phi(Type::F64);
    let budgetm = b.phi(Type::I64);
    b.add_phi_incoming(scorem, body, score1);
    b.add_phi_incoming(scorem, spend, score_s);
    b.add_phi_incoming(budgetm, body, budget);
    b.add_phi_incoming(budgetm, spend, budget_s);
    let i1 = b.add(i, Value::imm(1i64));
    b.add_phi_incoming(i, latch, i1);
    b.add_phi_incoming(budget, latch, budgetm);
    b.add_phi_incoming(score, latch, scorem);
    b.br(header);
    b.switch_to(exit);
    let po = b.gep(Value::Arg(1), gid, 8);
    b.store(po, score);
    b.ret(None);
    f
}

fn build() -> Module {
    let mut m = Module::new("bn");
    m.add_function(score_kernel());
    m.add_function(rescore_kernel());
    for f in aux_kernels(0xb0, INFO.table_loops - 2) {
        m.add_function(f);
    }
    m
}

const STEPS: i64 = 48;
const THREADS: usize = 128;

fn run(m: &Module, gpu: &mut Gpu) -> Result<RunOutput, ExecError> {
    let budgets: Vec<i64> = (0..THREADS).map(|t| ((t / 32) % 4) as i64).collect();
    let bb = gpu.mem.alloc_i64(&budgets)?;
    let bo1 = gpu.mem.alloc_f64(&vec![0.0; THREADS])?;
    let bo2 = gpu.mem.alloc_f64(&vec![0.0; THREADS])?;
    let mut acc = (0.0f64, Metrics::default());
    let args1 = [
        KernelArg::Buffer(bb),
        KernelArg::Buffer(bo1),
        KernelArg::I64(STEPS),
    ];
    launch_into(gpu, m, "bn_score", LaunchConfig::new(4, 32), &args1, &mut acc)?;
    let args2 = [
        KernelArg::Buffer(bb),
        KernelArg::Buffer(bo2),
        KernelArg::I64(STEPS),
    ];
    launch_into(gpu, m, "bn_rescore", LaunchConfig::new(4, 32), &args2, &mut acc)?;
    let out1 = gpu.mem.read_f64(bo1)?;
    let out2 = gpu.mem.read_f64(bo2)?;
    Ok(RunOutput {
        kernel_time_ms: acc.0,
        metrics: acc.1,
        checksum: checksum_f64(&out1) + checksum_f64(&out2),
        transfer_bytes: (budgets.len() + out1.len() + out2.len()) as u64 * 8,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scores_match_cpu_reference() {
        let m = build();
        let mut gpu = Gpu::new();
        let got = run(&m, &mut gpu).unwrap();
        let mut e1 = Vec::new();
        let mut e2 = Vec::new();
        for t in 0..THREADS {
            let b0 = ((t / 32) % 4) as i64;
            let (mut budget, mut score) = (b0, 0.0f64);
            for i in 0..STEPS {
                score += i as f64 * 0.01;
                if budget > 0 {
                    score += score / 3.0;
                    budget -= 1;
                }
            }
            e1.push(score);
            let (mut budget, mut score) = (b0, 1.0f64);
            for i in 0..STEPS {
                score += i as f64 * 0.002;
                if budget > 2 {
                    score -= score / 7.0;
                    budget -= 2;
                }
            }
            e2.push(score);
        }
        let expect = crate::bench::checksum_f64(&e1) + crate::bench::checksum_f64(&e2);
        assert_eq!(got.checksum, expect);
    }
}

//! XSBench — Monte Carlo neutron transport macroscopic cross-section
//! lookup (paper Listing 1/3: the binary-search loop).
//!
//! Each thread (one per "event", `-s small -m event`) binary-searches a
//! sorted energy grid for its query energy. The `if (A[mid] > quarry)`
//! update is the paper's motivating example: the baseline predicates it into
//! `selp` instructions, while u&u turns it into branches whose provenance
//! lets the compiler delete the `sub` (length is `length/2` on the taken
//! path) and data movement — at the cost of warp-execution efficiency, a
//! trade that still wins by up to 1.36×.

use crate::aux::aux_kernels;
use crate::bench::{checksum_i64, launch_into, Benchmark, BenchmarkInfo, RunOutput};
use uu_ir::{
    FCmpPred, Function, FunctionBuilder, ICmpPred, Module, Param, Type, Value,
};
use uu_simt::{ExecError, Gpu, KernelArg, LaunchConfig, Metrics};

/// Table I row.
pub const INFO: BenchmarkInfo = BenchmarkInfo {
    name: "XSBench",
    category: "Simulation",
    cli: "-s small -m event",
    table_loops: 210,
    paper_compute_pct: 87.62,
    paper_rsd_pct: 0.12,
    hot_kernels: &["xs_lookup"],
    binary_rest_size: 25000,
    launch_repeats: 290,
};

/// The benchmark registration.
pub fn benchmark() -> Benchmark {
    Benchmark {
        info: INFO,
        build,
        run,
    }
}

/// The binary-search lookup kernel, in branch (pre-predication) form.
pub fn lookup_kernel() -> Function {
    let mut f = Function::new(
        "xs_lookup",
        vec![
            Param::new("grid", Type::Ptr),
            Param::new("queries", Type::Ptr),
            Param::new("out", Type::Ptr),
            Param::new("len", Type::I64),
            Param::new("nq", Type::I64),
        ],
        Type::Void,
    );
    let entry = f.entry();
    let mut b = FunctionBuilder::new(&mut f);
    let start = b.create_block();
    let header = b.create_block();
    let body = b.create_block();
    let tblk = b.create_block();
    let eblk = b.create_block();
    let merge = b.create_block();
    let exit = b.create_block();
    let done = b.create_block();
    b.switch_to(entry);
    let gid = b.global_thread_id();
    let inb = b.icmp(ICmpPred::Slt, gid, Value::Arg(4));
    b.cond_br(inb, start, done);
    b.switch_to(start);
    let qa = b.gep(Value::Arg(1), gid, 8);
    let quarry = b.load(Type::F64, qa);
    b.br(header);
    b.switch_to(header);
    let lower = b.phi(Type::I64);
    let length = b.phi(Type::I64);
    let upper = b.phi(Type::I64);
    b.add_phi_incoming(lower, start, Value::imm(0i64));
    b.add_phi_incoming(length, start, Value::Arg(3));
    b.add_phi_incoming(upper, start, Value::Arg(3));
    let more = b.icmp(ICmpPred::Sgt, length, Value::imm(1i64));
    b.cond_br(more, body, exit);
    b.switch_to(body);
    let half = b.sdiv(length, Value::imm(2i64));
    let mid = b.add(lower, half);
    let pa = b.gep(Value::Arg(0), mid, 8);
    let am = b.load(Type::F64, pa);
    let gt = b.fcmp(FCmpPred::Ogt, am, quarry);
    b.cond_br(gt, tblk, eblk);
    b.switch_to(tblk);
    b.br(merge);
    b.switch_to(eblk);
    b.br(merge);
    b.switch_to(merge);
    let nupper = b.phi(Type::I64);
    b.add_phi_incoming(nupper, tblk, mid);
    b.add_phi_incoming(nupper, eblk, upper);
    let nlower = b.phi(Type::I64);
    b.add_phi_incoming(nlower, tblk, lower);
    b.add_phi_incoming(nlower, eblk, mid);
    let nlength = b.sub(nupper, nlower);
    b.add_phi_incoming(lower, merge, nlower);
    b.add_phi_incoming(length, merge, nlength);
    b.add_phi_incoming(upper, merge, nupper);
    b.br(header);
    b.switch_to(exit);
    let oa = b.gep(Value::Arg(2), gid, 8);
    b.store(oa, lower);
    b.br(done);
    b.switch_to(done);
    b.ret(None);
    f
}

fn build() -> Module {
    let mut m = Module::new("XSBench");
    m.add_function(lookup_kernel());
    for f in aux_kernels(0x5b, INFO.table_loops - 1) {
        m.add_function(f);
    }
    m
}

const GRID_LEN: i64 = 512;
const NQ: usize = 256;

/// Event-mode queries: events in a batch sample nearby energies, so a
/// warp's 32 searches walk the same grid prefix and only diverge near the
/// leaves — the correlation behind the paper's 18.9% (not 3%) warp
/// execution efficiency after u&u.
fn make_queries() -> Vec<f64> {
    let mut state = 0x9e3779b97f4a7c15u64;
    (0..NQ)
        .map(|i| {
            if i % 32 == 0 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            let warp_base = ((state >> 33) % 4096) as f64 / 4096.0
                * (GRID_LEN as f64 * 0.5 - 4.0);
            let jitter = ((i * 37) % 32) as f64 / 32.0 * 0.45;
            warp_base + jitter
        })
        .collect()
}

fn run(m: &Module, gpu: &mut Gpu) -> Result<RunOutput, ExecError> {
    let grid: Vec<f64> = (0..GRID_LEN).map(|i| i as f64 * 0.5).collect();
    let queries = make_queries();
    let bgrid = gpu.mem.alloc_f64(&grid)?;
    let bq = gpu.mem.alloc_f64(&queries)?;
    let bout = gpu.mem.alloc_i64(&vec![0; NQ])?;
    let mut acc = (0.0f64, Metrics::default());
    launch_into(
        gpu,
        m,
        "xs_lookup",
        LaunchConfig::new(NQ as u32 / 32, 32),
        &[
            KernelArg::Buffer(bgrid),
            KernelArg::Buffer(bq),
            KernelArg::Buffer(bout),
            KernelArg::I64(GRID_LEN),
            KernelArg::I64(NQ as i64),
        ],
        &mut acc,
    )?;
    let out = gpu.mem.read_i64(bout)?;
    Ok(RunOutput {
        kernel_time_ms: acc.0,
        metrics: acc.1,
        checksum: checksum_i64(&out),
        transfer_bytes: (grid.len() + queries.len() + out.len()) as u64 * 8,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_matches_cpu_reference() {
        let m = build();
        let mut gpu = Gpu::new();
        let out = run(&m, &mut gpu).unwrap();
        // CPU reference for the same deterministic queries.
        let grid: Vec<f64> = (0..GRID_LEN).map(|i| i as f64 * 0.5).collect();
        let mut expect = Vec::new();
        for &q in &make_queries() {
            let (mut lower, mut upper, mut length) = (0i64, GRID_LEN, GRID_LEN);
            while length > 1 {
                let mid = lower + length / 2;
                if grid[mid as usize] > q {
                    upper = mid;
                } else {
                    lower = mid;
                }
                length = upper - lower;
            }
            expect.push(lower);
        }
        assert_eq!(out.checksum, crate::bench::checksum_i64(&expect));
    }
}

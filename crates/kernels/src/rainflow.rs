//! rainflow — rainflow-counting fatigue analysis (paper Listing 6, §V).
//!
//! The hot loop scans a signal `x` and builds a turning-point sequence `y`
//! (both `__restrict__`). The seven paths through conditions
//! `a: x[i] > y[j]`, `b: x[i] > x[i+1]`, `c: x[i] < y[j]`,
//! `d: x[i] < x[i+1]`, `e: y[++j] = x[i]` carry heavy *partial*
//! redundancies: `a ⇒ ¬c`, `e` makes next iteration's `y[j]` load
//! forwardable, and `x[i+1]` becomes next iteration's `x[i]`. Only
//! unroll+unmerge makes these explicit (the paper measures −77% `inst_misc`,
//! −45% `inst_control`, −17% load throughput at factor 4).

use crate::aux::aux_kernels;
use crate::bench::{checksum_f64, launch_into, Benchmark, BenchmarkInfo, RunOutput};
use uu_ir::{FCmpPred, Function, FunctionBuilder, ICmpPred, Module, Param, Type, Value};
use uu_simt::{ExecError, Gpu, KernelArg, LaunchConfig, Metrics};

/// Table I row.
pub const INFO: BenchmarkInfo = BenchmarkInfo {
    name: "rainflow",
    category: "Simulation",
    cli: "100000 100",
    table_loops: 3,
    paper_compute_pct: 99.55,
    paper_rsd_pct: 0.18,
    hot_kernels: &["rainflow_scan"],
    binary_rest_size: 900,
    launch_repeats: 1000,
};

/// The benchmark registration.
pub fn benchmark() -> Benchmark {
    Benchmark {
        info: INFO,
        build,
        run,
    }
}

/// The turning-point scan loop. Each thread scans its own slice of `x` into
/// its own slice of `y` (both restrict-qualified).
pub fn scan_kernel() -> Function {
    let mut f = Function::new(
        "rainflow_scan",
        vec![
            Param::restrict("x", Type::Ptr),
            Param::restrict("y", Type::Ptr),
            Param::new("out", Type::Ptr),
            Param::new("n", Type::I64),
        ],
        Type::Void,
    );
    let entry = f.entry();
    let mut b = FunctionBuilder::new(&mut f);
    let header = b.create_block();
    let body = b.create_block();
    let a_true = b.create_block();
    let not_a = b.create_block();
    let c_check_a = b.create_block(); // `a ∧ ¬b` falls here: checks c (always false)
    let c_true_a = b.create_block();
    let d_check_a = b.create_block();
    let push_a = b.create_block();
    let c_true = b.create_block();
    let d_check = b.create_block();
    let push = b.create_block();
    let latch = b.create_block();
    let exit = b.create_block();
    b.switch_to(entry);
    let gid = b.global_thread_id();
    // Coalesced column-major layout: x[i] of thread t is at i*NT + t.
    let bd = b.block_dim();
    let gd = b.intr(uu_ir::Intrinsic::GridDimX, vec![], uu_ir::Type::I32);
    let nt32 = b.mul(bd, gd);
    let nt = b.cast(uu_ir::CastOp::Sext, nt32, Type::I64);
    b.br(header);
    b.switch_to(header);
    let i = b.phi(Type::I64);
    let j = b.phi(Type::I64);
    b.add_phi_incoming(i, entry, Value::imm(0i64));
    b.add_phi_incoming(j, entry, Value::imm(0i64));
    let lim = b.sub(Value::Arg(3), Value::imm(1i64));
    let more = b.icmp(ICmpPred::Slt, i, lim);
    b.cond_br(more, body, exit);
    b.switch_to(body);
    let xrow = b.mul(i, nt);
    let xi_ix = b.add(xrow, gid);
    let px = b.gep(Value::Arg(0), xi_ix, 8);
    let xi = b.load(Type::F64, px);
    let yrow = b.mul(j, nt);
    let yj_ix = b.add(yrow, gid);
    let py = b.gep(Value::Arg(1), yj_ix, 8);
    let yj = b.load(Type::F64, py);
    let xi1_ix = b.add(xi_ix, nt);
    let a = b.fcmp(FCmpPred::Ogt, xi, yj);
    b.cond_br(a, a_true, not_a);

    // a: if (x[i] > x[i+1]) push; else fall into the (dead) c check.
    b.switch_to(a_true);
    let px1 = b.gep(Value::Arg(0), xi1_ix, 8);
    let xi1 = b.load(Type::F64, px1);
    let bcond = b.fcmp(FCmpPred::Ogt, xi, xi1);
    b.cond_br(bcond, push_a, c_check_a);

    b.switch_to(c_check_a); // c is statically implied false here (a ⇒ ¬c)
    let c_a = b.fcmp(FCmpPred::Olt, xi, yj);
    b.cond_br(c_a, c_true_a, latch);
    b.switch_to(c_true_a);
    let px1b = b.gep(Value::Arg(0), xi1_ix, 8);
    let xi1b = b.load(Type::F64, px1b);
    let d_a = b.fcmp(FCmpPred::Olt, xi, xi1b);
    b.cond_br(d_a, d_check_a, latch);
    b.switch_to(d_check_a);
    b.br(push_a);

    b.switch_to(push_a);
    let j1a = b.add(j, Value::imm(1i64));
    let pya_row = b.mul(j1a, nt);
    let pya_ix = b.add(pya_row, gid);
    let pya = b.gep(Value::Arg(1), pya_ix, 8);
    b.store(pya, xi);
    b.br(latch);

    // ¬a: if (x[i] < y[j]) { if (x[i] < x[i+1]) push }
    b.switch_to(not_a);
    let c = b.fcmp(FCmpPred::Olt, xi, yj);
    b.cond_br(c, c_true, latch);
    b.switch_to(c_true);
    let px1c = b.gep(Value::Arg(0), xi1_ix, 8);
    let xi1c = b.load(Type::F64, px1c);
    let d = b.fcmp(FCmpPred::Olt, xi, xi1c);
    b.cond_br(d, d_check, latch);
    b.switch_to(d_check);
    b.br(push);
    b.switch_to(push);
    let j1 = b.add(j, Value::imm(1i64));
    let py2_row = b.mul(j1, nt);
    let py2_ix = b.add(py2_row, gid);
    let py2 = b.gep(Value::Arg(1), py2_ix, 8);
    b.store(py2, xi);
    b.br(latch);

    b.switch_to(latch);
    let jn = b.phi(Type::I64);
    b.add_phi_incoming(jn, c_check_a, j);
    b.add_phi_incoming(jn, c_true_a, j);
    b.add_phi_incoming(jn, push_a, j1a);
    b.add_phi_incoming(jn, not_a, j);
    b.add_phi_incoming(jn, c_true, j);
    b.add_phi_incoming(jn, push, j1);
    let i1 = b.add(i, Value::imm(1i64));
    b.add_phi_incoming(i, latch, i1);
    b.add_phi_incoming(j, latch, jn);
    b.br(header);

    b.switch_to(exit);
    let po = b.gep(Value::Arg(2), gid, 8);
    let jf = b.cast(uu_ir::CastOp::SiToFp, j, Type::F64);
    b.store(po, jf);
    b.ret(None);
    f
}

fn build() -> Module {
    let mut m = Module::new("rainflow");
    m.add_function(scan_kernel());
    for f in aux_kernels(0x5a, INFO.table_loops - 1) {
        m.add_function(f);
    }
    m
}

const N: i64 = 48;
const THREADS: usize = 64;

fn signal(t: usize, i: i64) -> f64 {
    // One load-history segment per warp (threads of a warp scan the same
    // signal window), so the turning-point branches are warp-coherent.
    let phase = ((t / 32) as f64) * 0.37 + (i as f64) * 0.73;
    (phase.sin() * 8.0) + ((i % 5) as f64 - 2.0)
}

fn run(m: &Module, gpu: &mut Gpu) -> Result<RunOutput, ExecError> {
    let mut x = Vec::with_capacity(THREADS * N as usize);
    for i in 0..N {
        for t in 0..THREADS {
            x.push(signal(t, i));
        }
    }
    let y = vec![0.0f64; THREADS * N as usize];
    let bx = gpu.mem.alloc_f64(&x)?;
    let by = gpu.mem.alloc_f64(&y)?;
    let bout = gpu.mem.alloc_f64(&vec![0.0; THREADS])?;
    let mut acc = (0.0f64, Metrics::default());
    launch_into(
        gpu,
        m,
        "rainflow_scan",
        LaunchConfig::new(THREADS as u32 / 32, 32),
        &[
            KernelArg::Buffer(bx),
            KernelArg::Buffer(by),
            KernelArg::Buffer(bout),
            KernelArg::I64(N),
        ],
        &mut acc,
    )?;
    let out = gpu.mem.read_f64(bout)?;
    let yv = gpu.mem.read_f64(by)?;
    Ok(RunOutput {
        kernel_time_ms: acc.0,
        metrics: acc.1,
        checksum: checksum_f64(&out) + checksum_f64(&yv),
        transfer_bytes: (x.len() + y.len() + out.len()) as u64 * 8,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_matches_cpu_reference() {
        let m = build();
        let mut gpu = Gpu::new();
        let got = run(&m, &mut gpu).unwrap();

        // CPU reference.
        let mut outs = Vec::new();
        let mut ys = vec![0.0f64; THREADS * N as usize];
        for t in 0..THREADS {
            let x: Vec<f64> = (0..N).map(|i| signal(t, i)).collect();
            let mut j = 0usize;
            for i in 0..(N - 1) as usize {
                let (xi, xi1, yj) = (x[i], x[i + 1], ys[j * THREADS + t]);
                if xi > yj {
                    if xi > xi1 {
                        j += 1;
                        ys[j * THREADS + t] = xi;
                    } else if xi < yj {
                        // dead path (a implies not c); mirrors the kernel
                        if xi < xi1 {
                            j += 1;
                            ys[j * THREADS + t] = xi;
                        }
                    }
                } else if xi < yj
                    && xi < xi1 {
                        j += 1;
                        ys[j * THREADS + t] = xi;
                    }
            }
            outs.push(j as f64);
        }
        let expect = crate::bench::checksum_f64(&outs) + crate::bench::checksum_f64(&ys);
        assert_eq!(got.checksum, expect);
    }
}

//! complex — complex-number `pow` by binary exponentiation (paper
//! Listing 7, §V).
//!
//! Full complex arithmetic (the benchmark computes `(a + bi)^n` with a
//! residual series), with the exponent equal to the *global thread id*: the
//! `n & 1` branch diverges in essentially every warp. The baseline
//! predicates the conditional update into selects; u&u replaces them with
//! branches and lengthens the divergent paths — the paper's one significant
//! slowdown (down to 0.11× at factor 8, warp execution efficiency
//! collapsing from 100% to 19%). The divergence guard (§V / future work)
//! rescues this benchmark by refusing to transform the loop.

use crate::aux::aux_kernels;
use crate::bench::{checksum_f64, launch_into, Benchmark, BenchmarkInfo, RunOutput};
use uu_ir::{Function, FunctionBuilder, ICmpPred, Module, Param, Type, Value};
use uu_simt::{ExecError, Gpu, KernelArg, LaunchConfig, Metrics};

/// Table I row.
pub const INFO: BenchmarkInfo = BenchmarkInfo {
    name: "complex",
    category: "Math",
    cli: "10000000 1000",
    table_loops: 1,
    paper_compute_pct: 99.91,
    paper_rsd_pct: 0.26,
    hot_kernels: &["complex_pow"],
    binary_rest_size: 400,
    launch_repeats: 37000,
};

/// The benchmark registration.
pub fn benchmark() -> Benchmark {
    Benchmark {
        info: INFO,
        build,
        run,
    }
}

/// Binary exponentiation over complex numbers with a thread-id-dependent
/// exponent (Listing 7).
pub fn pow_kernel() -> Function {
    let mut f = Function::new(
        "complex_pow",
        vec![
            Param::new("out", Type::Ptr),
            Param::new("a0r", Type::F64),
            Param::new("a0i", Type::F64),
        ],
        Type::Void,
    );
    let entry = f.entry();
    let mut b = FunctionBuilder::new(&mut f);
    let header = b.create_block();
    let body = b.create_block();
    let odd = b.create_block();
    let latch = b.create_block();
    let exit = b.create_block();
    b.switch_to(entry);
    let gid = b.global_thread_id();
    b.br(header);
    b.switch_to(header);
    let n = b.phi(Type::I64);
    let ar = b.phi(Type::F64);
    let ai = b.phi(Type::F64);
    let cr = b.phi(Type::F64);
    let ci = b.phi(Type::F64);
    let anr = b.phi(Type::F64);
    let ani = b.phi(Type::F64);
    let cnr = b.phi(Type::F64);
    let cni = b.phi(Type::F64);
    b.add_phi_incoming(n, entry, gid);
    b.add_phi_incoming(ar, entry, Value::Arg(1));
    b.add_phi_incoming(ai, entry, Value::Arg(2));
    b.add_phi_incoming(cr, entry, Value::imm(0.125f64));
    b.add_phi_incoming(ci, entry, Value::imm(0.05f64));
    b.add_phi_incoming(anr, entry, Value::imm(1.0f64));
    b.add_phi_incoming(ani, entry, Value::imm(0.0f64));
    b.add_phi_incoming(cnr, entry, Value::imm(0.0f64));
    b.add_phi_incoming(cni, entry, Value::imm(0.0f64));
    let more = b.icmp(ICmpPred::Sgt, n, Value::imm(0i64));
    b.cond_br(more, body, exit);
    b.switch_to(body);
    let bit = b.and(n, Value::imm(1i64));
    let isodd = b.icmp(ICmpPred::Ne, bit, Value::imm(0i64));
    b.cond_br(isodd, odd, latch);
    b.switch_to(odd);
    // a_new *= a  (complex multiply)
    let t0 = b.fmul(anr, ar);
    let t1 = b.fmul(ani, ai);
    let anr_t = b.fsub(t0, t1);
    let t2 = b.fmul(anr, ai);
    let t3 = b.fmul(ani, ar);
    let ani_t = b.fadd(t2, t3);
    // c_new = c_new * a + c  (complex multiply-add)
    let u0 = b.fmul(cnr, ar);
    let u1 = b.fmul(cni, ai);
    let u2 = b.fsub(u0, u1);
    let cnr_t = b.fadd(u2, cr);
    let u3 = b.fmul(cnr, ai);
    let u4 = b.fmul(cni, ar);
    let u5 = b.fadd(u3, u4);
    let cni_t = b.fadd(u5, ci);
    b.br(latch);
    b.switch_to(latch);
    let anr_m = b.phi(Type::F64);
    let ani_m = b.phi(Type::F64);
    let cnr_m = b.phi(Type::F64);
    let cni_m = b.phi(Type::F64);
    b.add_phi_incoming(anr_m, body, anr);
    b.add_phi_incoming(anr_m, odd, anr_t);
    b.add_phi_incoming(ani_m, body, ani);
    b.add_phi_incoming(ani_m, odd, ani_t);
    b.add_phi_incoming(cnr_m, body, cnr);
    b.add_phi_incoming(cnr_m, odd, cnr_t);
    b.add_phi_incoming(cni_m, body, cni);
    b.add_phi_incoming(cni_m, odd, cni_t);
    // c *= (a + 1)
    let ar1 = b.fadd(ar, Value::imm(1.0f64));
    let v0 = b.fmul(cr, ar1);
    let v1 = b.fmul(ci, ai);
    let cr1 = b.fsub(v0, v1);
    let v2 = b.fmul(cr, ai);
    let v3 = b.fmul(ci, ar1);
    let ci1 = b.fadd(v2, v3);
    // a *= a
    let w0 = b.fmul(ar, ar);
    let w1 = b.fmul(ai, ai);
    let ar2 = b.fsub(w0, w1);
    let w2 = b.fmul(ar, ai);
    let ai2 = b.fadd(w2, w2);
    let n1 = b.ashr(n, Value::imm(1i64));
    b.add_phi_incoming(n, latch, n1);
    b.add_phi_incoming(ar, latch, ar2);
    b.add_phi_incoming(ai, latch, ai2);
    b.add_phi_incoming(cr, latch, cr1);
    b.add_phi_incoming(ci, latch, ci1);
    b.add_phi_incoming(anr, latch, anr_m);
    b.add_phi_incoming(ani, latch, ani_m);
    b.add_phi_incoming(cnr, latch, cnr_m);
    b.add_phi_incoming(cni, latch, cni_m);
    b.br(header);
    b.switch_to(exit);
    let sr = b.fadd(anr, cnr);
    let si = b.fadd(ani, cni);
    let sum = b.fadd(sr, si);
    let po = b.gep(Value::Arg(0), gid, 8);
    b.store(po, sum);
    b.ret(None);
    f
}

fn build() -> Module {
    let mut m = Module::new("complex");
    m.add_function(pow_kernel());
    for f in aux_kernels(0xc0, INFO.table_loops.saturating_sub(1)) {
        m.add_function(f);
    }
    m
}

const THREADS: usize = 256;
const A0R: f64 = 1.0000003;
const A0I: f64 = 0.0000007;

fn run(m: &Module, gpu: &mut Gpu) -> Result<RunOutput, ExecError> {
    let bout = gpu.mem.alloc_f64(&vec![0.0; THREADS])?;
    let mut acc = (0.0f64, Metrics::default());
    launch_into(
        gpu,
        m,
        "complex_pow",
        LaunchConfig::new(THREADS as u32 / 32, 32),
        &[
            KernelArg::Buffer(bout),
            KernelArg::F64(A0R),
            KernelArg::F64(A0I),
        ],
        &mut acc,
    )?;
    let out = gpu.mem.read_f64(bout)?;
    Ok(RunOutput {
        kernel_time_ms: acc.0,
        metrics: acc.1,
        checksum: checksum_f64(&out),
        transfer_bytes: out.len() as u64 * 8,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmul(x: (f64, f64), y: (f64, f64)) -> (f64, f64) {
        (x.0 * y.0 - x.1 * y.1, x.0 * y.1 + x.1 * y.0)
    }

    #[test]
    fn pow_matches_cpu_reference() {
        let m = build();
        let mut gpu = Gpu::new();
        let got = run(&m, &mut gpu).unwrap();
        let mut expect = Vec::new();
        for t in 0..THREADS as i64 {
            let mut n = t;
            let mut a = (A0R, A0I);
            let mut c = (0.125f64, 0.05f64);
            let mut a_new = (1.0f64, 0.0f64);
            let mut c_new = (0.0f64, 0.0f64);
            while n > 0 {
                if n & 1 != 0 {
                    a_new = cmul(a_new, a);
                    let m = cmul(c_new, a);
                    c_new = (m.0 + c.0, m.1 + c.1);
                }
                c = cmul(c, (a.0 + 1.0, a.1));
                a = cmul(a, a);
                n >>= 1;
            }
            expect.push((a_new.0 + c_new.0) + (a_new.1 + c_new.1));
        }
        assert_eq!(got.checksum, crate::bench::checksum_f64(&expect));
    }

    #[test]
    fn the_loop_is_divergent() {
        let f = pow_kernel();
        let div = uu_analysis::Divergence::compute(&f);
        let dom = uu_analysis::DomTree::compute(&f);
        let forest = uu_analysis::LoopForest::compute(&f, &dom);
        assert!(uu_analysis::loop_has_divergent_branch(
            &f,
            &forest,
            uu_analysis::LoopId(0),
            &div
        ));
    }
}

//! # uu-kernels — the 16 evaluated GPU benchmarks
//!
//! IR re-implementations of the HeCBench applications from the paper's
//! Table I. Each benchmark provides:
//!
//! * a [`uu_ir::Module`] containing its kernels — the *hot* kernels follow
//!   the loops the paper describes (XSBench's binary search,
//!   bezier-surface's blend loop, rainflow's counting loop, complex's
//!   bit-scan `pow` loop, …), while the remaining loop population of each
//!   application (Table I's `L` column, e.g. 210 for XSBench) is filled with
//!   generated *auxiliary* kernels that are compiled but never launched —
//!   mirroring reality, where most of an application's loops are cold.
//!   Per-loop experiments over those cold loops produce the mass of ≈1.0×
//!   points in the paper's Figure 8;
//! * a deterministic workload (sizes derived from the paper's CLI column,
//!   scaled to simulator scale);
//! * a checksum over its outputs, used by the harness to assert that every
//!   compiler configuration preserves semantics;
//! * a host↔device transfer volume, from which the harness derives the
//!   Table I `%C` (time in compute kernels) via a PCIe model.

#![warn(missing_docs)]

pub mod aux;
mod bench;

pub mod bezier;
pub mod bn;
pub mod bspline;
pub mod ccs;
pub mod clink;
pub mod complex;
pub mod contract;
pub mod coordinates;
pub mod haccmk;
pub mod lavamd;
pub mod libor;
pub mod mandelbrot;
pub mod qtclustering;
pub mod quicksort;
pub mod rainflow;
pub mod xsbench;

pub use bench::{all_benchmarks, Benchmark, BenchmarkInfo, RunOutput};

use uu_ir::Module;

/// Version of the benchmark workloads (input sizes, launch counts,
/// checksummed outputs). Part of the harness's *run* cache key: bump it
/// whenever any workload changes in a way that alters simulator output,
/// so stale cached measurements can never masquerade as fresh ones.
pub const WORKLOAD_VERSION: u32 = 1;

/// Count the natural loops across every function of a module (the paper's
/// per-application `L`).
pub fn count_loops(m: &Module) -> usize {
    m.iter()
        .map(|(_, f)| {
            let dom = uu_analysis::DomTree::compute(f);
            uu_analysis::LoopForest::compute(f, &dom).len()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_benchmark_module_verifies() {
        for b in all_benchmarks() {
            let m = (b.build)();
            uu_ir::verify_module(&m).unwrap_or_else(|e| panic!("{}: {e}", b.info.name));
        }
    }

    #[test]
    fn loop_counts_match_table1() {
        for b in all_benchmarks() {
            let m = (b.build)();
            assert_eq!(
                count_loops(&m),
                b.info.table_loops,
                "{} loop count mismatch",
                b.info.name
            );
        }
    }

    #[test]
    fn workloads_execute_and_checksum() {
        for b in all_benchmarks() {
            let m = (b.build)();
            let mut gpu = uu_simt::Gpu::new();
            let out = (b.run)(&m, &mut gpu).unwrap_or_else(|e| panic!("{}: {e}", b.info.name));
            assert!(out.kernel_time_ms > 0.0, "{}", b.info.name);
            assert!(out.checksum.is_finite(), "{}", b.info.name);
            assert!(out.transfer_bytes > 0, "{}", b.info.name);
        }
    }

    #[test]
    fn checksums_are_deterministic() {
        for b in all_benchmarks() {
            let m = (b.build)();
            let mut g1 = uu_simt::Gpu::new();
            let mut g2 = uu_simt::Gpu::new();
            let a = (b.run)(&m, &mut g1).unwrap();
            let c = (b.run)(&m, &mut g2).unwrap();
            assert_eq!(a.checksum, c.checksum, "{}", b.info.name);
        }
    }

    #[test]
    fn sixteen_benchmarks() {
        assert_eq!(all_benchmarks().len(), 16);
        let names: Vec<&str> = all_benchmarks().iter().map(|b| b.info.name).collect();
        assert!(names.contains(&"XSBench"));
        assert!(names.contains(&"bezier-surface"));
    }
}

//! qtclustering — quality-threshold clustering.
//!
//! The distance-accumulation loop re-loads the cluster centroid every
//! iteration and guards the membership update behind a threshold test.
//! Unrolling exposes the centroid reload to GVN and unmerging strips the
//! merge-point data movement — the paper's small 1.06× heuristic win.

use crate::aux::aux_kernels;
use crate::bench::{checksum_f64, launch_into, Benchmark, BenchmarkInfo, RunOutput};
use uu_ir::{FCmpPred, Function, FunctionBuilder, ICmpPred, Module, Param, Type, Value};
use uu_simt::{ExecError, Gpu, KernelArg, LaunchConfig, Metrics};

/// Table I row.
pub const INFO: BenchmarkInfo = BenchmarkInfo {
    name: "qtclustering",
    category: "Machine learning",
    cli: "no CLI input",
    table_loops: 19,
    paper_compute_pct: 99.14,
    paper_rsd_pct: 1.9,
    hot_kernels: &["qt_cluster"],
    binary_rest_size: 6000,
    launch_repeats: 440,
};

/// The benchmark registration.
pub fn benchmark() -> Benchmark {
    Benchmark {
        info: INFO,
        build,
        run,
    }
}

/// Membership-count loop with an in-loop centroid reload.
pub fn cluster_kernel() -> Function {
    let mut f = Function::new(
        "qt_cluster",
        vec![
            Param::new("points", Type::Ptr),
            Param::new("centroid", Type::Ptr),
            Param::new("out", Type::Ptr),
            Param::new("n", Type::I64),
        ],
        Type::Void,
    );
    let entry = f.entry();
    let mut b = FunctionBuilder::new(&mut f);
    let header = b.create_block();
    let body = b.create_block();
    let member = b.create_block();
    let latch = b.create_block();
    let exit = b.create_block();
    b.switch_to(entry);
    let gid = b.global_thread_id();
    let base = b.mul(gid, Value::Arg(3));
    b.br(header);
    b.switch_to(header);
    let i = b.phi(Type::I64);
    let count = b.phi(Type::F64);
    b.add_phi_incoming(i, entry, Value::imm(0i64));
    b.add_phi_incoming(count, entry, Value::imm(0.0f64));
    let more = b.icmp(ICmpPred::Slt, i, Value::Arg(3));
    b.cond_br(more, body, exit);
    b.switch_to(body);
    let pc = b.gep(Value::Arg(1), gid, 8);
    let centroid = b.load(Type::F64, pc); // invariant reload
    let ix = b.add(base, i);
    let pp = b.gep(Value::Arg(0), ix, 8);
    let pt = b.load(Type::F64, pp);
    let d = b.fsub(pt, centroid);
    let d2 = b.fmul(d, d);
    let close = b.fcmp(FCmpPred::Olt, d2, Value::imm(1.0f64));
    b.cond_br(close, member, latch);
    b.switch_to(member);
    let w = b.fsub(Value::imm(1.0f64), d2);
    let count_t = b.fadd(count, w);
    b.br(latch);
    b.switch_to(latch);
    let countm = b.phi(Type::F64);
    b.add_phi_incoming(countm, body, count);
    b.add_phi_incoming(countm, member, count_t);
    let i1 = b.add(i, Value::imm(1i64));
    b.add_phi_incoming(i, latch, i1);
    b.add_phi_incoming(count, latch, countm);
    b.br(header);
    b.switch_to(exit);
    let po = b.gep(Value::Arg(2), gid, 8);
    b.store(po, count);
    b.ret(None);
    f
}

fn build() -> Module {
    let mut m = Module::new("qtclustering");
    m.add_function(cluster_kernel());
    for f in aux_kernels(0x47, INFO.table_loops - 1) {
        m.add_function(f);
    }
    m
}

const N: i64 = 56;
const THREADS: usize = 128;

fn point(t: usize, i: i64) -> f64 {
    // Points are tiled per warp (threads of a warp scan the same tile), so
    // the threshold branch is warp-coherent.
    (((t / 32) as f64) * 0.11 + (i as f64) * 0.29).sin() * 2.0
}

fn centroid(t: usize) -> f64 {
    ((t / 32) as f64) * 0.4 - 0.6
}

fn run(m: &Module, gpu: &mut Gpu) -> Result<RunOutput, ExecError> {
    let mut points = Vec::new();
    for t in 0..THREADS {
        for i in 0..N {
            points.push(point(t, i));
        }
    }
    let centroids: Vec<f64> = (0..THREADS).map(centroid).collect();
    let bp = gpu.mem.alloc_f64(&points)?;
    let bc = gpu.mem.alloc_f64(&centroids)?;
    let bo = gpu.mem.alloc_f64(&vec![0.0; THREADS])?;
    let mut acc = (0.0f64, Metrics::default());
    launch_into(
        gpu,
        m,
        "qt_cluster",
        LaunchConfig::new(THREADS as u32 / 32, 32),
        &[
            KernelArg::Buffer(bp),
            KernelArg::Buffer(bc),
            KernelArg::Buffer(bo),
            KernelArg::I64(N),
        ],
        &mut acc,
    )?;
    let out = gpu.mem.read_f64(bo)?;
    Ok(RunOutput {
        kernel_time_ms: acc.0,
        metrics: acc.1,
        checksum: checksum_f64(&out),
        transfer_bytes: (points.len() + centroids.len() + out.len()) as u64 * 8,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clustering_matches_cpu_reference() {
        let m = build();
        let mut gpu = Gpu::new();
        let got = run(&m, &mut gpu).unwrap();
        let mut expect = Vec::new();
        for t in 0..THREADS {
            let c = centroid(t);
            let mut count = 0.0f64;
            for i in 0..N {
                let d = point(t, i) - c;
                if d * d < 1.0 {
                    count += 1.0 - d * d;
                }
            }
            expect.push(count);
        }
        assert_eq!(got.checksum, crate::bench::checksum_f64(&expect));
    }
}

//! Generator for auxiliary (cold) kernels.
//!
//! Real applications contain many more loops than their hot kernels:
//! XSBench's 210 loops are mostly initialization, I/O and host-side helpers.
//! The per-loop experiments of the paper sweep *all* of them, and the bulk
//! land at ≈1.0× speedup (Figure 8's diagonal mass) while still inflating
//! code size (Figure 6b counts whole binaries). These generated kernels
//! reproduce that loop population: they are part of each application's
//! module — so the pass transforms them and they contribute code size — but
//! the workload never launches them.
//!
//! Generation is deterministic in the seed, and the shapes rotate through
//! counted loops, branchy while-loops, and two-level nests, so the pass and
//! heuristic see a realistic variety.

use uu_ir::{Function, FunctionBuilder, ICmpPred, Param, Type, Value};

/// Deterministically generate functions containing exactly `loops` natural
/// loops in total. `seed` varies the shapes between applications.
pub fn aux_kernels(seed: u64, loops: usize) -> Vec<Function> {
    let mut out = Vec::new();
    let mut remaining = loops;
    let mut i = 0u64;
    while remaining > 0 {
        let shape = (seed.wrapping_mul(6364136223846793005).wrapping_add(i)) >> 33;
        let f = match shape % 3 {
            0 => counted_aux(seed, i),
            1 => branchy_aux(seed, i),
            _ if remaining >= 2 => {
                let f = nested_aux(seed, i);
                remaining -= 2;
                out.push(f);
                i += 1;
                continue;
            }
            _ => counted_aux(seed, i),
        };
        remaining -= 1;
        out.push(f);
        i += 1;
    }
    out
}

/// A small counted loop: `for (j = 0; j < K; j++) acc += a[j]`.
fn counted_aux(seed: u64, i: u64) -> Function {
    let bound = 4 + ((seed ^ i) % 13) as i64;
    let mut f = Function::new(
        format!("aux_counted_{i}"),
        vec![Param::new("a", Type::Ptr), Param::new("out", Type::Ptr)],
        Type::Void,
    );
    let entry = f.entry();
    let mut b = FunctionBuilder::new(&mut f);
    let h = b.create_block();
    let body = b.create_block();
    let exit = b.create_block();
    b.switch_to(entry);
    b.br(h);
    b.switch_to(h);
    let j = b.phi(Type::I64);
    let acc = b.phi(Type::F64);
    b.add_phi_incoming(j, entry, Value::imm(0i64));
    b.add_phi_incoming(acc, entry, Value::imm(0.0f64));
    let c = b.icmp(ICmpPred::Slt, j, Value::imm(bound));
    b.cond_br(c, body, exit);
    b.switch_to(body);
    let pa = b.gep(Value::Arg(0), j, 8);
    let v = b.load(Type::F64, pa);
    let acc1 = b.fadd(acc, v);
    let j1 = b.add(j, Value::imm(1i64));
    b.add_phi_incoming(j, body, j1);
    b.add_phi_incoming(acc, body, acc1);
    b.br(h);
    b.switch_to(exit);
    b.store(Value::Arg(1), acc);
    b.ret(None);
    f
}

/// A while-loop with a data-dependent diamond in the body.
fn branchy_aux(seed: u64, i: u64) -> Function {
    let dec = 1 + ((seed ^ (i * 7)) % 3) as i64;
    let mut f = Function::new(
        format!("aux_branchy_{i}"),
        vec![
            Param::new("a", Type::Ptr),
            Param::new("n", Type::I64),
            Param::new("out", Type::Ptr),
        ],
        Type::Void,
    );
    let entry = f.entry();
    let mut b = FunctionBuilder::new(&mut f);
    let h = b.create_block();
    let t = b.create_block();
    let e = b.create_block();
    let m = b.create_block();
    let exit = b.create_block();
    b.switch_to(entry);
    b.br(h);
    b.switch_to(h);
    let n = b.phi(Type::I64);
    let acc = b.phi(Type::I64);
    b.add_phi_incoming(n, entry, Value::Arg(1));
    b.add_phi_incoming(acc, entry, Value::imm(0i64));
    let c = b.icmp(ICmpPred::Sgt, n, Value::imm(0i64));
    b.cond_br(c, t, exit);
    b.switch_to(t);
    let pa = b.gep(Value::Arg(0), n, 8);
    let v = b.load(Type::I64, pa);
    let odd = b.and(v, Value::imm(1i64));
    let isodd = b.icmp(ICmpPred::Ne, odd, Value::imm(0i64));
    b.cond_br(isodd, e, m);
    b.switch_to(e);
    let acc_t = b.add(acc, v);
    b.br(m);
    b.switch_to(m);
    let accm = b.phi(Type::I64);
    b.add_phi_incoming(accm, t, acc);
    b.add_phi_incoming(accm, e, acc_t);
    let n1 = b.sub(n, Value::imm(dec));
    b.add_phi_incoming(n, m, n1);
    b.add_phi_incoming(acc, m, accm);
    b.br(h);
    b.switch_to(exit);
    b.store(Value::Arg(2), acc);
    b.ret(None);
    f
}

/// A two-level nest (contributes 2 loops).
fn nested_aux(seed: u64, i: u64) -> Function {
    let inner = 2 + ((seed ^ (i * 13)) % 5) as i64;
    let mut f = Function::new(
        format!("aux_nested_{i}"),
        vec![
            Param::new("a", Type::Ptr),
            Param::new("n", Type::I64),
            Param::new("out", Type::Ptr),
        ],
        Type::Void,
    );
    let entry = f.entry();
    let mut b = FunctionBuilder::new(&mut f);
    let oh = b.create_block();
    let ih = b.create_block();
    let ibody = b.create_block();
    let olatch = b.create_block();
    let exit = b.create_block();
    b.switch_to(entry);
    b.br(oh);
    b.switch_to(oh);
    let x = b.phi(Type::I64);
    let acc = b.phi(Type::F64);
    b.add_phi_incoming(x, entry, Value::imm(0i64));
    b.add_phi_incoming(acc, entry, Value::imm(0.0f64));
    let co = b.icmp(ICmpPred::Slt, x, Value::Arg(1));
    b.cond_br(co, ih, exit);
    b.switch_to(ih);
    let y = b.phi(Type::I64);
    let iacc = b.phi(Type::F64);
    b.add_phi_incoming(y, oh, Value::imm(0i64));
    b.add_phi_incoming(iacc, oh, acc);
    let ci = b.icmp(ICmpPred::Slt, y, Value::imm(inner));
    b.cond_br(ci, ibody, olatch);
    b.switch_to(ibody);
    let idx = b.add(x, y);
    let pa = b.gep(Value::Arg(0), idx, 8);
    let v = b.load(Type::F64, pa);
    let iacc1 = b.fadd(iacc, v);
    let y1 = b.add(y, Value::imm(1i64));
    b.add_phi_incoming(y, ibody, y1);
    b.add_phi_incoming(iacc, ibody, iacc1);
    b.br(ih);
    b.switch_to(olatch);
    let x1 = b.add(x, Value::imm(1i64));
    b.add_phi_incoming(x, olatch, x1);
    b.add_phi_incoming(acc, olatch, iacc);
    b.br(oh);
    b.switch_to(exit);
    b.store(Value::Arg(2), acc);
    b.ret(None);
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total_loops(fs: &[Function]) -> usize {
        fs.iter()
            .map(|f| {
                let dom = uu_analysis::DomTree::compute(f);
                uu_analysis::LoopForest::compute(f, &dom).len()
            })
            .sum()
    }

    #[test]
    fn generates_exact_loop_counts() {
        for want in [1usize, 2, 5, 10, 45, 209] {
            let fs = aux_kernels(7, want);
            assert_eq!(total_loops(&fs), want, "want {want}");
            for f in &fs {
                uu_ir::verify_function(f).unwrap_or_else(|e| panic!("{e}\n{f}"));
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = aux_kernels(3, 12);
        let b = aux_kernels(3, 12);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_string(), y.to_string());
        }
        // Different seed, different mix (very likely different shapes).
        let c = aux_kernels(4, 12);
        let render = |fs: &[Function]| fs.iter().map(|f| f.to_string()).collect::<String>();
        assert_ne!(render(&a), render(&c));
    }

    #[test]
    fn aux_kernels_are_transformable() {
        use uu_core::{uu_loop, UuOptions};
        for f in &mut aux_kernels(5, 6) {
            let dom = uu_analysis::DomTree::compute(f);
            let forest = uu_analysis::LoopForest::compute(f, &dom);
            let headers: Vec<_> = forest.loops().iter().map(|l| l.header).collect();
            for h in headers {
                uu_loop(f, h, &UuOptions::default());
            }
            uu_ir::verify_function(f).unwrap_or_else(|e| panic!("{e}\n{f}"));
        }
    }
}

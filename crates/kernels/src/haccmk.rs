//! haccmk — HACC short-range force microkernel.
//!
//! One long neighbour loop per thread with a cutoff branch whose outcome is
//! data-dependent *per iteration*: u&u has nothing to prove across
//! iterations, so duplication only inflates the working set. The paper
//! measures plain unrolling slightly ahead of u&u here, "due to an
//! increasing number of stalls related to instruction fetching for u&u"
//! (§IV-C RQ3) — the shape this kernel reproduces.

use crate::aux::aux_kernels;
use crate::bench::{checksum_f64, launch_into, Benchmark, BenchmarkInfo, RunOutput};
use uu_ir::{FCmpPred, Function, FunctionBuilder, ICmpPred, Intrinsic, Module, Param, Type, Value};
use uu_simt::{ExecError, Gpu, KernelArg, LaunchConfig, Metrics};

/// Table I row.
pub const INFO: BenchmarkInfo = BenchmarkInfo {
    name: "haccmk",
    category: "Simulation",
    cli: "2000",
    table_loops: 1,
    paper_compute_pct: 99.83,
    paper_rsd_pct: 0.01,
    hot_kernels: &["haccmk_force"],
    binary_rest_size: 800,
    launch_repeats: 2500,
};

/// The benchmark registration.
pub fn benchmark() -> Benchmark {
    Benchmark {
        info: INFO,
        build,
        run,
    }
}

/// The force loop: for each neighbour, accumulate a softened inverse-cube
/// force if within the cutoff.
pub fn force_kernel() -> Function {
    let mut f = Function::new(
        "haccmk_force",
        vec![
            Param::new("xx", Type::Ptr),
            Param::new("yy", Type::Ptr),
            Param::new("out", Type::Ptr),
            Param::new("n", Type::I64),
        ],
        Type::Void,
    );
    let entry = f.entry();
    let mut b = FunctionBuilder::new(&mut f);
    let header = b.create_block();
    let body = b.create_block();
    let near = b.create_block();
    let latch = b.create_block();
    let exit = b.create_block();
    b.switch_to(entry);
    let gid = b.global_thread_id();
    let pxi = b.gep(Value::Arg(0), gid, 8);
    let xi = b.load(Type::F64, pxi);
    b.br(header);
    b.switch_to(header);
    let j = b.phi(Type::I64);
    let fx = b.phi(Type::F64);
    b.add_phi_incoming(j, entry, Value::imm(0i64));
    b.add_phi_incoming(fx, entry, Value::imm(0.0f64));
    let more = b.icmp(ICmpPred::Slt, j, Value::Arg(3));
    b.cond_br(more, body, exit);
    b.switch_to(body);
    let pxj = b.gep(Value::Arg(0), j, 8);
    let xj = b.load(Type::F64, pxj);
    let pyj = b.gep(Value::Arg(1), j, 8);
    let yj = b.load(Type::F64, pyj);
    let dx = b.fsub(xj, xi);
    let dx2 = b.fmul(dx, dx);
    let r2 = b.fadd(dx2, Value::imm(0.01f64));
    let incut = b.fcmp(FCmpPred::Olt, r2, Value::imm(4.0f64));
    b.cond_br(incut, near, latch);
    b.switch_to(near);
    let r = b.intr(Intrinsic::Sqrt, vec![r2], Type::F64);
    let r3 = b.fmul(r2, r);
    let inv = b.fdiv(Value::imm(1.0f64), r3);
    let scaled = b.fmul(inv, yj);
    let contrib = b.fmul(scaled, dx);
    let fx_t = b.fadd(fx, contrib);
    b.br(latch);
    b.switch_to(latch);
    let fxm = b.phi(Type::F64);
    b.add_phi_incoming(fxm, body, fx);
    b.add_phi_incoming(fxm, near, fx_t);
    let j1 = b.add(j, Value::imm(1i64));
    b.add_phi_incoming(j, latch, j1);
    b.add_phi_incoming(fx, latch, fxm);
    b.br(header);
    b.switch_to(exit);
    let po = b.gep(Value::Arg(2), gid, 8);
    b.store(po, fx);
    b.ret(None);
    f
}

fn build() -> Module {
    let mut m = Module::new("haccmk");
    m.add_function(force_kernel());
    for f in aux_kernels(0x4a, INFO.table_loops.saturating_sub(1)) {
        m.add_function(f);
    }
    m
}

const N: i64 = 96;
const THREADS: usize = 128;

fn coord(i: i64) -> f64 {
    // Cell-binned particles: threads of a warp process one cell, so they
    // share a position bucket and the cutoff branch is warp-uniform.
    (i / 32) as f64 * 1.44
}

fn run(m: &Module, gpu: &mut Gpu) -> Result<RunOutput, ExecError> {
    let xx: Vec<f64> = (0..N.max(THREADS as i64)).map(coord).collect();
    let yy: Vec<f64> = (0..N).map(|i| 1.0 + (i % 7) as f64 * 0.1).collect();
    let bx = gpu.mem.alloc_f64(&xx)?;
    let by = gpu.mem.alloc_f64(&yy)?;
    let bo = gpu.mem.alloc_f64(&vec![0.0; THREADS])?;
    let mut acc = (0.0f64, Metrics::default());
    launch_into(
        gpu,
        m,
        "haccmk_force",
        LaunchConfig::new(THREADS as u32 / 32, 32),
        &[
            KernelArg::Buffer(bx),
            KernelArg::Buffer(by),
            KernelArg::Buffer(bo),
            KernelArg::I64(N),
        ],
        &mut acc,
    )?;
    let out = gpu.mem.read_f64(bo)?;
    Ok(RunOutput {
        kernel_time_ms: acc.0,
        metrics: acc.1,
        checksum: checksum_f64(&out),
        transfer_bytes: (xx.len() + yy.len() + out.len()) as u64 * 8,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn force_matches_cpu_reference() {
        let m = build();
        let mut gpu = Gpu::new();
        let got = run(&m, &mut gpu).unwrap();
        let xx: Vec<f64> = (0..N.max(THREADS as i64)).map(coord).collect();
        let yy: Vec<f64> = (0..N).map(|i| 1.0 + (i % 7) as f64 * 0.1).collect();
        let mut expect = Vec::new();
        for t in 0..THREADS {
            let xi = xx[t];
            let mut fx = 0.0f64;
            for j in 0..N as usize {
                let dx = xx[j] - xi;
                let r2 = dx * dx + 0.01;
                if r2 < 4.0 {
                    let r3 = r2 * r2.sqrt();
                    fx += 1.0 / r3 * yy[j] * dx;
                }
            }
            expect.push(fx);
        }
        assert_eq!(got.checksum, crate::bench::checksum_f64(&expect));
    }
}

//! clink — LSTM inference (compute-light link prediction).
//!
//! The recurrent time-step loop stores `h[t+1]` and re-loads it as `h[t]`
//! in the next iteration, and gates the candidate update behind a decaying
//! activation budget. Unroll+unmerge turns the cross-iteration reload into a
//! dominator-scoped store-to-load forward (the arrays are `__restrict__`)
//! and specializes the exhausted-gate path, the paper's 1.21×.

use crate::aux::aux_kernels;
use crate::bench::{checksum_f64, launch_into, Benchmark, BenchmarkInfo, RunOutput};
use uu_ir::{Function, FunctionBuilder, ICmpPred, Module, Param, Type, Value};
use uu_simt::{ExecError, Gpu, KernelArg, LaunchConfig, Metrics};

/// Table I row.
pub const INFO: BenchmarkInfo = BenchmarkInfo {
    name: "clink",
    category: "Machine learning",
    cli: "no CLI input",
    table_loops: 5,
    paper_compute_pct: 27.23,
    paper_rsd_pct: 0.12,
    hot_kernels: &["clink_lstm"],
    binary_rest_size: 3000,
    launch_repeats: 13,
};

/// The benchmark registration.
pub fn benchmark() -> Benchmark {
    Benchmark {
        info: INFO,
        build,
        run,
    }
}

/// The recurrent time-step loop.
pub fn lstm_kernel() -> Function {
    let mut f = Function::new(
        "clink_lstm",
        vec![
            Param::restrict("xs", Type::Ptr),
            Param::restrict("hs", Type::Ptr),
            Param::new("gates", Type::Ptr),
            Param::new("steps", Type::I64),
        ],
        Type::Void,
    );
    let entry = f.entry();
    let mut b = FunctionBuilder::new(&mut f);
    let header = b.create_block();
    let body = b.create_block();
    let gate = b.create_block();
    let latch = b.create_block();
    let exit = b.create_block();
    b.switch_to(entry);
    let gid = b.global_thread_id();
    // Coalesced column-major layout: h[t] of thread `tid` is at t*NT + tid.
    let bd = b.block_dim();
    let gd = b.intr(uu_ir::Intrinsic::GridDimX, vec![], uu_ir::Type::I32);
    let nt32 = b.mul(bd, gd);
    let nt = b.cast(uu_ir::CastOp::Sext, nt32, Type::I64);
    let pg = b.gep(Value::Arg(2), gid, 8);
    let gate0 = b.load(Type::I64, pg);
    b.br(header);
    b.switch_to(header);
    let t = b.phi(Type::I64);
    let budget = b.phi(Type::I64);
    b.add_phi_incoming(t, entry, Value::imm(0i64));
    b.add_phi_incoming(budget, entry, gate0);
    let more = b.icmp(ICmpPred::Slt, t, Value::Arg(3));
    b.cond_br(more, body, exit);
    b.switch_to(body);
    // h[t] — re-loaded every iteration; forwarded after u&u.
    let hrow = b.mul(t, nt);
    let ht_ix = b.add(hrow, gid);
    let pht = b.gep(Value::Arg(1), ht_ix, 8);
    let ht = b.load(Type::F64, pht);
    let xt_ix = ht_ix;
    let pxt = b.gep(Value::Arg(0), xt_ix, 8);
    let xt = b.load(Type::F64, pxt);
    let mix0 = b.fmul(ht, Value::imm(0.9f64));
    let mix1 = b.fmul(xt, Value::imm(0.1f64));
    let hnew = b.fadd(mix0, mix1);
    let open = b.icmp(ICmpPred::Sgt, budget, Value::imm(0i64));
    b.cond_br(open, gate, latch);
    b.switch_to(gate);
    let boost = b.fdiv(hnew, Value::imm(4.0f64));
    let hgated = b.fadd(hnew, boost);
    let budget_g = b.sub(budget, Value::imm(1i64));
    b.br(latch);
    b.switch_to(latch);
    let hm = b.phi(Type::F64);
    let budgetm = b.phi(Type::I64);
    b.add_phi_incoming(hm, body, hnew);
    b.add_phi_incoming(hm, gate, hgated);
    b.add_phi_incoming(budgetm, body, budget);
    b.add_phi_incoming(budgetm, gate, budget_g);
    // h[t+1] = hm — next iteration's h[t] load forwards from this store.
    let ht1_ix = b.add(ht_ix, nt);
    let pht1 = b.gep(Value::Arg(1), ht1_ix, 8);
    b.store(pht1, hm);
    let t1 = b.add(t, Value::imm(1i64));
    b.add_phi_incoming(t, latch, t1);
    b.add_phi_incoming(budget, latch, budgetm);
    b.br(header);
    b.switch_to(exit);
    b.ret(None);
    f
}

fn build() -> Module {
    let mut m = Module::new("clink");
    m.add_function(lstm_kernel());
    for f in aux_kernels(0xc1, INFO.table_loops - 1) {
        m.add_function(f);
    }
    m
}

const STEPS: i64 = 48;
const THREADS: usize = 64;

fn xval(t: usize, i: i64) -> f64 {
    ((t as f64 * 1.7 + i as f64) * 0.31).cos()
}

fn run(m: &Module, gpu: &mut Gpu) -> Result<RunOutput, ExecError> {
    let mut xs = Vec::new();
    for i in 0..=STEPS {
        for t in 0..THREADS {
            xs.push(xval(t, i));
        }
    }
    let hs = vec![0.5f64; THREADS * (STEPS as usize + 1)];
    let gates: Vec<i64> = (0..THREADS).map(|t| ((t / 32) % 3) as i64 * 2).collect();
    let bx = gpu.mem.alloc_f64(&xs)?;
    let bh = gpu.mem.alloc_f64(&hs)?;
    let bg = gpu.mem.alloc_i64(&gates)?;
    let mut acc = (0.0f64, Metrics::default());
    launch_into(
        gpu,
        m,
        "clink_lstm",
        LaunchConfig::new(THREADS as u32 / 32, 32),
        &[
            KernelArg::Buffer(bx),
            KernelArg::Buffer(bh),
            KernelArg::Buffer(bg),
            KernelArg::I64(STEPS),
        ],
        &mut acc,
    )?;
    let h = gpu.mem.read_f64(bh)?;
    Ok(RunOutput {
        kernel_time_ms: acc.0,
        metrics: acc.1,
        checksum: checksum_f64(&h),
        transfer_bytes: (xs.len() + hs.len() + gates.len()) as u64 * 8 + 1_500_000,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lstm_matches_cpu_reference() {
        let m = build();
        let mut gpu = Gpu::new();
        let got = run(&m, &mut gpu).unwrap();
        let mut hs = vec![0.5f64; THREADS * (STEPS as usize + 1)];
        for t in 0..THREADS {
            let mut budget = ((t / 32) % 3) as i64 * 2;
            for i in 0..STEPS as usize {
                let ht = hs[i * THREADS + t];
                let xt = xval(t, i as i64);
                let mut hnew = ht * 0.9 + xt * 0.1;
                if budget > 0 {
                    hnew += hnew / 4.0;
                    budget -= 1;
                }
                hs[(i + 1) * THREADS + t] = hnew;
            }
        }
        assert_eq!(got.checksum, crate::bench::checksum_f64(&hs));
    }
}

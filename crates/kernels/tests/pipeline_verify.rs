//! Stage-by-stage verifier coverage over the full paper benchmark suite.
//!
//! `uu_core::compile` only guarantees valid IR at the end; a pass that
//! corrupts the function and a later pass that happens to repair it would
//! slip through. This test re-runs the pipeline stages by hand on all 16
//! paper kernels and runs the IR verifier after the transform, after every
//! individual cleanup pass, after baseline unrolling and after
//! if-conversion, so the first corrupting stage is named directly.

use uu_core::baseline_unroll::{baseline_unroll, BaselineUnrollOptions};
use uu_core::heuristic::run_heuristic;
use uu_core::opt::{
    condprop::CondProp, dce::Dce, gvn::Gvn, ifconvert::IfConvert, instsimplify::InstSimplify,
    sccp::Sccp, simplifycfg::SimplifyCfg, Pass,
};
use uu_core::{uu_loop, HeuristicOptions, UuOptions};
use uu_ir::{verify_function, Function, Module};
use uu_kernels::all_benchmarks;

fn verify_stage(kernel: &str, f: &Function, stage: &str) {
    verify_function(f).unwrap_or_else(|e| {
        panic!("kernel '{kernel}', function '{}': IR invalid after {stage}: {e}\n{f}", f.name())
    });
}

/// One fixpoint cleanup round-set, verifying after every individual pass.
fn checked_cleanup(kernel: &str, f: &mut Function, stage: &str, max_rounds: usize) {
    for round in 0..max_rounds {
        let mut changed = false;
        macro_rules! checked {
            ($pass:expr) => {{
                let mut p = $pass;
                changed |= p.run(f);
                verify_stage(kernel, f, &format!("{stage} round {round} pass {}", p.name()));
            }};
        }
        checked!(SimplifyCfg::default());
        checked!(InstSimplify);
        checked!(Sccp);
        checked!(SimplifyCfg::default());
        checked!(Gvn);
        checked!(CondProp);
        checked!(Dce);
        if !changed {
            break;
        }
    }
}

/// The transform to exercise, mirroring `apply_transform` for the
/// all-loops filter.
enum Mode {
    Uu(u32),
    Heuristic,
}

fn apply(kernel: &str, f: &mut Function, mode: &Mode) {
    match mode {
        Mode::Uu(factor) => {
            let dom = uu_analysis::DomTree::compute(f);
            let forest = uu_analysis::LoopForest::compute(f, &dom);
            let headers: Vec<_> = forest.loops().iter().map(|l| l.header).collect();
            for h in headers {
                uu_loop(
                    f,
                    h,
                    &UuOptions {
                        factor: *factor,
                        ..Default::default()
                    },
                );
                verify_stage(kernel, f, &format!("uu factor {factor} on a loop"));
            }
        }
        Mode::Heuristic => {
            run_heuristic(f, &HeuristicOptions::default());
            verify_stage(kernel, f, "uu-heuristic");
        }
    }
}

fn pipeline_stages_verify(kernel: &str, m: &mut Module, mode: &Mode) {
    let funcs: Vec<_> = m.iter().map(|(id, _)| id).collect();
    for id in funcs {
        let f = m.function_mut(id);
        apply(kernel, f, mode);
        checked_cleanup(kernel, f, "cleanup-1", 8);
        baseline_unroll(f, &BaselineUnrollOptions::default());
        verify_stage(kernel, f, "baseline-unroll");
        checked_cleanup(kernel, f, "cleanup-2", 8);
        IfConvert.run(f);
        verify_stage(kernel, f, "ifconvert");
        checked_cleanup(kernel, f, "cleanup-3", 8);
    }
}

#[test]
fn every_stage_verifies_on_all_kernels_uu2() {
    let benches = all_benchmarks();
    assert_eq!(benches.len(), 16, "the paper suite has 16 kernels");
    for b in &benches {
        let mut m = (b.build)();
        pipeline_stages_verify(b.info.name, &mut m, &Mode::Uu(2));
    }
}

#[test]
fn every_stage_verifies_on_all_kernels_heuristic() {
    for b in &all_benchmarks() {
        let mut m = (b.build)();
        pipeline_stages_verify(b.info.name, &mut m, &Mode::Heuristic);
    }
}

//! Property tests for the SIMT simulator: kernel execution must be a
//! deterministic function of (program, launch, inputs) — two fresh GPUs
//! running the same kernel must agree bit-for-bit — and baseline-compiled
//! code must agree with the raw kernel.

use uu_check::{build_kernel, check, execute, Config, KernelSpec};

#[test]
fn execution_is_deterministic_across_gpus() {
    check(
        "execution_is_deterministic_across_gpus",
        &Config::from_env(64),
        |spec: &KernelSpec| {
            let f = build_kernel(spec);
            let a = execute(&f, spec)?;
            let b = execute(&f, spec)?;
            if a != b {
                return Err(format!(
                    "two fresh GPUs disagree on the same kernel:\n{a:?}\nvs\n{b:?}"
                ));
            }
            if a.len() != 32 {
                return Err(format!("expected 32 lanes of output, got {}", a.len()));
            }
            Ok(())
        },
    );
}

#[test]
fn baseline_compile_preserves_execution() {
    check(
        "baseline_compile_preserves_execution",
        &Config::from_env(32),
        |spec: &KernelSpec| {
            let f = build_kernel(spec);
            let golden = execute(&f, spec)?;
            let mut m = uu_ir::Module::new("prop");
            let id = m.add_function(build_kernel(spec));
            uu_core::compile(&mut m, &uu_core::PipelineOptions::default());
            let got = execute(m.function(id), spec)?;
            if golden != got {
                return Err(format!(
                    "baseline compile changed behaviour:\nraw {golden:?}\nopt {got:?}"
                ));
            }
            Ok(())
        },
    );
}

#[test]
fn decoded_engine_matches_reference_interpreter() {
    use uu_simt::ExecEngine;
    check(
        "decoded_engine_matches_reference_interpreter",
        &Config::from_env(64),
        |spec: &KernelSpec| {
            let f = build_kernel(spec);
            let reference = uu_check::execute_on(&f, spec, ExecEngine::Reference)?;
            let decoded = uu_check::execute_on(&f, spec, ExecEngine::Decoded)?;
            if reference.0 != decoded.0 {
                return Err(format!(
                    "outputs differ:\nref {:?}\ndec {:?}",
                    reference.0, decoded.0
                ));
            }
            if reference.1 != decoded.1 {
                return Err(format!(
                    "metrics differ:\nref {:?}\ndec {:?}",
                    reference.1, decoded.1
                ));
            }
            if reference.2.to_bits() != decoded.2.to_bits() {
                return Err(format!(
                    "simulated time differs: ref {} vs dec {}",
                    reference.2, decoded.2
                ));
            }
            Ok(())
        },
    );
}

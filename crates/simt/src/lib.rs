//! # uu-simt — SIMT GPU simulator
//!
//! A simulator for executing `uu-ir` kernels under the SIMT execution model,
//! substituting for the NVIDIA V100 the paper measures on. It provides:
//!
//! * **Semantics**: a lockstep warp interpreter with an
//!   immediate-post-dominator reconvergence stack ([`exec`]), flat global
//!   memory with bounds checking ([`memory`]), and CUDA-style geometry
//!   intrinsics. Evaluation delegates to [`uu_ir::fold`], so execution can
//!   never disagree with the optimizer's constant folder.
//! * **Timing**: a roofline model ([`Gpu::launch`]) combining instruction
//!   issue (divided over resident warps), instruction-fetch stalls from a
//!   finite i-cache, and DRAM sector bandwidth with a coalescing model.
//! * **Counters**: nvprof-style metrics ([`Metrics`]) — `inst_misc`,
//!   `inst_control`, `warp_execution_efficiency`, IPC, `stall_inst_fetch`,
//!   `gld_throughput` — the quantities the paper's §V analysis reports.
//!
//! ## Example
//!
//! ```
//! use uu_ir::{Function, FunctionBuilder, Param, Type, Value};
//! use uu_simt::{Gpu, KernelArg, LaunchConfig};
//!
//! // out[gid] = gid
//! let mut f = Function::new("iota", vec![Param::new("out", Type::Ptr)], Type::Void);
//! let entry = f.entry();
//! let mut b = FunctionBuilder::new(&mut f);
//! b.switch_to(entry);
//! let gid = b.global_thread_id();
//! let p = b.gep(Value::Arg(0), gid, 8);
//! b.store(p, gid);
//! b.ret(None);
//!
//! let mut gpu = Gpu::new();
//! let buf = gpu.mem.alloc_i64(&vec![0; 64]).unwrap();
//! let report = gpu
//!     .launch(&f, LaunchConfig::new(2, 32), &[KernelArg::Buffer(buf)])
//!     .unwrap();
//! assert_eq!(gpu.mem.read_i64(buf).unwrap()[63], 63);
//! assert!(report.time_ms > 0.0);
//! ```
//!
//! ## Fidelity notes
//!
//! Warps run serially to completion (no inter-warp communication is
//! simulated; `__syncthreads` is a timing event only). The evaluated kernels
//! are data-race-free and do not communicate across the barrier, which is
//! also why the u&u pass may not touch convergent loops in the first place.

#![warn(missing_docs)]

pub mod cache;
pub mod decode;
pub mod exec;
pub mod memory;
pub mod metrics;
pub mod params;

mod gpu;

pub use cache::{decode_cache_clear, decode_cache_stats, decode_cached};
pub use decode::{DecodedKernel, Scratch};
pub use exec::{ExecError, Warp, WarpGeometry};
pub use gpu::{Gpu, KernelArg, LaunchConfig, LaunchReport};
pub use memory::{Buffer, GlobalMemory, MemError, SectorSet};
pub use metrics::{InstClass, Metrics};
pub use params::{ExecEngine, GpuParams};

//! Architectural parameters of the simulated GPU.
//!
//! Defaults are loosely calibrated to the NVIDIA V100 the paper uses: 80
//! SMs at ~1.38 GHz, 32-thread warps, 32-byte memory sectors, and an
//! instruction cache small enough that heavily unrolled+unmerged kernels
//! overflow it (the paper's `stall_inst_fetch` effect on *complex* and
//! *haccmk*).

/// Which warp interpreter executes launches.
///
/// The engines are observationally identical on verifier-clean IR — same
/// outputs, same [`crate::Metrics`], same simulated cycles, same memory
/// access order (so fault injection hits the same access) — and the
/// differential tests in `tests/engine_differential.rs` hold them to that.
/// The decoded engine is the fast path; the reference interpreter is the
/// semantic baseline it is checked against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecEngine {
    /// Decode-once engine: the kernel is lowered per launch into a dense
    /// [`crate::DecodedKernel`] shared by all warps, with warp-uniform
    /// values scalarized to a single register (the default).
    Decoded,
    /// The straightforward per-`Inst` reference interpreter.
    Reference,
    /// The reference interpreter plus a checking oracle: every register
    /// write of a value the `uu_analysis::Uniformity` analysis calls
    /// warp-uniform is asserted identical across all active lanes. Panics
    /// on violation; used by the scalarization property tests.
    ReferenceVerifyUniform,
}

impl Default for ExecEngine {
    /// The process-wide default engine: `Decoded`, overridable once via the
    /// `UU_SIMT_ENGINE` environment variable (`decoded`, `reference`, or
    /// `verify-uniform`), read on first use.
    fn default() -> Self {
        static FROM_ENV: std::sync::OnceLock<ExecEngine> = std::sync::OnceLock::new();
        *FROM_ENV.get_or_init(|| match std::env::var("UU_SIMT_ENGINE") {
            Err(_) => ExecEngine::Decoded,
            Ok(v) => match v.as_str() {
                "" | "decoded" => ExecEngine::Decoded,
                "reference" => ExecEngine::Reference,
                "verify-uniform" => ExecEngine::ReferenceVerifyUniform,
                other => panic!(
                    "UU_SIMT_ENGINE={other:?}: expected decoded | reference | verify-uniform"
                ),
            },
        })
    }
}

/// Simulated GPU parameters.
#[derive(Debug, Clone, Copy)]
pub struct GpuParams {
    /// Threads per warp.
    pub warp_size: u32,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Warps resident per SM that the scheduler can hide latency across.
    pub warps_per_sm: u32,
    /// Core clock in GHz (cycles per nanosecond).
    pub clock_ghz: f64,
    /// Memory sector size in bytes (coalescing granularity).
    pub sector_bytes: u64,
    /// Issue-to-completion cost charged per memory transaction (cycles).
    pub mem_tx_cycles: u64,
    /// DRAM latency in cycles, exposed only when too few warps are resident
    /// to hide it.
    pub mem_latency: u64,
    /// Cache-hit load latency charged to the issuing warp's critical path,
    /// scaled sublinearly by the active-lane fraction: divergent sub-warps'
    /// loads are in flight concurrently (memory-level parallelism), so a
    /// split warp pays less than the latency once per side.
    pub l1_latency: u64,
    /// Instruction cache capacity, in code-size units (see
    /// `uu_analysis::cost::inst_size`).
    pub icache_capacity: u64,
    /// Max fetch-stall penalty per issued instruction (cycles) when the
    /// working set far exceeds the instruction cache.
    pub fetch_penalty_max: f64,
    /// Fixed kernel launch overhead in cycles.
    pub launch_overhead: u64,
    /// Per-warp dynamic instruction limit (runaway-loop guard).
    pub max_warp_insts: u64,
    /// Which interpreter executes launches (not an architectural knob; the
    /// engines are observationally identical).
    pub engine: ExecEngine,
}

impl Default for GpuParams {
    fn default() -> Self {
        GpuParams {
            warp_size: 32,
            num_sms: 80,
            warps_per_sm: 8,
            clock_ghz: 1.38,
            sector_bytes: 32,
            mem_tx_cycles: 2,
            mem_latency: 400,
            l1_latency: 12,
            icache_capacity: 3072,
            fetch_penalty_max: 3.0,
            launch_overhead: 300,
            max_warp_insts: 200_000_000,
            engine: ExecEngine::default(),
        }
    }
}

impl GpuParams {
    /// Fetch-stall penalty per issued instruction for a kernel of
    /// `code_size` units: zero while the kernel fits in the i-cache, then
    /// rising smoothly towards [`GpuParams::fetch_penalty_max`].
    pub fn fetch_penalty(&self, code_size: u64) -> f64 {
        if code_size <= self.icache_capacity {
            return 0.0;
        }
        let excess = (code_size - self.icache_capacity) as f64;
        let ratio = excess / self.icache_capacity as f64;
        self.fetch_penalty_max * (ratio / (1.0 + ratio))
    }

    /// Number of warps across which latency can be hidden.
    pub fn concurrency(&self, total_warps: u64) -> u64 {
        total_warps.min(self.num_sms as u64 * self.warps_per_sm as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_penalty_monotone() {
        let p = GpuParams::default();
        assert_eq!(p.fetch_penalty(100), 0.0);
        assert_eq!(p.fetch_penalty(p.icache_capacity), 0.0);
        let a = p.fetch_penalty(p.icache_capacity * 2);
        let b = p.fetch_penalty(p.icache_capacity * 8);
        assert!(a > 0.0);
        assert!(b > a);
        assert!(b < p.fetch_penalty_max);
    }

    #[test]
    fn concurrency_caps() {
        let p = GpuParams::default();
        assert_eq!(p.concurrency(1), 1);
        assert_eq!(p.concurrency(0), 1);
        assert_eq!(p.concurrency(10_000_000), (p.num_sms * p.warps_per_sm) as u64);
    }
}

//! Lockstep warp execution with a reconvergence stack.
//!
//! A warp executes one instruction at a time for all *active* lanes. A
//! divergent branch pushes a frame on the SIMT stack: the taken side runs
//! first, the other side is pending, and both re-join at the immediate
//! post-dominator of the branch block — the same mechanism real NVIDIA
//! hardware uses. Divergence therefore costs exactly what it costs on a
//! GPU: both sides' instructions are issued, each under a partial mask,
//! which the metrics record as reduced `warp_execution_efficiency`.

use crate::memory::{GlobalMemory, MemError, SectorSet};
use crate::metrics::{InstClass, Metrics};
use crate::params::GpuParams;
use uu_analysis::PostDomTree;
use uu_ir::{fold, BlockId, Constant, Function, InstId, InstKind, Intrinsic, Value};

/// Errors raised during kernel execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A memory access fault.
    Mem(MemError),
    /// A lane read an SSA value that was never defined on its path —
    /// always a compiler bug (transform broke dominance).
    UndefinedValue {
        /// The instruction whose result was read.
        inst: InstId,
    },
    /// The per-warp dynamic step budget was exhausted — the watchdog
    /// against runaway (fuzz-generated nonterminating) kernels, which
    /// trap deterministically here instead of hanging a worker.
    StepBudgetExceeded {
        /// The budget that was exceeded
        /// ([`crate::GpuParams::max_warp_insts`]).
        budget: u64,
    },
    /// A phi had no incoming entry for the executing predecessor.
    MissingPhiIncoming {
        /// The phi instruction.
        phi: InstId,
    },
    /// Wrong number or type of kernel arguments.
    BadArguments(String),
}

impl From<MemError> for ExecError {
    fn from(e: MemError) -> Self {
        ExecError::Mem(e)
    }
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Mem(e) => write!(f, "memory fault: {e}"),
            ExecError::UndefinedValue { inst } => {
                write!(f, "read of undefined SSA value %{}", inst.index())
            }
            ExecError::StepBudgetExceeded { budget } => {
                write!(f, "per-warp step budget of {budget} instructions exceeded")
            }
            ExecError::MissingPhiIncoming { phi } => {
                write!(f, "phi %{} has no incoming for predecessor", phi.index())
            }
            ExecError::BadArguments(s) => write!(f, "bad kernel arguments: {s}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Geometry context for one warp.
#[derive(Debug, Clone, Copy)]
pub struct WarpGeometry {
    /// `blockIdx.x`.
    pub block_idx: u32,
    /// `blockDim.x`.
    pub block_dim: u32,
    /// `gridDim.x`.
    pub grid_dim: u32,
    /// `threadIdx.x` of lane 0.
    pub first_thread: u32,
}

struct Frame {
    reconv: Option<BlockId>,
    pending: Vec<(BlockId, u32)>,
    joined: u32,
}

/// Issue-throughput cost of one warp instruction, in cycles. Shared by the
/// reference interpreter and the decoded engine (which precomputes it).
pub(crate) fn issue_cost(kind: &InstKind) -> u64 {
    use uu_ir::BinOp::*;
    match kind {
        InstKind::Bin { op, .. } => match op {
            SDiv | UDiv | SRem | URem => 8,
            FDiv => 8,
            FAdd | FSub | FMul => 2,
            _ => 1,
        },
        InstKind::Intr { which, .. } => match which {
            Intrinsic::Exp | Intrinsic::Log | Intrinsic::Sin | Intrinsic::Cos => 16,
            Intrinsic::Sqrt => 8,
            Intrinsic::Syncthreads => 4,
            _ => 1,
        },
        InstKind::Load { .. } | InstKind::Store { .. } => 2,
        _ => 1,
    }
}

/// Metrics class of one instruction; shared with the decoded engine.
pub(crate) fn classify(kind: &InstKind) -> InstClass {
    match kind {
        InstKind::Bin { .. } | InstKind::ICmp { .. } | InstKind::FCmp { .. } => InstClass::Arith,
        InstKind::Intr { which, .. } => match which {
            Intrinsic::Syncthreads => InstClass::Sync,
            _ => InstClass::Arith,
        },
        InstKind::Load { .. } => InstClass::Load,
        InstKind::Store { .. } => InstClass::Store,
        InstKind::Br { .. } | InstKind::CondBr { .. } | InstKind::Ret { .. } => InstClass::Control,
        InstKind::Select { .. } | InstKind::Cast { .. } | InstKind::Gep { .. }
        | InstKind::Phi { .. } => InstClass::Misc,
    }
}

/// Per-warp reference interpreter.
///
/// This is the semantic baseline the decoded engine
/// ([`crate::DecodedKernel`]) is differentially tested against; launches use
/// it when [`crate::ExecEngine::Reference`] is selected.
pub struct Warp<'a> {
    func: &'a Function,
    args: &'a [Constant],
    geom: WarpGeometry,
    params: &'a GpuParams,
    pdom: &'a PostDomTree,
    regs: Vec<Vec<Option<Constant>>>,
    /// Per-lane predecessor block for phi resolution; `None` until the lane
    /// executes its first branch.
    prev: Vec<Option<BlockId>>,
    executed: u64,
    /// Distinct sectors of the current memory op (≤ warp_size entries, so
    /// a linear scan beats a `HashSet`); reused across ops so the
    /// interpreter does not allocate per memory instruction.
    sectors: Vec<u64>,
    /// When set, every write of an instruction marked `true` is asserted
    /// identical across active lanes (the scalarization oracle).
    verify_uniform: Option<Vec<bool>>,
}

impl<'a> Warp<'a> {
    /// Create a warp executor. `args` are the resolved kernel arguments
    /// (buffers as `I64` device addresses).
    pub fn new(
        func: &'a Function,
        args: &'a [Constant],
        geom: WarpGeometry,
        params: &'a GpuParams,
        pdom: &'a PostDomTree,
    ) -> Self {
        let slots = func.num_inst_slots();
        let ws = params.warp_size as usize;
        Warp {
            func,
            args,
            geom,
            params,
            pdom,
            regs: vec![vec![None; slots]; ws],
            prev: vec![None; ws],
            executed: 0,
            sectors: Vec::new(),
            verify_uniform: None,
        }
    }

    /// Arm the uniformity oracle: `slots[i]` marks instruction slot `i` as
    /// warp-uniform per `uu_analysis::Uniformity`; any register write where
    /// active lanes disagree on such a slot panics with a diagnostic.
    pub fn verify_uniform(&mut self, slots: Vec<bool>) {
        assert_eq!(slots.len(), self.func.num_inst_slots());
        self.verify_uniform = Some(slots);
    }

    /// Watchdog: error out once the warp exceeds its dynamic step budget.
    fn check_step_budget(&self) -> Result<(), ExecError> {
        if self.executed > self.params.max_warp_insts {
            return Err(ExecError::StepBudgetExceeded {
                budget: self.params.max_warp_insts,
            });
        }
        Ok(())
    }

    /// Oracle check after `id` was written under `mask`: all active lanes
    /// must agree if the uniformity analysis claims the value is uniform.
    fn assert_uniform_write(&self, id: InstId, mask: u32) {
        let Some(slots) = &self.verify_uniform else {
            return;
        };
        if !slots[id.index()] {
            return;
        }
        let mut first: Option<(usize, Option<Constant>)> = None;
        for lane in self.lanes(mask) {
            let v = self.regs[lane][id.index()];
            match first {
                None => first = Some((lane, v)),
                Some((l0, v0)) => assert_eq!(
                    v0,
                    v,
                    "uniformity violation in @{}: %{} differs between lane {} ({:?}) and lane {} ({:?})",
                    self.func.name(),
                    id.index(),
                    l0,
                    v0,
                    lane,
                    v
                ),
            }
        }
    }

    fn eval(&self, lane: usize, v: Value) -> Result<Constant, ExecError> {
        match v {
            Value::Const(c) => Ok(c),
            Value::Arg(i) => self
                .args
                .get(i as usize)
                .copied()
                .ok_or_else(|| ExecError::BadArguments(format!("missing argument {i}"))),
            Value::Inst(id) => self.regs[lane][id.index()]
                .ok_or(ExecError::UndefinedValue { inst: id }),
        }
    }

    fn lanes(&self, mask: u32) -> impl Iterator<Item = usize> + '_ {
        (0..self.params.warp_size as usize).filter(move |l| mask & (1 << l) != 0)
    }

    /// Run the warp to completion, accumulating metrics and returning the
    /// issue cycles consumed. `touched` collects the distinct memory sectors
    /// referenced across the launch (the DRAM working set).
    pub fn run(
        &mut self,
        mem: &mut GlobalMemory,
        m: &mut Metrics,
        touched: &mut SectorSet,
    ) -> Result<u64, ExecError> {
        let mut cur = self.func.entry();
        let mut mask: u32 = if self.params.warp_size == 32 {
            u32::MAX
        } else {
            (1u32 << self.params.warp_size) - 1
        };
        // Deactivate lanes beyond blockDim.
        for l in 0..self.params.warp_size {
            if self.geom.first_thread + l >= self.geom.block_dim {
                mask &= !(1 << l);
            }
        }
        let mut stack: Vec<Frame> = Vec::new();
        let mut issue: u64 = 0;

        'run: loop {
            // Drain reconvergence arrivals and dead masks before executing.
            loop {
                if mask == 0 {
                    match stack.last_mut() {
                        None => break 'run,
                        Some(top) => {
                            if let Some((b, m2)) = top.pending.pop() {
                                cur = b;
                                mask = m2;
                                continue;
                            }
                            let joined = top.joined;
                            let reconv = top.reconv;
                            stack.pop();
                            if joined != 0 {
                                mask = joined;
                                cur = reconv
                                    .expect("joined lanes require a reconvergence block");
                            }
                            continue;
                        }
                    }
                }
                match stack.last_mut() {
                    Some(top) if top.reconv == Some(cur) => {
                        top.joined |= mask;
                        if let Some((b, m2)) = top.pending.pop() {
                            cur = b;
                            mask = m2;
                        } else {
                            mask = top.joined;
                            stack.pop();
                        }
                        continue;
                    }
                    _ => break,
                }
            }

            // Execute block `cur` under `mask`.
            let insts = &self.func.block(cur).insts;
            // Phase 1: evaluate phis as a parallel copy.
            let mut phi_writes: Vec<(InstId, Vec<(usize, Constant)>)> = Vec::new();
            let mut ip = 0;
            while ip < insts.len() {
                let id = insts[ip];
                let inst = self.func.inst(id);
                let InstKind::Phi { incomings } = &inst.kind else {
                    break;
                };
                let mut writes = Vec::new();
                for lane in self.lanes(mask) {
                    let v = self
                        .prev[lane]
                        .and_then(|pred| {
                            incomings.iter().find(|(p, _)| *p == pred).map(|(_, v)| *v)
                        })
                        .ok_or(ExecError::MissingPhiIncoming { phi: id })?;
                    writes.push((lane, self.eval(lane, v)?));
                }
                m.count(InstClass::Misc, mask.count_ones());
                issue += 1;
                self.executed += 1;
                phi_writes.push((id, writes));
                ip += 1;
            }
            for (id, writes) in phi_writes {
                for (lane, c) in writes {
                    self.regs[lane][id.index()] = Some(c);
                }
                self.assert_uniform_write(id, mask);
            }
            self.check_step_budget()?;

            // Phase 2: straight-line instructions and the terminator.
            let mut next: Option<(BlockId, u32)> = None;
            for &id in &insts[ip..] {
                let inst = self.func.inst(id).clone();
                let active = mask.count_ones();
                m.count(classify(&inst.kind), active);
                issue += issue_cost(&inst.kind);
                self.executed += 1;
                self.check_step_budget()?;
                match &inst.kind {
                    InstKind::Load { ptr } => {
                        let mut sectors = std::mem::take(&mut self.sectors);
                        sectors.clear();
                        let width = inst.ty.size_bytes();
                        let mut rem = mask;
                        while rem != 0 {
                            let lane = rem.trailing_zeros() as usize;
                            rem &= rem - 1;
                            let addr = self.eval(lane, *ptr)?.as_i64().ok_or(
                                ExecError::BadArguments("non-integer address".into()),
                            )? as u64;
                            let c = mem.read_scalar(addr, inst.ty)?;
                            self.regs[lane][id.index()] = Some(c);
                            let sector = addr / self.params.sector_bytes;
                            if !sectors.contains(&sector) {
                                sectors.push(sector);
                                touched.insert(sector);
                            }
                            m.gld_bytes += width;
                        }
                        self.assert_uniform_write(id, mask);
                        let tx = sectors.len() as u64;
                        self.sectors = sectors;
                        m.mem_transactions += tx;
                        issue += tx * self.params.mem_tx_cycles;
                        // Cache-hit latency on the warp's critical path.
                        // Divergent sub-warps' loads are independent and
                        // overlap in the load pipeline (memory-level
                        // parallelism), so the charge is sublinear in the
                        // active fraction — the §V mechanism by which u&u
                        // raises IPC even as warp efficiency drops.
                        let frac = active as f64 / self.params.warp_size as f64;
                        issue += (self.params.l1_latency as f64 * frac.powf(1.5)) as u64;
                    }
                    InstKind::Store { ptr, value } => {
                        let mut sectors = std::mem::take(&mut self.sectors);
                        sectors.clear();
                        let width = self.func.value_type(*value).size_bytes();
                        let mut rem = mask;
                        while rem != 0 {
                            let lane = rem.trailing_zeros() as usize;
                            rem &= rem - 1;
                            let addr = self.eval(lane, *ptr)?.as_i64().ok_or(
                                ExecError::BadArguments("non-integer address".into()),
                            )? as u64;
                            let v = self.eval(lane, *value)?;
                            mem.write_scalar(addr, v)?;
                            let sector = addr / self.params.sector_bytes;
                            if !sectors.contains(&sector) {
                                sectors.push(sector);
                                touched.insert(sector);
                            }
                            m.gst_bytes += width;
                        }
                        let tx = sectors.len() as u64;
                        self.sectors = sectors;
                        m.mem_transactions += tx;
                        issue += tx * self.params.mem_tx_cycles;
                    }
                    InstKind::Br { target } => {
                        self.set_prev(mask, cur);
                        next = Some((*target, mask));
                    }
                    InstKind::Ret { .. } => {
                        // Lanes retire; prev untouched.
                        next = Some((cur, 0)); // mask 0 triggers stack drain
                    }
                    InstKind::CondBr {
                        cond,
                        if_true,
                        if_false,
                    } => {
                        let mut tmask = 0u32;
                        let mut rem = mask;
                        while rem != 0 {
                            let lane = rem.trailing_zeros() as usize;
                            rem &= rem - 1;
                            let c = self.eval(lane, *cond)?.as_bool().ok_or(
                                ExecError::BadArguments("non-boolean condition".into()),
                            )?;
                            if c {
                                tmask |= 1 << lane;
                            }
                        }
                        let fmask = mask & !tmask;
                        self.set_prev(mask, cur);
                        if if_true == if_false || fmask == 0 {
                            next = Some((*if_true, mask));
                        } else if tmask == 0 {
                            next = Some((*if_false, mask));
                        } else {
                            // Divergence: run the taken side first; park the
                            // other until the immediate post-dominator.
                            stack.push(Frame {
                                reconv: self.pdom.ipdom(cur),
                                pending: vec![(*if_false, fmask)],
                                joined: 0,
                            });
                            next = Some((*if_true, tmask));
                        }
                    }
                    kind => {
                        let mut rem = mask;
                        while rem != 0 {
                            let lane = rem.trailing_zeros() as usize;
                            rem &= rem - 1;
                            let c = self.eval_pure(lane, id, kind, inst.ty)?;
                            self.regs[lane][id.index()] = Some(c);
                        }
                        self.assert_uniform_write(id, mask);
                    }
                }
            }
            let (nb, nm) = next.expect("block must end in a terminator");
            cur = nb;
            mask = nm;
        }
        Ok(issue)
    }

    fn set_prev(&mut self, mask: u32, block: BlockId) {
        for l in 0..self.params.warp_size as usize {
            if mask & (1 << l) != 0 {
                self.prev[l] = Some(block);
            }
        }
    }

    fn eval_pure(
        &self,
        lane: usize,
        id: InstId,
        kind: &InstKind,
        ty: uu_ir::Type,
    ) -> Result<Constant, ExecError> {
        let bad = || ExecError::UndefinedValue { inst: id };
        match kind {
            InstKind::Bin { op, lhs, rhs } => {
                fold::fold_bin(*op, self.eval(lane, *lhs)?, self.eval(lane, *rhs)?)
                    .ok_or_else(bad)
            }
            InstKind::ICmp { pred, lhs, rhs } => {
                fold::fold_icmp(*pred, self.eval(lane, *lhs)?, self.eval(lane, *rhs)?)
                    .ok_or_else(bad)
            }
            InstKind::FCmp { pred, lhs, rhs } => {
                fold::fold_fcmp(*pred, self.eval(lane, *lhs)?, self.eval(lane, *rhs)?)
                    .ok_or_else(bad)
            }
            InstKind::Select {
                cond,
                on_true,
                on_false,
            } => {
                let c = self
                    .eval(lane, *cond)?
                    .as_bool()
                    .ok_or_else(bad)?;
                self.eval(lane, if c { *on_true } else { *on_false })
            }
            InstKind::Cast { op, value } => {
                fold::fold_cast(*op, self.eval(lane, *value)?, ty).ok_or_else(bad)
            }
            InstKind::Gep { base, index, scale } => {
                let b = self.eval(lane, *base)?.as_i64().ok_or_else(bad)?;
                let i = self.eval(lane, *index)?.as_i64().ok_or_else(bad)?;
                Ok(Constant::I64(b.wrapping_add(i.wrapping_mul(*scale as i64))))
            }
            InstKind::Intr { which, args } => match which {
                Intrinsic::ThreadIdxX => {
                    Ok(Constant::I32((self.geom.first_thread + lane as u32) as i32))
                }
                Intrinsic::BlockIdxX => Ok(Constant::I32(self.geom.block_idx as i32)),
                Intrinsic::BlockDimX => Ok(Constant::I32(self.geom.block_dim as i32)),
                Intrinsic::GridDimX => Ok(Constant::I32(self.geom.grid_dim as i32)),
                Intrinsic::Syncthreads => Ok(Constant::I1(false)), // void; never read
                _ => {
                    let mut consts = Vec::with_capacity(args.len());
                    for a in args {
                        consts.push(self.eval(lane, *a)?);
                    }
                    fold::fold_intrinsic(*which, &consts, ty).ok_or_else(bad)
                }
            },
            _ => unreachable!("handled in run()"),
        }
    }
}

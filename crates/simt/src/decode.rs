//! Decode-once warp execution engine with warp-uniform scalarization.
//!
//! The reference interpreter ([`crate::Warp`]) walks the `Function` arena
//! for every dynamic instruction of every warp: it re-fetches and clones
//! each [`uu_ir::Inst`] (heap traffic for phi/intrinsic operand vectors),
//! searches phi incoming lists linearly, allocates a fresh sector `HashSet`
//! and lane `Vec` per memory operation, and evaluates every value once per
//! lane even when all 32 lanes compute the same thing. Since each launch
//! runs the *same* function over hundreds of warps, this module instead
//! lowers the function once per launch into a dense [`DecodedKernel`]:
//!
//! * contiguous per-block instruction arrays ([`DInst`]) with the issue
//!   cost and metrics class precomputed;
//! * operands pre-resolved to [`Operand`] — an encoded constant (kernel
//!   arguments are baked in, since a decode is per launch) or a compact
//!   register slot (no arena lookups at run time);
//! * registers hold raw 64-bit payloads plus a one-byte runtime type tag
//!   instead of `Option<Constant>`, and evaluation mirrors the
//!   [`uu_ir::fold`] semantics directly on those words — no enum boxing
//!   or unboxing per lane;
//! * phi incomings pre-indexed by predecessor position, so a phi read is
//!   one table lookup instead of a list search;
//! * **warp-uniform scalarization**: values `uu_analysis::Uniformity`
//!   proves identical across lanes live in a scalar register file and are
//!   evaluated once per warp instead of once per lane.
//!
//! All warps of a launch share the decoded kernel immutably; the mutable
//! per-warp state lives in a [`Scratch`] that is reused across warps
//! without reallocation.
//!
//! On top of the per-instruction lowering, decode builds **superblocks**:
//! an unconditional branch to a single-predecessor, phi-free block is
//! rewritten into a fall-through ([`DOp::Fall`]), so a straight-line chain
//! of blocks becomes one contiguous `DInst` stream executed without
//! bouncing through the dispatch loop. This is sound because such a
//! target can never be a reconvergence point: a frame's reconvergence
//! block is the *immediate* post-dominator of a divergent branch, and if
//! it had a single predecessor that predecessor would be a closer
//! post-dominator. Every chain member's stream is a suffix of its head's
//! stream, so entering mid-chain (from a branch or reconvergence) stays
//! well-defined. Within a stream, maximal runs of pure vector-register
//! instructions are dispatched as a unit — step-budget and metrics
//! bookkeeping amortize over the run — and every vector instruction is
//! evaluated warp-at-a-time by `eval_warp`, which hoists the opcode and
//! operand dispatch out of the lane loop: one [`Operand`] resolution per
//! operand per instruction (`Src`), then a tight ascending-lane loop of
//! loads, arithmetic, and stores.
//!
//! Decoding itself is cached across launches — see [`crate::cache`].
//!
//! The engine is observationally identical to the reference interpreter:
//! same results, same [`Metrics`], same issue cycles, same memory access
//! order (uniform loads/stores still perform one checked access per active
//! lane, so fault injection counts match), same errors in the same order.
//! The evaluation helpers below intentionally transliterate
//! `uu_ir::fold::{fold_bin, fold_icmp, fold_fcmp, fold_cast,
//! fold_intrinsic}` onto the tagged-word representation; the differential
//! oracle (`tests/engine_differential.rs` and the uu-check corpus) pins
//! the two engines together bit-for-bit. The only permitted difference is
//! host speed.

use crate::exec::{classify, issue_cost, ExecError, WarpGeometry};
use crate::memory::{GlobalMemory, SectorSet};
use crate::metrics::{InstClass, Metrics};
use crate::params::GpuParams;
use uu_analysis::{PostDomTree, Uniformity};
use uu_ir::{
    BinOp, CastOp, Constant, FCmpPred, Function, ICmpPred, InstId, InstKind, Intrinsic, Type,
    Value,
};

/// Reserved "no block" encoding for predecessor bookkeeping (the decoded
/// replacement for the reference interpreter's old sentinel block id).
const NO_BLOCK: u32 = u32::MAX;

/// Runtime type tags of a register's current value. Tag 0 doubles as
/// "undefined" — `Scratch::reset` zeroes the tag arrays and every write
/// stores a real tag, so a zero tag is exactly a never-written register.
const TAG_UNDEF: u8 = 0;
const TAG_I1: u8 = 1;
const TAG_I32: u8 = 2;
const TAG_I64: u8 = 3;
const TAG_F32: u8 = 4;
const TAG_F64: u8 = 5;

/// Encode a [`Constant`] as (tag, payload). Integers are stored
/// sign-extended to `i64` (matching `Constant::as_i64`), floats as their
/// raw bits, so the typed readers below are single moves. Also used by
/// the decode cache to fingerprint constants.
#[inline]
pub(crate) fn encode(c: Constant) -> (u8, u64) {
    match c {
        Constant::I1(b) => (TAG_I1, b as u64),
        Constant::I32(v) => (TAG_I32, v as i64 as u64),
        Constant::I64(v) => (TAG_I64, v as u64),
        Constant::F32Bits(b) => (TAG_F32, b as u64),
        Constant::F64Bits(b) => (TAG_F64, b),
    }
}

/// Decode (tag, payload) back into a [`Constant`]; the inverse of
/// [`encode`], used on the slow edges (stores, load results).
#[inline]
fn decode_const(tag: u8, bits: u64) -> Constant {
    match tag {
        TAG_I1 => Constant::I1(bits != 0),
        TAG_I32 => Constant::I32(bits as i64 as i32),
        TAG_I64 => Constant::I64(bits as i64),
        TAG_F32 => Constant::F32Bits(bits as u32),
        TAG_F64 => Constant::F64Bits(bits),
        _ => unreachable!("read of an undefined register is rejected earlier"),
    }
}

/// Decode `width` raw little-endian bytes at `win[off..]` into the tagged
/// word a load of type `ty` produces. Mirrors
/// `GlobalMemory::read_scalar` + [`encode`] exactly.
#[inline]
fn decode_mem(ty: Type, win: &[u8], off: usize) -> (u8, u64) {
    match ty {
        Type::I1 => (TAG_I1, (win[off] != 0) as u64),
        Type::I32 => (
            TAG_I32,
            i32::from_le_bytes(win[off..off + 4].try_into().unwrap()) as i64 as u64,
        ),
        Type::I64 | Type::Ptr => (
            TAG_I64,
            u64::from_le_bytes(win[off..off + 8].try_into().unwrap()),
        ),
        Type::F32 => (
            TAG_F32,
            u32::from_le_bytes(win[off..off + 4].try_into().unwrap()) as u64,
        ),
        Type::F64 => (
            TAG_F64,
            u64::from_le_bytes(win[off..off + 8].try_into().unwrap()),
        ),
        Type::Void => unreachable!("void loads are rejected by the verifier"),
    }
}

/// `Constant::as_i64` on the tagged-word representation.
#[inline]
fn t_as_i64(tag: u8, bits: u64) -> Option<i64> {
    if (TAG_I1..=TAG_I64).contains(&tag) {
        Some(bits as i64)
    } else {
        None
    }
}

/// `Constant::as_f64` on the tagged-word representation.
#[inline]
fn t_as_f64(tag: u8, bits: u64) -> Option<f64> {
    match tag {
        TAG_F32 => Some(f32::from_bits(bits as u32) as f64),
        TAG_F64 => Some(f64::from_bits(bits)),
        _ => None,
    }
}

/// `Constant::as_bool` on the tagged-word representation.
#[inline]
fn t_as_bool(tag: u8, bits: u64) -> Option<bool> {
    if tag == TAG_I1 {
        Some(bits != 0)
    } else {
        None
    }
}

/// `Type::int_bits` on a runtime tag.
#[inline]
fn t_int_bits(tag: u8) -> Option<u32> {
    match tag {
        TAG_I1 => Some(1),
        TAG_I32 => Some(32),
        TAG_I64 => Some(64),
        _ => None,
    }
}

// Scalar evaluation cores, shared by the once-per-warp scalar path
// (`eval_pure`) and the warp-at-a-time vector path (`eval_warp`). Each
// takes operands already read (so read-error order is the caller's
// responsibility) and transliterates the corresponding `uu_ir::fold`
// rule exactly; `bad` supplies the conversion-failure error.

/// `fold_bin` on tagged words.
#[inline(always)]
fn bin_one(
    op: BinOp,
    ltag: u8,
    lbits: u64,
    rtag: u8,
    rbits: u64,
    bad: impl Fn() -> ExecError,
) -> Result<(u8, u64), ExecError> {
    if op.is_float() {
        let x = t_as_f64(ltag, lbits).ok_or_else(&bad)?;
        let y = t_as_f64(rtag, rbits).ok_or_else(&bad)?;
        let r = match op {
            BinOp::FAdd => x + y,
            BinOp::FSub => x - y,
            BinOp::FMul => x * y,
            BinOp::FDiv => x / y,
            _ => unreachable!(),
        };
        // fold_bin picks the result width from the lhs type.
        return Ok(if ltag == TAG_F32 {
            (TAG_F32, (r as f32).to_bits() as u64)
        } else {
            (TAG_F64, r.to_bits())
        });
    }
    let x = t_as_i64(ltag, lbits).ok_or_else(&bad)?;
    let y = t_as_i64(rtag, rbits).ok_or_else(&bad)?;
    let bits = t_int_bits(ltag).unwrap_or(64);
    let umask = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
    let ua = (x as u64) & umask;
    let ub = (y as u64) & umask;
    let shamt = (ub % bits as u64) as u32;
    let r = match op {
        BinOp::Add => x.wrapping_add(y),
        BinOp::Sub => x.wrapping_sub(y),
        BinOp::Mul => x.wrapping_mul(y),
        BinOp::SDiv => {
            if y == 0 {
                0
            } else {
                x.wrapping_div(y)
            }
        }
        BinOp::UDiv => {
            if ub == 0 {
                0
            } else {
                (ua / ub) as i64
            }
        }
        BinOp::SRem => {
            if y == 0 {
                0
            } else {
                x.wrapping_rem(y)
            }
        }
        BinOp::URem => {
            if ub == 0 {
                0
            } else {
                (ua % ub) as i64
            }
        }
        BinOp::Shl => ((ua << shamt) & umask) as i64,
        BinOp::LShr => (ua >> shamt) as i64,
        BinOp::AShr => match ltag {
            TAG_I32 => ((x as i32) >> shamt) as i64,
            _ => x >> shamt,
        },
        BinOp::And => x & y,
        BinOp::Or => x | y,
        BinOp::Xor => x ^ y,
        _ => unreachable!(),
    };
    // fold_bin's `wrap`: truncate to the lhs width, stored sign-extended
    // (the Constant encoding).
    Ok(match ltag {
        TAG_I1 => (TAG_I1, (r & 1 != 0) as u64),
        TAG_I32 => (TAG_I32, r as i32 as i64 as u64),
        _ => (TAG_I64, r as u64),
    })
}

/// `fold_icmp` on tagged words.
#[inline(always)]
fn icmp_one(
    pred: ICmpPred,
    ltag: u8,
    lbits: u64,
    rtag: u8,
    rbits: u64,
    bad: impl Fn() -> ExecError,
) -> Result<(u8, u64), ExecError> {
    let x = t_as_i64(ltag, lbits).ok_or_else(&bad)?;
    let y = t_as_i64(rtag, rbits).ok_or_else(&bad)?;
    let bits = t_int_bits(ltag).unwrap_or(64);
    let umask = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
    let ua = (x as u64) & umask;
    let ub = (y as u64) & umask;
    let r = match pred {
        ICmpPred::Eq => x == y,
        ICmpPred::Ne => x != y,
        ICmpPred::Slt => x < y,
        ICmpPred::Sle => x <= y,
        ICmpPred::Sgt => x > y,
        ICmpPred::Sge => x >= y,
        ICmpPred::Ult => ua < ub,
        ICmpPred::Ule => ua <= ub,
        ICmpPred::Ugt => ua > ub,
        ICmpPred::Uge => ua >= ub,
    };
    Ok((TAG_I1, r as u64))
}

/// `fold_fcmp` on tagged words.
#[inline(always)]
fn fcmp_one(
    pred: FCmpPred,
    ltag: u8,
    lbits: u64,
    rtag: u8,
    rbits: u64,
    bad: impl Fn() -> ExecError,
) -> Result<(u8, u64), ExecError> {
    let x = t_as_f64(ltag, lbits).ok_or_else(&bad)?;
    let y = t_as_f64(rtag, rbits).ok_or_else(&bad)?;
    let r = match pred {
        FCmpPred::Oeq => x == y,
        FCmpPred::Une => x != y || x.is_nan() || y.is_nan(),
        FCmpPred::Olt => x < y,
        FCmpPred::Ole => x <= y,
        FCmpPred::Ogt => x > y,
        FCmpPred::Oge => x >= y,
    };
    Ok((TAG_I1, r as u64))
}

/// `fold_cast` on tagged words; `ty` is the cast target type.
#[inline(always)]
fn cast_one(
    op: CastOp,
    ty: Type,
    vtag: u8,
    vbits: u64,
    bad: impl Fn() -> ExecError,
) -> Result<(u8, u64), ExecError> {
    match op {
        CastOp::Sext => {
            let x = t_as_i64(vtag, vbits).ok_or_else(&bad)?;
            // LLVM sext i1 true == -1 (as_i64 gives +1).
            let x = if vtag == TAG_I1 && x == 1 { -1 } else { x };
            Ok(match ty {
                Type::I32 => (TAG_I32, x as i32 as i64 as u64),
                _ => (TAG_I64, x as u64),
            })
        }
        CastOp::Zext => {
            let x = t_as_i64(vtag, vbits).ok_or_else(&bad)?;
            let bits = t_int_bits(vtag).ok_or_else(&bad)?;
            let umask = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
            let x = ((x as u64) & umask) as i64;
            Ok(match ty {
                Type::I32 => (TAG_I32, x as i32 as i64 as u64),
                _ => (TAG_I64, x as u64),
            })
        }
        CastOp::Trunc => {
            let x = t_as_i64(vtag, vbits).ok_or_else(&bad)?;
            Ok(match ty {
                Type::I1 => (TAG_I1, (x & 1 != 0) as u64),
                Type::I32 => (TAG_I32, x as i32 as i64 as u64),
                _ => (TAG_I64, x as u64),
            })
        }
        CastOp::SiToFp => {
            let x = t_as_i64(vtag, vbits).ok_or_else(&bad)?;
            Ok(match ty {
                Type::F32 => (TAG_F32, (x as f32).to_bits() as u64),
                _ => (TAG_F64, (x as f64).to_bits()),
            })
        }
        CastOp::FpToSi => {
            let x = t_as_f64(vtag, vbits).ok_or_else(&bad)?;
            let x = if x.is_nan() { 0.0 } else { x };
            Ok(match ty {
                Type::I32 => (TAG_I32, x as i32 as i64 as u64),
                _ => (TAG_I64, (x as i64) as u64),
            })
        }
        CastOp::FpCast => {
            let x = t_as_f64(vtag, vbits).ok_or_else(&bad)?;
            Ok(match ty {
                Type::F32 => (TAG_F32, (x as f32).to_bits() as u64),
                _ => (TAG_F64, x.to_bits()),
            })
        }
        CastOp::IntToPtr | CastOp::PtrToInt => {
            let x = t_as_i64(vtag, vbits).ok_or_else(&bad)?;
            Ok((TAG_I64, x as u64))
        }
    }
}

/// `fold_intrinsic` (the foldable math subset) on tagged words; `ty` is
/// the result type, `vals[..n]` the already-read arguments.
#[inline(always)]
fn math_one(
    which: Intrinsic,
    vals: [(u8, u64); 2],
    n: usize,
    ty: Type,
    bad: impl Fn() -> ExecError,
) -> Result<(u8, u64), ExecError> {
    // fold_intrinsic picks the result width from the instruction type.
    let fout = |v: f64| -> (u8, u64) {
        if ty == Type::F32 {
            (TAG_F32, (v as f32).to_bits() as u64)
        } else {
            (TAG_F64, v.to_bits())
        }
    };
    let farg = |k: usize| -> Option<f64> {
        if k < n {
            t_as_f64(vals[k].0, vals[k].1)
        } else {
            None
        }
    };
    let iarg = |k: usize| -> Option<i64> {
        if k < n {
            t_as_i64(vals[k].0, vals[k].1)
        } else {
            None
        }
    };
    match which {
        Intrinsic::Sqrt => Ok(fout(farg(0).ok_or_else(&bad)?.sqrt())),
        Intrinsic::Fabs => Ok(fout(farg(0).ok_or_else(&bad)?.abs())),
        Intrinsic::Exp => Ok(fout(farg(0).ok_or_else(&bad)?.exp())),
        Intrinsic::Log => Ok(fout(farg(0).ok_or_else(&bad)?.ln())),
        Intrinsic::Sin => Ok(fout(farg(0).ok_or_else(&bad)?.sin())),
        Intrinsic::Cos => Ok(fout(farg(0).ok_or_else(&bad)?.cos())),
        Intrinsic::FMin => Ok(fout(farg(0).ok_or_else(&bad)?.min(farg(1).ok_or_else(&bad)?))),
        Intrinsic::FMax => Ok(fout(farg(0).ok_or_else(&bad)?.max(farg(1).ok_or_else(&bad)?))),
        Intrinsic::SMin | Intrinsic::SMax => {
            let a = iarg(0).ok_or_else(&bad)?;
            let b = iarg(1).ok_or_else(&bad)?;
            let r = if which == Intrinsic::SMin { a.min(b) } else { a.max(b) };
            Ok(match ty {
                Type::I32 => (TAG_I32, r as i32 as i64 as u64),
                _ => (TAG_I64, r as u64),
            })
        }
        // Context-dependent intrinsics never fold.
        _ => Err(bad()),
    }
}

/// One operand of a vector instruction, resolved once per warp by
/// [`DecodedKernel::eval_warp`] so the per-lane loop does no `Operand`
/// dispatch: reading a lane is one (perfectly predicted) variant match
/// and at most two loads.
#[derive(Clone, Copy)]
enum Src {
    /// Lane-invariant value: a constant or an already-read (defined)
    /// scalar register.
    Splat(u8, u64),
    /// Vector register row base pointers `(tags, bits)`, indexed by lane.
    Row(*const u8, *const u64),
    /// Reading this operand fails on every lane (undefined scalar
    /// register, missing argument, unlinked value). Reported as
    /// `TAG_UNDEF`; the caller reconstructs the exact error via
    /// [`DecodedKernel::read`].
    Bad,
}

impl Src {
    /// Read the operand for `lane`. A `TAG_UNDEF` tag means the read
    /// failed (undefined register lane or `Src::Bad`).
    ///
    /// # Safety
    /// For `Row`, `lane` must be below the warp size the register rows
    /// were sized for (mask bits never exceed it).
    #[inline(always)]
    unsafe fn get(self, lane: usize) -> (u8, u64) {
        match self {
            Src::Splat(t, b) => (t, b),
            Src::Row(t, b) => (*t.add(lane), *b.add(lane)),
            Src::Bad => (TAG_UNDEF, 0),
        }
    }
}

/// A pre-resolved operand: everything `Warp::eval` decides per dynamic
/// instruction is decided once at decode time. Kernel arguments are baked
/// into `Const` because a [`DecodedKernel`] is built per launch, where the
/// argument constants are already known.
#[derive(Debug, Clone, Copy)]
enum Operand {
    /// An encoded constant (IR constant or kernel argument).
    Const(u8, u64),
    /// Scalar (warp-uniform) register slot.
    SReg(u32),
    /// Vector (per-lane) register slot.
    VReg(u32),
    /// Argument index that is out of range for this launch; reading it
    /// reproduces the reference interpreter's `BadArguments` error.
    BadArg(u32),
    /// An instruction result that is never defined (the instruction is in
    /// no linked block). Reading it reproduces the reference interpreter's
    /// `UndefinedValue` error for the recorded instruction.
    Undef(InstId),
}

/// Destination register of a value-producing instruction.
#[derive(Debug, Clone, Copy)]
enum Dest {
    /// Warp-uniform: evaluated once into the scalar file.
    S(u32),
    /// Lane-varying: evaluated per active lane into the vector file.
    V(u32),
}

/// Decoded instruction payload.
#[derive(Debug, Clone)]
enum DOp {
    /// Binary arithmetic.
    Bin(BinOp, Operand, Operand),
    /// Integer compare.
    ICmp(ICmpPred, Operand, Operand),
    /// Float compare.
    FCmp(FCmpPred, Operand, Operand),
    /// Predicated select.
    Select(Operand, Operand, Operand),
    /// Type conversion.
    Cast(CastOp, Operand),
    /// `base + index * scale`, scale pre-cast to `i64`.
    Gep(Operand, Operand, i64),
    /// Geometry intrinsic (threadIdx/blockIdx/blockDim/gridDim) or
    /// `__syncthreads`; no operands.
    Geom(Intrinsic),
    /// Math intrinsic with pre-resolved args (max arity 2, stored inline).
    Math(Intrinsic, [Operand; 2], u8),
    /// Load; the width is the decoded type's size in bytes.
    Load(Operand, u64),
    /// Store of (ptr, value, width).
    Store(Operand, Operand, u64),
    /// Unconditional branch `(target, owner)`; `owner` is the arena index
    /// of the block the branch belongs to (needed for phi `prev` tracking
    /// once blocks share a superblock stream).
    Br(u32, u32),
    /// A `Br` whose target was fused into this stream: the successor's
    /// instructions follow immediately, so execution falls through after
    /// updating `prev` to the owner block. Costs exactly what the `Br` it
    /// replaces cost (class/cost are carried by the surrounding `DInst`).
    Fall(u32),
    /// Conditional branch; `uniform` records whether the condition is
    /// warp-uniform (no lane split possible), `owner` the containing
    /// block's arena index, and `reconv` that block's immediate
    /// post-dominator (the reconvergence point on divergence).
    CondBr {
        cond: Operand,
        if_true: u32,
        if_false: u32,
        uniform: bool,
        owner: u32,
        reconv: u32,
    },
    /// Return (lane retirement).
    Ret,
}

/// One decoded non-phi instruction.
#[derive(Debug, Clone)]
struct DInst {
    op: DOp,
    /// Metrics class, precomputed.
    class: InstClass,
    /// Issue cost in cycles, precomputed.
    cost: u64,
    /// Where the result goes, if the instruction produces a value.
    dest: Option<Dest>,
    /// Result type (load width / cast target / intrinsic result pick).
    ty: Type,
    /// Originating instruction, for error reporting parity with the
    /// reference interpreter.
    id: InstId,
    /// Length of the maximal run of pure vector-destination instructions
    /// starting here (0 if this instruction does not start one). Runs are
    /// dispatched as a unit (one budget check, batched metrics); they
    /// never span a terminator, so they never cross block or stream
    /// boundaries.
    run: u32,
}

/// One decoded phi.
#[derive(Debug, Clone)]
struct DPhi {
    dest: Dest,
    id: InstId,
}

/// A decoded basic block.
#[derive(Debug, Clone, Default)]
struct DBlock {
    /// Leading phis, in program order.
    phis: Vec<DPhi>,
    /// Phi incomings as a dense `phis.len() × npreds` row-major table:
    /// `phi_inc[p * npreds + k]` is phi `p`'s value when entering from the
    /// k-th predecessor; `None` reproduces `MissingPhiIncoming`.
    phi_inc: Vec<Option<Operand>>,
    /// Number of CFG predecessors (row stride of `phi_inc`).
    npreds: usize,
    /// Block arena index → predecessor position, `NO_BLOCK` if the block is
    /// not a predecessor.
    pred_pos: Vec<u32>,
    /// Start of this block's instruction stream in [`DecodedKernel::code`].
    /// The stream covers the block's own non-phi instructions plus any
    /// fused straight-line successors (a chain member's stream is a suffix
    /// of its head's stream).
    code: u32,
    /// Stream length in instructions.
    code_len: u32,
    /// Immediate post-dominator (reconvergence point of a divergent branch
    /// in this block), `NO_BLOCK` if none.
    ipdom: u32,
}

/// A function lowered for execution: built once per launch by
/// [`DecodedKernel::decode`], then shared immutably by every warp.
#[derive(Debug, Clone)]
pub struct DecodedKernel {
    blocks: Vec<DBlock>,
    /// All instruction streams, concatenated; blocks index into this via
    /// `code`/`code_len`.
    code: Vec<DInst>,
    entry: u32,
    num_sregs: u32,
    num_vregs: u32,
    /// Scalar slot → defining instruction (for `UndefinedValue` parity).
    sreg_inst: Vec<InstId>,
    /// Vector slot → defining instruction.
    vreg_inst: Vec<InstId>,
}

/// SIMT stack frame of the decoded engine. `pending` is a single slot: the
/// interpreter only ever parks one (block, mask) side per divergence.
#[derive(Debug, Clone, Copy)]
struct DFrame {
    /// Reconvergence block arena index, `NO_BLOCK` if the branch has no
    /// post-dominator.
    reconv: u32,
    /// The not-yet-run side of the divergence.
    pending: Option<(u32, u32)>,
    joined: u32,
}

/// Reusable per-warp mutable state. One `Scratch` serves every warp of a
/// launch; [`DecodedKernel::run_warp`] resets it without reallocating.
///
/// Register payloads and their type tags live in parallel arrays; only the
/// tag arrays are cleared between warps (tag 0 = undefined), so a stale
/// payload is never observable.
#[derive(Debug, Default)]
pub struct Scratch {
    sreg_bits: Vec<u64>,
    sreg_tag: Vec<u8>,
    vreg_bits: Vec<u64>,
    vreg_tag: Vec<u8>,
    /// Per-lane predecessor block arena index (`NO_BLOCK` before the first
    /// branch) for phi resolution.
    prev: Vec<u32>,
    stack: Vec<DFrame>,
    /// Distinct sectors of the current memory op (≤ warp_size entries, so a
    /// linear scan beats a `HashSet`).
    sectors: Vec<u64>,
    /// Parallel-copy staging for scalar phis `(slot, tag, payload)`.
    phi_s: Vec<(u32, u8, u64)>,
    /// Parallel-copy staging for vector phis `(slot, lane, tag, payload)`.
    phi_v: Vec<(u32, u32, u8, u64)>,
}

impl Scratch {
    /// Create an empty scratch; it sizes itself to the kernel on first use.
    pub fn new() -> Self {
        Scratch::default()
    }

    fn reset(&mut self, k: &DecodedKernel, warp_size: u32) {
        let ws = warp_size as usize;
        self.sreg_bits.resize(k.num_sregs as usize, 0);
        self.sreg_tag.clear();
        self.sreg_tag.resize(k.num_sregs as usize, TAG_UNDEF);
        self.vreg_bits.resize(k.num_vregs as usize * ws, 0);
        self.vreg_tag.clear();
        self.vreg_tag.resize(k.num_vregs as usize * ws, TAG_UNDEF);
        self.prev.clear();
        self.prev.resize(ws, NO_BLOCK);
        self.stack.clear();
    }
}

impl DecodedKernel {
    /// Lower `f` for execution with the launch arguments `args` (baked into
    /// operands). `uni` decides which values are scalarized; `pdom` provides
    /// the reconvergence points. Both are computed from the same `f` by the
    /// caller (the launch path).
    pub fn decode(f: &Function, pdom: &PostDomTree, uni: &Uniformity, args: &[Constant]) -> Self {
        Self::decode_inner(f, pdom, uni, args, true)
    }

    /// [`DecodedKernel::decode`] with superblock fusion disabled: every
    /// block keeps its own stream and every `Br` stays a dispatch. Used by
    /// the differential tests to pin fused execution against unfused.
    pub fn decode_unfused(
        f: &Function,
        pdom: &PostDomTree,
        uni: &Uniformity,
        args: &[Constant],
    ) -> Self {
        Self::decode_inner(f, pdom, uni, args, false)
    }

    fn decode_inner(
        f: &Function,
        pdom: &PostDomTree,
        uni: &Uniformity,
        args: &[Constant],
        fuse: bool,
    ) -> Self {
        let nslots = f.num_inst_slots();
        // Pass 1: allocate a register slot for every linked value-producing
        // instruction. Conservative and simple: every non-terminator,
        // non-store instruction gets a slot (the reference interpreter also
        // writes a register for void intrinsic results).
        let mut dest: Vec<Option<Dest>> = vec![None; nslots];
        let mut sreg_inst = Vec::new();
        let mut vreg_inst = Vec::new();
        for (id, inst) in f.iter_insts() {
            if matches!(
                inst.kind,
                InstKind::Store { .. }
                    | InstKind::Br { .. }
                    | InstKind::CondBr { .. }
                    | InstKind::Ret { .. }
            ) {
                continue;
            }
            let d = if uni.is_uniform(Value::Inst(id)) {
                let s = sreg_inst.len() as u32;
                sreg_inst.push(id);
                Dest::S(s)
            } else {
                let v = vreg_inst.len() as u32;
                vreg_inst.push(id);
                Dest::V(v)
            };
            dest[id.index()] = Some(d);
        }

        let resolve = |v: Value| -> Operand {
            match v {
                Value::Const(c) => {
                    let (tag, bits) = encode(c);
                    Operand::Const(tag, bits)
                }
                Value::Arg(i) => match args.get(i as usize) {
                    Some(c) => {
                        let (tag, bits) = encode(*c);
                        Operand::Const(tag, bits)
                    }
                    None => Operand::BadArg(i),
                },
                Value::Inst(id) => match dest[id.index()] {
                    Some(Dest::S(s)) => Operand::SReg(s),
                    Some(Dest::V(r)) => Operand::VReg(r),
                    // Defined in no linked block: reading it is always an
                    // undefined-value error, as in the reference.
                    None => Operand::Undef(id),
                },
            }
        };
        let uniform_op = |o: &Operand| !matches!(o, Operand::VReg(_));

        // Pass 2: lower blocks into per-block buffers (arena-indexed;
        // unlinked slots stay empty). Stream assembly below moves these
        // into the shared `code` array.
        let preds = f.predecessors();
        let nblocks = preds.len();
        let mut blocks = vec![DBlock::default(); nblocks];
        let mut lowered: Vec<Vec<DInst>> = vec![Vec::new(); nblocks];
        for &b in f.layout() {
            let bi = b.index();
            let db = &mut blocks[bi];
            let bpreds = &preds[bi];
            db.npreds = bpreds.len();
            db.pred_pos = vec![NO_BLOCK; nblocks];
            for (k, p) in bpreds.iter().enumerate() {
                db.pred_pos[p.index()] = k as u32;
            }
            db.ipdom = match pdom.ipdom(b) {
                Some(r) => r.index() as u32,
                None => NO_BLOCK,
            };
            for &id in &f.block(b).insts {
                let inst = f.inst(id);
                if let InstKind::Phi { incomings } = &inst.kind {
                    // Phis lead the block (verifier-enforced); index their
                    // incomings by predecessor position.
                    debug_assert!(lowered[bi].is_empty());
                    for p in bpreds {
                        let inc = incomings
                            .iter()
                            .find(|(pb, _)| pb == p)
                            .map(|(_, v)| resolve(*v));
                        db.phi_inc.push(inc);
                    }
                    db.phis.push(DPhi {
                        dest: dest[id.index()].expect("phi produces a value"),
                        id,
                    });
                    continue;
                }
                let op = match &inst.kind {
                    InstKind::Bin { op, lhs, rhs } => DOp::Bin(*op, resolve(*lhs), resolve(*rhs)),
                    InstKind::ICmp { pred, lhs, rhs } => {
                        DOp::ICmp(*pred, resolve(*lhs), resolve(*rhs))
                    }
                    InstKind::FCmp { pred, lhs, rhs } => {
                        DOp::FCmp(*pred, resolve(*lhs), resolve(*rhs))
                    }
                    InstKind::Select {
                        cond,
                        on_true,
                        on_false,
                    } => DOp::Select(resolve(*cond), resolve(*on_true), resolve(*on_false)),
                    InstKind::Cast { op, value } => DOp::Cast(*op, resolve(*value)),
                    InstKind::Gep { base, index, scale } => {
                        DOp::Gep(resolve(*base), resolve(*index), *scale as i64)
                    }
                    InstKind::Load { ptr } => DOp::Load(resolve(*ptr), inst.ty.size_bytes()),
                    InstKind::Store { ptr, value } => DOp::Store(
                        resolve(*ptr),
                        resolve(*value),
                        f.value_type(*value).size_bytes(),
                    ),
                    InstKind::Intr { which, args: iargs } => match which {
                        Intrinsic::ThreadIdxX
                        | Intrinsic::BlockIdxX
                        | Intrinsic::BlockDimX
                        | Intrinsic::GridDimX
                        | Intrinsic::Syncthreads => DOp::Geom(*which),
                        _ => {
                            let mut ops = [Operand::Const(TAG_I1, 0); 2];
                            for (k, a) in iargs.iter().enumerate() {
                                ops[k] = resolve(*a);
                            }
                            DOp::Math(*which, ops, iargs.len() as u8)
                        }
                    },
                    InstKind::Br { target } => DOp::Br(target.index() as u32, bi as u32),
                    InstKind::CondBr {
                        cond,
                        if_true,
                        if_false,
                    } => {
                        let c = resolve(*cond);
                        let uniform = uniform_op(&c);
                        DOp::CondBr {
                            cond: c,
                            if_true: if_true.index() as u32,
                            if_false: if_false.index() as u32,
                            uniform,
                            owner: bi as u32,
                            reconv: db.ipdom,
                        }
                    }
                    InstKind::Ret { .. } => DOp::Ret,
                    InstKind::Phi { .. } => unreachable!("handled above"),
                };
                lowered[bi].push(DInst {
                    class: classify(&inst.kind),
                    cost: issue_cost(&inst.kind),
                    dest: dest[id.index()],
                    ty: inst.ty,
                    id,
                    op,
                    run: 0,
                });
            }
        }

        // Superblock formation. A block is fused into its predecessor's
        // stream iff it has exactly one predecessor, no phis, is not the
        // entry, and that predecessor ends in an unconditional `Br` to it.
        // Such a block can never be a reconvergence target (see the module
        // docs), so skipping the dispatch loop between predecessor and
        // block is unobservable.
        let entry_ix = f.entry().index();
        let mut fused = vec![false; nblocks];
        if fuse {
            for &t in f.layout() {
                let ti = t.index();
                if ti == entry_ix || blocks[ti].npreds != 1 || !blocks[ti].phis.is_empty() {
                    continue;
                }
                let p = preds[ti][0].index();
                if p == ti {
                    continue;
                }
                if let Some(DInst {
                    op: DOp::Br(tt, _), ..
                }) = lowered[p].last()
                {
                    if *tt as usize == ti {
                        fused[ti] = true;
                    }
                }
            }
        }

        // Stream assembly: every unfused block heads a chain; intermediate
        // `Br`s become `Fall`s and each chain member's stream is the suffix
        // of the head's stream starting at its own instructions, so any
        // branch or reconvergence entering mid-chain stays well-defined.
        let mut code: Vec<DInst> = Vec::new();
        let mut assigned = vec![false; nblocks];
        let mut chain: Vec<usize> = Vec::new();
        for &h in f.layout() {
            let hi = h.index();
            if fused[hi] || assigned[hi] {
                continue;
            }
            chain.clear();
            let mut b = hi;
            loop {
                assigned[b] = true;
                chain.push(b);
                blocks[b].code = code.len() as u32;
                let had = !lowered[b].is_empty();
                code.append(&mut lowered[b]);
                if !had {
                    // Malformed (terminator-less) block: leave the stream
                    // empty so running it panics exactly like the
                    // reference ("block must end in a terminator").
                    break;
                }
                let last = code.last_mut().expect("just appended");
                match last.op {
                    DOp::Br(t, owner) if fused[t as usize] && !assigned[t as usize] => {
                        last.op = DOp::Fall(owner);
                        b = t as usize;
                    }
                    _ => break,
                }
            }
            let end = code.len() as u32;
            for &cb in &chain {
                blocks[cb].code_len = end - blocks[cb].code;
            }
        }
        // Fully-fused cycles (only possible in unreachable code) never get
        // a head above; give each member its own stream so dispatch stays
        // well-defined if one is ever entered.
        for &b in f.layout() {
            let bi = b.index();
            if assigned[bi] {
                continue;
            }
            blocks[bi].code = code.len() as u32;
            code.append(&mut lowered[bi]);
            blocks[bi].code_len = code.len() as u32 - blocks[bi].code;
        }

        // Run lengths for lane-major execution: `run` = length of the
        // maximal run of pure vector-destination instructions starting at
        // each position. Terminators are never pure, so runs cannot cross
        // block (or stream) boundaries.
        for i in (0..code.len()).rev() {
            let pure_v = matches!(code[i].dest, Some(Dest::V(_)))
                && !matches!(
                    code[i].op,
                    DOp::Load(..)
                        | DOp::Store(..)
                        | DOp::Br(..)
                        | DOp::Fall(_)
                        | DOp::CondBr { .. }
                        | DOp::Ret
                );
            if pure_v {
                code[i].run = 1 + if i + 1 < code.len() { code[i + 1].run } else { 0 };
            }
        }

        DecodedKernel {
            blocks,
            code,
            entry: f.entry().index() as u32,
            num_sregs: sreg_inst.len() as u32,
            num_vregs: vreg_inst.len() as u32,
            sreg_inst,
            vreg_inst,
        }
    }

    /// Number of scalar (warp-uniform) register slots.
    pub fn num_scalar_regs(&self) -> u32 {
        self.num_sregs
    }

    /// Number of vector (per-lane) register slots.
    pub fn num_vector_regs(&self) -> u32 {
        self.num_vregs
    }

    /// Read an operand as (tag, payload) for `lane`.
    #[inline]
    fn read(&self, s: &Scratch, ws: usize, lane: usize, op: Operand) -> Result<(u8, u64), ExecError> {
        match op {
            Operand::Const(tag, bits) => Ok((tag, bits)),
            Operand::SReg(r) => {
                let tag = s.sreg_tag[r as usize];
                if tag == TAG_UNDEF {
                    return Err(ExecError::UndefinedValue {
                        inst: self.sreg_inst[r as usize],
                    });
                }
                Ok((tag, s.sreg_bits[r as usize]))
            }
            Operand::VReg(r) => {
                let at = r as usize * ws + lane;
                let tag = s.vreg_tag[at];
                if tag == TAG_UNDEF {
                    return Err(ExecError::UndefinedValue {
                        inst: self.vreg_inst[r as usize],
                    });
                }
                Ok((tag, s.vreg_bits[at]))
            }
            Operand::BadArg(i) => Err(ExecError::BadArguments(format!("missing argument {i}"))),
            Operand::Undef(id) => Err(ExecError::UndefinedValue { inst: id }),
        }
    }

    /// Evaluate a pure instruction for `lane`, returning the encoded
    /// result. Used for scalar (warp-uniform) destinations — evaluated
    /// once per warp — and as the error-reconstruction oracle of the
    /// vector path. The arithmetic cores transliterate `uu_ir::fold`
    /// exactly (the differential oracle enforces it).
    fn eval_pure(
        &self,
        s: &Scratch,
        geom: &WarpGeometry,
        ws: usize,
        lane: usize,
        inst: &DInst,
    ) -> Result<(u8, u64), ExecError> {
        let bad = || ExecError::UndefinedValue { inst: inst.id };
        let rd = |op: Operand| self.read(s, ws, lane, op);
        match &inst.op {
            DOp::Bin(op, a, b) => {
                let (ltag, lbits) = rd(*a)?;
                let (rtag, rbits) = rd(*b)?;
                bin_one(*op, ltag, lbits, rtag, rbits, bad)
            }
            DOp::ICmp(pred, a, b) => {
                let (ltag, lbits) = rd(*a)?;
                let (rtag, rbits) = rd(*b)?;
                icmp_one(*pred, ltag, lbits, rtag, rbits, bad)
            }
            DOp::FCmp(pred, a, b) => {
                let (ltag, lbits) = rd(*a)?;
                let (rtag, rbits) = rd(*b)?;
                fcmp_one(*pred, ltag, lbits, rtag, rbits, bad)
            }
            DOp::Select(c, t, e) => {
                let (ctag, cbits) = rd(*c)?;
                let cond = t_as_bool(ctag, cbits).ok_or_else(bad)?;
                rd(if cond { *t } else { *e })
            }
            DOp::Cast(op, v) => {
                let (vtag, vbits) = rd(*v)?;
                cast_one(*op, inst.ty, vtag, vbits, bad)
            }
            DOp::Gep(base, index, scale) => {
                // Base is read *and* converted before the index is touched
                // (the reference interpreter's error order).
                let (btag, bbits) = rd(*base)?;
                let b = t_as_i64(btag, bbits).ok_or_else(bad)?;
                let (itag, ibits) = rd(*index)?;
                let i = t_as_i64(itag, ibits).ok_or_else(bad)?;
                Ok((TAG_I64, b.wrapping_add(i.wrapping_mul(*scale)) as u64))
            }
            DOp::Geom(which) => Ok(match which {
                Intrinsic::ThreadIdxX => (
                    TAG_I32,
                    (geom.first_thread + lane as u32) as i32 as i64 as u64,
                ),
                Intrinsic::BlockIdxX => (TAG_I32, geom.block_idx as i32 as i64 as u64),
                Intrinsic::BlockDimX => (TAG_I32, geom.block_dim as i32 as i64 as u64),
                Intrinsic::GridDimX => (TAG_I32, geom.grid_dim as i32 as i64 as u64),
                Intrinsic::Syncthreads => (TAG_I1, 0), // void; never read
                _ => unreachable!("decoded as Math"),
            }),
            DOp::Math(which, ops, n) => {
                let mut vals = [(TAG_I1, 0u64); 2];
                for k in 0..*n as usize {
                    vals[k] = rd(ops[k])?;
                }
                math_one(*which, vals, *n as usize, inst.ty, bad)
            }
            DOp::Load(..) | DOp::Store(..) | DOp::Br(..) | DOp::Fall(_) | DOp::CondBr { .. }
            | DOp::Ret => {
                unreachable!("handled in run_warp()")
            }
        }
    }

    /// Evaluate one pure vector-destination instruction for every active
    /// lane of `mask`, warp-at-a-time: the opcode and operand dispatch
    /// happen once, then a tight ascending-lane loop reads, computes, and
    /// writes. Observable behaviour is exactly per-lane [`Self::eval_pure`]
    /// in ascending lane order — same results, same errors, same error
    /// order (reads before conversions, operand order per instruction) —
    /// only the host-side dispatch cost changes.
    fn eval_warp(
        &self,
        scratch: &mut Scratch,
        geom: &WarpGeometry,
        ws: usize,
        mask: u32,
        inst: &DInst,
    ) -> Result<(), ExecError> {
        let Some(Dest::V(slot)) = inst.dest else {
            unreachable!("eval_warp is for vector-destination instructions")
        };
        let bad = || ExecError::UndefinedValue { inst: inst.id };
        // SAFETY: decode only emits register slots below num_{s,v}regs and
        // `Scratch::reset` sizes the files to exactly that times the warp
        // size; mask bits never reach past the warp size (launch masks are
        // built that way and branching only narrows them). Every row
        // pointer and `lane` offset below is therefore in bounds, and no
        // safe reference into the vector files is held while the raw
        // pointers are live (scalar reads below touch the *scalar* files
        // only). SSA slot allocation makes operand rows distinct from the
        // destination row.
        let vt = scratch.vreg_tag.as_mut_ptr();
        let vb = scratch.vreg_bits.as_mut_ptr();
        let dt = unsafe { vt.add(slot as usize * ws) };
        let db = unsafe { vb.add(slot as usize * ws) };
        let src = |op: Operand| -> Src {
            match op {
                Operand::Const(t, b) => Src::Splat(t, b),
                Operand::SReg(r) => {
                    let tag = scratch.sreg_tag[r as usize];
                    if tag == TAG_UNDEF {
                        Src::Bad
                    } else {
                        Src::Splat(tag, scratch.sreg_bits[r as usize])
                    }
                }
                Operand::VReg(r) => unsafe {
                    Src::Row(vt.add(r as usize * ws), vb.add(r as usize * ws))
                },
                Operand::BadArg(_) | Operand::Undef(_) => Src::Bad,
            }
        };
        // Reconstruct the exact reference error for an operand whose read
        // failed (rare path; `read` re-derives the precise error payload).
        let fail = |s: &Scratch, op: Operand, lane: usize| -> ExecError {
            match self.read(s, ws, lane, op) {
                Err(e) => e,
                Ok(_) => bad(),
            }
        };
        macro_rules! for_lanes {
            ($lane:ident, $body:block) => {
                let mut rem = mask;
                while rem != 0 {
                    let $lane = rem.trailing_zeros() as usize;
                    rem &= rem - 1;
                    $body
                }
            };
        }
        macro_rules! put {
            ($lane:ident, $tag:expr, $bits:expr) => {
                unsafe {
                    *dt.add($lane) = $tag;
                    *db.add($lane) = $bits;
                }
            };
        }
        match &inst.op {
            DOp::Bin(op, a, b) => {
                let sa = src(*a);
                let sb = src(*b);
                for_lanes!(lane, {
                    let (lt, lb) = unsafe { sa.get(lane) };
                    if lt == TAG_UNDEF {
                        return Err(fail(scratch, *a, lane));
                    }
                    let (rt, rb) = unsafe { sb.get(lane) };
                    if rt == TAG_UNDEF {
                        return Err(fail(scratch, *b, lane));
                    }
                    let (tag, bits) = bin_one(*op, lt, lb, rt, rb, bad)?;
                    put!(lane, tag, bits);
                });
            }
            DOp::ICmp(pred, a, b) => {
                let sa = src(*a);
                let sb = src(*b);
                for_lanes!(lane, {
                    let (lt, lb) = unsafe { sa.get(lane) };
                    if lt == TAG_UNDEF {
                        return Err(fail(scratch, *a, lane));
                    }
                    let (rt, rb) = unsafe { sb.get(lane) };
                    if rt == TAG_UNDEF {
                        return Err(fail(scratch, *b, lane));
                    }
                    let (tag, bits) = icmp_one(*pred, lt, lb, rt, rb, bad)?;
                    put!(lane, tag, bits);
                });
            }
            DOp::FCmp(pred, a, b) => {
                let sa = src(*a);
                let sb = src(*b);
                for_lanes!(lane, {
                    let (lt, lb) = unsafe { sa.get(lane) };
                    if lt == TAG_UNDEF {
                        return Err(fail(scratch, *a, lane));
                    }
                    let (rt, rb) = unsafe { sb.get(lane) };
                    if rt == TAG_UNDEF {
                        return Err(fail(scratch, *b, lane));
                    }
                    let (tag, bits) = fcmp_one(*pred, lt, lb, rt, rb, bad)?;
                    put!(lane, tag, bits);
                });
            }
            DOp::Select(c, t, e) => {
                let sc = src(*c);
                let st = src(*t);
                let se = src(*e);
                for_lanes!(lane, {
                    let (ct, cb) = unsafe { sc.get(lane) };
                    if ct == TAG_UNDEF {
                        return Err(fail(scratch, *c, lane));
                    }
                    let cond = t_as_bool(ct, cb).ok_or_else(bad)?;
                    // Only the chosen side is read (the other may be
                    // undefined without consequence, as in the reference).
                    let (sv, ov) = if cond { (st, *t) } else { (se, *e) };
                    let (vt2, vb2) = unsafe { sv.get(lane) };
                    if vt2 == TAG_UNDEF {
                        return Err(fail(scratch, ov, lane));
                    }
                    put!(lane, vt2, vb2);
                });
            }
            DOp::Cast(op, v) => {
                let sv = src(*v);
                for_lanes!(lane, {
                    let (t, b) = unsafe { sv.get(lane) };
                    if t == TAG_UNDEF {
                        return Err(fail(scratch, *v, lane));
                    }
                    let (tag, bits) = cast_one(*op, inst.ty, t, b, bad)?;
                    put!(lane, tag, bits);
                });
            }
            DOp::Gep(base, index, scale) => {
                let sb_ = src(*base);
                let si = src(*index);
                for_lanes!(lane, {
                    // Base is read *and* converted before the index is
                    // touched (the reference interpreter's error order).
                    let (bt, bb) = unsafe { sb_.get(lane) };
                    if bt == TAG_UNDEF {
                        return Err(fail(scratch, *base, lane));
                    }
                    let bv = t_as_i64(bt, bb).ok_or_else(bad)?;
                    let (it, ib) = unsafe { si.get(lane) };
                    if it == TAG_UNDEF {
                        return Err(fail(scratch, *index, lane));
                    }
                    let iv = t_as_i64(it, ib).ok_or_else(bad)?;
                    put!(lane, TAG_I64, bv.wrapping_add(iv.wrapping_mul(*scale)) as u64);
                });
            }
            DOp::Geom(which) => match which {
                Intrinsic::ThreadIdxX => {
                    for_lanes!(lane, {
                        put!(
                            lane,
                            TAG_I32,
                            (geom.first_thread + lane as u32) as i32 as i64 as u64
                        );
                    });
                }
                _ => {
                    let (tag, bits) = match which {
                        Intrinsic::BlockIdxX => (TAG_I32, geom.block_idx as i32 as i64 as u64),
                        Intrinsic::BlockDimX => (TAG_I32, geom.block_dim as i32 as i64 as u64),
                        Intrinsic::GridDimX => (TAG_I32, geom.grid_dim as i32 as i64 as u64),
                        Intrinsic::Syncthreads => (TAG_I1, 0), // void; never read
                        _ => unreachable!("decoded as Math"),
                    };
                    for_lanes!(lane, {
                        put!(lane, tag, bits);
                    });
                }
            },
            DOp::Math(which, ops, n) => {
                let n = *n as usize;
                let s0 = if n > 0 { src(ops[0]) } else { Src::Bad };
                let s1 = if n > 1 { src(ops[1]) } else { Src::Bad };
                for_lanes!(lane, {
                    let mut vals = [(TAG_I1, 0u64); 2];
                    for (k, sk) in [s0, s1].iter().enumerate().take(n) {
                        let (t, b) = unsafe { sk.get(lane) };
                        if t == TAG_UNDEF {
                            return Err(fail(scratch, ops[k], lane));
                        }
                        vals[k] = (t, b);
                    }
                    let (tag, bits) = math_one(*which, vals, n, inst.ty, bad)?;
                    put!(lane, tag, bits);
                });
            }
            DOp::Load(..) | DOp::Store(..) | DOp::Br(..) | DOp::Fall(_) | DOp::CondBr { .. }
            | DOp::Ret => {
                unreachable!("handled in run_warp()")
            }
        }
        Ok(())
    }

    /// Execute one warp to completion — the decoded counterpart of
    /// [`crate::Warp::run`], with identical observable behaviour. Returns
    /// the issue cycles consumed.
    ///
    /// # Errors
    ///
    /// Exactly the reference interpreter's errors, in the same order.
    pub fn run_warp(
        &self,
        scratch: &mut Scratch,
        geom: WarpGeometry,
        params: &GpuParams,
        mem: &mut GlobalMemory,
        m: &mut Metrics,
        touched: &mut SectorSet,
    ) -> Result<u64, ExecError> {
        scratch.reset(self, params.warp_size);
        let ws = params.warp_size as usize;
        let mut cur = self.entry;
        let full_mask: u32 = if params.warp_size == 32 {
            u32::MAX
        } else {
            (1u32 << params.warp_size) - 1
        };
        let mut mask = full_mask;
        for l in 0..params.warp_size {
            if geom.first_thread + l >= geom.block_dim {
                mask &= !(1 << l);
            }
        }
        let mut issue: u64 = 0;
        let mut executed: u64 = 0;
        let budget = params.max_warp_insts;

        macro_rules! lanes {
            ($mask:expr) => {
                (0..ws).filter(|l| $mask & (1u32 << l) != 0)
            };
        }

        'run: loop {
            // Drain reconvergence arrivals and dead masks before executing.
            loop {
                if mask == 0 {
                    match scratch.stack.last_mut() {
                        None => break 'run,
                        Some(top) => {
                            if let Some((b, m2)) = top.pending.take() {
                                cur = b;
                                mask = m2;
                                continue;
                            }
                            let joined = top.joined;
                            let reconv = top.reconv;
                            scratch.stack.pop();
                            if joined != 0 {
                                mask = joined;
                                assert!(
                                    reconv != NO_BLOCK,
                                    "joined lanes require a reconvergence block"
                                );
                                cur = reconv;
                            }
                            continue;
                        }
                    }
                }
                match scratch.stack.last_mut() {
                    Some(top) if top.reconv == cur => {
                        top.joined |= mask;
                        if let Some((b, m2)) = top.pending.take() {
                            cur = b;
                            mask = m2;
                        } else {
                            mask = top.joined;
                            scratch.stack.pop();
                        }
                        continue;
                    }
                    _ => break,
                }
            }

            let blk = &self.blocks[cur as usize];

            // Phase 1: phis as a parallel copy via the staging buffers.
            if !blk.phis.is_empty() {
                scratch.phi_s.clear();
                scratch.phi_v.clear();
                for (pix, phi) in blk.phis.iter().enumerate() {
                    let row = pix * blk.npreds;
                    let incoming = |prev: u32| -> Result<Operand, ExecError> {
                        let pos = if prev == NO_BLOCK {
                            NO_BLOCK
                        } else {
                            blk.pred_pos[prev as usize]
                        };
                        if pos == NO_BLOCK {
                            return Err(ExecError::MissingPhiIncoming { phi: phi.id });
                        }
                        blk.phi_inc[row + pos as usize]
                            .ok_or(ExecError::MissingPhiIncoming { phi: phi.id })
                    };
                    match phi.dest {
                        Dest::S(slot) => {
                            // Uniform phi: prev and the incoming value are
                            // identical across active lanes — read once via
                            // the first active lane.
                            let lane = mask.trailing_zeros() as usize;
                            let op = incoming(scratch.prev[lane])?;
                            let (tag, bits) = self.read(scratch, ws, lane, op)?;
                            scratch.phi_s.push((slot, tag, bits));
                        }
                        Dest::V(slot) => {
                            // Hoist the incoming-table resolution when all
                            // active lanes arrived from the same
                            // predecessor (uniform branches and fused
                            // fall-throughs — the common case). Error
                            // identity and order are unchanged: a missing
                            // incoming is the same error for every lane.
                            let first = mask.trailing_zeros() as usize;
                            let p0 = scratch.prev[first];
                            let mut uniform = true;
                            for lane in lanes!(mask) {
                                if scratch.prev[lane] != p0 {
                                    uniform = false;
                                    break;
                                }
                            }
                            if uniform {
                                let op = incoming(p0)?;
                                for lane in lanes!(mask) {
                                    let (tag, bits) = self.read(scratch, ws, lane, op)?;
                                    scratch.phi_v.push((slot, lane as u32, tag, bits));
                                }
                            } else {
                                for lane in lanes!(mask) {
                                    let op = incoming(scratch.prev[lane])?;
                                    let (tag, bits) = self.read(scratch, ws, lane, op)?;
                                    scratch.phi_v.push((slot, lane as u32, tag, bits));
                                }
                            }
                        }
                    }
                    m.count(InstClass::Misc, mask.count_ones());
                    issue += 1;
                    executed += 1;
                }
                for &(slot, tag, bits) in &scratch.phi_s {
                    scratch.sreg_bits[slot as usize] = bits;
                    scratch.sreg_tag[slot as usize] = tag;
                }
                for &(slot, lane, tag, bits) in &scratch.phi_v {
                    let at = slot as usize * ws + lane as usize;
                    scratch.vreg_bits[at] = bits;
                    scratch.vreg_tag[at] = tag;
                }
            }
            if executed > budget {
                return Err(ExecError::StepBudgetExceeded { budget });
            }

            // Phase 2: the block's superblock stream — its own non-phi
            // instructions, any fused straight-line successors, and the
            // real terminator.
            let code = &self.code[blk.code as usize..(blk.code + blk.code_len) as usize];
            let mut next: Option<(u32, u32)> = None;
            let mut ip = 0usize;
            while ip < code.len() {
                let inst = &code[ip];
                if inst.run >= 2 {
                    // Fused run of pure vector instructions: dispatch each
                    // instruction once for the whole warp (`eval_warp`
                    // hoists opcode/operand dispatch out of the lane loop)
                    // with step-budget and metrics bookkeeping amortized
                    // over the run. Errors surface in instruction-major,
                    // lane-ascending order — exactly the reference
                    // interpreter's — and evaluation errors inside the
                    // allowed budget beat the budget error, which fires
                    // before the first over-budget instruction would
                    // execute. Metrics and issue cycles commit only on
                    // success (error-path metrics are discarded with the
                    // warp). The defensive `min` keeps a malformed
                    // (terminator-less) block from running past its
                    // stream.
                    let len = (inst.run as usize).min(code.len() - ip);
                    let exec_n = (budget.saturating_sub(executed) as usize).min(len);
                    for ri in &code[ip..ip + exec_n] {
                        self.eval_warp(scratch, &geom, ws, mask, ri)?;
                    }
                    if exec_n < len {
                        return Err(ExecError::StepBudgetExceeded { budget });
                    }
                    let active = mask.count_ones();
                    for ri in &code[ip..ip + len] {
                        m.count(ri.class, active);
                        issue += ri.cost;
                    }
                    executed += len as u64;
                    ip += len;
                    continue;
                }
                let active = mask.count_ones();
                m.count(inst.class, active);
                issue += inst.cost;
                executed += 1;
                if executed > budget {
                    return Err(ExecError::StepBudgetExceeded { budget });
                }
                match &inst.op {
                    DOp::Load(ptr, width) => {
                        scratch.sectors.clear();
                        let mut done = false;
                        match (inst.dest, ptr) {
                            (Some(Dest::S(slot)), p) if !matches!(p, Operand::VReg(_)) => {
                                // Uniform load: one address serves the
                                // warp, so one windowed access replaces
                                // the per-lane re-reads whenever no fault
                                // injection is armed and the range is in
                                // bounds.
                                let lane = mask.trailing_zeros() as usize;
                                let (ptag, pbits) = self.read(scratch, ws, lane, *p)?;
                                let addr = t_as_i64(ptag, pbits).ok_or_else(|| {
                                    ExecError::BadArguments("non-integer address".into())
                                })? as u64;
                                if let Some(win) = mem.read_window(addr, *width) {
                                    let (tag, bits) = decode_mem(inst.ty, win, 0);
                                    scratch.sreg_bits[slot as usize] = bits;
                                    scratch.sreg_tag[slot as usize] = tag;
                                    let sector = addr / params.sector_bytes;
                                    scratch.sectors.push(sector);
                                    touched.insert(sector);
                                    m.gld_bytes += *width * active as u64;
                                    done = true;
                                }
                            }
                            (Some(Dest::V(slot)), Operand::VReg(r)) if mask == full_mask => {
                                // Coalesced load: all lanes active with
                                // unit-stride integer addresses is one
                                // bounds check and one contiguous copy.
                                // Any irregularity (bad tag, stride, OOB,
                                // armed fault countdown) falls back to the
                                // exact per-lane path.
                                let mut base = 0u64;
                                let mut stride = true;
                                for lane in 0..ws {
                                    let at = *r as usize * ws + lane;
                                    let tag = scratch.vreg_tag[at];
                                    if !(TAG_I1..=TAG_I64).contains(&tag) {
                                        stride = false;
                                        break;
                                    }
                                    let a = scratch.vreg_bits[at];
                                    if lane == 0 {
                                        base = a;
                                    } else if a != base.wrapping_add(lane as u64 * *width) {
                                        stride = false;
                                        break;
                                    }
                                }
                                if stride {
                                    if let Some(win) = mem.read_window(base, ws as u64 * *width) {
                                        let wid = *width as usize;
                                        for lane in 0..ws {
                                            let (tag, bits) = decode_mem(inst.ty, win, lane * wid);
                                            let at = slot as usize * ws + lane;
                                            scratch.vreg_bits[at] = bits;
                                            scratch.vreg_tag[at] = tag;
                                            let sector =
                                                (base + lane as u64 * *width) / params.sector_bytes;
                                            // Addresses ascend, so a
                                            // last-entry check is an exact
                                            // dedupe.
                                            if scratch.sectors.last() != Some(&sector) {
                                                scratch.sectors.push(sector);
                                                touched.insert(sector);
                                            }
                                        }
                                        m.gld_bytes += *width * ws as u64;
                                        done = true;
                                    }
                                }
                            }
                            _ => {}
                        }
                        if !done {
                            for lane in lanes!(mask) {
                                let (ptag, pbits) = self.read(scratch, ws, lane, *ptr)?;
                                let addr = t_as_i64(ptag, pbits).ok_or_else(|| {
                                    ExecError::BadArguments("non-integer address".into())
                                })? as u64;
                                let c = mem.read_scalar(addr, inst.ty)?;
                                let (tag, bits) = encode(c);
                                match inst.dest {
                                    Some(Dest::S(slot)) => {
                                        scratch.sreg_bits[slot as usize] = bits;
                                        scratch.sreg_tag[slot as usize] = tag;
                                    }
                                    Some(Dest::V(slot)) => {
                                        let at = slot as usize * ws + lane;
                                        scratch.vreg_bits[at] = bits;
                                        scratch.vreg_tag[at] = tag;
                                    }
                                    None => {}
                                }
                                let sector = addr / params.sector_bytes;
                                if !scratch.sectors.contains(&sector) {
                                    scratch.sectors.push(sector);
                                    // Only a new sector can change the
                                    // launch-wide distinct-sector set.
                                    touched.insert(sector);
                                }
                                m.gld_bytes += width;
                            }
                        }
                        let tx = scratch.sectors.len() as u64;
                        m.mem_transactions += tx;
                        issue += tx * params.mem_tx_cycles;
                        // Sublinear cache-hit latency charge; see the
                        // reference interpreter for the model rationale.
                        let frac = active as f64 / params.warp_size as f64;
                        issue += (params.l1_latency as f64 * frac.powf(1.5)) as u64;
                    }
                    DOp::Store(ptr, value, width) => {
                        scratch.sectors.clear();
                        let mut done = false;
                        if mask == full_mask {
                            if let Operand::VReg(r) = ptr {
                                // Coalesced store: same unit-stride probe
                                // as the load fast path. Value reads are
                                // side-effect-free and a bail-out only
                                // leaves writes the per-lane path redoes
                                // identically, so falling back mid-loop is
                                // unobservable (gst_bytes commits at the
                                // end).
                                let mut base = 0u64;
                                let mut stride = true;
                                for lane in 0..ws {
                                    let at = *r as usize * ws + lane;
                                    let tag = scratch.vreg_tag[at];
                                    if !(TAG_I1..=TAG_I64).contains(&tag) {
                                        stride = false;
                                        break;
                                    }
                                    let a = scratch.vreg_bits[at];
                                    if lane == 0 {
                                        base = a;
                                    } else if a != base.wrapping_add(lane as u64 * *width) {
                                        stride = false;
                                        break;
                                    }
                                }
                                if stride {
                                    if let Some(win) = mem.write_window(base, ws as u64 * *width) {
                                        let wid = *width as usize;
                                        let mut ok = true;
                                        for lane in 0..ws {
                                            let (vtag, vbits) =
                                                self.read(scratch, ws, lane, *value)?;
                                            let off = lane * wid;
                                            match (vtag, wid) {
                                                (TAG_I1, 1) => win[off] = (vbits != 0) as u8,
                                                (TAG_I32, 4) => win[off..off + 4].copy_from_slice(
                                                    &(vbits as i64 as i32).to_le_bytes(),
                                                ),
                                                (TAG_F32, 4) => win[off..off + 4]
                                                    .copy_from_slice(&(vbits as u32).to_le_bytes()),
                                                (TAG_I64, 8) | (TAG_F64, 8) => win[off..off + 8]
                                                    .copy_from_slice(&vbits.to_le_bytes()),
                                                _ => ok = false,
                                            }
                                            if !ok {
                                                break;
                                            }
                                            let sector =
                                                (base + lane as u64 * *width) / params.sector_bytes;
                                            if scratch.sectors.last() != Some(&sector) {
                                                scratch.sectors.push(sector);
                                                touched.insert(sector);
                                            }
                                        }
                                        if ok {
                                            m.gst_bytes += *width * ws as u64;
                                            done = true;
                                        }
                                    }
                                }
                            }
                        }
                        if !done {
                            scratch.sectors.clear();
                            for lane in lanes!(mask) {
                                let (ptag, pbits) = self.read(scratch, ws, lane, *ptr)?;
                                let addr = t_as_i64(ptag, pbits).ok_or_else(|| {
                                    ExecError::BadArguments("non-integer address".into())
                                })? as u64;
                                let (vtag, vbits) = self.read(scratch, ws, lane, *value)?;
                                mem.write_scalar(addr, decode_const(vtag, vbits))?;
                                let sector = addr / params.sector_bytes;
                                if !scratch.sectors.contains(&sector) {
                                    scratch.sectors.push(sector);
                                    touched.insert(sector);
                                }
                                m.gst_bytes += width;
                            }
                        }
                        let tx = scratch.sectors.len() as u64;
                        m.mem_transactions += tx;
                        issue += tx * params.mem_tx_cycles;
                    }
                    DOp::Br(target, owner) => {
                        for l in lanes!(mask) {
                            scratch.prev[l] = *owner;
                        }
                        next = Some((*target, mask));
                    }
                    DOp::Fall(owner) => {
                        // Fused `Br`: account for it like the branch it
                        // replaces (done above), update phi provenance,
                        // and fall through to the successor's
                        // instructions, which follow immediately.
                        for l in lanes!(mask) {
                            scratch.prev[l] = *owner;
                        }
                    }
                    DOp::Ret => {
                        next = Some((cur, 0)); // mask 0 triggers stack drain
                    }
                    DOp::CondBr {
                        cond,
                        if_true,
                        if_false,
                        uniform,
                        owner,
                        reconv,
                    } => {
                        let mut tmask = 0u32;
                        if *uniform {
                            // One evaluation decides the whole warp.
                            let lane = mask.trailing_zeros() as usize;
                            let (ctag, cbits) = self.read(scratch, ws, lane, *cond)?;
                            let c = t_as_bool(ctag, cbits).ok_or_else(|| {
                                ExecError::BadArguments("non-boolean condition".into())
                            })?;
                            if c {
                                tmask = mask;
                            }
                        } else {
                            for lane in lanes!(mask) {
                                let (ctag, cbits) = self.read(scratch, ws, lane, *cond)?;
                                let c = t_as_bool(ctag, cbits).ok_or_else(|| {
                                    ExecError::BadArguments("non-boolean condition".into())
                                })?;
                                if c {
                                    tmask |= 1 << lane;
                                }
                            }
                        }
                        let fmask = mask & !tmask;
                        for l in lanes!(mask) {
                            scratch.prev[l] = *owner;
                        }
                        if if_true == if_false || fmask == 0 {
                            next = Some((*if_true, mask));
                        } else if tmask == 0 {
                            next = Some((*if_false, mask));
                        } else {
                            scratch.stack.push(DFrame {
                                reconv: *reconv,
                                pending: Some((*if_false, fmask)),
                                joined: 0,
                            });
                            next = Some((*if_true, tmask));
                        }
                    }
                    _ => match inst.dest {
                        Some(Dest::S(slot)) => {
                            // Warp-uniform: evaluate once for the warp.
                            let lane = mask.trailing_zeros() as usize;
                            let (tag, bits) = self.eval_pure(scratch, &geom, ws, lane, inst)?;
                            scratch.sreg_bits[slot as usize] = bits;
                            scratch.sreg_tag[slot as usize] = tag;
                        }
                        Some(Dest::V(_)) => {
                            self.eval_warp(scratch, &geom, ws, mask, inst)?;
                        }
                        None => unreachable!("pure instructions produce a value"),
                    },
                }
                ip += 1;
            }
            let (nb, nm) = next.expect("block must end in a terminator");
            cur = nb;
            mask = nm;
        }
        Ok(issue)
    }
}

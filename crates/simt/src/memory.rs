//! Simulated global (device) memory.
//!
//! A flat, byte-addressed address space with a bump allocator, typed
//! accessors and bounds checking. Address 0 is reserved so that null
//! pointers trap.

use uu_ir::{Constant, Type};

/// Handle to an allocation in device memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Buffer {
    /// Base device address.
    pub addr: u64,
    /// Length in bytes.
    pub len: u64,
}

/// Errors raised by memory accesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// Access outside any allocation.
    OutOfBounds {
        /// Faulting address.
        addr: u64,
        /// Access width in bytes.
        width: u64,
    },
    /// Device memory exhausted.
    OutOfMemory,
    /// Deterministically injected fault (see
    /// [`GlobalMemory::inject_fault_after`]) — exercises the harness's
    /// fault-containment paths; never produced by real workloads.
    Injected,
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::OutOfBounds { addr, width } => {
                write!(f, "out of bounds access of {width} bytes at address {addr:#x}")
            }
            MemError::OutOfMemory => write!(f, "device memory exhausted"),
            MemError::Injected => write!(f, "injected memory fault"),
        }
    }
}

impl std::error::Error for MemError {}

/// Dense set of distinct DRAM sectors touched by a launch.
///
/// The launch path sizes the bitmap once from the allocator's high-water
/// mark (`GlobalMemory::used() / sector_bytes`), so membership inserts are
/// one bit test instead of a `HashSet` probe — every device address has
/// already passed the bounds check, so in-range is the common case and the
/// grow path below is defensive only. Only the distinct-sector *count* is
/// observable (it becomes `Metrics::dram_sectors`), which is exactly what
/// a bitmap preserves bit-for-bit versus the old hash set.
#[derive(Debug, Default)]
pub struct SectorSet {
    bits: Vec<u64>,
    len: u64,
}

impl SectorSet {
    /// Create an empty set; size it with [`SectorSet::reset`] before use.
    pub fn new() -> Self {
        SectorSet::default()
    }

    /// Clear the set and size it for sector indices `0..sectors`. Reuses
    /// the previous allocation when it is large enough.
    pub fn reset(&mut self, sectors: u64) {
        let words = sectors.div_ceil(64) as usize;
        self.bits.clear();
        self.bits.resize(words, 0);
        self.len = 0;
    }

    /// Insert a sector index.
    #[inline]
    pub fn insert(&mut self, sector: u64) {
        let w = (sector / 64) as usize;
        if w >= self.bits.len() {
            // Defensive: every inserted address passed the bounds check, so
            // this only triggers for custom `sector_bytes` geometries.
            self.bits.resize(w + 1, 0);
        }
        let bit = 1u64 << (sector % 64);
        if self.bits[w] & bit == 0 {
            self.bits[w] |= bit;
            self.len += 1;
        }
    }

    /// Number of distinct sectors inserted since the last reset.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether no sector has been inserted since the last reset.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// The device memory: a bump-allocated flat byte array.
#[derive(Debug, Clone)]
pub struct GlobalMemory {
    bytes: Vec<u8>,
    top: u64,
    capacity: u64,
    // One-shot fault countdown: the (n+1)-th checked access traps with
    // MemError::Injected. Cell so read paths (&self) can tick it.
    fault_after: std::cell::Cell<Option<u64>>,
}

const ALIGN: u64 = 256;

impl GlobalMemory {
    /// Create a device memory with the given capacity in bytes.
    pub fn new(capacity: u64) -> Self {
        GlobalMemory {
            bytes: Vec::new(),
            top: ALIGN, // address 0..ALIGN reserved (null page)
            capacity,
            fault_after: std::cell::Cell::new(None),
        }
    }

    /// Arm a deterministic one-shot fault: after `n` further successful
    /// checked accesses (reads or writes, host- or device-side), the next
    /// access returns [`MemError::Injected`] and the countdown disarms.
    /// Because the simulator executes warps in a fixed deterministic
    /// order, the same `n` always faults the same access.
    pub fn inject_fault_after(&mut self, n: u64) {
        self.fault_after.set(Some(n));
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.top
    }

    /// Allocate `len` bytes, zero-initialized.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfMemory`] when capacity would be exceeded.
    pub fn alloc(&mut self, len: u64) -> Result<Buffer, MemError> {
        let addr = self.top;
        let new_top = addr
            .checked_add(len)
            .map(|t| t.div_ceil(ALIGN) * ALIGN)
            .ok_or(MemError::OutOfMemory)?;
        if new_top > self.capacity {
            return Err(MemError::OutOfMemory);
        }
        self.top = new_top;
        if self.bytes.len() < new_top as usize {
            self.bytes.resize(new_top as usize, 0);
        }
        Ok(Buffer { addr, len })
    }

    /// Allocate and initialize from `f64` host data.
    pub fn alloc_f64(&mut self, data: &[f64]) -> Result<Buffer, MemError> {
        let b = self.alloc(data.len() as u64 * 8)?;
        if let Some(w) = self.write_window(b.addr, data.len() as u64 * 8) {
            // Bulk host init: one bounds check for the whole range. Only
            // taken with the fault countdown disarmed, so the per-access
            // countdown semantics of the slow path are preserved.
            for (dst, v) in w.chunks_exact_mut(8).zip(data) {
                dst.copy_from_slice(&v.to_bits().to_le_bytes());
            }
            return Ok(b);
        }
        for (i, v) in data.iter().enumerate() {
            self.write_scalar(b.addr + i as u64 * 8, Constant::f64(*v))?;
        }
        Ok(b)
    }

    /// Allocate and initialize from `f32` host data.
    pub fn alloc_f32(&mut self, data: &[f32]) -> Result<Buffer, MemError> {
        let b = self.alloc(data.len() as u64 * 4)?;
        if let Some(w) = self.write_window(b.addr, data.len() as u64 * 4) {
            for (dst, v) in w.chunks_exact_mut(4).zip(data) {
                dst.copy_from_slice(&v.to_bits().to_le_bytes());
            }
            return Ok(b);
        }
        for (i, v) in data.iter().enumerate() {
            self.write_scalar(b.addr + i as u64 * 4, Constant::f32(*v))?;
        }
        Ok(b)
    }

    /// Allocate and initialize from `i64` host data.
    pub fn alloc_i64(&mut self, data: &[i64]) -> Result<Buffer, MemError> {
        let b = self.alloc(data.len() as u64 * 8)?;
        if let Some(w) = self.write_window(b.addr, data.len() as u64 * 8) {
            for (dst, v) in w.chunks_exact_mut(8).zip(data) {
                dst.copy_from_slice(&v.to_le_bytes());
            }
            return Ok(b);
        }
        for (i, v) in data.iter().enumerate() {
            self.write_scalar(b.addr + i as u64 * 8, Constant::I64(*v))?;
        }
        Ok(b)
    }

    /// Allocate and initialize from `i32` host data.
    pub fn alloc_i32(&mut self, data: &[i32]) -> Result<Buffer, MemError> {
        let b = self.alloc(data.len() as u64 * 4)?;
        if let Some(w) = self.write_window(b.addr, data.len() as u64 * 4) {
            for (dst, v) in w.chunks_exact_mut(4).zip(data) {
                dst.copy_from_slice(&v.to_le_bytes());
            }
            return Ok(b);
        }
        for (i, v) in data.iter().enumerate() {
            self.write_scalar(b.addr + i as u64 * 4, Constant::I32(*v))?;
        }
        Ok(b)
    }

    /// Borrow `len` bytes at `addr` for reading, bounds-checked once.
    ///
    /// Returns `None` whenever the per-access slow path must run instead:
    /// when the range is not fully in bounds (the caller's per-access loop
    /// then reports the fault at the exact access the reference
    /// interpreter would), or when a fault countdown is armed — `check`
    /// ticks the countdown once per access, so a windowed access would
    /// change which access faults. With the countdown disarmed the tick is
    /// a no-op and the window is observationally identical.
    pub(crate) fn read_window(&self, addr: u64, len: u64) -> Option<&[u8]> {
        if self.fault_after.get().is_some()
            || addr < ALIGN
            || addr.saturating_add(len) > self.top
        {
            return None;
        }
        Some(&self.bytes[addr as usize..(addr + len) as usize])
    }

    /// Borrow `len` bytes at `addr` for writing; same contract as
    /// [`GlobalMemory::read_window`].
    pub(crate) fn write_window(&mut self, addr: u64, len: u64) -> Option<&mut [u8]> {
        if self.fault_after.get().is_some()
            || addr < ALIGN
            || addr.saturating_add(len) > self.top
        {
            return None;
        }
        Some(&mut self.bytes[addr as usize..(addr + len) as usize])
    }

    fn check(&self, addr: u64, width: u64) -> Result<(), MemError> {
        match self.fault_after.get() {
            Some(0) => {
                self.fault_after.set(None);
                return Err(MemError::Injected);
            }
            Some(n) => self.fault_after.set(Some(n - 1)),
            None => {}
        }
        if addr < ALIGN || addr.saturating_add(width) > self.top {
            return Err(MemError::OutOfBounds { addr, width });
        }
        Ok(())
    }

    /// Read a scalar of type `ty` at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] for accesses outside allocations.
    pub fn read_scalar(&self, addr: u64, ty: Type) -> Result<Constant, MemError> {
        let w = ty.size_bytes();
        self.check(addr, w)?;
        let at = addr as usize;
        let c = match ty {
            Type::I1 => Constant::I1(self.bytes[at] != 0),
            Type::I32 => Constant::I32(i32::from_le_bytes(
                self.bytes[at..at + 4].try_into().unwrap(),
            )),
            Type::I64 | Type::Ptr => Constant::I64(i64::from_le_bytes(
                self.bytes[at..at + 8].try_into().unwrap(),
            )),
            Type::F32 => Constant::F32Bits(u32::from_le_bytes(
                self.bytes[at..at + 4].try_into().unwrap(),
            )),
            Type::F64 => Constant::F64Bits(u64::from_le_bytes(
                self.bytes[at..at + 8].try_into().unwrap(),
            )),
            Type::Void => unreachable!("void load"),
        };
        Ok(c)
    }

    /// Write a scalar at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] for accesses outside allocations.
    pub fn write_scalar(&mut self, addr: u64, value: Constant) -> Result<(), MemError> {
        let w = value.ty().size_bytes();
        self.check(addr, w)?;
        let at = addr as usize;
        match value {
            Constant::I1(b) => self.bytes[at] = b as u8,
            Constant::I32(v) => self.bytes[at..at + 4].copy_from_slice(&v.to_le_bytes()),
            Constant::I64(v) => self.bytes[at..at + 8].copy_from_slice(&v.to_le_bytes()),
            Constant::F32Bits(v) => self.bytes[at..at + 4].copy_from_slice(&v.to_le_bytes()),
            Constant::F64Bits(v) => self.bytes[at..at + 8].copy_from_slice(&v.to_le_bytes()),
        }
        Ok(())
    }

    /// Read back a buffer as `f64`s.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] for a dangling or foreign
    /// [`Buffer`] whose range falls outside this memory's allocations —
    /// like [`GlobalMemory::alloc`], host-side readback reports faults
    /// instead of panicking.
    pub fn read_f64(&self, b: Buffer) -> Result<Vec<f64>, MemError> {
        if let Some(w) = self.read_window(b.addr, b.len / 8 * 8) {
            return Ok(w
                .chunks_exact(8)
                .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().unwrap())))
                .collect());
        }
        (0..b.len / 8)
            .map(|i| {
                self.read_scalar(b.addr + i * 8, Type::F64)
                    .map(|c| c.as_f64().unwrap())
            })
            .collect()
    }

    /// Read back a buffer as `i64`s.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] for dangling/foreign buffers.
    pub fn read_i64(&self, b: Buffer) -> Result<Vec<i64>, MemError> {
        if let Some(w) = self.read_window(b.addr, b.len / 8 * 8) {
            return Ok(w
                .chunks_exact(8)
                .map(|c| i64::from_le_bytes(c.try_into().unwrap()))
                .collect());
        }
        (0..b.len / 8)
            .map(|i| {
                self.read_scalar(b.addr + i * 8, Type::I64)
                    .map(|c| c.as_i64().unwrap())
            })
            .collect()
    }

    /// Read back a buffer as `i32`s.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] for dangling/foreign buffers.
    pub fn read_i32(&self, b: Buffer) -> Result<Vec<i32>, MemError> {
        if let Some(w) = self.read_window(b.addr, b.len / 4 * 4) {
            return Ok(w
                .chunks_exact(4)
                .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
                .collect());
        }
        (0..b.len / 4)
            .map(|i| {
                self.read_scalar(b.addr + i * 4, Type::I32)
                    .map(|c| c.as_i64().unwrap() as i32)
            })
            .collect()
    }

    /// Read back a buffer as `f32`s.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] for dangling/foreign buffers.
    pub fn read_f32(&self, b: Buffer) -> Result<Vec<f32>, MemError> {
        if let Some(w) = self.read_window(b.addr, b.len / 4 * 4) {
            return Ok(w
                .chunks_exact(4)
                .map(|c| f32::from_bits(u32::from_le_bytes(c.try_into().unwrap())))
                .collect());
        }
        (0..b.len / 4)
            .map(|i| {
                self.read_scalar(b.addr + i * 4, Type::F32)
                    .map(|c| c.as_f64().unwrap() as f32)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_roundtrip() {
        let mut m = GlobalMemory::new(1 << 20);
        let b = m.alloc_f64(&[1.0, 2.5, -3.0]).unwrap();
        assert_eq!(m.read_f64(b).unwrap(), vec![1.0, 2.5, -3.0]);
        let c = m.alloc_i64(&[7, -9]).unwrap();
        assert_eq!(m.read_i64(c).unwrap(), vec![7, -9]);
        assert_ne!(b.addr, c.addr);
        let d = m.alloc_i32(&[1, 2, 3]).unwrap();
        assert_eq!(m.read_i32(d).unwrap(), vec![1, 2, 3]);
        let e = m.alloc_f32(&[0.5]).unwrap();
        assert_eq!(m.read_f32(e).unwrap(), vec![0.5]);
    }

    #[test]
    fn dangling_and_foreign_buffers_fault_instead_of_panicking() {
        let mut m = GlobalMemory::new(1 << 12);
        // A buffer that was never allocated here (e.g. from another Gpu
        // with more memory in use) must report OutOfBounds on readback.
        let foreign = Buffer {
            addr: m.used() + 4096,
            len: 64,
        };
        assert!(matches!(
            m.read_i64(foreign),
            Err(MemError::OutOfBounds { .. })
        ));
        assert!(m.read_f64(foreign).is_err());
        assert!(m.read_i32(foreign).is_err());
        assert!(m.read_f32(foreign).is_err());
        // A buffer overhanging the end of the heap faults too.
        let b = m.alloc(16).unwrap();
        let overhang = Buffer {
            addr: b.addr,
            len: m.used() - b.addr + 8,
        };
        assert!(m.read_i64(overhang).is_err());
        // Null-page reads fault.
        assert!(m.read_i64(Buffer { addr: 0, len: 8 }).is_err());
    }

    #[test]
    fn alignment_and_null_page() {
        let mut m = GlobalMemory::new(1 << 20);
        let b = m.alloc(10).unwrap();
        assert!(b.addr >= 256);
        assert_eq!(b.addr % 256, 0);
        // Null page traps.
        assert!(m.read_scalar(0, Type::I64).is_err());
        assert!(m.write_scalar(8, Constant::I64(1)).is_err());
    }

    #[test]
    fn bounds_checked() {
        let mut m = GlobalMemory::new(1 << 12);
        let b = m.alloc(16).unwrap();
        assert!(m.read_scalar(b.addr + 8, Type::I64).is_ok());
        assert!(m.read_scalar(m.used(), Type::I64).is_err());
        assert!(m.alloc(1 << 13).is_err());
    }

    #[test]
    fn injected_fault_fires_once_at_the_armed_access() {
        let mut m = GlobalMemory::new(1 << 12);
        let b = m.alloc_i64(&[1, 2, 3, 4]).unwrap();
        m.inject_fault_after(2);
        assert!(m.read_scalar(b.addr, Type::I64).is_ok());
        assert!(m.read_scalar(b.addr + 8, Type::I64).is_ok());
        assert_eq!(
            m.read_scalar(b.addr + 16, Type::I64),
            Err(MemError::Injected)
        );
        // One-shot: the countdown disarms after firing.
        assert!(m.read_scalar(b.addr + 16, Type::I64).is_ok());
    }

    #[test]
    fn typed_readwrite() {
        let mut m = GlobalMemory::new(1 << 12);
        let b = m.alloc(64).unwrap();
        m.write_scalar(b.addr, Constant::I1(true)).unwrap();
        assert_eq!(m.read_scalar(b.addr, Type::I1).unwrap(), Constant::I1(true));
        m.write_scalar(b.addr + 8, Constant::f32(1.5)).unwrap();
        assert_eq!(
            m.read_scalar(b.addr + 8, Type::F32).unwrap(),
            Constant::f32(1.5)
        );
    }
}

//! Kernel launch, scheduling, and the end-to-end timing model.
//!
//! The timing model is a roofline: compute cycles (instruction issue +
//! fetch stalls, divided across concurrently resident warps) versus memory
//! cycles (transactions over sustained DRAM sector bandwidth); kernel time
//! is the max of the two plus launch overhead. The model deliberately
//! responds to exactly the mechanisms the paper analyses:
//!
//! * fewer dynamic instructions (u&u's redundancy elimination) ⇒ fewer
//!   issue cycles ⇒ faster, with IPC rising as the paper reports;
//! * divergence (longer unmerged paths) ⇒ more partial-mask issues ⇒
//!   lower `warp_execution_efficiency`, slower when nothing was saved;
//! * code growth past the i-cache ⇒ fetch stalls (`stall_inst_fetch`),
//!   the *haccmk*/*complex* slowdown mode.

use crate::exec::{ExecError, Warp, WarpGeometry};
use crate::memory::{Buffer, GlobalMemory, MemError};
use crate::metrics::Metrics;
use crate::params::{ExecEngine, GpuParams};
use uu_analysis::{cost, PostDomTree, Uniformity};
use uu_ir::{Constant, Function, Type, Value};

/// One kernel argument.
#[derive(Debug, Clone, Copy)]
pub enum KernelArg {
    /// 32-bit integer scalar.
    I32(i32),
    /// 64-bit integer scalar.
    I64(i64),
    /// Single precision scalar.
    F32(f32),
    /// Double precision scalar.
    F64(f64),
    /// Device buffer (passed as its base address).
    Buffer(Buffer),
}

impl KernelArg {
    fn to_constant(self) -> Constant {
        match self {
            KernelArg::I32(v) => Constant::I32(v),
            KernelArg::I64(v) => Constant::I64(v),
            KernelArg::F32(v) => Constant::f32(v),
            KernelArg::F64(v) => Constant::f64(v),
            KernelArg::Buffer(b) => Constant::I64(b.addr as i64),
        }
    }
}

/// Grid geometry for a launch (1-D, which covers the evaluated kernels).
#[derive(Debug, Clone, Copy)]
pub struct LaunchConfig {
    /// Number of thread blocks.
    pub grid_dim: u32,
    /// Threads per block.
    pub block_dim: u32,
}

impl LaunchConfig {
    /// A convenient `<<<grid, block>>>` constructor.
    pub fn new(grid_dim: u32, block_dim: u32) -> Self {
        LaunchConfig {
            grid_dim,
            block_dim,
        }
    }

    /// Total threads.
    pub fn total_threads(&self) -> u64 {
        self.grid_dim as u64 * self.block_dim as u64
    }
}

/// Result of a kernel launch.
#[derive(Debug, Clone)]
pub struct LaunchReport {
    /// Hardware counters.
    pub metrics: Metrics,
    /// Kernel time in milliseconds.
    pub time_ms: f64,
}

/// The simulated GPU: device memory plus architectural parameters.
#[derive(Debug)]
pub struct Gpu {
    /// Device memory.
    pub mem: GlobalMemory,
    params: GpuParams,
}

impl Gpu {
    /// Create a GPU with default (V100-flavoured) parameters and 1 GiB of
    /// device memory.
    pub fn new() -> Self {
        Gpu {
            mem: GlobalMemory::new(1 << 30),
            params: GpuParams::default(),
        }
    }

    /// Create a GPU with custom parameters.
    pub fn with_params(params: GpuParams) -> Self {
        Gpu {
            mem: GlobalMemory::new(1 << 30),
            params,
        }
    }

    /// Architectural parameters.
    pub fn params(&self) -> &GpuParams {
        &self.params
    }

    /// Allocate a buffer of `len` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfMemory`] when device memory is exhausted.
    pub fn alloc(&mut self, len: u64) -> Result<Buffer, MemError> {
        self.mem.alloc(len)
    }

    /// Launch `kernel` with the given configuration and arguments.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] on argument mismatches, memory faults, reads of
    /// undefined SSA values, or the per-warp instruction limit.
    pub fn launch(
        &mut self,
        kernel: &Function,
        cfg: LaunchConfig,
        args: &[KernelArg],
    ) -> Result<LaunchReport, ExecError> {
        if args.len() != kernel.params().len() {
            return Err(ExecError::BadArguments(format!(
                "kernel @{} expects {} arguments, got {}",
                kernel.name(),
                kernel.params().len(),
                args.len()
            )));
        }
        for (i, (a, p)) in args.iter().zip(kernel.params()).enumerate() {
            let ok = matches!(
                (a, p.ty),
                (KernelArg::I32(_), Type::I32)
                    | (KernelArg::I64(_), Type::I64)
                    | (KernelArg::F32(_), Type::F32)
                    | (KernelArg::F64(_), Type::F64)
                    | (KernelArg::Buffer(_), Type::Ptr)
                    | (KernelArg::I64(_), Type::Ptr)
            );
            if !ok {
                return Err(ExecError::BadArguments(format!(
                    "argument {i} type mismatch for parameter `{}`",
                    p.name
                )));
            }
        }
        let consts: Vec<Constant> = args.iter().map(|a| a.to_constant()).collect();
        let code_size = cost::function_size(kernel);
        let fetch_penalty = self.params.fetch_penalty(code_size);

        // Decoded engine: the lowering (and the postdom/uniformity analyses
        // feeding it) comes from the cross-launch cache — a sweep re-launching
        // the same kernel pays for decode once per thread, not per launch.
        // The reference engines interpret the arena directly and build their
        // analyses here, per launch.
        let decoded = match self.params.engine {
            ExecEngine::Decoded => Some(crate::cache::decode_cached(kernel, &consts)),
            ExecEngine::Reference | ExecEngine::ReferenceVerifyUniform => None,
        };
        let pdom = if decoded.is_none() {
            Some(PostDomTree::compute(kernel))
        } else {
            None
        };
        let uniform_slots = match self.params.engine {
            ExecEngine::ReferenceVerifyUniform => {
                let uni = Uniformity::compute(kernel);
                Some(
                    (0..kernel.num_inst_slots())
                        .map(|i| {
                            uni.is_uniform(Value::Inst(uu_ir::InstId::from_index(i)))
                        })
                        .collect::<Vec<bool>>(),
                )
            }
            _ => None,
        };
        // Per-launch mutable state comes from the pool; the sector bitmap is
        // sized from the allocator's high-water mark (any in-bounds access
        // lands below it).
        let crate::cache::LaunchScratch {
            mut scratch,
            mut touched,
        } = crate::cache::take_launch_scratch();
        touched.reset(self.mem.used().div_ceil(self.params.sector_bytes) + 1);

        let mut metrics = Metrics::default();
        let mut issue_total: u64 = 0;
        let mut err: Option<ExecError> = None;
        let warps_per_block = cfg.block_dim.div_ceil(self.params.warp_size);
        'grid: for block in 0..cfg.grid_dim {
            for w in 0..warps_per_block {
                let geom = WarpGeometry {
                    block_idx: block,
                    block_dim: cfg.block_dim,
                    grid_dim: cfg.grid_dim,
                    first_thread: w * self.params.warp_size,
                };
                let before = metrics.warp_insts;
                let ran = match &decoded {
                    Some(k) => k.run_warp(
                        &mut scratch,
                        geom,
                        &self.params,
                        &mut self.mem,
                        &mut metrics,
                        &mut touched,
                    ),
                    None => {
                        let pdom = pdom.as_ref().expect("reference engines computed postdom");
                        let mut warp = Warp::new(kernel, &consts, geom, &self.params, pdom);
                        if let Some(slots) = &uniform_slots {
                            warp.verify_uniform(slots.clone());
                        }
                        warp.run(&mut self.mem, &mut metrics, &mut touched)
                    }
                };
                match ran {
                    Ok(issue) => issue_total += issue,
                    Err(e) => {
                        err = Some(e);
                        break 'grid;
                    }
                }
                let issued = metrics.warp_insts - before;
                metrics.fetch_stall_cycles += (issued as f64 * fetch_penalty) as u64;
                metrics.warps += 1;
            }
        }
        let dram_sectors = touched.len();
        crate::cache::put_launch_scratch(crate::cache::LaunchScratch { scratch, touched });
        if let Some(e) = err {
            return Err(e);
        }

        // Roofline combination.
        let conc = self.params.concurrency(metrics.warps);
        let compute_cycles =
            (issue_total + metrics.fetch_stall_cycles) / conc + self.params.launch_overhead;
        metrics.dram_sectors = dram_sectors;
        // Sustained DRAM sector bandwidth: ~20 sectors/cycle on the modelled
        // part (900 GB/s at 1.38 GHz / 32 B sectors). Re-references are
        // absorbed by the cache hierarchy and only pay an L2-bandwidth term.
        let sectors_per_cycle = 20.0;
        let l2_sectors_per_cycle = 80.0;
        let memory_cycles = (metrics.dram_sectors as f64 / sectors_per_cycle
            + metrics.mem_transactions as f64 / l2_sectors_per_cycle)
            as u64;
        // Exposed latency when occupancy is too low to hide DRAM trips.
        let hide = (conc as f64 / self.params.num_sms as f64).max(1.0);
        let exposed = (metrics.dram_sectors as f64 * self.params.mem_latency as f64
            / (hide * 64.0)) as u64
            / conc.max(1);
        metrics.mem_stall_cycles = memory_cycles.max(exposed);
        metrics.issue_cycles = issue_total;
        metrics.kernel_cycles = compute_cycles.max(metrics.mem_stall_cycles);
        let time_ms = metrics.kernel_cycles as f64 / (self.params.clock_ghz * 1e9) * 1e3;
        Ok(LaunchReport { metrics, time_ms })
    }
}

impl Default for Gpu {
    fn default() -> Self {
        Gpu::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uu_ir::{CastOp, FunctionBuilder, ICmpPred, Param, Value};

    /// `out[gid] = a[gid] + b[gid]` for gid < n.
    fn vecadd() -> Function {
        let mut f = Function::new(
            "vecadd",
            vec![
                Param::new("a", Type::Ptr),
                Param::new("b", Type::Ptr),
                Param::new("out", Type::Ptr),
                Param::new("n", Type::I64),
            ],
            Type::Void,
        );
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let body = b.create_block();
        let exit = b.create_block();
        b.switch_to(entry);
        let gid = b.global_thread_id();
        let inb = b.icmp(ICmpPred::Slt, gid, Value::Arg(3));
        b.cond_br(inb, body, exit);
        b.switch_to(body);
        let pa = b.gep(Value::Arg(0), gid, 8);
        let pb = b.gep(Value::Arg(1), gid, 8);
        let va = b.load(Type::F64, pa);
        let vb = b.load(Type::F64, pb);
        let s = b.fadd(va, vb);
        let po = b.gep(Value::Arg(2), gid, 8);
        b.store(po, s);
        b.br(exit);
        b.switch_to(exit);
        b.ret(None);
        f
    }

    #[test]
    fn vecadd_executes_correctly() {
        let mut gpu = Gpu::new();
        let n = 100usize;
        let a: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let bvec: Vec<f64> = (0..n).map(|i| 2.0 * i as f64).collect();
        let ba = gpu.mem.alloc_f64(&a).unwrap();
        let bb = gpu.mem.alloc_f64(&bvec).unwrap();
        let bo = gpu.mem.alloc_f64(&vec![0.0; n]).unwrap();
        let f = vecadd();
        let report = gpu
            .launch(
                &f,
                LaunchConfig::new(4, 32),
                &[
                    KernelArg::Buffer(ba),
                    KernelArg::Buffer(bb),
                    KernelArg::Buffer(bo),
                    KernelArg::I64(n as i64),
                ],
            )
            .unwrap();
        let out = gpu.mem.read_f64(bo).unwrap();
        for i in 0..n {
            assert_eq!(out[i], 3.0 * i as f64);
        }
        assert!(report.time_ms > 0.0);
        assert_eq!(report.metrics.warps, 4);
        // 28 of 128 threads are out of bounds → divergence on the guard, but
        // only in the last warp... gid >= n has whole warp 4 exit; warp 3 is
        // partially active: efficiency below 100%.
        assert!(report.metrics.warp_execution_efficiency(32) < 100.0);
        assert!(report.metrics.gld_bytes >= (2 * 8 * n) as u64);
    }

    #[test]
    fn argument_checking() {
        let mut gpu = Gpu::new();
        let f = vecadd();
        let err = gpu.launch(&f, LaunchConfig::new(1, 32), &[]).unwrap_err();
        assert!(matches!(err, ExecError::BadArguments(_)));
        let err = gpu
            .launch(
                &f,
                LaunchConfig::new(1, 32),
                &[
                    KernelArg::F64(1.0),
                    KernelArg::F64(1.0),
                    KernelArg::F64(1.0),
                    KernelArg::F64(1.0),
                ],
            )
            .unwrap_err();
        assert!(matches!(err, ExecError::BadArguments(_)));
    }

    #[test]
    fn out_of_bounds_faults() {
        let mut gpu = Gpu::new();
        let f = vecadd();
        let tiny = gpu.mem.alloc_f64(&[1.0]).unwrap();
        let err = gpu
            .launch(
                &f,
                LaunchConfig::new(2, 32),
                &[
                    KernelArg::Buffer(tiny),
                    KernelArg::Buffer(tiny),
                    KernelArg::Buffer(tiny),
                    KernelArg::I64(64),
                ],
            )
            .unwrap_err();
        assert!(matches!(err, ExecError::Mem(_)));
    }

    /// A loop whose trip count varies per lane: checks divergence handling
    /// and reconvergence correctness.
    #[test]
    fn divergent_loop_reconverges() {
        // out[tid] = sum(0..tid)
        let mut f = Function::new(
            "tri",
            vec![Param::new("out", Type::Ptr)],
            Type::Void,
        );
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let h = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.switch_to(entry);
        let tid = b.thread_idx();
        let tid64 = b.cast(CastOp::Sext, tid, Type::I64);
        b.br(h);
        b.switch_to(h);
        let i = b.phi(Type::I64);
        let acc = b.phi(Type::I64);
        b.add_phi_incoming(i, entry, Value::imm(0i64));
        b.add_phi_incoming(acc, entry, Value::imm(0i64));
        let c = b.icmp(ICmpPred::Slt, i, tid64);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let acc1 = b.add(acc, i);
        let i1 = b.add(i, Value::imm(1i64));
        b.add_phi_incoming(i, body, i1);
        b.add_phi_incoming(acc, body, acc1);
        b.br(h);
        b.switch_to(exit);
        let po = b.gep(Value::Arg(0), tid64, 8);
        b.store(po, acc);
        b.ret(None);
        uu_ir::verify_function(&f).unwrap();

        let mut gpu = Gpu::new();
        let out = gpu.mem.alloc_i64(&vec![0i64; 32]).unwrap();
        let report = gpu
            .launch(&f, LaunchConfig::new(1, 32), &[KernelArg::Buffer(out)])
            .unwrap();
        let vals = gpu.mem.read_i64(out).unwrap();
        for t in 0..32i64 {
            assert_eq!(vals[t as usize], t * (t - 1) / 2, "lane {t}");
        }
        // Lanes exit at different iterations: the warp diverges.
        assert!(report.metrics.warp_execution_efficiency(32) < 100.0);
    }

    /// Nested divergence: diamond inside a divergent branch.
    #[test]
    fn nested_divergence_is_correct() {
        // out[tid] = tid odd ? (tid > 16 ? 3 : 2) : 1
        let mut f = Function::new("nd", vec![Param::new("out", Type::Ptr)], Type::Void);
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let odd = b.create_block();
        let big = b.create_block();
        let small = b.create_block();
        let join = b.create_block();
        let fin = b.create_block();
        b.switch_to(entry);
        let tid = b.thread_idx();
        let tid64 = b.cast(CastOp::Sext, tid, Type::I64);
        let bit = b.and(tid64, Value::imm(1i64));
        let isodd = b.icmp(ICmpPred::Ne, bit, Value::imm(0i64));
        b.cond_br(isodd, odd, fin);
        b.switch_to(odd);
        let gt = b.icmp(ICmpPred::Sgt, tid64, Value::imm(16i64));
        b.cond_br(gt, big, small);
        b.switch_to(big);
        b.br(join);
        b.switch_to(small);
        b.br(join);
        b.switch_to(join);
        let x = b.phi(Type::I64);
        b.add_phi_incoming(x, big, Value::imm(3i64));
        b.add_phi_incoming(x, small, Value::imm(2i64));
        b.br(fin);
        b.switch_to(fin);
        let y = b.phi(Type::I64);
        b.add_phi_incoming(y, entry, Value::imm(1i64));
        b.add_phi_incoming(y, join, x);
        let po = b.gep(Value::Arg(0), tid64, 8);
        b.store(po, y);
        b.ret(None);
        uu_ir::verify_function(&f).unwrap();

        let mut gpu = Gpu::new();
        let out = gpu.mem.alloc_i64(&vec![0i64; 32]).unwrap();
        gpu.launch(&f, LaunchConfig::new(1, 32), &[KernelArg::Buffer(out)])
            .unwrap();
        let vals = gpu.mem.read_i64(out).unwrap();
        for t in 0..32i64 {
            let expect = if t % 2 == 1 {
                if t > 16 {
                    3
                } else {
                    2
                }
            } else {
                1
            };
            assert_eq!(vals[t as usize], expect, "lane {t}");
        }
    }

    /// Barriers execute (timing-only) and are counted as sync instructions.
    #[test]
    fn syncthreads_counts_and_costs() {
        let mut f = Function::new("sy", vec![Param::new("out", Type::Ptr)], Type::Void);
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        b.switch_to(entry);
        let gid = b.global_thread_id();
        b.syncthreads();
        let p = b.gep(Value::Arg(0), gid, 8);
        b.store(p, gid);
        b.ret(None);
        let mut gpu = Gpu::new();
        let buf = gpu.mem.alloc_i64(&vec![0; 64]).unwrap();
        let rep = gpu
            .launch(&f, LaunchConfig::new(1, 64), &[KernelArg::Buffer(buf)])
            .unwrap();
        assert_eq!(rep.metrics.thread_sync, 64);
        assert_eq!(gpu.mem.read_i64(buf).unwrap()[63], 63);
    }

    /// f32 loads/stores round-trip with correct widths and byte accounting.
    #[test]
    fn f32_kernels_roundtrip() {
        let mut f = Function::new("f32k", vec![Param::new("a", Type::Ptr)], Type::Void);
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        b.switch_to(entry);
        let gid = b.global_thread_id();
        let p = b.gep(Value::Arg(0), gid, 4);
        let v = b.load(Type::F32, p);
        let w = b.bin(uu_ir::BinOp::FMul, v, Value::imm(2.0f32));
        b.store(p, w);
        b.ret(None);
        uu_ir::verify_function(&f).unwrap();
        let mut gpu = Gpu::new();
        let buf = gpu.mem.alloc_f32(&vec![1.5f32; 32]).unwrap();
        let rep = gpu
            .launch(&f, LaunchConfig::new(1, 32), &[KernelArg::Buffer(buf)])
            .unwrap();
        assert_eq!(gpu.mem.read_f32(buf).unwrap(), vec![3.0f32; 32]);
        assert_eq!(rep.metrics.gld_bytes, 32 * 4);
        assert_eq!(rep.metrics.gst_bytes, 32 * 4);
        // 32 lanes x 4 bytes = 128 bytes = 4 sectors per access.
        assert_eq!(rep.metrics.mem_transactions, 8);
    }

    #[test]
    fn runaway_loop_hits_step_budget() {
        let mut f = Function::new("inf", vec![], Type::Void);
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let h = b.create_block();
        b.switch_to(entry);
        b.br(h);
        b.switch_to(h);
        b.br(h);
        let mut params = GpuParams::default();
        params.max_warp_insts = 10_000;
        let mut gpu = Gpu::with_params(params);
        let err = gpu.launch(&f, LaunchConfig::new(1, 32), &[]).unwrap_err();
        assert_eq!(err, ExecError::StepBudgetExceeded { budget: 10_000 });
    }

    #[test]
    fn coalesced_vs_strided_transactions() {
        // Strided access (stride 8 elements) touches 8x the sectors of a
        // unit-stride access.
        fn kernel(stride: i64) -> Function {
            let mut f = Function::new("st", vec![Param::new("a", Type::Ptr)], Type::Void);
            let entry = f.entry();
            let mut b = FunctionBuilder::new(&mut f);
            b.switch_to(entry);
            let gid = b.global_thread_id();
            let idx = b.mul(gid, Value::imm(stride));
            let pa = b.gep(Value::Arg(0), idx, 8);
            let v = b.load(Type::F64, pa);
            let v2 = b.fadd(v, Value::imm(1.0f64));
            b.store(pa, v2);
            b.ret(None);
            f
        }
        let mut gpu = Gpu::new();
        let buf = gpu.mem.alloc_f64(&vec![0.0; 32 * 8]).unwrap();
        let r1 = gpu
            .launch(&kernel(1), LaunchConfig::new(1, 32), &[KernelArg::Buffer(buf)])
            .unwrap();
        let r8 = gpu
            .launch(&kernel(8), LaunchConfig::new(1, 32), &[KernelArg::Buffer(buf)])
            .unwrap();
        assert_eq!(r8.metrics.mem_transactions, 4 * r1.metrics.mem_transactions);
    }
}

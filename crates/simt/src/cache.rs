//! Cross-launch decode cache and launch scratch pool.
//!
//! Sweeps launch the same compiled kernel hundreds of times across
//! workload sizes, repeats, and measurement phases, and until this cache
//! existed every launch re-ran the post-dominator tree, the uniformity
//! analysis, and [`DecodedKernel::decode`] from scratch. Decoding is a
//! pure function of the kernel body and the baked-in argument constants,
//! so the cache is **content-addressed**: the key is a stable FNV-1a
//! structural fingerprint of the function (blocks, instructions, operands
//! — including `InstId` indices, which error identities reference) plus
//! the encoded constants. That is the whole invalidation story — a
//! mutated or newly built function hashes differently and simply misses;
//! there is nothing to invalidate explicitly. Collisions are guarded by
//! also keying on the instruction/block counts and the full constant
//! vector, so a 64-bit hash collision additionally has to agree on all of
//! those.
//!
//! The cache is thread-local (`uu-par` workers each keep their own), so
//! no locking touches the launch path and parallel determinism is
//! unaffected — a cached kernel is bit-identical to a fresh decode, which
//! the differential tests pin. A bounded capacity with wholesale clear
//! keeps a pathological many-kernel workload from accumulating without
//! bound.
//!
//! The same module pools the per-launch [`Scratch`] and [`SectorSet`] so
//! steady-state launches allocate nothing before the first warp runs.

use crate::decode::{encode, DecodedKernel, Scratch};
use crate::memory::SectorSet;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use uu_analysis::{PostDomTree, Uniformity};
use uu_ir::hash::{fnv1a, fnv1a_continue};
use uu_ir::{Constant, Function, InstKind, Value};

/// Cached decodes before the cache is wholesale-cleared. Sized well above
/// the evaluation suite's kernel-variant count; the clear is only a
/// backstop against unbounded kernel churn.
const CACHE_CAP: usize = 192;

/// Content-addressed cache key. `hash` covers the function structure;
/// the remaining fields make accidental collisions require agreement on
/// the shape and every baked-in constant as well.
#[derive(PartialEq, Eq, Hash)]
struct Key {
    hash: u64,
    blocks: u32,
    insts: u32,
    consts: Vec<(u8, u64)>,
}

#[derive(Default)]
struct DecodeCache {
    map: HashMap<Key, Rc<DecodedKernel>>,
    hits: u64,
    misses: u64,
}

/// Pooled per-launch mutable state.
pub(crate) struct LaunchScratch {
    pub scratch: Scratch,
    pub touched: SectorSet,
}

thread_local! {
    static CACHE: RefCell<DecodeCache> = RefCell::new(DecodeCache::default());
    static POOL: RefCell<Vec<LaunchScratch>> = const { RefCell::new(Vec::new()) };
}

#[inline]
fn h64(h: u64, v: u64) -> u64 {
    fnv1a_continue(h, &v.to_le_bytes())
}

fn hash_value(mut h: u64, v: Value) -> u64 {
    match v {
        Value::Inst(id) => {
            h = h64(h, 1);
            h64(h, id.index() as u64)
        }
        Value::Arg(i) => {
            h = h64(h, 2);
            h64(h, i as u64)
        }
        Value::Const(c) => {
            h = h64(h, 3);
            let (tag, bits) = encode(c);
            h = h64(h, tag as u64);
            h64(h, bits)
        }
    }
}

/// Structural fingerprint of `f`: everything [`DecodedKernel::decode`]
/// reads. Returns the hash plus the linked-instruction count.
fn fingerprint(f: &Function) -> (u64, u32) {
    let mut h = fnv1a(f.name().as_bytes());
    h = h64(h, f.entry().index() as u64);
    h = h64(h, f.num_inst_slots() as u64);
    let mut ninsts = 0u32;
    for &b in f.layout() {
        h = h64(h, b.index() as u64);
        for &id in &f.block(b).insts {
            ninsts += 1;
            let inst = f.inst(id);
            h = h64(h, id.index() as u64);
            h = h64(h, inst.ty as u64);
            match &inst.kind {
                InstKind::Bin { op, lhs, rhs } => {
                    h = h64(h, 10);
                    h = h64(h, *op as u64);
                    h = hash_value(h, *lhs);
                    h = hash_value(h, *rhs);
                }
                InstKind::ICmp { pred, lhs, rhs } => {
                    h = h64(h, 11);
                    h = h64(h, *pred as u64);
                    h = hash_value(h, *lhs);
                    h = hash_value(h, *rhs);
                }
                InstKind::FCmp { pred, lhs, rhs } => {
                    h = h64(h, 12);
                    h = h64(h, *pred as u64);
                    h = hash_value(h, *lhs);
                    h = hash_value(h, *rhs);
                }
                InstKind::Select {
                    cond,
                    on_true,
                    on_false,
                } => {
                    h = h64(h, 13);
                    h = hash_value(h, *cond);
                    h = hash_value(h, *on_true);
                    h = hash_value(h, *on_false);
                }
                InstKind::Cast { op, value } => {
                    h = h64(h, 14);
                    h = h64(h, *op as u64);
                    h = hash_value(h, *value);
                }
                InstKind::Load { ptr } => {
                    h = h64(h, 15);
                    h = hash_value(h, *ptr);
                }
                InstKind::Store { ptr, value } => {
                    h = h64(h, 16);
                    h = hash_value(h, *ptr);
                    h = hash_value(h, *value);
                }
                InstKind::Gep { base, index, scale } => {
                    h = h64(h, 17);
                    h = hash_value(h, *base);
                    h = hash_value(h, *index);
                    h = h64(h, *scale);
                }
                InstKind::Phi { incomings } => {
                    h = h64(h, 18);
                    h = h64(h, incomings.len() as u64);
                    for (pb, v) in incomings {
                        h = h64(h, pb.index() as u64);
                        h = hash_value(h, *v);
                    }
                }
                InstKind::Intr { which, args } => {
                    h = h64(h, 19);
                    h = h64(h, *which as u64);
                    h = h64(h, args.len() as u64);
                    for a in args {
                        h = hash_value(h, *a);
                    }
                }
                InstKind::Br { target } => {
                    h = h64(h, 20);
                    h = h64(h, target.index() as u64);
                }
                InstKind::CondBr {
                    cond,
                    if_true,
                    if_false,
                } => {
                    h = h64(h, 21);
                    h = hash_value(h, *cond);
                    h = h64(h, if_true.index() as u64);
                    h = h64(h, if_false.index() as u64);
                }
                InstKind::Ret { value } => {
                    h = h64(h, 22);
                    match value {
                        Some(v) => {
                            h = h64(h, 1);
                            h = hash_value(h, *v);
                        }
                        None => h = h64(h, 0),
                    }
                }
            }
        }
    }
    (h, ninsts)
}

/// Decode `f` with the launch constants `args`, reusing a cached decode
/// when an identical (function, constants) pair was launched before on
/// this thread. A hit returns the exact same lowering a fresh
/// [`DecodedKernel::decode`] would produce — decoding is deterministic in
/// the hashed inputs — so cached and fresh launches are observationally
/// identical.
pub fn decode_cached(f: &Function, args: &[Constant]) -> Rc<DecodedKernel> {
    let (hash, ninsts) = fingerprint(f);
    let key = Key {
        hash,
        blocks: f.layout().len() as u32,
        insts: ninsts,
        consts: args.iter().map(|c| encode(*c)).collect(),
    };
    CACHE.with(|c| {
        let mut c = c.borrow_mut();
        if let Some(k) = c.map.get(&key).map(Rc::clone) {
            c.hits += 1;
            return k;
        }
        c.misses += 1;
        let pdom = PostDomTree::compute(f);
        let uni = Uniformity::compute(f);
        let k = Rc::new(DecodedKernel::decode(f, &pdom, &uni, args));
        if c.map.len() >= CACHE_CAP {
            c.map.clear();
        }
        c.map.insert(key, Rc::clone(&k));
        k
    })
}

/// Drop every cached decode on this thread (mainly for tests and
/// memory-sensitive embedders; correctness never requires it).
pub fn decode_cache_clear() {
    CACHE.with(|c| {
        let mut c = c.borrow_mut();
        c.map.clear();
        c.hits = 0;
        c.misses = 0;
    });
}

/// This thread's decode-cache `(hits, misses)` counters.
pub fn decode_cache_stats() -> (u64, u64) {
    CACHE.with(|c| {
        let c = c.borrow();
        (c.hits, c.misses)
    })
}

/// Take a pooled launch scratch (or a fresh one on first use).
pub(crate) fn take_launch_scratch() -> LaunchScratch {
    POOL.with(|p| p.borrow_mut().pop()).unwrap_or_else(|| LaunchScratch {
        scratch: Scratch::new(),
        touched: SectorSet::new(),
    })
}

/// Return a launch scratch to the pool for the next launch.
pub(crate) fn put_launch_scratch(ls: LaunchScratch) {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        if p.len() < 8 {
            p.push(ls);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use uu_ir::{FunctionBuilder, Param, Type};

    fn sample(n: i64) -> Function {
        let mut f = Function::new(
            "k",
            vec![Param::new("out", Type::Ptr)],
            Type::Void,
        );
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        b.switch_to(entry);
        let gid = b.global_thread_id();
        let s = b.add(gid, Value::imm(n));
        let p = b.gep(Value::Arg(0), s, 8);
        b.store(p, s);
        b.ret(None);
        f
    }

    #[test]
    fn identical_functions_hit_distinct_functions_miss() {
        decode_cache_clear();
        let args = [Constant::I64(4096)];
        let k1 = decode_cached(&sample(1), &args);
        let k2 = decode_cached(&sample(1), &args);
        // Same content, different Function allocations: one decode.
        assert_eq!(decode_cache_stats(), (1, 1));
        assert_eq!(format!("{k1:?}"), format!("{k2:?}"));
        // Different body → miss.
        decode_cached(&sample(2), &args);
        assert_eq!(decode_cache_stats(), (1, 2));
        // Same body, different baked-in constants → miss.
        decode_cached(&sample(1), &[Constant::I64(8192)]);
        assert_eq!(decode_cache_stats(), (1, 3));
        decode_cache_clear();
    }

    #[test]
    fn cached_decode_equals_fresh_decode() {
        decode_cache_clear();
        let f = sample(3);
        let args = [Constant::I64(64)];
        let cached = decode_cached(&f, &args);
        let pdom = PostDomTree::compute(&f);
        let uni = Uniformity::compute(&f);
        let fresh = DecodedKernel::decode(&f, &pdom, &uni, &args);
        assert_eq!(format!("{cached:?}"), format!("{fresh:?}"));
        decode_cache_clear();
    }
}

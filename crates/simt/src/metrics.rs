//! nvprof-style hardware counters.

/// Instruction classes, following nvprof's grouping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstClass {
    /// Integer and floating point arithmetic, comparisons, math intrinsics.
    Arith,
    /// Control flow: branches and returns.
    Control,
    /// Global loads.
    Load,
    /// Global stores.
    Store,
    /// Miscellaneous data movement: selects (`selp`), casts, phi-lowered
    /// moves — the class the paper's §V shows u&u slashing (−55% on
    /// XSBench, −77% on rainflow).
    Misc,
    /// Barriers.
    Sync,
}

/// Aggregated counters for one kernel launch (or a sum over launches).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Metrics {
    /// Thread-level executed instructions per class (counting active lanes).
    pub thread_arith: u64,
    /// Thread-level control-flow instructions (`inst_control`).
    pub thread_control: u64,
    /// Thread-level global loads.
    pub thread_load: u64,
    /// Thread-level global stores.
    pub thread_store: u64,
    /// Thread-level miscellaneous/data-movement instructions (`inst_misc`).
    pub thread_misc: u64,
    /// Thread-level barriers.
    pub thread_sync: u64,
    /// Warp-level issued instructions.
    pub warp_insts: u64,
    /// Sum of active lanes over all warp-level issues (for
    /// `warp_execution_efficiency`).
    pub active_lane_sum: u64,
    /// Global memory transactions (L1/coalescing level).
    pub mem_transactions: u64,
    /// Distinct memory sectors touched during the launch — the DRAM-level
    /// traffic once the cache has absorbed re-references.
    pub dram_sectors: u64,
    /// Bytes read from global memory by loads.
    pub gld_bytes: u64,
    /// Bytes written to global memory by stores.
    pub gst_bytes: u64,
    /// Cycles attributed to instruction-fetch stalls.
    pub fetch_stall_cycles: u64,
    /// Cycles attributed to exposed memory latency.
    pub mem_stall_cycles: u64,
    /// Total issue cycles (before dividing across concurrent warps).
    pub issue_cycles: u64,
    /// Final kernel cycles (after latency hiding across warps).
    pub kernel_cycles: u64,
    /// Number of warps launched.
    pub warps: u64,
}

impl Metrics {
    /// Add a thread-level execution of class `c` with `lanes` active lanes.
    pub fn count(&mut self, c: InstClass, lanes: u32) {
        let l = lanes as u64;
        match c {
            InstClass::Arith => self.thread_arith += l,
            InstClass::Control => self.thread_control += l,
            InstClass::Load => self.thread_load += l,
            InstClass::Store => self.thread_store += l,
            InstClass::Misc => self.thread_misc += l,
            InstClass::Sync => self.thread_sync += l,
        }
        self.warp_insts += 1;
        self.active_lane_sum += l;
    }

    /// Total thread-level instructions.
    pub fn thread_insts(&self) -> u64 {
        self.thread_arith
            + self.thread_control
            + self.thread_load
            + self.thread_store
            + self.thread_misc
            + self.thread_sync
    }

    /// nvprof `warp_execution_efficiency`: average active lanes per issued
    /// warp instruction over the warp width, as a percentage.
    pub fn warp_execution_efficiency(&self, warp_size: u32) -> f64 {
        if self.warp_insts == 0 {
            return 100.0;
        }
        100.0 * self.active_lane_sum as f64 / (self.warp_insts as f64 * warp_size as f64)
    }

    /// Instructions (warp-level) per cycle.
    pub fn ipc(&self) -> f64 {
        if self.kernel_cycles == 0 {
            return 0.0;
        }
        self.warp_insts as f64 / self.kernel_cycles as f64
    }

    /// Fraction of cycles stalled on instruction fetch, as a percentage
    /// (nvprof `stall_inst_fetch`).
    pub fn stall_inst_fetch(&self) -> f64 {
        if self.issue_cycles + self.fetch_stall_cycles == 0 {
            return 0.0;
        }
        100.0 * self.fetch_stall_cycles as f64
            / (self.issue_cycles + self.fetch_stall_cycles + self.mem_stall_cycles) as f64
    }

    /// Global load throughput in GB/s given the clock.
    pub fn gld_throughput_gbs(&self, clock_ghz: f64) -> f64 {
        if self.kernel_cycles == 0 {
            return 0.0;
        }
        let seconds = self.kernel_cycles as f64 / (clock_ghz * 1e9);
        self.gld_bytes as f64 / seconds / 1e9
    }

    /// Merge counters from another launch.
    pub fn merge(&mut self, other: &Metrics) {
        self.thread_arith += other.thread_arith;
        self.thread_control += other.thread_control;
        self.thread_load += other.thread_load;
        self.thread_store += other.thread_store;
        self.thread_misc += other.thread_misc;
        self.thread_sync += other.thread_sync;
        self.warp_insts += other.warp_insts;
        self.active_lane_sum += other.active_lane_sum;
        self.mem_transactions += other.mem_transactions;
        self.dram_sectors += other.dram_sectors;
        self.gld_bytes += other.gld_bytes;
        self.gst_bytes += other.gst_bytes;
        self.fetch_stall_cycles += other.fetch_stall_cycles;
        self.mem_stall_cycles += other.mem_stall_cycles;
        self.issue_cycles += other.issue_cycles;
        self.kernel_cycles += other.kernel_cycles;
        self.warps += other.warps;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_derived_metrics() {
        let mut m = Metrics::default();
        m.count(InstClass::Arith, 32);
        m.count(InstClass::Misc, 16);
        m.count(InstClass::Control, 32);
        assert_eq!(m.thread_insts(), 80);
        assert_eq!(m.warp_insts, 3);
        let eff = m.warp_execution_efficiency(32);
        assert!((eff - 100.0 * 80.0 / 96.0).abs() < 1e-9);
        m.kernel_cycles = 6;
        assert!((m.ipc() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stall_and_throughput() {
        let mut m = Metrics::default();
        m.issue_cycles = 80;
        m.fetch_stall_cycles = 20;
        assert!((m.stall_inst_fetch() - 20.0).abs() < 1e-9);
        m.gld_bytes = 1_000_000_000;
        m.kernel_cycles = 1_000_000_000;
        // 1 GB in (1e9 cycles / 1 GHz) = 1 second → 1 GB/s.
        assert!((m.gld_throughput_gbs(1.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = Metrics::default();
        a.count(InstClass::Load, 32);
        a.gld_bytes = 100;
        let mut b = Metrics::default();
        b.count(InstClass::Load, 16);
        b.gld_bytes = 50;
        a.merge(&b);
        assert_eq!(a.thread_load, 48);
        assert_eq!(a.gld_bytes, 150);
        assert_eq!(a.warp_insts, 2);
    }

    #[test]
    fn empty_metrics_are_benign() {
        let m = Metrics::default();
        assert_eq!(m.warp_execution_efficiency(32), 100.0);
        assert_eq!(m.ipc(), 0.0);
        assert_eq!(m.stall_inst_fetch(), 0.0);
        assert_eq!(m.gld_throughput_gbs(1.0), 0.0);
    }
}

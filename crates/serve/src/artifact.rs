//! On-disk artifact serialization: a small line-oriented text format,
//! versioned and strictly parsed.
//!
//! Every field a cached compile must reproduce byte-identically is stored
//! losslessly: integers in decimal, floats as their IEEE-754 bit patterns
//! in hex (a `f64 → text → f64` round trip through decimal formatting
//! would not be exact), strings with `\n`/`\\` escaping. Parsing is
//! `Option`-based and total — a truncated, corrupted or version-skewed
//! artifact loads as `None` and the cache treats it as a miss.

use uu_core::Rung;
use uu_simt::Metrics;

/// Artifact format version; bump on any layout change.
pub const ARTIFACT_VERSION: u32 = 1;

/// The compile-side metadata every cached artifact carries — exactly the
/// fields the harness derives a [`Measurement`]'s compile half from.
///
/// [`Measurement`]: https://docs.rs/uu-harness
#[derive(Debug, Clone, PartialEq)]
pub struct CompileMeta {
    /// Modeled compile work (deterministic clock units).
    pub work: u64,
    /// Whether the compile hit its work-budget timeout.
    pub timed_out: bool,
    /// Degradation-ladder rung the compile landed on.
    pub rung: Rung,
    /// Contained-failure summary (empty when clean).
    pub diag: String,
    /// Lowered code size of the optimized module.
    pub code_size: u64,
}

/// The run-side record of a measured execution (hot sweep points): the
/// simulator outputs a warm cache can serve without re-simulating.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Total kernel time (simulated ms, already repeat-scaled).
    pub time_ms: f64,
    /// Output checksum (the miscompile oracle).
    pub checksum: f64,
    /// Host↔device transfer time.
    pub transfer_ms: f64,
    /// Aggregated hardware counters.
    pub metrics: Metrics,
}

/// A cache artifact: compile metadata plus either the optimized module
/// text (compile artifacts) or a measured run record (measure artifacts).
#[derive(Debug, Clone, PartialEq)]
pub enum Artifact {
    /// An optimized module: metadata + printed IR.
    Compile {
        /// Compile metadata.
        meta: CompileMeta,
        /// The optimized module, printed.
        ir: String,
    },
    /// A measured execution: metadata + run outputs (no IR needed — the
    /// sweep only consumes the numbers).
    Run {
        /// Compile metadata.
        meta: CompileMeta,
        /// Simulator outputs.
        run: RunRecord,
    },
}

impl Artifact {
    /// The compile metadata of either artifact kind.
    pub fn meta(&self) -> &CompileMeta {
        match self {
            Artifact::Compile { meta, .. } | Artifact::Run { meta, .. } => meta,
        }
    }

    /// Serialize to the on-disk text format.
    pub fn encode(&self) -> String {
        let mut s = format!("uu-artifact v{ARTIFACT_VERSION}\n");
        let meta = self.meta();
        s.push_str(&format!(
            "kind {}\n",
            match self {
                Artifact::Compile { .. } => "compile",
                Artifact::Run { .. } => "run",
            }
        ));
        s.push_str(&format!("work {}\n", meta.work));
        s.push_str(&format!("timed-out {}\n", u8::from(meta.timed_out)));
        s.push_str(&format!("rung {}\n", meta.rung.as_str()));
        s.push_str(&format!("code-size {}\n", meta.code_size));
        s.push_str(&format!("diag {}\n", escape(&meta.diag)));
        match self {
            Artifact::Compile { ir, .. } => {
                s.push_str(&format!("ir-fnv {:016x}\n", uu_ir::fnv1a(ir.as_bytes())));
                s.push_str("---\n");
                s.push_str(ir);
            }
            Artifact::Run { run, .. } => {
                s.push_str(&format!("time-ms {:016x}\n", run.time_ms.to_bits()));
                s.push_str(&format!("checksum {:016x}\n", run.checksum.to_bits()));
                s.push_str(&format!("transfer-ms {:016x}\n", run.transfer_ms.to_bits()));
                s.push_str(&format!("metrics {}\n", encode_metrics(&run.metrics)));
            }
        }
        s
    }

    /// Parse the on-disk format; `None` on any anomaly (wrong version,
    /// missing field, bad integer, IR hash mismatch).
    pub fn decode(text: &str) -> Option<Artifact> {
        let (head, ir) = match text.split_once("---\n") {
            Some((h, ir)) => (h, Some(ir)),
            None => (text, None),
        };
        let mut lines = head.lines();
        if lines.next()? != format!("uu-artifact v{ARTIFACT_VERSION}") {
            return None;
        }
        let mut field = |name: &str| -> Option<String> {
            let l = lines.next()?;
            Some(l.strip_prefix(name)?.strip_prefix(' ').unwrap_or("").to_string())
        };
        let kind = field("kind")?;
        let work: u64 = field("work")?.parse().ok()?;
        let timed_out = match field("timed-out")?.as_str() {
            "0" => false,
            "1" => true,
            _ => return None,
        };
        let rung = Rung::from_str(&field("rung")?)?;
        let code_size: u64 = field("code-size")?.parse().ok()?;
        let diag = unescape(&field("diag")?)?;
        let meta = CompileMeta {
            work,
            timed_out,
            rung,
            diag,
            code_size,
        };
        match kind.as_str() {
            "compile" => {
                let stored_fnv = u64::from_str_radix(&field("ir-fnv")?, 16).ok()?;
                let ir = ir?.to_string();
                if uu_ir::fnv1a(ir.as_bytes()) != stored_fnv {
                    return None; // truncated or corrupted artifact body
                }
                Some(Artifact::Compile { meta, ir })
            }
            "run" => {
                let bits = |s: String| u64::from_str_radix(&s, 16).ok().map(f64::from_bits);
                let time_ms = bits(field("time-ms")?)?;
                let checksum = bits(field("checksum")?)?;
                let transfer_ms = bits(field("transfer-ms")?)?;
                let metrics = decode_metrics(&field("metrics")?)?;
                Some(Artifact::Run {
                    meta,
                    run: RunRecord {
                        time_ms,
                        checksum,
                        transfer_ms,
                        metrics,
                    },
                })
            }
            _ => None,
        }
    }
}

/// Escape a string to a single line (`\n`/`\\`), losslessly. Shared by
/// the artifact format and the wire protocol's `diag` header — both are
/// line-oriented, and both must round-trip multi-line diagnostics
/// byte-identically.
pub(crate) fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Invert [`escape`]; `None` on a dangling or unknown escape.
pub(crate) fn unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next()? {
                'n' => out.push('\n'),
                '\\' => out.push('\\'),
                _ => return None,
            }
        } else {
            out.push(c);
        }
    }
    Some(out)
}

/// Exhaustive field destructuring: adding a counter to [`Metrics`]
/// without updating this serialization is a compile error, not a silent
/// cache corruption.
fn encode_metrics(m: &Metrics) -> String {
    let Metrics {
        thread_arith,
        thread_control,
        thread_load,
        thread_store,
        thread_misc,
        thread_sync,
        warp_insts,
        active_lane_sum,
        mem_transactions,
        dram_sectors,
        gld_bytes,
        gst_bytes,
        fetch_stall_cycles,
        mem_stall_cycles,
        issue_cycles,
        kernel_cycles,
        warps,
    } = *m;
    [
        thread_arith,
        thread_control,
        thread_load,
        thread_store,
        thread_misc,
        thread_sync,
        warp_insts,
        active_lane_sum,
        mem_transactions,
        dram_sectors,
        gld_bytes,
        gst_bytes,
        fetch_stall_cycles,
        mem_stall_cycles,
        issue_cycles,
        kernel_cycles,
        warps,
    ]
    .map(|v| v.to_string())
    .join(" ")
}

fn decode_metrics(s: &str) -> Option<Metrics> {
    let vals: Vec<u64> = s
        .split(' ')
        .map(|t| t.parse::<u64>().ok())
        .collect::<Option<Vec<_>>>()?;
    let [thread_arith, thread_control, thread_load, thread_store, thread_misc, thread_sync, warp_insts, active_lane_sum, mem_transactions, dram_sectors, gld_bytes, gst_bytes, fetch_stall_cycles, mem_stall_cycles, issue_cycles, kernel_cycles, warps] =
        vals.as_slice()
    else {
        return None;
    };
    Some(Metrics {
        thread_arith: *thread_arith,
        thread_control: *thread_control,
        thread_load: *thread_load,
        thread_store: *thread_store,
        thread_misc: *thread_misc,
        thread_sync: *thread_sync,
        warp_insts: *warp_insts,
        active_lane_sum: *active_lane_sum,
        mem_transactions: *mem_transactions,
        dram_sectors: *dram_sectors,
        gld_bytes: *gld_bytes,
        gst_bytes: *gst_bytes,
        fetch_stall_cycles: *fetch_stall_cycles,
        mem_stall_cycles: *mem_stall_cycles,
        issue_cycles: *issue_cycles,
        kernel_cycles: *kernel_cycles,
        warps: *warps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> CompileMeta {
        CompileMeta {
            work: 4321,
            timed_out: false,
            rung: Rung::NoTransform,
            diag: "uu#0@k: panic: boom\nsecond \\ line".to_string(),
            code_size: 99,
        }
    }

    #[test]
    fn compile_artifact_round_trips() {
        let a = Artifact::Compile {
            meta: meta(),
            ir: "; module t\nfn @k() -> void {\nbb0:\n  ret void\n}\n".to_string(),
        };
        assert_eq!(Artifact::decode(&a.encode()), Some(a));
    }

    #[test]
    fn run_artifact_round_trips_floats_exactly() {
        let mut metrics = Metrics::default();
        metrics.thread_arith = 7;
        metrics.kernel_cycles = u64::MAX;
        let a = Artifact::Run {
            meta: meta(),
            run: RunRecord {
                time_ms: 0.1 + 0.2, // a value decimal text would mangle
                checksum: -0.0,
                transfer_ms: f64::MIN_POSITIVE,
                metrics,
            },
        };
        let b = Artifact::decode(&a.encode()).unwrap();
        let (Artifact::Run { run: ra, .. }, Artifact::Run { run: rb, .. }) = (&a, &b) else {
            panic!("kind changed in round trip");
        };
        assert_eq!(ra.time_ms.to_bits(), rb.time_ms.to_bits());
        assert_eq!(ra.checksum.to_bits(), rb.checksum.to_bits());
        assert_eq!(ra.transfer_ms.to_bits(), rb.transfer_ms.to_bits());
        assert_eq!(ra.metrics, rb.metrics);
    }

    #[test]
    fn corrupted_artifacts_decode_to_none() {
        let a = Artifact::Compile {
            meta: meta(),
            ir: "fn @k() -> void {\nbb0:\n  ret void\n}\n".to_string(),
        };
        let good = a.encode();
        // Truncation, body corruption, version skew, field damage: all miss.
        assert_eq!(Artifact::decode(&good[..good.len() / 2]), None);
        assert_eq!(Artifact::decode(&good.replace("ret void", "ret vold")), None);
        assert_eq!(Artifact::decode(&good.replace("uu-artifact v1", "uu-artifact v0")), None);
        assert_eq!(Artifact::decode(&good.replace("work 4321", "work lots")), None);
        assert_eq!(Artifact::decode(&good.replace("rung no-transform", "rung r5")), None);
        assert_eq!(Artifact::decode(""), None);
    }
}

//! The compile-service daemon: a bounded worker pool accepting framed
//! requests concurrently, compiling through the guarded pipeline via the
//! cache, answering with optimized IR + rung + metrics — and degrading
//! gracefully under overload, damage and injected faults.
//!
//! Request verbs:
//!
//! * `compile` — headers `config: <name>` (required, see
//!   [`crate::config`]), `fault: <spec>` (optional [`FaultPlan`] for
//!   drills), `want-module: 0|1` (default 1), `filter-func` +
//!   `filter-loop` (optional loop selection, both or neither),
//!   `timeout-ms: <n>` (optional per-request deadline on the
//!   deterministic work clock, capped at the service's own limit); body
//!   = module text. Response `ok` carries `cached: hit|miss`, `rung`,
//!   `work`, `timed-out`, `code-size`, `key`, `diag` headers and the
//!   optimized module as the body.
//! * `stats` — response body is the cache's [`CacheStats`] JSON.
//! * `ping` — liveness probe.
//! * `health` — liveness plus gauges (`workers`, `inflight`, `draining`).
//! * `ready` — readiness probe: `ready: 1` while accepting, `0` once
//!   draining.
//! * `shutdown` — acknowledge, stop accepting, finish in-flight
//!   requests, then exit (graceful drain).
//!
//! ## Overload & fault behaviour
//!
//! Admission control: at most [`ServeOptions::inflight`] compile
//! requests run at once; excess requests are shed immediately with a
//! `busy` response carrying a `retry-after-ms` hint (clients back off
//! and retry — see [`crate::backoff`]). Control verbs are never shed.
//!
//! Every compile runs under `catch_unwind` *in addition to* the
//! pipeline's own pass guards: a panic that escapes anywhere in request
//! handling produces an `error` response (marked `transient: 1` so
//! clients may retry) and the daemon keeps serving. A module whose
//! requests panic [`ServeOptions::breaker_k`] times is quarantined by
//! the crash-loop circuit breaker: further requests for it are refused
//! with a `quarantined: 1` error instead of a fourth recompile.
//!
//! Damaged frames (oversized, non-UTF-8, malformed) get a structured
//! `error` response and the connection resynchronizes where possible
//! (see [`crate::proto::read_frame_lenient`]) instead of dying.
//!
//! Deterministic service-level faults (`UU_SERVE_FAULT`, see
//! [`crate::fault`]) inject torn response frames, mid-request
//! disconnects, slow handlers, handler panics and disk-full cache
//! writes, so every one of those recovery paths is exercised in CI
//! rather than hoped for.
//!
//! [`CacheStats`]: crate::stats::CacheStats

use std::io::{self, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::cache::CompileCache;
use crate::config::{config_names, parse_config};
use crate::fault::{ServeFaultKind, ServeFaultPlan};
use crate::proto::{read_frame_lenient, write_frame, Message};
use uu_core::{FaultPlan, LoopFilter, PipelineOptions};
use uu_par::{run_crew, TaskQueue};

/// Work-clock budget for service compiles — the same budget the batch
/// harness uses, so daemon and sweep share cache artifacts for the same
/// `(module, config)`.
pub const SERVICE_COMPILE_TIMEOUT: Duration = Duration::from_secs(20);

/// Tunables for the concurrent service. Every knob has a `UU_SERVE_*`
/// environment variable (see [`ServeOptions::from_env`]).
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker threads handling connections (`UU_SERVE_WORKERS`).
    pub workers: usize,
    /// Maximum concurrently-running compile requests before admission
    /// control sheds load with `busy` (`UU_SERVE_INFLIGHT`; defaults to
    /// `workers`).
    pub inflight: usize,
    /// Handler panics per module hash before the circuit breaker
    /// quarantines it (`UU_SERVE_BREAKER`).
    pub breaker_k: u32,
    /// Consecutive accept failures tolerated before the daemon gives up
    /// with a clean nonzero exit (`UU_SERVE_ACCEPT_RETRIES`).
    pub accept_retries: u32,
    /// Per-request deadline cap in milliseconds on the deterministic
    /// work clock (`UU_SERVE_TIMEOUT_MS`); a request's own `timeout-ms`
    /// header may lower but never raise it.
    pub timeout_ms: u64,
    /// Deterministic service fault plan (`UU_SERVE_FAULT`).
    pub fault: Option<ServeFaultPlan>,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            workers: 4,
            inflight: 4,
            breaker_k: 3,
            accept_retries: 8,
            timeout_ms: SERVICE_COMPILE_TIMEOUT.as_millis() as u64,
            fault: None,
        }
    }
}

/// Parse a `UU_SERVE_*` numeric knob: a positive integer.
///
/// # Panics
///
/// Panics on zero or non-integer input, mirroring `UU_JOBS` and the
/// other `UU_*` knobs: a typo'd knob must fail loudly, not silently
/// fall back and skew a drill.
fn env_knob(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Ok(v) if !v.trim().is_empty() => match v.trim().parse::<u64>() {
            Ok(n) if n >= 1 => n,
            _ => panic!("{name} must be a positive integer, got {v:?}"),
        },
        _ => default,
    }
}

impl ServeOptions {
    /// Read every knob from the environment, defaulting as documented on
    /// the fields.
    pub fn from_env() -> ServeOptions {
        let d = ServeOptions::default();
        let workers = env_knob("UU_SERVE_WORKERS", d.workers as u64) as usize;
        ServeOptions {
            workers,
            inflight: env_knob("UU_SERVE_INFLIGHT", workers as u64) as usize,
            breaker_k: env_knob("UU_SERVE_BREAKER", d.breaker_k as u64) as u32,
            accept_retries: env_knob("UU_SERVE_ACCEPT_RETRIES", d.accept_retries as u64) as u32,
            timeout_ms: env_knob("UU_SERVE_TIMEOUT_MS", d.timeout_ms),
            fault: ServeFaultPlan::from_env(),
        }
    }
}

/// How a worker should answer one request.
enum Reply {
    /// Write the response frame and keep the connection.
    Send(Message),
    /// Write a deliberately truncated response frame, then close the
    /// connection (the `torn` fault).
    Torn(Message),
    /// Close the connection without any response (the `disconnect`
    /// fault).
    Hangup,
}

/// The shared state of one daemon: cache, tunables, admission gauge,
/// fault clock, drain flag and the crash-loop breaker. All methods take
/// `&self`; one `Service` is shared by every worker thread.
pub struct Service<'a> {
    cache: &'a CompileCache,
    opts: ServeOptions,
    /// Compile requests currently being handled (the admission gauge).
    inflight: AtomicUsize,
    /// Admitted compile requests so far — the index the fault plan and
    /// drills key on, deterministic in admission order.
    admitted: AtomicU64,
    draining: AtomicBool,
    /// Handler-panic counts per module hash (FNV-1a over the request
    /// body). A count reaching `breaker_k` quarantines the module.
    breaker: Mutex<std::collections::BTreeMap<u64, u32>>,
}

impl<'a> Service<'a> {
    /// A service over `cache` with the given tunables.
    pub fn new(cache: &'a CompileCache, opts: ServeOptions) -> Service<'a> {
        Service {
            cache,
            opts,
            inflight: AtomicUsize::new(0),
            admitted: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            breaker: Mutex::new(std::collections::BTreeMap::new()),
        }
    }

    /// The tunables this service runs with.
    pub fn options(&self) -> &ServeOptions {
        &self.opts
    }

    /// Whether a `shutdown` has been requested (the accept loop stops
    /// admitting new connections once this is set; in-flight work still
    /// completes — drain, not abort).
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Serve one framed stream until EOF, a fatal frame defect, an
    /// injected connection fault, or a `shutdown` request. Returns
    /// `true` if shutdown was requested.
    pub fn serve_conn(&self, r: &mut impl Read, w: &mut impl Write) -> io::Result<bool> {
        loop {
            match read_frame_lenient(r)? {
                None => return Ok(false),
                Some(Err(defect)) => {
                    self.cache.stats_mut(|s| s.frame_defects += 1);
                    write_frame(w, &error(&defect.describe()))?;
                    if !defect.recoverable() {
                        return Ok(false);
                    }
                }
                Some(Ok(req)) => {
                    let shutdown = req.verb == "shutdown";
                    match self.respond(&req) {
                        Reply::Send(resp) => {
                            write_frame(w, &resp)?;
                            if shutdown {
                                return Ok(true);
                            }
                        }
                        Reply::Torn(resp) => {
                            write_torn(w, &resp)?;
                            return Ok(false);
                        }
                        Reply::Hangup => return Ok(false),
                    }
                }
            }
        }
    }

    fn respond(&self, req: &Message) -> Reply {
        if req.verb == "compile" {
            return self.compile_reply(req);
        }
        self.cache.stats_mut(|s| s.requests += 1);
        let resp = catch_unwind(AssertUnwindSafe(|| self.control(req))).unwrap_or_else(|_| {
            self.cache.stats_mut(|s| s.handler_panics += 1);
            error("internal panic while handling request (contained)").header("transient", 1)
        });
        Reply::Send(resp)
    }

    /// Control-plane verbs — never shed by admission control.
    fn control(&self, req: &Message) -> Message {
        match req.verb.as_str() {
            "ping" => Message::new("ok").header("service", "uu-serve"),
            "health" => Message::new("ok")
                .header("service", "uu-serve")
                .header("workers", self.opts.workers)
                .header("inflight", self.inflight.load(Ordering::SeqCst))
                .header("draining", u8::from(self.is_draining())),
            "ready" => Message::new("ok").header("ready", u8::from(!self.is_draining())),
            "stats" => Message::new("ok").with_body(self.cache.stats().to_json()),
            "shutdown" => {
                self.draining.store(true, Ordering::SeqCst);
                Message::new("ok").header("service", "uu-serve").header("draining", 1)
            }
            other => error(&format!("unknown verb `{other}`")),
        }
    }

    fn compile_reply(&self, req: &Message) -> Reply {
        // Admission control: shed immediately when the in-flight gauge is
        // at its cap — a saturated pool answering `busy` in microseconds
        // beats a client waiting unboundedly for a worker.
        let cap = self.opts.inflight.max(1);
        let gauge = match Gauge::acquire(&self.inflight, cap) {
            Ok(g) => g,
            Err(inflight) => {
                self.cache.stats_mut(|s| s.busy_shed += 1);
                let excess = inflight.saturating_sub(cap) as u64;
                let retry = (25 * (excess + 1)).min(500);
                return Reply::Send(Message::new("busy").header("retry-after-ms", retry));
            }
        };
        let idx = self.admitted.fetch_add(1, Ordering::SeqCst);
        self.cache.stats_mut(|s| s.requests += 1);
        let fault = self.opts.fault.as_ref().and_then(|p| p.at(idx));

        match fault.map(|f| f.kind) {
            // Stall while holding the in-flight slot: the overload drill
            // that makes `busy` shedding reachable deterministically.
            Some(ServeFaultKind::Slow) => {
                let ms = fault.map(|f| f.seed).filter(|&s| s > 0).unwrap_or(100);
                std::thread::sleep(Duration::from_millis(ms));
            }
            Some(ServeFaultKind::Disconnect) => {
                drop(gauge);
                return Reply::Hangup;
            }
            _ => {}
        }

        // Crash-loop circuit breaker: refuse modules that keep panicking
        // instead of recompiling them forever.
        let module_key = uu_ir::fnv1a(req.body.as_bytes());
        if self.is_quarantined(module_key) {
            drop(gauge);
            self.cache.stats_mut(|s| s.quarantined_rejects += 1);
            return Reply::Send(
                error("module quarantined after repeated handler panics")
                    .header("quarantined", 1),
            );
        }

        let disk_full = matches!(fault.map(|f| f.kind), Some(ServeFaultKind::DiskFull));
        if disk_full {
            crate::cache::inject_store_fault(true);
        }
        let result = catch_unwind(AssertUnwindSafe(|| {
            if matches!(fault.map(|f| f.kind), Some(ServeFaultKind::Panic)) {
                panic!("injected service fault: panic@{idx}");
            }
            self.compile(req)
        }));
        if disk_full {
            crate::cache::inject_store_fault(false);
        }
        drop(gauge);

        match result {
            Ok(resp) => {
                if matches!(fault.map(|f| f.kind), Some(ServeFaultKind::Torn)) {
                    Reply::Torn(resp)
                } else {
                    Reply::Send(resp)
                }
            }
            Err(_) => {
                self.note_panic(module_key);
                Reply::Send(
                    error("internal panic while handling request (contained)")
                        .header("transient", 1),
                )
            }
        }
    }

    fn is_quarantined(&self, module_key: u64) -> bool {
        let k = self.opts.breaker_k.max(1);
        self.lock_breaker().get(&module_key).is_some_and(|&c| c >= k)
    }

    fn note_panic(&self, module_key: u64) {
        let k = self.opts.breaker_k.max(1);
        let newly_quarantined = {
            let mut b = self.lock_breaker();
            let c = b.entry(module_key).or_insert(0);
            *c += 1;
            *c == k
        };
        self.cache.stats_mut(|s| {
            s.handler_panics += 1;
            if newly_quarantined {
                s.quarantined_modules += 1;
            }
        });
    }

    fn lock_breaker(
        &self,
    ) -> std::sync::MutexGuard<'_, std::collections::BTreeMap<u64, u32>> {
        // Poison recovery: a contained handler panic must not wedge the
        // breaker for every surviving worker (counts are plain integers,
        // never torn).
        self.breaker.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn compile(&self, req: &Message) -> Message {
        let Some(config) = req.get("config") else {
            return error("missing `config` header");
        };
        let Some(transform) = parse_config(config) else {
            return error(&format!(
                "unknown config `{config}`; expected {}",
                config_names()
            ));
        };
        let fault = match req.get("fault") {
            None | Some("") => None,
            Some(spec) => match FaultPlan::parse(spec) {
                Ok(p) => Some(p),
                Err(e) => return error(&format!("malformed fault spec: {e}")),
            },
        };
        let filter = match (req.get("filter-func"), req.get("filter-loop")) {
            (None, None) => LoopFilter::All,
            (Some(func), Some(l)) => match l.parse::<usize>() {
                Ok(loop_id) => LoopFilter::Only {
                    func: func.to_string(),
                    loop_id,
                },
                Err(_) => return error(&format!("`filter-loop` is not a usize: {l:?}")),
            },
            _ => return error("`filter-func` and `filter-loop` must be given together"),
        };
        // Per-request deadline on the deterministic work clock: a request
        // may tighten the service deadline, never widen it.
        let timeout_ms = match req.get("timeout-ms") {
            None => self.opts.timeout_ms,
            Some(t) => match t.parse::<u64>() {
                Ok(n) if n >= 1 => n.min(self.opts.timeout_ms),
                _ => return error(&format!("`timeout-ms` is not a positive u64: {t:?}")),
            },
        };
        let want_module = req.get("want-module") != Some("0");
        let mut module = match uu_ir::parse_module(&req.body) {
            Ok(m) => m,
            Err(e) => return error(&format!("module does not parse: {e}")),
        };
        let opts = PipelineOptions {
            transform,
            filter,
            timeout: Some(Duration::from_millis(timeout_ms)),
            fault,
            ..Default::default()
        };
        let key = CompileCache::compile_key(&module, &opts);
        let out = self.cache.compile(&mut module, &opts, want_module);
        if out.meta.timed_out && !out.hit {
            self.cache.stats_mut(|s| s.deadline_hits += 1);
        }
        let mut resp = Message::new("ok")
            .header("cached", if out.hit { "hit" } else { "miss" })
            .header("key", key.hex())
            .header("rung", out.meta.rung.as_str())
            .header("work", out.meta.work)
            .header("timed-out", u8::from(out.meta.timed_out))
            .header("code-size", out.meta.code_size);
        if !out.meta.diag.is_empty() {
            // Lossless single-line escaping: remote clients reconstruct
            // the diag byte-identically to a local compile's.
            resp = resp.header("diag", crate::artifact::escape(&out.meta.diag));
        }
        if want_module {
            resp = resp.with_body(module.to_string());
        }
        resp
    }
}

/// RAII admission slot: acquired when the gauge is under `cap`,
/// released on drop (including drop by panic unwind — a panicking
/// handler must not leak its slot and strangle admission).
struct Gauge<'a>(&'a AtomicUsize);

impl<'a> Gauge<'a> {
    fn acquire(gauge: &'a AtomicUsize, cap: usize) -> Result<Gauge<'a>, usize> {
        let prev = gauge.fetch_add(1, Ordering::SeqCst);
        if prev >= cap {
            gauge.fetch_sub(1, Ordering::SeqCst);
            Err(prev + 1)
        } else {
            Ok(Gauge(gauge))
        }
    }
}

impl Drop for Gauge<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

fn error(reason: &str) -> Message {
    Message::new("error").header("reason", reason.replace('\n', " "))
}

/// Write a deliberately truncated frame: the full length prefix but only
/// half the payload — the `torn` fault's wire image. The reader sees an
/// unexpected EOF mid-frame, which clients treat as transient I/O.
fn write_torn(w: &mut impl Write, msg: &Message) -> io::Result<()> {
    let payload = msg.encode();
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&payload.as_bytes()[..payload.len() / 2])?;
    w.flush()
}

/// Serve one framed stream until EOF or a `shutdown` request, with
/// default tunables — the embedded/test entry point. Returns `true` if a
/// shutdown was requested (callers owning a listener stop accepting).
pub fn serve_stream(
    r: &mut impl Read,
    w: &mut impl Write,
    cache: &CompileCache,
) -> io::Result<bool> {
    Service::new(cache, ServeOptions::default()).serve_conn(r, w)
}

/// Serve on a Unix socket at `path` (any stale socket file is replaced)
/// until a client sends `shutdown`, with tunables from the environment —
/// see [`serve_unix_with`].
pub fn serve_unix(path: &Path, cache: &CompileCache) -> io::Result<()> {
    serve_unix_with(path, cache, ServeOptions::from_env())
}

/// Serve on a Unix socket at `path` with explicit tunables: a crew of
/// [`ServeOptions::workers`] threads handles connections concurrently
/// off a shared queue while the calling thread accepts.
///
/// Shutdown is a graceful drain: the `shutdown` verb flips the drain
/// flag, the accept loop stops admitting (it polls a nonblocking
/// listener, so it notices within a few milliseconds), queued and
/// in-flight connections finish, then the crew retires and the socket
/// file is removed.
///
/// Accept errors are counted in [`CacheStats::accept_errors`] and
/// retried with a short growing pause; [`ServeOptions::accept_retries`]
/// *consecutive* failures mean the listener is wedged, and the daemon
/// exits with the error (a clean nonzero exit) instead of spinning on a
/// dead socket forever.
///
/// [`CacheStats::accept_errors`]: crate::stats::CacheStats::accept_errors
pub fn serve_unix_with(path: &Path, cache: &CompileCache, opts: ServeOptions) -> io::Result<()> {
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    let service = Service::new(cache, opts);
    let queue: TaskQueue<UnixStream> = TaskQueue::new();
    let result = run_crew(
        service.options().workers,
        &queue,
        |mut conn: UnixStream| {
            let done = match conn.try_clone() {
                Ok(mut rd) => service.serve_conn(&mut rd, &mut conn),
                Err(e) => Err(e),
            };
            if let Err(e) = done {
                // A dropped client must not kill the daemon — but it must
                // be visible in the stats, not only on stderr.
                service.cache.stats_mut(|s| s.conn_errors += 1);
                eprintln!("uu-serve: connection error (continuing): {e}");
            }
        },
        || {
            let mut consecutive: u32 = 0;
            loop {
                if service.is_draining() {
                    return Ok(());
                }
                match listener.accept() {
                    Ok((conn, _)) => {
                        consecutive = 0;
                        // Accepted sockets can inherit the listener's
                        // nonblocking flag on some platforms; workers
                        // want blocking reads.
                        let _ = conn.set_nonblocking(false);
                        if queue.push(conn).is_err() {
                            return Ok(()); // queue closed: drain underway
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(e) => {
                        consecutive += 1;
                        service.cache.stats_mut(|s| s.accept_errors += 1);
                        eprintln!(
                            "uu-serve: accept error ({consecutive} consecutive): {e}"
                        );
                        if consecutive >= service.options().accept_retries.max(1) {
                            return Err(io::Error::new(
                                e.kind(),
                                format!(
                                    "{consecutive} consecutive accept failures; giving up: {e}"
                                ),
                            ));
                        }
                        std::thread::sleep(Duration::from_millis(2u64 << consecutive.min(6)));
                    }
                }
            }
        },
    );
    let _ = std::fs::remove_file(path);
    result
}

/// Serve a single session over stdin/stdout — the socketless transport
/// for pipes and tests. Tunables (including `UU_SERVE_FAULT`) come from
/// the environment.
pub fn serve_stdio(cache: &CompileCache) -> io::Result<()> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    Service::new(cache, ServeOptions::from_env())
        .serve_conn(&mut stdin.lock(), &mut stdout.lock())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::ServeFault;

    const MODULE: &str = "\
; module t
fn @k(i64 %n) -> i64 {
bb0:
  br bb1
bb1:
  %1 = phi i64 [0, bb0], [%6, bb5]
  %2 = phi i64 [0, bb0], [%5, bb5]
  %3 = icmp slt i64 %1, %n
  br i1 %3, bb2, bb6
bb2:
  %4 = icmp slt i64 %2, 50
  br i1 %4, bb3, bb4
bb3:
  %7 = add i64 %2, 1
  br bb5
bb4:
  %8 = add i64 %2, 2
  br bb5
bb5:
  %5 = phi i64 [%7, bb3], [%8, bb4]
  %6 = add i64 %1, 1
  br bb1
bb6:
  ret i64 %2
}
";

    fn service(cache: &CompileCache) -> Service<'_> {
        Service::new(cache, ServeOptions::default())
    }

    fn roundtrip(svc: &Service<'_>, req: &Message) -> Message {
        match svc.respond(req) {
            Reply::Send(m) => m,
            Reply::Torn(_) | Reply::Hangup => panic!("unexpected connection fault"),
        }
    }

    #[test]
    fn compile_twice_hits_the_cache_with_identical_output() {
        let cache = CompileCache::new_mem();
        let svc = service(&cache);
        let req = Message::new("compile").header("config", "uu4").with_body(MODULE);
        let a = roundtrip(&svc, &req);
        let b = roundtrip(&svc, &req);
        assert_eq!(a.verb, "ok");
        assert_eq!(a.get("cached"), Some("miss"));
        assert_eq!(b.get("cached"), Some("hit"));
        assert_eq!(a.get("rung"), Some("full"));
        assert_eq!(a.body, b.body);
        assert_eq!(a.get("key"), b.get("key"));
        assert_ne!(a.body, MODULE); // uu4 actually transformed the kernel
        assert_eq!(cache.stats().requests, 2);
    }

    #[test]
    fn faulted_request_reports_degraded_rung_and_service_survives() {
        let cache = CompileCache::new_mem();
        let svc = service(&cache);
        let req = Message::new("compile")
            .header("config", "uu4")
            .header("fault", "panic@1")
            .with_body(MODULE);
        let a = roundtrip(&svc, &req);
        assert_eq!(a.verb, "ok", "faulted compile must be contained");
        assert_ne!(a.get("rung"), Some("full"));
        assert!(a.get("diag").is_some());
        // A pipeline-contained fault is not a handler panic: the breaker
        // must not charge the module for it.
        assert_eq!(cache.stats().handler_panics, 0);
        // Service still answers afterwards.
        let ping = roundtrip(&svc, &Message::new("ping"));
        assert_eq!(ping.verb, "ok");
        // And the faulted artifact is keyed separately from the clean one.
        let clean = roundtrip(
            &svc,
            &Message::new("compile").header("config", "uu4").with_body(MODULE),
        );
        assert_eq!(clean.get("cached"), Some("miss"));
        assert_eq!(clean.get("rung"), Some("full"));
    }

    #[test]
    fn bad_requests_get_error_responses_not_crashes() {
        let cache = CompileCache::new_mem();
        let svc = service(&cache);
        let no_config = roundtrip(&svc, &Message::new("compile").with_body(MODULE));
        assert_eq!(no_config.verb, "error");
        let bad_config = roundtrip(
            &svc,
            &Message::new("compile").header("config", "warp9").with_body(MODULE),
        );
        assert_eq!(bad_config.verb, "error");
        let bad_module = roundtrip(
            &svc,
            &Message::new("compile")
                .header("config", "uu4")
                .with_body("fn @broken(i64 %n) -> i64 {\nbb0:\n  frobnicate\n}\n"),
        );
        assert_eq!(bad_module.verb, "error");
        let bad_fault = roundtrip(
            &svc,
            &Message::new("compile")
                .header("config", "uu4")
                .header("fault", "gremlin@?")
                .with_body(MODULE),
        );
        assert_eq!(bad_fault.verb, "error");
        let bad_timeout = roundtrip(
            &svc,
            &Message::new("compile")
                .header("config", "uu4")
                .header("timeout-ms", "soon")
                .with_body(MODULE),
        );
        assert_eq!(bad_timeout.verb, "error");
        let half_filter = roundtrip(
            &svc,
            &Message::new("compile")
                .header("config", "uu4")
                .header("filter-func", "k")
                .with_body(MODULE),
        );
        assert_eq!(half_filter.verb, "error");
        let bad_verb = roundtrip(&svc, &Message::new("frobnicate"));
        assert_eq!(bad_verb.verb, "error");
    }

    #[test]
    fn stats_verb_returns_valid_versioned_json() {
        let cache = CompileCache::new_mem();
        let svc = service(&cache);
        roundtrip(
            &svc,
            &Message::new("compile").header("config", "baseline").with_body(MODULE),
        );
        let stats = roundtrip(&svc, &Message::new("stats"));
        assert_eq!(stats.verb, "ok");
        uu_check::json::validate(&stats.body).expect("stats body is JSON");
        assert!(stats.body.contains("\"compile_misses\": 1"));
        assert!(stats.body.contains("\"stats_version\": 2"));
    }

    #[test]
    fn health_ready_and_shutdown_track_the_drain_flag() {
        let cache = CompileCache::new_mem();
        let svc = service(&cache);
        let health = roundtrip(&svc, &Message::new("health"));
        assert_eq!(health.verb, "ok");
        assert_eq!(health.get("workers"), Some("4"));
        assert_eq!(health.get("inflight"), Some("0"));
        assert_eq!(health.get("draining"), Some("0"));
        assert_eq!(roundtrip(&svc, &Message::new("ready")).get("ready"), Some("1"));
        let bye = roundtrip(&svc, &Message::new("shutdown"));
        assert_eq!(bye.verb, "ok");
        assert!(svc.is_draining());
        assert_eq!(roundtrip(&svc, &Message::new("ready")).get("ready"), Some("0"));
        assert_eq!(
            roundtrip(&svc, &Message::new("health")).get("draining"),
            Some("1")
        );
    }

    #[test]
    fn filtered_compile_matches_the_equivalent_pipeline_options() {
        // The remote backend's contract: config + filter headers must
        // reproduce exactly the PipelineOptions the batch harness builds.
        let cache = CompileCache::new_mem();
        let svc = service(&cache);
        let req = Message::new("compile")
            .header("config", "unroll2")
            .header("filter-func", "k")
            .header("filter-loop", "0")
            .with_body(MODULE);
        let resp = roundtrip(&svc, &req);
        assert_eq!(resp.verb, "ok");
        let mut m = uu_ir::parse_module(MODULE).unwrap();
        let opts = PipelineOptions {
            transform: parse_config("unroll2").unwrap(),
            filter: LoopFilter::Only { func: "k".into(), loop_id: 0 },
            timeout: Some(SERVICE_COMPILE_TIMEOUT),
            ..Default::default()
        };
        let local = uu_core::compile(&mut m, &opts);
        assert_eq!(resp.get("rung"), Some(local.rung.as_str()));
        assert_eq!(resp.get("work"), Some(local.work.to_string().as_str()));
        assert_eq!(resp.body, m.to_string(), "remote and local modules must match");
    }

    #[test]
    fn injected_handler_panic_is_contained_counted_and_transient() {
        let cache = CompileCache::new_mem();
        let opts = ServeOptions {
            fault: Some(ServeFaultPlan { faults: vec![ServeFault {
                kind: ServeFaultKind::Panic,
                at: 0,
                seed: 0,
            }] }),
            ..ServeOptions::default()
        };
        let svc = Service::new(&cache, opts);
        let req = Message::new("compile").header("config", "uu2").with_body(MODULE);
        let hit = roundtrip(&svc, &req);
        assert_eq!(hit.verb, "error");
        assert_eq!(hit.get("transient"), Some("1"));
        assert_eq!(cache.stats().handler_panics, 1);
        // The fault fired once, at index 0: the retry (index 1) succeeds,
        // and the admission gauge was not leaked by the unwind.
        let retry = roundtrip(&svc, &req);
        assert_eq!(retry.verb, "ok");
        assert_eq!(svc.inflight.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn breaker_quarantines_after_k_panics_and_only_that_module() {
        let cache = CompileCache::new_mem();
        let opts = ServeOptions {
            breaker_k: 3,
            fault: Some(ServeFaultPlan::parse("panic@0,panic@1,panic@2").unwrap()),
            ..ServeOptions::default()
        };
        let svc = Service::new(&cache, opts);
        let req = Message::new("compile").header("config", "uu2").with_body(MODULE);
        for i in 0..3 {
            let r = roundtrip(&svc, &req);
            assert_eq!(r.verb, "error", "panic {i} must be contained");
            assert_eq!(r.get("transient"), Some("1"));
        }
        // Third panic tripped the breaker: request 4 is refused without
        // recompiling, marked quarantined (and NOT transient — retrying
        // is pointless).
        let refused = roundtrip(&svc, &req);
        assert_eq!(refused.verb, "error");
        assert_eq!(refused.get("quarantined"), Some("1"));
        assert_eq!(refused.get("transient"), None);
        let st = cache.stats();
        assert_eq!(st.handler_panics, 3);
        assert_eq!(st.quarantined_modules, 1);
        assert_eq!(st.quarantined_rejects, 1);
        // A different module is untouched by the quarantine.
        let other = MODULE.replace("@k", "@other");
        let ok = roundtrip(
            &svc,
            &Message::new("compile").header("config", "uu2").with_body(other),
        );
        assert_eq!(ok.verb, "ok");
    }

    #[test]
    fn admission_control_sheds_with_busy_and_retry_hint() {
        let cache = CompileCache::new_mem();
        let opts = ServeOptions { inflight: 1, ..ServeOptions::default() };
        let svc = Service::new(&cache, opts);
        // Occupy the only slot by hand, then probe.
        let _slot = Gauge::acquire(&svc.inflight, 1).unwrap();
        let req = Message::new("compile").header("config", "uu2").with_body(MODULE);
        let shed = roundtrip(&svc, &req);
        assert_eq!(shed.verb, "busy");
        let retry_ms: u64 = shed.get("retry-after-ms").unwrap().parse().unwrap();
        assert!((1..=500).contains(&retry_ms));
        assert_eq!(cache.stats().busy_shed, 1);
        // Control verbs are never shed.
        assert_eq!(roundtrip(&svc, &Message::new("ping")).verb, "ok");
        drop(_slot);
        assert_eq!(roundtrip(&svc, &req).verb, "ok");
    }

    #[test]
    fn slow_fault_holds_the_inflight_slot_for_its_seed_ms() {
        let cache = CompileCache::new_mem();
        let opts = ServeOptions {
            fault: Some(ServeFaultPlan::parse("slow@0:80").unwrap()),
            ..ServeOptions::default()
        };
        let svc = Service::new(&cache, opts);
        let req = Message::new("compile").header("config", "baseline").with_body(MODULE);
        let t0 = std::time::Instant::now();
        let r = roundtrip(&svc, &req);
        assert_eq!(r.verb, "ok");
        assert!(t0.elapsed() >= Duration::from_millis(80), "slow fault must stall");
    }

    #[test]
    fn disk_full_fault_degrades_store_and_is_counted() {
        let dir = std::env::temp_dir().join(format!("uu-serve-enospc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = CompileCache::at_dir(&dir).unwrap();
        let opts = ServeOptions {
            fault: Some(ServeFaultPlan::parse("disk-full@0").unwrap()),
            ..ServeOptions::default()
        };
        let svc = Service::new(&cache, opts);
        let req = Message::new("compile").header("config", "uu2").with_body(MODULE);
        let r = roundtrip(&svc, &req);
        assert_eq!(r.verb, "ok", "a failed store must not fail the request");
        assert_eq!(r.get("cached"), Some("miss"));
        assert_eq!(cache.stats().store_errors, 1);
        // Request 1 (fault spent): compiles arrive from memory; a fresh
        // cache over the same dir sees nothing on disk for this key but
        // the service kept working throughout.
        let again = roundtrip(&svc, &req);
        assert_eq!(again.verb, "ok");
        assert_eq!(again.get("cached"), Some("hit"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_and_disconnect_faults_sever_the_connection_not_the_daemon() {
        use std::os::unix::net::UnixStream;
        let cache = CompileCache::new_mem();
        let opts = ServeOptions {
            fault: Some(ServeFaultPlan::parse("torn@0,disconnect@1").unwrap()),
            ..ServeOptions::default()
        };
        let svc = Service::new(&cache, opts);
        let req = Message::new("compile").header("config", "baseline").with_body(MODULE);
        // Torn: the client sees a frame that dies mid-payload.
        {
            let (mut client, mut server) = UnixStream::pair().unwrap();
            let svc = &svc;
            std::thread::scope(|s| {
                s.spawn(move || {
                    let mut rd = server.try_clone().unwrap();
                    let done = svc.serve_conn(&mut rd, &mut server).unwrap();
                    assert!(!done);
                });
                let e = crate::client::request_over(&mut client, &req).unwrap_err();
                assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof);
            });
        }
        // Disconnect: the client sees EOF with no bytes at all.
        {
            let (mut client, mut server) = UnixStream::pair().unwrap();
            let svc = &svc;
            std::thread::scope(|s| {
                s.spawn(move || {
                    let mut rd = server.try_clone().unwrap();
                    svc.serve_conn(&mut rd, &mut server).unwrap();
                });
                let e = crate::client::request_over(&mut client, &req).unwrap_err();
                assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof);
            });
        }
        // Both faults are spent: a third identical request succeeds.
        let ok = roundtrip(&svc, &req);
        assert_eq!(ok.verb, "ok");
    }

    #[test]
    fn damaged_frames_get_structured_errors_and_the_connection_survives() {
        use std::os::unix::net::UnixStream;
        let cache = CompileCache::new_mem();
        let svc = service(&cache);
        let (mut client, mut server) = UnixStream::pair().unwrap();
        let svc_ref = &svc;
        std::thread::scope(|s| {
            s.spawn(move || {
                let mut rd = server.try_clone().unwrap();
                svc_ref.serve_conn(&mut rd, &mut server).unwrap();
            });
            // A malformed payload first...
            let garbage = b"not a message";
            client
                .write_all(&(garbage.len() as u32).to_le_bytes())
                .unwrap();
            client.write_all(garbage).unwrap();
            let resp = crate::proto::read_frame(&mut client).unwrap().unwrap();
            assert_eq!(resp.verb, "error");
            // ...then a well-formed request on the SAME connection.
            let pong = crate::client::request_over(&mut client, &Message::new("ping")).unwrap();
            assert_eq!(pong.verb, "ok");
            drop(client);
        });
        assert_eq!(cache.stats().frame_defects, 1);
    }

    #[test]
    fn serve_stream_round_trips_over_a_socket_pair() {
        use std::os::unix::net::UnixStream;
        let cache = CompileCache::new_mem();
        let (mut client, mut server) = UnixStream::pair().unwrap();
        let handle = std::thread::spawn(move || {
            let cache = cache;
            let mut rd = server.try_clone().unwrap();
            serve_stream(&mut rd, &mut server, &cache).unwrap()
        });
        let req = Message::new("compile").header("config", "uu2").with_body(MODULE);
        let resp = crate::client::request_over(&mut client, &req).unwrap();
        assert_eq!(resp.verb, "ok");
        assert_eq!(resp.get("cached"), Some("miss"));
        let again = crate::client::request_over(&mut client, &req).unwrap();
        assert_eq!(again.get("cached"), Some("hit"));
        assert_eq!(resp.body, again.body);
        let bye = crate::client::request_over(&mut client, &Message::new("shutdown")).unwrap();
        assert_eq!(bye.verb, "ok");
        assert!(handle.join().unwrap(), "shutdown must end the session");
    }

    #[test]
    fn concurrent_daemon_drains_on_shutdown_with_zero_lost_responses() {
        let dir = std::env::temp_dir().join(format!("uu-serve-drain-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let sock = dir.join("drain.sock");
        let cache = CompileCache::new_mem();
        let opts = ServeOptions { workers: 2, inflight: 2, ..ServeOptions::default() };
        std::thread::scope(|s| {
            let sock_ref = &sock;
            let cache_ref = &cache;
            let daemon = s.spawn(move || serve_unix_with(sock_ref, cache_ref, opts));
            // Several concurrent clients, one request each.
            let patience = Duration::from_secs(10);
            let mut clients = Vec::new();
            for i in 0..6 {
                let sock = &sock;
                clients.push(s.spawn(move || {
                    let mut conn = crate::client::connect_unix(sock, patience).unwrap();
                    let req = Message::new("compile")
                        .header("config", if i % 2 == 0 { "uu2" } else { "unroll2" })
                        .with_body(MODULE);
                    crate::client::request_over(&mut conn, &req).unwrap()
                }));
            }
            for c in clients {
                let resp = c.join().unwrap();
                assert_eq!(resp.verb, "ok", "no response may be lost");
            }
            // Drain: shutdown acks, daemon exits cleanly.
            let mut conn = crate::client::connect_unix(&sock, patience).unwrap();
            let bye =
                crate::client::request_over(&mut conn, &Message::new("shutdown")).unwrap();
            assert_eq!(bye.verb, "ok");
            daemon.join().unwrap().unwrap();
        });
        assert!(!sock.exists(), "socket file must be removed after drain");
        assert_eq!(cache.stats().requests, 7); // 6 compiles + 1 shutdown
        let _ = std::fs::remove_dir_all(&dir);
    }
}

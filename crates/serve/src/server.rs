//! The compile-service daemon: accepts framed requests, compiles through
//! the guarded pipeline via the cache, answers with optimized IR + rung
//! + metrics.
//!
//! Request verbs:
//!
//! * `compile` — headers `config: <name>` (required, see
//!   [`crate::config`]), `fault: <spec>` (optional [`FaultPlan`] for
//!   drills), `want-module: 0|1` (default 1); body = module text.
//!   Response `ok` carries `cached: hit|miss`, `rung`, `work`,
//!   `timed-out`, `code-size`, `key`, `diag` headers and the optimized
//!   module as the body.
//! * `stats` — response body is the cache's [`CacheStats`] JSON.
//! * `ping` — liveness probe.
//! * `shutdown` — acknowledge and stop serving.
//!
//! Every request is wrapped in `catch_unwind` *in addition to* the
//! pipeline's own pass guards: a panic that escapes anywhere in request
//! handling produces an `error` response and the daemon keeps serving —
//! one poisoned request must never take down the service.
//!
//! [`CacheStats`]: crate::stats::CacheStats

use std::io::{self, Read, Write};
use std::os::unix::net::UnixListener;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::time::Duration;

use crate::cache::CompileCache;
use crate::config::{config_names, parse_config};
use crate::proto::{read_frame, write_frame, Message};
use uu_core::{FaultPlan, PipelineOptions};

/// Work-clock budget for service compiles — the same budget the batch
/// harness uses, so daemon and sweep share cache artifacts for the same
/// `(module, config)`.
pub const SERVICE_COMPILE_TIMEOUT: Duration = Duration::from_secs(20);

/// Serve one framed stream until EOF or a `shutdown` request. Returns
/// `true` if a shutdown was requested (callers owning a listener stop
/// accepting).
pub fn serve_stream(
    r: &mut impl Read,
    w: &mut impl Write,
    cache: &CompileCache,
) -> io::Result<bool> {
    while let Some(req) = read_frame(r)? {
        let verb = req.verb.clone();
        let resp = catch_unwind(AssertUnwindSafe(|| handle(&req, cache)))
            .unwrap_or_else(|_| error("internal panic while handling request (contained)"));
        write_frame(w, &resp)?;
        if verb == "shutdown" {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Serve on a Unix socket at `path` (any stale socket file is replaced)
/// until a client sends `shutdown`. Connections are handled sequentially
/// — request-level parallelism comes from the cache making repeat work
/// free, not from threads.
pub fn serve_unix(path: &Path, cache: &CompileCache) -> io::Result<()> {
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    for conn in listener.incoming() {
        let mut conn = match conn {
            Ok(c) => c,
            Err(_) => continue,
        };
        let done = {
            let mut rd = conn.try_clone()?;
            serve_stream(&mut rd, &mut conn, cache)
        };
        match done {
            Ok(true) => break,
            Ok(false) => {}
            // A dropped client must not kill the daemon.
            Err(e) => eprintln!("uu-serve: connection error (continuing): {e}"),
        }
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}

/// Serve a single session over stdin/stdout — the socketless transport
/// for pipes and tests.
pub fn serve_stdio(cache: &CompileCache) -> io::Result<()> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    serve_stream(&mut stdin.lock(), &mut stdout.lock(), cache)?;
    Ok(())
}

fn error(reason: &str) -> Message {
    Message::new("error").header("reason", reason.replace('\n', " "))
}

fn handle(req: &Message, cache: &CompileCache) -> Message {
    match req.verb.as_str() {
        "ping" => Message::new("ok").header("service", "uu-serve"),
        "shutdown" => Message::new("ok").header("service", "uu-serve"),
        "stats" => Message::new("ok").with_body(cache.stats().to_json()),
        "compile" => compile(req, cache),
        other => error(&format!("unknown verb `{other}`")),
    }
}

fn compile(req: &Message, cache: &CompileCache) -> Message {
    let Some(config) = req.get("config") else {
        return error("missing `config` header");
    };
    let Some(transform) = parse_config(config) else {
        return error(&format!(
            "unknown config `{config}`; expected {}",
            config_names()
        ));
    };
    let fault = match req.get("fault") {
        None | Some("") => None,
        Some(spec) => match FaultPlan::parse(spec) {
            Ok(p) => Some(p),
            Err(e) => return error(&format!("malformed fault spec: {e}")),
        },
    };
    let want_module = req.get("want-module") != Some("0");
    let mut module = match uu_ir::parse_module(&req.body) {
        Ok(m) => m,
        Err(e) => return error(&format!("module does not parse: {e}")),
    };
    let opts = PipelineOptions {
        transform,
        timeout: Some(SERVICE_COMPILE_TIMEOUT),
        fault,
        ..Default::default()
    };
    let key = CompileCache::compile_key(&module, &opts);
    let out = cache.compile(&mut module, &opts, want_module);
    let mut resp = Message::new("ok")
        .header("cached", if out.hit { "hit" } else { "miss" })
        .header("key", key.hex())
        .header("rung", out.meta.rung.as_str())
        .header("work", out.meta.work)
        .header("timed-out", u8::from(out.meta.timed_out))
        .header("code-size", out.meta.code_size);
    if !out.meta.diag.is_empty() {
        resp = resp.header("diag", out.meta.diag.replace('\n', "; "));
    }
    if want_module {
        resp = resp.with_body(module.to_string());
    }
    resp
}

#[cfg(test)]
mod tests {
    use super::*;

    const MODULE: &str = "\
; module t
fn @k(i64 %n) -> i64 {
bb0:
  br bb1
bb1:
  %1 = phi i64 [0, bb0], [%6, bb5]
  %2 = phi i64 [0, bb0], [%5, bb5]
  %3 = icmp slt i64 %1, %n
  br i1 %3, bb2, bb6
bb2:
  %4 = icmp slt i64 %2, 50
  br i1 %4, bb3, bb4
bb3:
  %7 = add i64 %2, 1
  br bb5
bb4:
  %8 = add i64 %2, 2
  br bb5
bb5:
  %5 = phi i64 [%7, bb3], [%8, bb4]
  %6 = add i64 %1, 1
  br bb1
bb6:
  ret i64 %2
}
";

    fn roundtrip(cache: &CompileCache, req: &Message) -> Message {
        handle(req, cache)
    }

    #[test]
    fn compile_twice_hits_the_cache_with_identical_output() {
        let cache = CompileCache::new_mem();
        let req = Message::new("compile").header("config", "uu4").with_body(MODULE);
        let a = roundtrip(&cache, &req);
        let b = roundtrip(&cache, &req);
        assert_eq!(a.verb, "ok");
        assert_eq!(a.get("cached"), Some("miss"));
        assert_eq!(b.get("cached"), Some("hit"));
        assert_eq!(a.get("rung"), Some("full"));
        assert_eq!(a.body, b.body);
        assert_eq!(a.get("key"), b.get("key"));
        assert_ne!(a.body, MODULE); // uu4 actually transformed the kernel
    }

    #[test]
    fn faulted_request_reports_degraded_rung_and_service_survives() {
        let cache = CompileCache::new_mem();
        let req = Message::new("compile")
            .header("config", "uu4")
            .header("fault", "panic@1")
            .with_body(MODULE);
        let a = roundtrip(&cache, &req);
        assert_eq!(a.verb, "ok", "faulted compile must be contained");
        assert_ne!(a.get("rung"), Some("full"));
        assert!(a.get("diag").is_some());
        // Service still answers afterwards.
        let ping = roundtrip(&cache, &Message::new("ping"));
        assert_eq!(ping.verb, "ok");
        // And the faulted artifact is keyed separately from the clean one.
        let clean = roundtrip(
            &cache,
            &Message::new("compile").header("config", "uu4").with_body(MODULE),
        );
        assert_eq!(clean.get("cached"), Some("miss"));
        assert_eq!(clean.get("rung"), Some("full"));
    }

    #[test]
    fn bad_requests_get_error_responses_not_crashes() {
        let cache = CompileCache::new_mem();
        let no_config = roundtrip(&cache, &Message::new("compile").with_body(MODULE));
        assert_eq!(no_config.verb, "error");
        let bad_config = roundtrip(
            &cache,
            &Message::new("compile").header("config", "warp9").with_body(MODULE),
        );
        assert_eq!(bad_config.verb, "error");
        let bad_module = roundtrip(
            &cache,
            &Message::new("compile")
                .header("config", "uu4")
                .with_body("fn @broken(i64 %n) -> i64 {\nbb0:\n  frobnicate\n}\n"),
        );
        assert_eq!(bad_module.verb, "error");
        let bad_fault = roundtrip(
            &cache,
            &Message::new("compile")
                .header("config", "uu4")
                .header("fault", "gremlin@?")
                .with_body(MODULE),
        );
        assert_eq!(bad_fault.verb, "error");
        let bad_verb = roundtrip(&cache, &Message::new("frobnicate"));
        assert_eq!(bad_verb.verb, "error");
    }

    #[test]
    fn stats_verb_returns_valid_versioned_json() {
        let cache = CompileCache::new_mem();
        roundtrip(
            &cache,
            &Message::new("compile").header("config", "baseline").with_body(MODULE),
        );
        let stats = roundtrip(&cache, &Message::new("stats"));
        assert_eq!(stats.verb, "ok");
        uu_check::json::validate(&stats.body).expect("stats body is JSON");
        assert!(stats.body.contains("\"compile_misses\": 1"));
    }

    #[test]
    fn serve_stream_round_trips_over_a_socket_pair() {
        use std::os::unix::net::UnixStream;
        let cache = CompileCache::new_mem();
        let (mut client, mut server) = UnixStream::pair().unwrap();
        let handle = std::thread::spawn(move || {
            let cache = cache;
            let mut rd = server.try_clone().unwrap();
            serve_stream(&mut rd, &mut server, &cache).unwrap()
        });
        let req = Message::new("compile").header("config", "uu2").with_body(MODULE);
        let resp = crate::client::request_over(&mut client, &req).unwrap();
        assert_eq!(resp.verb, "ok");
        assert_eq!(resp.get("cached"), Some("miss"));
        let again = crate::client::request_over(&mut client, &req).unwrap();
        assert_eq!(again.get("cached"), Some("hit"));
        assert_eq!(resp.body, again.body);
        let bye = crate::client::request_over(&mut client, &Message::new("shutdown")).unwrap();
        assert_eq!(bye.verb, "ok");
        assert!(handle.join().unwrap(), "shutdown must end the session");
    }
}

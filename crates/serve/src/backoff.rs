//! Deterministic capped exponential backoff with PRNG jitter.
//!
//! The client-side half of the service's overload story: when the daemon
//! sheds load (`busy` + `retry-after-ms`) or a connection dies mid-frame,
//! the client must wait *without* either spinning (the old connect loop
//! burned a core polling `Instant::now`) or synchronizing with every
//! other client (naked exponential backoff makes retries arrive in
//! lockstep waves). The standard answer is exponential growth with
//! random jitter; here the jitter comes from `uu-check`'s seeded PRNG,
//! so a retry schedule is a pure function of its seed — reproducible in
//! tests, byte-identical across runs, yet decorrelated across clients
//! seeded differently.

use std::time::Duration;

use uu_check::Rng;

/// A deterministic backoff schedule: delay `n` is drawn uniformly from
/// `[base·2ⁿ / 2, base·2ⁿ]`, capped at `cap` — "equal jitter", which
/// keeps at least half of each exponential step (so retries genuinely
/// spread out) while bounding the worst-case wait.
#[derive(Debug)]
pub struct Backoff {
    rng: Rng,
    base_ms: u64,
    cap_ms: u64,
    attempt: u32,
}

impl Backoff {
    /// Default first-step delay (milliseconds).
    pub const DEFAULT_BASE_MS: u64 = 5;
    /// Default per-step cap (milliseconds).
    pub const DEFAULT_CAP_MS: u64 = 500;

    /// A schedule with the default base/cap, jittered from `seed`.
    pub fn new(seed: u64) -> Backoff {
        Backoff::with_limits(seed, Self::DEFAULT_BASE_MS, Self::DEFAULT_CAP_MS)
    }

    /// A schedule with explicit base and cap (milliseconds). A zero base
    /// is promoted to 1 ms so the schedule actually grows.
    pub fn with_limits(seed: u64, base_ms: u64, cap_ms: u64) -> Backoff {
        let base_ms = base_ms.max(1);
        Backoff {
            rng: Rng::seed_from_u64(seed),
            base_ms,
            cap_ms: cap_ms.max(base_ms),
            attempt: 0,
        }
    }

    /// Attempts drawn so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// The next delay in the schedule (advances the attempt counter).
    pub fn next_delay(&mut self) -> Duration {
        let exp = self
            .base_ms
            .saturating_mul(1u64.checked_shl(self.attempt).unwrap_or(u64::MAX))
            .min(self.cap_ms);
        self.attempt = self.attempt.saturating_add(1);
        let lo = (exp / 2).max(1);
        let ms = self.rng.gen_range_u64(lo, exp.saturating_add(1).max(lo + 1));
        Duration::from_millis(ms)
    }

    /// The delay to honor when the server supplied a `retry-after-ms`
    /// hint: at least the hint, jittered upward by up to the schedule's
    /// current exponential step (so hinted clients neither stampede back
    /// in unison nor keep hammering a daemon that stays saturated — the
    /// jitter window widens toward the cap on every bounce). Advances the
    /// attempt counter like any other draw.
    pub fn next_delay_hinted(&mut self, hint_ms: u64) -> Duration {
        let hint = hint_ms.min(self.cap_ms).max(1);
        let exp = self
            .base_ms
            .saturating_mul(1u64.checked_shl(self.attempt).unwrap_or(u64::MAX))
            .min(self.cap_ms);
        self.attempt = self.attempt.saturating_add(1);
        let ms = self.rng.gen_range_u64(hint, hint.saturating_add(exp).saturating_add(1));
        Duration::from_millis(ms)
    }

    /// Sleep for [`next_delay`](Self::next_delay) (or the hinted variant
    /// when `hint_ms` is present).
    pub fn sleep(&mut self, hint_ms: Option<u64>) {
        let d = match hint_ms {
            Some(h) => self.next_delay_hinted(h),
            None => self.next_delay(),
        };
        std::thread::sleep(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let draw = |seed| {
            let mut b = Backoff::new(seed);
            (0..8).map(|_| b.next_delay().as_millis()).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8), "different seeds must decorrelate");
    }

    #[test]
    fn delays_grow_exponentially_within_bounds_then_cap() {
        let mut b = Backoff::with_limits(1, 10, 160);
        for n in 0..12 {
            let exp = (10u64 << n.min(10)).min(160);
            let d = b.next_delay().as_millis() as u64;
            assert!(
                d >= (exp / 2).max(1) && d <= exp,
                "attempt {n}: {d}ms outside [{}..{exp}]",
                exp / 2
            );
        }
        assert_eq!(b.attempts(), 12);
    }

    #[test]
    fn huge_attempt_counts_do_not_overflow() {
        let mut b = Backoff::with_limits(3, 100, 400);
        for _ in 0..80 {
            let d = b.next_delay().as_millis() as u64;
            assert!(d <= 400);
        }
    }

    #[test]
    fn retry_after_hint_is_honored_with_escalating_jitter() {
        let mut b = Backoff::new(5);
        for n in 0..16u32 {
            let exp = (Backoff::DEFAULT_BASE_MS << n.min(10)).min(Backoff::DEFAULT_CAP_MS);
            let d = b.next_delay_hinted(100).as_millis() as u64;
            assert!(
                (100..=100 + exp).contains(&d),
                "attempt {n}: {d}ms outside [100..{}]",
                100 + exp
            );
        }
        // A hint above the cap is clamped to the cap.
        let d = b.next_delay_hinted(10_000).as_millis() as u64;
        assert!(d <= 2 * Backoff::DEFAULT_CAP_MS);
    }

    #[test]
    fn zero_base_still_produces_positive_delays() {
        let mut b = Backoff::with_limits(9, 0, 0);
        assert!(b.next_delay().as_millis() >= 1);
    }
}

//! Named pipeline configurations — the short strings clients (and the
//! `dump` command) use to pick a transform: `baseline`, `unroll<k>`,
//! `unmerge`, `uu<k>`, `uu<k>+meld`, `meld`, `heuristic`.

use uu_core::Transform;

/// Parse a config name into a [`Transform`]; `None` if unrecognized.
///
/// Factor suffixes default to 4 when absent or malformed (`uu` ≡ `uu4`),
/// matching the harness's historical `dump --config` behavior.
pub fn parse_config(name: &str) -> Option<Transform> {
    Some(match name {
        "baseline" => Transform::Baseline,
        "unmerge" => Transform::Unmerge,
        "heuristic" => Transform::UuHeuristic(Default::default()),
        "meld" => Transform::Meld,
        c if c.starts_with("unroll") => Transform::Unroll {
            factor: c[6..].parse().unwrap_or(4),
        },
        c if c.starts_with("uu") && c.ends_with("+meld") => Transform::UuMeld {
            factor: c[2..c.len() - 5].parse().unwrap_or(4),
            unmerge: Default::default(),
        },
        c if c.starts_with("uu") => Transform::Uu {
            factor: c[2..].parse().unwrap_or(4),
            unmerge: Default::default(),
        },
        _ => return None,
    })
}

/// The inverse of [`parse_config`]: render a [`Transform`] back as a
/// config name, or `None` when the transform carries tuning options the
/// name grammar cannot express (compared by `Debug` rendering, the same
/// canonical form the cache key uses). The remote compile backend uses
/// this to ship a sweep point's transform to the daemon as a header.
pub fn config_name(t: &Transform) -> Option<String> {
    let is_default = |dbg: String, default_dbg: String| dbg == default_dbg;
    Some(match t {
        Transform::Baseline => "baseline".to_string(),
        Transform::Unmerge => "unmerge".to_string(),
        Transform::Meld => "meld".to_string(),
        Transform::Unroll { factor } => format!("unroll{factor}"),
        Transform::Uu { factor, unmerge }
            if is_default(
                format!("{unmerge:?}"),
                format!("{:?}", uu_core::UnmergeOptions::default()),
            ) =>
        {
            format!("uu{factor}")
        }
        Transform::UuMeld { factor, unmerge }
            if is_default(
                format!("{unmerge:?}"),
                format!("{:?}", uu_core::UnmergeOptions::default()),
            ) =>
        {
            format!("uu{factor}+meld")
        }
        Transform::UuHeuristic(h)
            if is_default(
                format!("{h:?}"),
                format!("{:?}", uu_core::HeuristicOptions::default()),
            ) =>
        {
            "heuristic".to_string()
        }
        _ => return None,
    })
}

/// The accepted config-name grammar, for usage/error messages.
pub fn config_names() -> &'static str {
    "baseline | unroll<k> | unmerge | uu<k> | uu<k>+meld | meld | heuristic"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recognizes_every_family() {
        assert!(matches!(parse_config("baseline"), Some(Transform::Baseline)));
        assert!(matches!(parse_config("unmerge"), Some(Transform::Unmerge)));
        assert!(matches!(parse_config("meld"), Some(Transform::Meld)));
        assert!(matches!(
            parse_config("unroll8"),
            Some(Transform::Unroll { factor: 8 })
        ));
        assert!(matches!(
            parse_config("uu2"),
            Some(Transform::Uu { factor: 2, .. })
        ));
        assert!(matches!(
            parse_config("uu4+meld"),
            Some(Transform::UuMeld { factor: 4, .. })
        ));
        assert!(matches!(
            parse_config("heuristic"),
            Some(Transform::UuHeuristic(_))
        ));
        assert!(parse_config("turbo").is_none());
        assert!(parse_config("").is_none());
    }

    #[test]
    fn config_name_round_trips_through_parse_config() {
        // The remote backend's contract: every transform the sweep/study
        // drivers emit must survive name → parse → name unchanged (the
        // canonical-config Debug strings must match, since that string IS
        // the cache key component).
        for name in [
            "baseline", "unmerge", "meld", "heuristic", "unroll2", "unroll4", "unroll8",
            "uu2", "uu4", "uu8", "uu2+meld", "uu4+meld", "uu8+meld",
        ] {
            let t = parse_config(name).unwrap();
            let back = config_name(&t).unwrap();
            assert_eq!(back, name, "name must round-trip");
            let t2 = parse_config(&back).unwrap();
            assert_eq!(format!("{t:?}"), format!("{t2:?}"), "{name}");
        }
    }

    #[test]
    fn malformed_factors_default_to_four() {
        assert!(matches!(
            parse_config("uu"),
            Some(Transform::Uu { factor: 4, .. })
        ));
        assert!(matches!(
            parse_config("unrollx"),
            Some(Transform::Unroll { factor: 4 })
        ));
    }
}

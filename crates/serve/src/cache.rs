//! Content-addressed compile/measure cache.
//!
//! The key is the triple `(module hash, canonical config, pipeline
//! fingerprint)` — see the crate docs. Two layers:
//!
//! * **memory**: modules kept as live [`Module`] values, so a hit is a
//!   clone — bit-identical to the compile that produced it by
//!   construction;
//! * **disk** (optional): artifacts in the text format of
//!   [`crate::artifact`], content-addressed under
//!   `<dir>/<kk>/<32-hex-key>.uuart`, written atomically
//!   (tmp + rename) and strictly validated on load. A corrupt, truncated
//!   or version-skewed file is a miss, never a wrong answer. Loading
//!   re-parses the stored IR, which renumbers SSA ids into compact form —
//!   semantically identical, same structure, size and cost, but not the
//!   same byte string as the original print (report byte-identity never
//!   depends on optimized-IR text; the numbers all come from the cached
//!   metadata and run records, which round-trip exactly).
//!
//! Measured runs are cached too (`run` artifacts): simulation dominates
//! wall time for hot sweep points, so a warm sweep skips both halves.
//! The run key extends the compile key with a workload tag supplied by
//! the caller (bench identity, workload version, simulator engine,
//! memory-fault plan — everything outside the module/config that can
//! change simulator output).

use std::cell::Cell;
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

use crate::artifact::{Artifact, CompileMeta, RunRecord};
use crate::stats::CacheStats;
use uu_core::{FaultKind, PipelineOptions};
use uu_ir::Module;

thread_local! {
    // Armed by the service's `disk-full` fault (UU_SERVE_FAULT) for the
    // duration of one request. Thread-local because each request is
    // handled entirely on one worker thread: arming it cannot leak into
    // a concurrent request on another worker.
    static STORE_FAULT: Cell<bool> = const { Cell::new(false) };
}

/// Arm (or disarm) the synthetic disk-full fault for cache stores on
/// *this thread*: while armed, every artifact write fails as a full disk
/// would — counted in [`CacheStats::store_errors`], degraded to "not
/// cached", never a broken artifact.
pub fn inject_store_fault(on: bool) {
    STORE_FAULT.with(|f| f.set(on));
}

/// A 128-bit content-address (two FNV-1a lanes over the same key
/// material with distinct domain prefixes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Key {
    /// First hash lane.
    pub hi: u64,
    /// Second hash lane (independent seed).
    pub lo: u64,
}

impl Key {
    /// 32-hex-digit rendering — the on-disk file stem.
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }
}

/// Result of a cache-mediated compile: the metadata the harness needs,
/// plus whether it was served from cache.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedCompile {
    /// Compile metadata (work, rung, diag, code size).
    pub meta: CompileMeta,
    /// `true` when served from memory or disk without running the
    /// pipeline.
    pub hit: bool,
}

/// The two-layer content-addressed cache. All methods take `&self`; the
/// cache is shared across worker threads by reference.
pub struct CompileCache {
    dir: Option<PathBuf>,
    mem_compile: Mutex<HashMap<Key, (CompileMeta, Module)>>,
    mem_run: Mutex<HashMap<Key, (CompileMeta, RunRecord)>>,
    stats: Mutex<CacheStats>,
}

impl std::fmt::Debug for CompileCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompileCache")
            .field("dir", &self.dir)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl CompileCache {
    /// Memory-only cache (lives and dies with the process).
    pub fn new_mem() -> CompileCache {
        CompileCache {
            dir: None,
            mem_compile: Mutex::new(HashMap::new()),
            mem_run: Mutex::new(HashMap::new()),
            stats: Mutex::new(CacheStats::default()),
        }
    }

    /// Memory + disk cache rooted at `dir` (created if missing).
    pub fn at_dir(dir: &Path) -> io::Result<CompileCache> {
        std::fs::create_dir_all(dir)?;
        let mut c = CompileCache::new_mem();
        c.dir = Some(dir.to_path_buf());
        Ok(c)
    }

    /// Build from the environment: `UU_CACHE_DIR=<path>` → disk-backed,
    /// `UU_CACHE=mem` → memory-only, otherwise `None` (caching off).
    pub fn from_env() -> Option<CompileCache> {
        if let Ok(dir) = std::env::var("UU_CACHE_DIR") {
            if !dir.is_empty() {
                match CompileCache::at_dir(Path::new(&dir)) {
                    Ok(c) => return Some(c),
                    Err(e) => {
                        eprintln!("warning: cannot open cache dir {dir}: {e}; caching disabled");
                        return None;
                    }
                }
            }
        }
        match std::env::var("UU_CACHE") {
            Ok(v) if v == "mem" => Some(CompileCache::new_mem()),
            _ => None,
        }
    }

    /// The compile-side cache key for `(module, options)` under the
    /// current pipeline fingerprint.
    ///
    /// [`FaultKind::Mem`] plans are stripped before keying: they target
    /// the simulator, not the pipeline, so two compiles differing only in
    /// a mem-fault plan share an artifact (the fault belongs in the *run*
    /// key's workload tag instead).
    pub fn compile_key(m: &Module, opts: &PipelineOptions) -> Key {
        let mut opts = opts.clone();
        if opts.fault.as_ref().is_some_and(|p| p.kind == FaultKind::Mem) {
            opts.fault = None;
        }
        let cfg = format!("{opts:?}");
        let module_h = uu_ir::module_hash(m);
        let fp = uu_core::pipeline_fingerprint();
        let lane = |seed: &[u8]| {
            let mut h = uu_ir::fnv1a(seed);
            h = uu_ir::fnv1a_continue(h, &module_h.to_le_bytes());
            h = uu_ir::fnv1a_continue(h, cfg.as_bytes());
            h = uu_ir::fnv1a_continue(h, &fp.to_le_bytes());
            h
        };
        Key {
            hi: lane(b"uu-key-hi"),
            lo: lane(b"uu-key-lo"),
        }
    }

    /// Extend a compile key into a run key with a workload tag (bench
    /// identity + workload version + simulator engine + mem-fault spec).
    pub fn run_key(compile: Key, workload: &str) -> Key {
        let lane = |seed: &[u8], base: u64| {
            let mut h = uu_ir::fnv1a(seed);
            h = uu_ir::fnv1a_continue(h, &base.to_le_bytes());
            h = uu_ir::fnv1a_continue(h, workload.as_bytes());
            h
        };
        Key {
            hi: lane(b"uu-run-hi", compile.hi),
            lo: lane(b"uu-run-lo", compile.lo),
        }
    }

    /// Compile `m` under `opts` through the cache. On a hit, `m` is
    /// replaced with the cached optimized module when `want_module` is
    /// set (skip-run callers that only consume the metadata pass `false`
    /// and keep their input module untouched). On a miss, the pipeline
    /// runs and the result is stored in every layer.
    pub fn compile(&self, m: &mut Module, opts: &PipelineOptions, want_module: bool) -> CachedCompile {
        let t0 = Instant::now();
        let key = CompileCache::compile_key(m, opts);

        // Memory layer: a hit is a clone of the stored value.
        if let Some((meta, module)) = self.mem_compile.lock().unwrap().get(&key) {
            let meta = meta.clone();
            if want_module {
                *m = module.clone();
            }
            self.note_compile_hit(&meta, true, t0);
            return CachedCompile { meta, hit: true };
        }

        // Disk layer: decode + validate; promote to memory on success.
        if let Some(Artifact::Compile { meta, ir }) = self.load(key) {
            if let Ok(module) = uu_ir::parse_module(&ir) {
                if want_module {
                    *m = module.clone();
                }
                self.mem_compile
                    .lock()
                    .unwrap()
                    .insert(key, (meta.clone(), module));
                self.note_compile_hit(&meta, false, t0);
                return CachedCompile { meta, hit: true };
            }
        }

        // Miss: run the real pipeline and populate both layers.
        let lookup = t0.elapsed();
        let t1 = Instant::now();
        let outcome = uu_core::compile(m, opts);
        let meta = CompileMeta {
            work: outcome.work,
            timed_out: outcome.timed_out,
            rung: outcome.rung,
            diag: outcome.failure_summary(),
            code_size: uu_analysis::cost::module_size(m),
        };
        self.mem_compile
            .lock()
            .unwrap()
            .insert(key, (meta.clone(), m.clone()));
        self.store(
            key,
            &Artifact::Compile {
                meta: meta.clone(),
                ir: m.to_string(),
            },
        );
        {
            let mut st = self.stats.lock().unwrap();
            st.compile_misses += 1;
            st.count_rung(meta.rung);
            st.lookup_micros += lookup.as_micros() as u64;
            st.compile_micros += t1.elapsed().as_micros() as u64;
        }
        CachedCompile { meta, hit: false }
    }

    /// Look up a cached measured run. `None` counts as a run miss — the
    /// caller is expected to measure and [`store_run`](Self::store_run).
    pub fn lookup_run(&self, key: Key) -> Option<(CompileMeta, RunRecord)> {
        let t0 = Instant::now();
        if let Some((meta, run)) = self.mem_run.lock().unwrap().get(&key) {
            let (meta, run) = (meta.clone(), run.clone());
            let mut st = self.stats.lock().unwrap();
            st.run_mem_hits += 1;
            st.work_saved += meta.work;
            st.count_rung(meta.rung);
            st.lookup_micros += t0.elapsed().as_micros() as u64;
            return Some((meta, run));
        }
        if let Some(Artifact::Run { meta, run }) = self.load(key) {
            self.mem_run
                .lock()
                .unwrap()
                .insert(key, (meta.clone(), run.clone()));
            let mut st = self.stats.lock().unwrap();
            st.run_disk_hits += 1;
            st.work_saved += meta.work;
            st.count_rung(meta.rung);
            st.lookup_micros += t0.elapsed().as_micros() as u64;
            return Some((meta, run));
        }
        let mut st = self.stats.lock().unwrap();
        st.run_misses += 1;
        st.lookup_micros += t0.elapsed().as_micros() as u64;
        None
    }

    /// Store a measured run in every layer.
    pub fn store_run(&self, key: Key, meta: &CompileMeta, run: &RunRecord) {
        self.mem_run
            .lock()
            .unwrap()
            .insert(key, (meta.clone(), run.clone()));
        self.store(
            key,
            &Artifact::Run {
                meta: meta.clone(),
                run: run.clone(),
            },
        );
    }

    /// Snapshot of the cumulative stats.
    pub fn stats(&self) -> CacheStats {
        self.stats.lock().unwrap().clone()
    }

    /// Mutate the stats under the lock — the hook the service layer uses
    /// to account admission, deadline, panic, quarantine and connection
    /// events in the same versioned structure as the cache counters.
    pub fn stats_mut<R>(&self, f: impl FnOnce(&mut CacheStats) -> R) -> R {
        f(&mut self.stats.lock().unwrap())
    }

    fn note_compile_hit(&self, meta: &CompileMeta, mem: bool, t0: Instant) {
        let mut st = self.stats.lock().unwrap();
        if mem {
            st.compile_mem_hits += 1;
        } else {
            st.compile_disk_hits += 1;
        }
        st.work_saved += meta.work;
        st.count_rung(meta.rung);
        st.lookup_micros += t0.elapsed().as_micros() as u64;
    }

    fn path_of(&self, key: Key) -> Option<PathBuf> {
        let dir = self.dir.as_ref()?;
        let hex = key.hex();
        Some(dir.join(&hex[..2]).join(format!("{hex}.uuart")))
    }

    fn load(&self, key: Key) -> Option<Artifact> {
        let path = self.path_of(key)?;
        let text = std::fs::read_to_string(path).ok()?;
        Artifact::decode(&text)
    }

    /// Best-effort atomic write; a full disk or permission error degrades
    /// to "not cached", never to a broken artifact (readers validate) —
    /// but every such degradation is now counted in
    /// [`CacheStats::store_errors`] instead of vanishing silently.
    fn store(&self, key: Key, artifact: &Artifact) {
        let Some(path) = self.path_of(key) else {
            return;
        };
        if STORE_FAULT.with(|f| f.get()) {
            self.note_store_error();
            return;
        }
        let Some(parent) = path.parent() else {
            return;
        };
        if std::fs::create_dir_all(parent).is_err() {
            self.note_store_error();
            return;
        }
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        if std::fs::write(&tmp, artifact.encode()).is_ok() {
            if std::fs::rename(&tmp, &path).is_err() {
                self.note_store_error();
            }
        } else {
            let _ = std::fs::remove_file(&tmp);
            self.note_store_error();
        }
    }

    fn note_store_error(&self) {
        self.stats.lock().unwrap().store_errors += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uu_core::Transform;

    fn module() -> Module {
        // A counted loop with a diamond in the body — enough structure for
        // every transform family to have real work to do.
        let text = "\
; module t
fn @k(i64 %n) -> i64 {
bb0:
  br bb1
bb1:
  %1 = phi i64 [0, bb0], [%6, bb5]
  %2 = phi i64 [0, bb0], [%5, bb5]
  %3 = icmp slt i64 %1, %n
  br i1 %3, bb2, bb6
bb2:
  %4 = icmp slt i64 %2, 50
  br i1 %4, bb3, bb4
bb3:
  %7 = add i64 %2, 1
  br bb5
bb4:
  %8 = add i64 %2, 2
  br bb5
bb5:
  %5 = phi i64 [%7, bb3], [%8, bb4]
  %6 = add i64 %1, 1
  br bb1
bb6:
  ret i64 %2
}
";
        uu_ir::parse_module(text).expect("test module parses")
    }

    fn opts() -> PipelineOptions {
        PipelineOptions {
            transform: Transform::Uu {
                factor: 2,
                unmerge: Default::default(),
            },
            ..Default::default()
        }
    }

    #[test]
    fn memory_hit_returns_identical_module_and_meta() {
        let cache = CompileCache::new_mem();
        let mut a = module();
        let first = cache.compile(&mut a, &opts(), true);
        assert!(!first.hit);
        let mut b = module();
        let second = cache.compile(&mut b, &opts(), true);
        assert!(second.hit);
        assert_eq!(first.meta, second.meta);
        assert_eq!(a.to_string(), b.to_string());
        let st = cache.stats();
        assert_eq!(st.compile_mem_hits, 1);
        assert_eq!(st.compile_misses, 1);
        assert_eq!(st.work_saved, first.meta.work);
    }

    #[test]
    fn disk_artifacts_survive_a_fresh_cache() {
        let dir = std::env::temp_dir().join(format!("uu-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let first;
        {
            let cache = CompileCache::at_dir(&dir).unwrap();
            let mut m = module();
            first = cache.compile(&mut m, &opts(), true);
            assert!(!first.hit);
        }
        // New cache object, empty memory: must hit via disk, with the
        // metadata of the original compile. The module text is the parse
        // round trip of the stored IR (SSA ids renumber; structure and
        // size are identical) and is itself a print↔parse fixed point.
        let cache = CompileCache::at_dir(&dir).unwrap();
        let mut warm = module();
        let r = cache.compile(&mut warm, &opts(), true);
        assert!(r.hit);
        assert_eq!(r.meta, first.meta);
        assert_eq!(cache.stats().compile_disk_hits, 1);
        let printed = warm.to_string();
        let reprinted = uu_ir::parse_module(&printed).unwrap().to_string();
        assert_eq!(printed, reprinted);
        assert_eq!(uu_analysis::cost::module_size(&warm), r.meta.code_size);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_artifact_degrades_to_miss() {
        let dir = std::env::temp_dir().join(format!("uu-cache-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = CompileCache::at_dir(&dir).unwrap();
        let mut m = module();
        cache.compile(&mut m, &opts(), true);
        // Flip bytes in the stored artifact body.
        let key = CompileCache::compile_key(&module(), &opts());
        let path = cache.path_of(key).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace("ret", "rot")).unwrap();
        // Fresh cache (empty memory): the damaged artifact must be a miss
        // that recompiles, not a wrong answer.
        let cache2 = CompileCache::at_dir(&dir).unwrap();
        let mut w = module();
        let r = cache2.compile(&mut w, &opts(), true);
        assert!(!r.hit);
        assert_eq!(w.to_string(), m.to_string());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_separates_module_config_and_workload() {
        let base = CompileCache::compile_key(&module(), &opts());
        assert_eq!(base, CompileCache::compile_key(&module(), &opts()));
        let other_opts = PipelineOptions {
            transform: Transform::Baseline,
            ..Default::default()
        };
        assert_ne!(base, CompileCache::compile_key(&module(), &other_opts));
        let run_a = CompileCache::run_key(base, "bench-a");
        let run_b = CompileCache::run_key(base, "bench-b");
        assert_ne!(run_a, run_b);
        assert_ne!(run_a, base);
    }

    #[test]
    fn mem_fault_plans_do_not_split_compile_keys() {
        let with_mem = PipelineOptions {
            fault: uu_core::FaultPlan::parse("mem@3").ok(),
            ..opts()
        };
        let with_panic = PipelineOptions {
            fault: uu_core::FaultPlan::parse("panic@3").ok(),
            ..opts()
        };
        let base = CompileCache::compile_key(&module(), &opts());
        assert_eq!(base, CompileCache::compile_key(&module(), &with_mem));
        assert_ne!(base, CompileCache::compile_key(&module(), &with_panic));
    }

    #[test]
    fn injected_store_fault_degrades_to_uncached_and_is_counted() {
        let dir = std::env::temp_dir().join(format!("uu-cache-enospc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let cache = CompileCache::at_dir(&dir).unwrap();
            inject_store_fault(true);
            let mut m = module();
            let r = cache.compile(&mut m, &opts(), true);
            inject_store_fault(false);
            assert!(!r.hit);
            assert_eq!(cache.stats().store_errors, 1, "failed store must be counted");
        }
        // Nothing reached disk: a fresh cache instance misses and
        // recompiles (counting a fresh miss, not serving a torn artifact).
        let cache = CompileCache::at_dir(&dir).unwrap();
        let mut m = module();
        let r = cache.compile(&mut m, &opts(), true);
        assert!(!r.hit, "a faulted store must not leave an artifact behind");
        assert_eq!(cache.stats().store_errors, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_records_round_trip_through_the_cache() {
        let cache = CompileCache::new_mem();
        let key = CompileCache::run_key(CompileCache::compile_key(&module(), &opts()), "w");
        assert!(cache.lookup_run(key).is_none());
        let meta = CompileMeta {
            work: 10,
            timed_out: false,
            rung: uu_core::Rung::Full,
            diag: String::new(),
            code_size: 5,
        };
        let run = RunRecord {
            time_ms: 1.5,
            checksum: 2.5,
            transfer_ms: 0.25,
            metrics: Default::default(),
        };
        cache.store_run(key, &meta, &run);
        assert_eq!(cache.lookup_run(key), Some((meta, run)));
        let st = cache.stats();
        assert_eq!(st.run_misses, 1);
        assert_eq!(st.run_mem_hits, 1);
    }
}

//! # uu-serve — compile-service daemon with a content-addressed cache
//!
//! The workspace's "millions of users" front end: a long-running daemon
//! that accepts IR modules + pipeline configurations over a
//! length-prefixed framed protocol (Unix socket or stdio), compiles them
//! through the fault-tolerant `uu-core` pipeline, and answers with
//! optimized IR, the degradation rung and compile metrics. Every compile
//! is backed by a **content-addressed artifact cache** keyed on
//!
//! ```text
//! (module hash, canonical pipeline config, pipeline-version fingerprint)
//! ```
//!
//! * the module hash is [`uu_ir::module_hash`] — FNV-1a 64 over the
//!   printed module text, stable across processes, machines and
//!   print → parse → print round trips;
//! * the canonical config is the `Debug` rendering of
//!   [`uu_core::PipelineOptions`] — every field that can change a
//!   compile's output is part of the key (transform, filter, position,
//!   rounds, thresholds, timeout, guard, fault plan, bisect limit);
//! * the pipeline-version fingerprint is
//!   [`uu_core::pipeline_fingerprint`] — bumping any pass version in
//!   [`uu_core::PASS_VERSIONS`] invalidates every cached artifact.
//!
//! The cache has an in-memory layer (modules kept as values — a hit is a
//! clone, bit-identical by construction) and an optional on-disk layer
//! (artifacts stored as printed IR + metadata under a content-addressed
//! path, surviving process restarts). Disk artifacts are validated on
//! load (format version, field integrity, IR content hash); anything
//! suspicious degrades to a cache miss and a fresh compile — the cache
//! can make a request faster, never wronger.
//!
//! Batch drivers reuse the same cache in process: `uu-harness` threads a
//! [`CompileCache`] through the sweep and the three-way study, so
//! fig6/fig8/fig9 points share compiles across (kernel, loop, config)
//! triples and a warm `results/` regeneration skips both the compile and
//! the simulation of every previously measured point — byte-identically,
//! at any `UU_JOBS`.
//!
//! Observability follows the typed-stats idiom: [`CacheStats`] is a
//! versioned struct with hit/miss/latency/rung counters, rendered as
//! stable JSON (`stats` protocol verb, `BENCH_serve.json`).

#![warn(missing_docs)]

pub mod artifact;
pub mod backoff;
pub mod cache;
pub mod client;
pub mod config;
pub mod fault;
pub mod proto;
pub mod server;
pub mod stats;

pub use artifact::{Artifact, CompileMeta, RunRecord, ARTIFACT_VERSION};
pub use backoff::Backoff;
pub use cache::{inject_store_fault, CachedCompile, CompileCache, Key};
pub use client::{connect_unix, request_over, Remote, RemoteCompile};
pub use config::{config_name, config_names, parse_config};
pub use fault::{ServeFault, ServeFaultKind, ServeFaultPlan};
pub use proto::{
    read_frame, read_frame_lenient, write_frame, FrameDefect, Message, MAX_FRAME, PROTO_VERSION,
    RESYNC_MAX,
};
pub use server::{
    serve_stdio, serve_stream, serve_unix, serve_unix_with, ServeOptions, Service,
    SERVICE_COMPILE_TIMEOUT,
};
pub use stats::{CacheStats, STATS_VERSION};

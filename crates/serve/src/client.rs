//! Client side: connect to a daemon and exchange framed messages.

use std::io::{self, Read, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::{Duration, Instant};

use crate::proto::{read_frame, write_frame, Message};

/// Connect to the daemon's Unix socket, retrying briefly — the common
/// pattern is "start daemon in background, then connect", and the bind
/// may land a few milliseconds after the client starts.
pub fn connect_unix(path: &Path, patience: Duration) -> io::Result<UnixStream> {
    let deadline = Instant::now() + patience;
    loop {
        match UnixStream::connect(path) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(e);
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

/// One request/response exchange over any framed stream. A clean EOF in
/// place of a response is an error (the server died mid-request).
pub fn request_over(stream: &mut (impl Read + Write), req: &Message) -> io::Result<Message> {
    write_frame(stream, req)?;
    read_frame(stream)?.ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "server closed the connection without responding",
        )
    })
}

//! Client side: connect to a daemon and exchange framed messages, with
//! deterministic backoff and automatic retry of `busy`/transient
//! failures — the client half of the service's overload contract.
//!
//! [`Remote`] is the batch-harness compile backend: one fresh connection
//! per request (HTTP/1.0 style, so a saturated daemon's worker pool is
//! never starved by idle persistent connections), `busy` responses
//! honored via their `retry-after-ms` hint, torn frames and mid-request
//! disconnects retried with capped exponential backoff. All sleeping is
//! wall-clock only — no retry decision feeds into report bytes, which is
//! why cached sweeps through a saturated daemon stay byte-identical to
//! cacheless runs.

use std::io::{self, Read, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use crate::artifact::CompileMeta;
use crate::backoff::Backoff;
use crate::proto::{read_frame, write_frame, Message};
use uu_core::Rung;

/// Connect to the daemon's Unix socket, retrying with jittered
/// exponential backoff until `patience` runs out — the common pattern is
/// "start daemon in background, then connect", and the bind may land a
/// few milliseconds after the client starts. (The old implementation
/// re-polled `Instant::now` on a fixed 20 ms cadence; backoff both
/// reacts faster when the socket appears quickly and wastes less when it
/// doesn't.)
pub fn connect_unix(path: &Path, patience: Duration) -> io::Result<UnixStream> {
    let deadline = Instant::now() + patience;
    // Seeded from the socket path: deterministic per target, decorrelated
    // across daemons.
    let mut backoff = Backoff::with_limits(uu_ir::fnv1a(path.as_os_str().as_encoded_bytes()), 2, 100);
    loop {
        match UnixStream::connect(path) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(e);
                }
                std::thread::sleep(backoff.next_delay());
            }
        }
    }
}

/// One request/response exchange over any framed stream. A clean EOF in
/// place of a response is an error (the server died mid-request).
pub fn request_over(stream: &mut (impl Read + Write), req: &Message) -> io::Result<Message> {
    write_frame(stream, req)?;
    read_frame(stream)?.ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "server closed the connection without responding",
        )
    })
}

/// The result of a compile routed through a daemon.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteCompile {
    /// Compile metadata, exactly as the local pipeline would report it.
    pub meta: CompileMeta,
    /// Whether the daemon served it from its cache.
    pub hit: bool,
    /// The optimized module text (when requested).
    pub module_text: Option<String>,
}

/// A handle to a compile daemon: socket path + retry policy. Cloneable
/// and cheap; each request opens its own connection.
#[derive(Debug, Clone)]
pub struct Remote {
    socket: PathBuf,
    /// Maximum request attempts (first try + retries).
    max_attempts: u32,
    /// Patience for each connect (the daemon may still be binding, or
    /// busy accepting).
    patience: Duration,
    /// Base seed for the per-request backoff jitter.
    seed: u64,
}

impl Remote {
    /// Default request attempts (first try + retries). Sized so that a
    /// client bouncing off a saturated daemon outlasts multi-second
    /// stalls: with the default backoff the cumulative hinted wait
    /// exceeds 2.5 s well before the budget runs out.
    pub const DEFAULT_ATTEMPTS: u32 = 16;

    /// A remote over the daemon socket at `socket`.
    pub fn new(socket: impl Into<PathBuf>) -> Remote {
        let socket = socket.into();
        let seed = uu_ir::fnv1a(socket.as_os_str().as_encoded_bytes());
        Remote {
            socket,
            max_attempts: Self::DEFAULT_ATTEMPTS,
            patience: Duration::from_secs(5),
            seed,
        }
    }

    /// Build from `UU_SERVE_SOCKET`; `None` when unset or empty (no
    /// daemon configured — callers compile locally).
    pub fn from_env() -> Option<Remote> {
        let v = std::env::var("UU_SERVE_SOCKET").ok()?;
        let v = v.trim();
        (!v.is_empty()).then(|| Remote::new(v))
    }

    /// Override the retry budget (1 = single attempt, no retries).
    pub fn with_attempts(mut self, attempts: u32) -> Remote {
        self.max_attempts = attempts.max(1);
        self
    }

    /// The daemon socket this remote talks to.
    pub fn socket(&self) -> &Path {
        &self.socket
    }

    /// Send `req` on a fresh connection, retrying `busy` responses
    /// (honoring their `retry-after-ms` hint), `error` responses marked
    /// `transient: 1`, and transport failures (torn frames, disconnects),
    /// with capped exponential backoff jittered deterministically from
    /// the request body. Non-transient `error` responses (bad request,
    /// quarantined module) are returned as-is — retrying them is
    /// pointless by construction.
    pub fn request(&self, req: &Message) -> io::Result<Message> {
        let mut backoff = Backoff::new(self.seed ^ uu_ir::fnv1a(req.body.as_bytes()));
        let mut last_io: Option<io::Error> = None;
        let mut last_resp: Option<Message> = None;
        for _ in 0..self.max_attempts.max(1) {
            match connect_unix(&self.socket, self.patience) {
                Ok(mut conn) => match request_over(&mut conn, req) {
                    Ok(resp) => {
                        if resp.verb == "busy" {
                            let hint =
                                resp.get("retry-after-ms").and_then(|v| v.parse::<u64>().ok());
                            last_resp = Some(resp);
                            backoff.sleep(hint);
                        } else if resp.verb == "error" && resp.get("transient") == Some("1") {
                            last_resp = Some(resp);
                            backoff.sleep(None);
                        } else {
                            return Ok(resp);
                        }
                    }
                    Err(e) => {
                        last_io = Some(e);
                        backoff.sleep(None);
                    }
                },
                Err(e) => {
                    last_io = Some(e);
                    backoff.sleep(None);
                }
            }
        }
        // Retry budget exhausted: surface the last structured response if
        // there was one (the caller sees `busy`/`error` rather than a
        // synthetic I/O error), else the last transport failure.
        match last_resp {
            Some(resp) => Ok(resp),
            None => Err(last_io.unwrap_or_else(|| {
                io::Error::new(io::ErrorKind::TimedOut, "request retries exhausted")
            })),
        }
    }

    /// Compile `module_text` under the named config through the daemon.
    /// `filter` selects one loop (function name + deterministic loop id);
    /// `fault` forwards a pipeline fault spec for drills. Any non-`ok`
    /// outcome (including a still-`busy` daemon after the retry budget)
    /// becomes an `io::Error`, which batch callers treat as "daemon
    /// unavailable — compile locally".
    pub fn compile(
        &self,
        module_text: &str,
        config: &str,
        filter: Option<(&str, usize)>,
        fault: Option<&str>,
        want_module: bool,
    ) -> io::Result<RemoteCompile> {
        let mut req = Message::new("compile")
            .header("config", config)
            .header("want-module", u8::from(want_module));
        if let Some((func, loop_id)) = filter {
            req = req.header("filter-func", func).header("filter-loop", loop_id);
        }
        if let Some(spec) = fault {
            req = req.header("fault", spec);
        }
        req = req.with_body(module_text);
        let resp = self.request(&req)?;
        if resp.verb != "ok" {
            let reason = resp.get("reason").unwrap_or("(no reason)").to_string();
            return Err(io::Error::new(
                io::ErrorKind::Other,
                format!("daemon answered `{}`: {reason}", resp.verb),
            ));
        }
        let meta = parse_meta(&resp)?;
        Ok(RemoteCompile {
            meta,
            hit: resp.get("cached") == Some("hit"),
            module_text: want_module.then(|| resp.body.clone()),
        })
    }
}

/// Reconstruct [`CompileMeta`] from an `ok` compile response's headers.
/// All five fields round-trip losslessly: they are integers, a rung
/// label and a single-line diag string.
fn parse_meta(resp: &Message) -> io::Result<CompileMeta> {
    let field = |name: &str| {
        resp.get(name).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("compile response is missing the `{name}` header"),
            )
        })
    };
    let bad = |name: &str, v: &str| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("compile response header `{name}` is malformed: {v:?}"),
        )
    };
    let work = field("work")?;
    let code_size = field("code-size")?;
    let rung = field("rung")?;
    let timed_out = field("timed-out")?;
    let diag = match resp.get("diag") {
        None => String::new(),
        Some(d) => crate::artifact::unescape(d).ok_or_else(|| bad("diag", d))?,
    };
    Ok(CompileMeta {
        work: work.parse().map_err(|_| bad("work", work))?,
        timed_out: timed_out == "1",
        rung: Rung::from_str(rung).ok_or_else(|| bad("rung", rung))?,
        diag,
        code_size: code_size.parse().map_err(|_| bad("code-size", code_size))?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CompileCache;
    use crate::server::{serve_unix_with, ServeOptions};
    use crate::fault::ServeFaultPlan;

    const MODULE: &str = "\
; module t
fn @k(i64 %n) -> i64 {
bb0:
  br bb1
bb1:
  %1 = phi i64 [0, bb0], [%2, bb2]
  %3 = icmp slt i64 %1, %n
  br i1 %3, bb2, bb3
bb2:
  %2 = add i64 %1, 1
  br bb1
bb3:
  ret i64 %1
}
";

    fn with_daemon(
        opts: ServeOptions,
        f: impl FnOnce(&Remote),
    ) -> crate::stats::CacheStats {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "uu-client-test-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::SeqCst)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let sock = dir.join("d.sock");
        let cache = CompileCache::new_mem();
        let stats = std::thread::scope(|s| {
            let daemon = {
                let sock = sock.clone();
                let cache = &cache;
                s.spawn(move || serve_unix_with(&sock, cache, opts))
            };
            let remote = Remote::new(&sock);
            // Contain assertion failures so the daemon still gets its
            // shutdown — a panicking closure must fail the test, not hang
            // the scope join forever.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&remote)));
            let bye = remote.request(&Message::new("shutdown")).unwrap();
            assert_eq!(bye.verb, "ok");
            daemon.join().unwrap().unwrap();
            if let Err(p) = outcome {
                std::panic::resume_unwind(p);
            }
            cache.stats()
        });
        let _ = std::fs::remove_dir_all(&dir);
        stats
    }

    #[test]
    fn remote_compile_round_trips_meta_and_module() {
        with_daemon(ServeOptions::default(), |remote| {
            let a = remote.compile(MODULE, "unroll2", None, None, true).unwrap();
            assert!(!a.hit);
            assert_eq!(a.meta.rung, Rung::Full);
            assert!(a.meta.work > 0);
            let text = a.module_text.as_deref().unwrap();
            assert!(text.contains("fn @k"));
            // Second time: a hit with identical metadata and bytes.
            let b = remote.compile(MODULE, "unroll2", None, None, true).unwrap();
            assert!(b.hit);
            assert_eq!(a.meta, b.meta);
            assert_eq!(a.module_text, b.module_text);
            // Filtered compiles are keyed separately.
            let filtered = remote
                .compile(MODULE, "unroll2", Some(("k", 0)), None, false)
                .unwrap();
            assert_eq!(filtered.module_text, None);
            assert_eq!(filtered.meta.rung, Rung::Full);
        });
    }

    #[test]
    fn remote_retries_through_torn_frames_and_disconnects() {
        let stats = with_daemon(
            ServeOptions {
                fault: Some(ServeFaultPlan::parse("torn@0,disconnect@1").unwrap()),
                ..ServeOptions::default()
            },
            |remote| {
                // Request 0 is torn, its retry (request 1) is disconnected,
                // the second retry (request 2) succeeds — transparently.
                // The torn request's compile landed in the cache before its
                // response was damaged, so the winning retry is a hit.
                let r = remote.compile(MODULE, "uu2", None, None, true).unwrap();
                assert_eq!(r.meta.rung, Rung::Full);
                assert!(r.hit);
            },
        );
        assert_eq!(stats.requests, 4, "3 compile attempts + shutdown");
    }

    #[test]
    fn remote_retries_transient_panics_but_returns_quarantine_as_error() {
        let stats = with_daemon(
            ServeOptions {
                breaker_k: 2,
                fault: Some(ServeFaultPlan::parse("panic@0,panic@1").unwrap()),
                ..ServeOptions::default()
            },
            |remote| {
                // Two injected panics trip the K=2 breaker while the client
                // is retrying; the third attempt is refused as quarantined,
                // which is NOT retried — compile() surfaces it as an error.
                let e = remote.compile(MODULE, "uu2", None, None, true).unwrap_err();
                assert!(e.to_string().contains("quarantined"), "{e}");
            },
        );
        assert_eq!(stats.handler_panics, 2);
        assert_eq!(stats.quarantined_rejects, 1);
    }

    #[test]
    fn remote_bad_requests_fail_without_retry_burn() {
        let stats = with_daemon(ServeOptions::default(), |remote| {
            let e = remote.compile(MODULE, "warp9", None, None, true).unwrap_err();
            assert!(e.to_string().contains("unknown config"), "{e}");
        });
        // One compile attempt only: a non-transient error is not retried.
        assert_eq!(stats.requests, 2, "1 compile + shutdown");
    }
}

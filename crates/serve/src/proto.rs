//! Wire protocol: length-prefixed frames carrying a small text message.
//!
//! A frame is a 4-byte little-endian payload length followed by that many
//! bytes of UTF-8. The payload is a [`Message`]: a status line
//! `uu-serve/1 <verb>`, zero or more `key: value` header lines, a blank
//! line, then a free-form body (for `compile` requests the body is the
//! module text; for responses it is the optimized module text).
//!
//! Frames are capped at [`MAX_FRAME`] bytes — a malformed or hostile
//! length prefix fails fast instead of allocating gigabytes.

use std::io::{self, Read, Write};

/// Protocol version carried in every status line.
pub const PROTO_VERSION: u32 = 1;

/// Maximum frame payload size (16 MiB — far above any module we print).
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Largest declared length [`read_frame_lenient`] will drain to
/// resynchronize after an oversized frame (4 × [`MAX_FRAME`]). Beyond
/// this the stream position is declared unrecoverable: draining, say, a
/// `u32::MAX` prefix would stall the connection for gigabytes on the
/// word of a peer that has already proven itself confused.
pub const RESYNC_MAX: u32 = 4 * MAX_FRAME;

/// A parsed protocol message: verb, headers, body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Request or response verb (`compile`, `stats`, `ping`, `shutdown`,
    /// `ok`, `error`).
    pub verb: String,
    /// Ordered `key: value` headers.
    pub headers: Vec<(String, String)>,
    /// Free-form body (module text, stats JSON, or empty).
    pub body: String,
}

impl Message {
    /// A message with the given verb and no headers or body.
    pub fn new(verb: &str) -> Message {
        Message {
            verb: verb.to_string(),
            headers: Vec::new(),
            body: String::new(),
        }
    }

    /// Append a header. Keys and values must be single-line.
    pub fn header(mut self, key: &str, value: impl std::fmt::Display) -> Message {
        self.headers.push((key.to_string(), value.to_string()));
        self
    }

    /// Set the body.
    pub fn with_body(mut self, body: impl Into<String>) -> Message {
        self.body = body.into();
        self
    }

    /// First value of a header, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Serialize to the wire text.
    pub fn encode(&self) -> String {
        let mut s = format!("uu-serve/{PROTO_VERSION} {}\n", self.verb);
        for (k, v) in &self.headers {
            s.push_str(&format!("{k}: {v}\n"));
        }
        s.push('\n');
        s.push_str(&self.body);
        s
    }

    /// Parse the wire text; `None` on version skew or malformed framing.
    pub fn decode(text: &str) -> Option<Message> {
        let (head, body) = text.split_once("\n\n")?;
        let mut lines = head.lines();
        let status = lines.next()?;
        let (proto, verb) = status.split_once(' ')?;
        if proto != format!("uu-serve/{PROTO_VERSION}") || verb.is_empty() {
            return None;
        }
        let mut headers = Vec::new();
        for l in lines {
            let (k, v) = l.split_once(": ")?;
            headers.push((k.to_string(), v.to_string()));
        }
        Some(Message {
            verb: verb.to_string(),
            headers,
            body: body.to_string(),
        })
    }
}

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, msg: &Message) -> io::Result<()> {
    let payload = msg.encode();
    let len = payload.len();
    if len > MAX_FRAME as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {len} bytes exceeds MAX_FRAME"),
        ));
    }
    w.write_all(&(len as u32).to_le_bytes())?;
    w.write_all(payload.as_bytes())?;
    w.flush()
}

/// Read one length-prefixed frame. `Ok(None)` on clean EOF before the
/// length prefix (peer hung up between requests).
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Message>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let text = String::from_utf8(payload)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))?;
    let msg = Message::decode(&text)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed message"))?;
    Ok(Some(msg))
}

/// Why a received frame could not be turned into a [`Message`]. Carried
/// by [`read_frame_lenient`] so a server can answer with a structured
/// `error` response instead of killing the connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameDefect {
    /// Declared length exceeds [`MAX_FRAME`]; the payload was drained, so
    /// the stream is back at a frame boundary and the connection can
    /// continue.
    Oversized {
        /// The declared payload length.
        len: u32,
    },
    /// Declared length exceeds even [`RESYNC_MAX`]; nothing was drained
    /// and the connection must be closed after the error response.
    Unrecoverable {
        /// The declared payload length.
        len: u32,
    },
    /// The payload was not valid UTF-8.
    NotUtf8,
    /// The payload was UTF-8 but not a valid message (version skew, bad
    /// status line, malformed header, missing blank line).
    Malformed,
}

impl FrameDefect {
    /// Whether the stream is positioned at a frame boundary afterwards —
    /// i.e. whether the connection can keep serving requests once the
    /// error response is sent.
    pub fn recoverable(&self) -> bool {
        !matches!(self, FrameDefect::Unrecoverable { .. })
    }

    /// Single-line description, suitable for an error-response header.
    pub fn describe(&self) -> String {
        match self {
            FrameDefect::Oversized { len } => {
                format!("frame length {len} exceeds MAX_FRAME ({MAX_FRAME})")
            }
            FrameDefect::Unrecoverable { len } => {
                format!("frame length {len} exceeds resync limit ({RESYNC_MAX})")
            }
            FrameDefect::NotUtf8 => "frame is not UTF-8".to_string(),
            FrameDefect::Malformed => "malformed message".to_string(),
        }
    }
}

impl std::fmt::Display for FrameDefect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.describe())
    }
}

/// Read one frame, degrading malformed input to a [`FrameDefect`]
/// instead of an error — the server-side read path.
///
/// Returns:
///
/// * `Ok(None)` — clean EOF before the length prefix;
/// * `Ok(Some(Ok(msg)))` — a well-formed frame;
/// * `Ok(Some(Err(defect)))` — a damaged frame the caller should answer
///   with a structured `error` response; check
///   [`recoverable`](FrameDefect::recoverable) to decide whether the
///   connection survives. Oversized-but-drainable payloads (up to
///   [`RESYNC_MAX`]) are consumed in fixed-size chunks so the stream is
///   left at the next frame boundary without ever allocating the
///   declared length;
/// * `Err(e)` — a genuine transport failure (including a peer that lied
///   about its length and hung up mid-payload).
pub fn read_frame_lenient(r: &mut impl Read) -> io::Result<Option<Result<Message, FrameDefect>>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf);
    if len > RESYNC_MAX {
        return Ok(Some(Err(FrameDefect::Unrecoverable { len })));
    }
    if len > MAX_FRAME {
        // Drain the oversized payload in bounded chunks to resynchronize.
        let mut chunk = [0u8; 64 * 1024];
        let mut left = len as usize;
        while left > 0 {
            let take = left.min(chunk.len());
            r.read_exact(&mut chunk[..take])?;
            left -= take;
        }
        return Ok(Some(Err(FrameDefect::Oversized { len })));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let Ok(text) = String::from_utf8(payload) else {
        return Ok(Some(Err(FrameDefect::NotUtf8)));
    };
    Ok(Some(match Message::decode(&text) {
        Some(msg) => Ok(msg),
        None => Err(FrameDefect::Malformed),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_round_trips() {
        let m = Message::new("compile")
            .header("config", "uu4")
            .header("want-module", 1)
            .with_body("fn @k() -> void {\nbb0:\n  ret void\n}\n");
        assert_eq!(Message::decode(&m.encode()), Some(m));
    }

    #[test]
    fn empty_body_and_headers_round_trip() {
        let m = Message::new("ping");
        assert_eq!(Message::decode(&m.encode()), Some(m));
    }

    #[test]
    fn version_skew_and_damage_are_rejected() {
        assert_eq!(Message::decode("uu-serve/2 ping\n\n"), None);
        assert_eq!(Message::decode("uu-serve/1 \n\n"), None);
        assert_eq!(Message::decode("uu-serve/1 ping\nbad header\n\n"), None);
        assert_eq!(Message::decode("no blank line"), None);
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let m = Message::new("compile").header("bench", "mandelbrot").with_body("body");
        let mut buf = Vec::new();
        write_frame(&mut buf, &m).unwrap();
        write_frame(&mut buf, &Message::new("ping")).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), Some(m));
        assert_eq!(read_frame(&mut r).unwrap(), Some(Message::new("ping")));
        assert_eq!(read_frame(&mut r).unwrap(), None); // clean EOF
    }

    #[test]
    fn oversized_length_prefix_fails_without_allocating() {
        let mut r: &[u8] = &u32::MAX.to_le_bytes();
        let e = read_frame(&mut r).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_payload_is_an_error_not_eof() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&100u32.to_le_bytes());
        buf.extend_from_slice(b"short");
        let mut r = &buf[..];
        assert!(read_frame(&mut r).is_err());
    }

    // --- lenient read path: every malformed-frame shape must yield a
    // --- defect (answerable with a structured error), not a dead stream.

    #[test]
    fn lenient_oversized_frame_is_drained_and_the_stream_survives() {
        let len = MAX_FRAME + 3;
        let mut buf = Vec::new();
        buf.extend_from_slice(&len.to_le_bytes());
        buf.resize(buf.len() + len as usize, b'x');
        write_frame(&mut buf, &Message::new("ping")).unwrap();
        let mut r = &buf[..];
        let defect = read_frame_lenient(&mut r).unwrap().unwrap().unwrap_err();
        assert_eq!(defect, FrameDefect::Oversized { len });
        assert!(defect.recoverable());
        // Resynchronized: the next frame parses cleanly.
        assert_eq!(
            read_frame_lenient(&mut r).unwrap().unwrap().unwrap(),
            Message::new("ping")
        );
    }

    #[test]
    fn lenient_hostile_length_prefix_is_unrecoverable_without_allocating() {
        let mut r: &[u8] = &u32::MAX.to_le_bytes();
        let defect = read_frame_lenient(&mut r).unwrap().unwrap().unwrap_err();
        assert_eq!(defect, FrameDefect::Unrecoverable { len: u32::MAX });
        assert!(!defect.recoverable());
    }

    #[test]
    fn lenient_non_utf8_payload_is_a_defect_not_an_error() {
        let payload = [0xffu8, 0xfe, 0x00, 0x80];
        let mut buf = Vec::new();
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&payload);
        write_frame(&mut buf, &Message::new("ping")).unwrap();
        let mut r = &buf[..];
        let defect = read_frame_lenient(&mut r).unwrap().unwrap().unwrap_err();
        assert_eq!(defect, FrameDefect::NotUtf8);
        assert!(defect.recoverable());
        assert_eq!(
            read_frame_lenient(&mut r).unwrap().unwrap().unwrap(),
            Message::new("ping")
        );
    }

    #[test]
    fn lenient_malformed_payloads_are_defects_per_shape() {
        // Version skew, empty verb, headerless garbage, missing blank line.
        for bad in [
            "uu-serve/2 ping\n\n",
            "uu-serve/1 \n\n",
            "uu-serve/1 ping\nbad header\n\n",
            "no blank line",
        ] {
            let mut buf = Vec::new();
            buf.extend_from_slice(&(bad.len() as u32).to_le_bytes());
            buf.extend_from_slice(bad.as_bytes());
            let mut r = &buf[..];
            let defect = read_frame_lenient(&mut r).unwrap().unwrap().unwrap_err();
            assert_eq!(defect, FrameDefect::Malformed, "{bad:?}");
            assert!(defect.recoverable());
        }
    }

    #[test]
    fn lenient_clean_eof_and_truncation_mirror_the_strict_reader() {
        let mut r: &[u8] = &[];
        assert!(read_frame_lenient(&mut r).unwrap().is_none());
        let mut buf = Vec::new();
        buf.extend_from_slice(&100u32.to_le_bytes());
        buf.extend_from_slice(b"short");
        let mut t = &buf[..];
        assert!(read_frame_lenient(&mut t).is_err());
    }
}

//! Typed, versioned cache/service statistics — the observability surface
//! of the compile service, following the workspace's versioned-stats
//! idiom (schema version field + stable JSON rendering).

use uu_core::Rung;

/// Stats schema version; bump on any field change so dashboards detect
/// skew instead of misreading counters. Version 2 added the service
/// counters (admission, deadlines, panics, quarantine, frame defects,
/// accept/connection/store errors).
pub const STATS_VERSION: u32 = 2;

/// Counters for one cache (and the service wrapped around it).
///
/// All counts are cumulative since cache creation. "Memory" and "disk"
/// hits are disjoint: a request served from memory never touches disk.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CacheStats {
    /// Compile requests served from the in-memory layer.
    pub compile_mem_hits: u64,
    /// Compile requests served from the on-disk layer.
    pub compile_disk_hits: u64,
    /// Compile requests that ran the pipeline.
    pub compile_misses: u64,
    /// Measure requests served from the in-memory layer.
    pub run_mem_hits: u64,
    /// Measure requests served from the on-disk layer.
    pub run_disk_hits: u64,
    /// Measure requests that ran the simulator.
    pub run_misses: u64,
    /// Modeled compile work saved by hits (deterministic clock units).
    pub work_saved: u64,
    /// Wall time spent in cache lookups (µs).
    pub lookup_micros: u64,
    /// Wall time spent running actual compiles on misses (µs).
    pub compile_micros: u64,
    /// Per-rung compile outcomes, indexed by [`Rung::index`] (hits count
    /// the rung recorded in the artifact).
    pub rung_counts: [u64; 4],
    /// Requests admitted past admission control (all verbs).
    pub requests: u64,
    /// Requests shed with a `busy` response because the in-flight gauge
    /// was at its cap.
    pub busy_shed: u64,
    /// Compiles that hit their per-request deadline on the deterministic
    /// work clock (answered, degraded, `timed-out: true`).
    pub deadline_hits: u64,
    /// Handler panics contained by the per-request guard.
    pub handler_panics: u64,
    /// Module hashes currently quarantined by the crash-loop breaker.
    pub quarantined_modules: u64,
    /// Requests rejected because their module hash was quarantined.
    pub quarantined_rejects: u64,
    /// Damaged frames answered with a structured error (oversized,
    /// non-UTF-8, malformed).
    pub frame_defects: u64,
    /// Failed `accept` calls on the listening socket.
    pub accept_errors: u64,
    /// Connections that died with an I/O error mid-conversation.
    pub conn_errors: u64,
    /// Cache artifact writes that failed (disk full, permissions) and
    /// degraded to "not cached".
    pub store_errors: u64,
}

impl CacheStats {
    /// Total compile+run hits across both layers.
    pub fn hits(&self) -> u64 {
        self.compile_mem_hits + self.compile_disk_hits + self.run_mem_hits + self.run_disk_hits
    }

    /// Total compile+run misses.
    pub fn misses(&self) -> u64 {
        self.compile_misses + self.run_misses
    }

    /// Hit fraction in `[0, 1]`; 0 when no lookups happened yet.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits() + self.misses();
        if total == 0 {
            0.0
        } else {
            self.hits() as f64 / total as f64
        }
    }

    /// Record a compile outcome rung.
    pub fn count_rung(&mut self, rung: Rung) {
        self.rung_counts[rung.index()] += 1;
    }

    /// Render as stable JSON (object key order is fixed; validates under
    /// `uu-jsonck`).
    pub fn to_json(&self) -> String {
        let rungs = Rung::ALL
            .iter()
            .map(|r| format!("    \"{}\": {}", r.as_str(), self.rung_counts[r.index()]))
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            concat!(
                "{{\n",
                "  \"stats_version\": {},\n",
                "  \"compile_mem_hits\": {},\n",
                "  \"compile_disk_hits\": {},\n",
                "  \"compile_misses\": {},\n",
                "  \"run_mem_hits\": {},\n",
                "  \"run_disk_hits\": {},\n",
                "  \"run_misses\": {},\n",
                "  \"hit_rate\": {:.4},\n",
                "  \"work_saved\": {},\n",
                "  \"lookup_micros\": {},\n",
                "  \"compile_micros\": {},\n",
                "  \"requests\": {},\n",
                "  \"busy_shed\": {},\n",
                "  \"deadline_hits\": {},\n",
                "  \"handler_panics\": {},\n",
                "  \"quarantined_modules\": {},\n",
                "  \"quarantined_rejects\": {},\n",
                "  \"frame_defects\": {},\n",
                "  \"accept_errors\": {},\n",
                "  \"conn_errors\": {},\n",
                "  \"store_errors\": {},\n",
                "  \"rung_counts\": {{\n{}\n  }}\n",
                "}}\n"
            ),
            STATS_VERSION,
            self.compile_mem_hits,
            self.compile_disk_hits,
            self.compile_misses,
            self.run_mem_hits,
            self.run_disk_hits,
            self.run_misses,
            self.hit_rate(),
            self.work_saved,
            self.lookup_micros,
            self.compile_micros,
            self.requests,
            self.busy_shed,
            self.deadline_hits,
            self.handler_panics,
            self.quarantined_modules,
            self.quarantined_rejects,
            self.frame_defects,
            self.accept_errors,
            self.conn_errors,
            self.store_errors,
            rungs,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_is_well_defined() {
        let mut s = CacheStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        s.compile_mem_hits = 3;
        s.compile_misses = 1;
        assert_eq!(s.hit_rate(), 0.75);
        s.run_disk_hits = 4;
        assert_eq!(s.hit_rate(), 0.875);
    }

    #[test]
    fn json_is_valid_and_versioned() {
        let mut s = CacheStats::default();
        s.compile_misses = 2;
        s.count_rung(Rung::Full);
        s.count_rung(Rung::DroppedPass);
        s.busy_shed = 3;
        s.handler_panics = 1;
        s.quarantined_modules = 1;
        let j = s.to_json();
        uu_check::json::validate(&j).expect("stats JSON must parse");
        assert!(j.contains("\"stats_version\": 2"));
        assert!(j.contains("\"dropped-pass\": 1"));
        assert!(j.contains("\"hit_rate\": 0.0000"));
        assert!(j.contains("\"busy_shed\": 3"));
        assert!(j.contains("\"handler_panics\": 1"));
        assert!(j.contains("\"quarantined_modules\": 1"));
    }
}

//! Deterministic service-level fault injection (`UU_SERVE_FAULT`).
//!
//! PR 4's `UU_FAULT` grammar exercises every *pipeline* recovery path;
//! this module extends the same discipline one layer up, to the service
//! boundary. A plan is a comma-separated list of specs, each mirroring
//! the `UU_FAULT` shape:
//!
//! ```text
//! UU_SERVE_FAULT=<kind>@<index>[:<seed>][,<kind>@<index>[:<seed>]...]
//! kind  := torn | disconnect | slow | panic | disk-full
//! index := zero-based compile-request index at which the fault fires
//!          (compile requests are counted in admission order, across all
//!          connections; control verbs don't advance the counter)
//! seed  := u64 (decimal or 0x-hex); for `slow` it is the injected stall
//!          in milliseconds (default 100)
//! ```
//!
//! The index counts *admitted compile requests* in admission order — a
//! global counter the service increments under its in-flight gauge — so
//! a plan fires at a deterministic point of the request stream
//! regardless of how many workers race on connections. Each spec fires
//! exactly once (its index is consumed as the counter passes it).
//!
//! What each kind injects (and which recovery path it exercises):
//!
//! * `torn` — the response frame is truncated mid-payload and the
//!   connection closed (client-side retry of transient I/O);
//! * `disconnect` — the connection is dropped without any response
//!   (client-side retry of unexpected EOF);
//! * `slow` — the handler stalls for `seed` ms while holding its
//!   in-flight slot (admission control / `busy` shedding under load);
//! * `panic` — the handler panics mid-request (containment +
//!   `handler_panics` accounting + the crash-loop circuit breaker);
//! * `disk-full` — every cache store during the request fails as if the
//!   disk were full (best-effort store + `store_errors` accounting).

use uu_core::parse_at_seed;

/// Which service-level fault a spec injects. See the module docs for the
/// recovery path each kind exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeFaultKind {
    /// Truncate the response frame and close the connection.
    Torn,
    /// Drop the connection without responding.
    Disconnect,
    /// Stall the handler for `seed` milliseconds.
    Slow,
    /// Panic inside the request handler.
    Panic,
    /// Fail every cache store during the request (synthetic ENOSPC).
    DiskFull,
}

impl ServeFaultKind {
    /// The spec-grammar keyword.
    pub fn as_str(&self) -> &'static str {
        match self {
            ServeFaultKind::Torn => "torn",
            ServeFaultKind::Disconnect => "disconnect",
            ServeFaultKind::Slow => "slow",
            ServeFaultKind::Panic => "panic",
            ServeFaultKind::DiskFull => "disk-full",
        }
    }
}

/// One `<kind>@<index>[:<seed>]` spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeFault {
    /// What to inject.
    pub kind: ServeFaultKind,
    /// Zero-based admitted-request index at which the fault fires.
    pub at: u64,
    /// Seed (stall milliseconds for `slow`; reserved otherwise).
    pub seed: u64,
}

impl ServeFault {
    /// Render the spec back in grammar form.
    pub fn spec(&self) -> String {
        if self.seed == 0 {
            format!("{}@{}", self.kind.as_str(), self.at)
        } else {
            format!("{}@{}:{}", self.kind.as_str(), self.at, self.seed)
        }
    }
}

/// A deterministic service fault plan: a list of specs, each firing at
/// its admitted-request index. Parsed from `UU_SERVE_FAULT`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeFaultPlan {
    /// The individual fault specs, in spec order.
    pub faults: Vec<ServeFault>,
}

impl ServeFaultPlan {
    /// Parse a comma-separated spec list (see the module-level grammar).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed spec.
    pub fn parse(spec: &str) -> Result<ServeFaultPlan, String> {
        let mut faults = Vec::new();
        for part in spec.split(',') {
            let s = part.trim();
            if s.is_empty() {
                continue;
            }
            let (kind_s, rest) = s
                .split_once('@')
                .ok_or_else(|| format!("serve fault spec `{s}` is missing `@<index>`"))?;
            let kind = match kind_s {
                "torn" => ServeFaultKind::Torn,
                "disconnect" => ServeFaultKind::Disconnect,
                "slow" => ServeFaultKind::Slow,
                "panic" => ServeFaultKind::Panic,
                "disk-full" => ServeFaultKind::DiskFull,
                other => {
                    return Err(format!(
                        "unknown serve fault kind `{other}` \
                         (expected torn|disconnect|slow|panic|disk-full)"
                    ))
                }
            };
            let (at, seed) = parse_at_seed(rest)?;
            faults.push(ServeFault { kind, at, seed });
        }
        Ok(ServeFaultPlan { faults })
    }

    /// Read the plan from the `UU_SERVE_FAULT` environment variable.
    /// `None` when unset or empty.
    ///
    /// # Panics
    ///
    /// Panics on a malformed spec, mirroring [`uu_core::FaultPlan`]'s
    /// `from_env`: a misconfigured injection run must fail loudly.
    pub fn from_env() -> Option<ServeFaultPlan> {
        let v = std::env::var("UU_SERVE_FAULT").ok()?;
        if v.trim().is_empty() {
            return None;
        }
        let plan = Self::parse(&v).unwrap_or_else(|e| panic!("UU_SERVE_FAULT: {e}"));
        (!plan.faults.is_empty()).then_some(plan)
    }

    /// The fault armed for admitted-request index `idx`, if any. When two
    /// specs name the same index the first one in spec order wins.
    pub fn at(&self, idx: u64) -> Option<ServeFault> {
        self.faults.iter().copied().find(|f| f.at == idx)
    }

    /// Render the plan back in grammar form.
    pub fn spec(&self) -> String {
        self.faults
            .iter()
            .map(ServeFault::spec)
            .collect::<Vec<_>>()
            .join(",")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_specs_round_trip() {
        for s in ["torn@0", "disconnect@3", "slow@1:250", "panic@7", "disk-full@2:0x10"] {
            let p = ServeFaultPlan::parse(s).unwrap();
            assert_eq!(p.faults.len(), 1, "{s}");
            assert_eq!(ServeFaultPlan::parse(&p.spec()).unwrap(), p, "{s}");
        }
    }

    #[test]
    fn comma_lists_parse_in_order() {
        let p = ServeFaultPlan::parse("slow@0:1500, disconnect@2, panic@3").unwrap();
        assert_eq!(p.faults.len(), 3);
        assert_eq!(p.at(0).unwrap().kind, ServeFaultKind::Slow);
        assert_eq!(p.at(0).unwrap().seed, 1500);
        assert_eq!(p.at(2).unwrap().kind, ServeFaultKind::Disconnect);
        assert_eq!(p.at(3).unwrap().kind, ServeFaultKind::Panic);
        assert_eq!(p.at(1), None);
        assert_eq!(p.spec(), "slow@0:1500,disconnect@2,panic@3");
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for s in ["torn", "torn@", "torn@x", "frobnicate@3", "slow@1:zz", "panic@-1"] {
            assert!(ServeFaultPlan::parse(s).is_err(), "{s:?} should be rejected");
        }
    }

    #[test]
    fn first_spec_wins_on_index_collision() {
        let p = ServeFaultPlan::parse("panic@1,slow@1:9").unwrap();
        assert_eq!(p.at(1).unwrap().kind, ServeFaultKind::Panic);
    }
}

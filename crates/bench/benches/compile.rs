//! `BENCH_compile` — compile-side throughput over the fast-sweep matrix.
//!
//! Each `compile/<app>` entry times every pipeline configuration the fast
//! sweep compiles for one application (the baseline and heuristic compiles
//! plus the per-loop configuration product, with cold loops capped at three
//! exactly as in `uu_harness::run_sweep(_, fast = true)`), without running
//! the simulator — the pure compile side of a cold cacheless fast sweep.
//! Work units are the deterministic compile clock (`CompileOutcome::work`),
//! so `units_per_sec / 1000` is the *measured* work-units-per-millisecond
//! calibration to compare against the frozen `uu_core::WORK_PER_MS`.
//!
//! `pass/<name>` entries carry the per-pass profile from one probe walk of
//! the whole matrix: wall nanoseconds and compile-clock work attributed to
//! each pass, i.e. where a cold sweep's compile time actually goes.
//!
//! `UU_BENCH_APPS=a,b` restricts the matrix to the named applications
//! (ci.sh smoke uses one app to keep the rung fast).

use uu_check::bench::{BenchResult, Harness};
use uu_core::{compile, CompileOutcome, HeuristicOptions, LoopFilter, PipelineOptions, Transform};
use uu_harness::experiment::{loop_list, sweep_configs, COMPILE_TIMEOUT};
use uu_kernels::{all_benchmarks, Benchmark};

/// Compile every configuration the fast sweep compiles for `bench`,
/// returning the outcomes for work and per-pass accounting.
fn compile_matrix(bench: &Benchmark) -> Vec<CompileOutcome> {
    let mut outcomes = Vec::new();
    let mut run = |transform: Transform, filter: LoopFilter| {
        let mut m = (bench.build)();
        let opts = PipelineOptions {
            transform,
            filter,
            timeout: Some(COMPILE_TIMEOUT),
            ..Default::default()
        };
        outcomes.push(compile(&mut m, &opts));
    };
    run(Transform::Baseline, LoopFilter::All);
    run(
        Transform::UuHeuristic(HeuristicOptions::default()),
        LoopFilter::All,
    );
    let mut cold_seen = 0usize;
    for l in loop_list(bench) {
        let hot = bench.info.hot_kernels.contains(&l.func.as_str());
        if !hot {
            cold_seen += 1;
            if cold_seen > 3 {
                continue; // fast-sweep cold-loop cap
            }
        }
        for (_, transform) in sweep_configs() {
            run(
                transform,
                LoopFilter::Only {
                    func: l.func.clone(),
                    loop_id: l.loop_id,
                },
            );
        }
    }
    outcomes
}

fn main() {
    let mut h = Harness::new("BENCH_compile");
    let filter = std::env::var("UU_BENCH_APPS").unwrap_or_default();
    let benches: Vec<Benchmark> = all_benchmarks()
        .into_iter()
        .filter(|b| filter.is_empty() || filter.split(',').any(|f| f == b.info.name))
        .collect();

    // Probe walk: deterministic work units per app + the per-pass profile.
    let mut pass_profile: Vec<(&'static str, f64, u64)> = Vec::new();
    let mut app_units: Vec<u64> = Vec::new();
    let mut total_units = 0u64;
    for b in &benches {
        let outcomes = compile_matrix(b);
        let units: u64 = outcomes.iter().map(|o| o.work).sum();
        for o in &outcomes {
            for t in &o.timings {
                match pass_profile.iter_mut().find(|(n, _, _)| *n == t.name) {
                    Some((_, ns, w)) => {
                        *ns += t.elapsed.as_nanos() as f64;
                        *w += t.work;
                    }
                    None => pass_profile.push((t.name, t.elapsed.as_nanos() as f64, t.work)),
                }
            }
        }
        app_units.push(units);
        total_units += units;
    }

    // Timed entries: wall time of each app's compile matrix; units are the
    // matrix's deterministic compile-clock work.
    let mut total_median_ns = 0.0f64;
    for (b, units) in benches.iter().zip(&app_units) {
        h.bench_batched_units(
            &format!("compile/{}", b.info.name),
            *units,
            || (),
            |()| compile_matrix(b),
        );
        total_median_ns += h.results().last().unwrap().median_ns();
    }
    h.push_result(BenchResult {
        name: "compile/matrix-total".into(),
        iters_per_sample: 1,
        samples_ns: vec![total_median_ns.max(1.0)],
        units_per_iter: total_units,
    });
    // Per-pass profile: units/sec is each pass's measured work-units-per-
    // second throughput on this machine.
    for (name, ns, work) in pass_profile {
        h.push_result(BenchResult {
            name: format!("pass/{name}"),
            iters_per_sample: 1,
            samples_ns: vec![ns.max(1.0)],
            units_per_iter: work,
        });
    }
    h.finish();
}

//! Ablation benches for the design decisions called out in DESIGN.md:
//! whole-path vs direct-successor unmerging, pass position, heuristic
//! parameters and the divergence guard. The harness times the compile+run
//! machinery; each configuration additionally prints the simulated kernel
//! time it produced (the quantity the ablation is about) before sampling.

use uu_check::bench::Harness;
use uu_core::{
    HeuristicOptions, LoopFilter, PassPosition, PipelineOptions, Transform, UnmergeMode,
    UnmergeOptions,
};
use uu_harness::Measurement;
use uu_kernels::all_benchmarks;

fn bench_by_name(name: &str) -> uu_kernels::Benchmark {
    all_benchmarks()
        .into_iter()
        .find(|b| b.info.name == name)
        .unwrap()
}

fn run(b: &uu_kernels::Benchmark, opts: PipelineOptions) -> Measurement {
    let mut m = (b.build)();
    let outcome = uu_core::compile(&mut m, &opts);
    let mut gpu = uu_simt::Gpu::new();
    let run = (b.run)(&m, &mut gpu).unwrap();
    Measurement {
        time_ms: run.kernel_time_ms,
        code_size: uu_analysis::cost::module_size(&m),
        compile_ms: outcome.total.as_secs_f64() * 1e3,
        checksum: run.checksum,
        timed_out: outcome.timed_out,
        metrics: run.metrics,
        transfer_ms: run.transfer_ms(),
        rung: outcome.rung,
        diag: outcome.failure_summary(),
    }
}

/// Whole-path (the paper's design) vs DBDS-style direct-successor
/// duplication, on the bezier hot loop.
fn ablation_unmerge_depth(h: &mut Harness) {
    let b = bench_by_name("bezier-surface");
    for (name, mode) in [
        ("whole_path", UnmergeMode::WholePath),
        ("direct_successor", UnmergeMode::DirectSuccessor),
    ] {
        let opts = || PipelineOptions {
            transform: Transform::Uu {
                factor: 2,
                unmerge: UnmergeOptions {
                    mode,
                    ..Default::default()
                },
            },
            filter: LoopFilter::Only {
                func: "bezier_blend".into(),
                loop_id: 0,
            },
            ..Default::default()
        };
        let m = run(&b, opts());
        eprintln!(
            "ablation/unmerge_depth/{name}: kernel {:.6} ms, size {}",
            m.time_ms, m.code_size
        );
        h.bench(&format!("ablation/unmerge_depth/{name}"), || {
            run(&b, opts()).time_ms
        });
    }
}

/// Early (the paper's choice) vs late pass position.
fn ablation_pass_position(h: &mut Harness) {
    let b = bench_by_name("bezier-surface");
    for (name, pos) in [("early", PassPosition::Early), ("late", PassPosition::Late)] {
        let opts = || PipelineOptions {
            transform: Transform::Uu {
                factor: 2,
                unmerge: UnmergeOptions::default(),
            },
            filter: LoopFilter::Only {
                func: "bezier_blend".into(),
                loop_id: 0,
            },
            position: pos,
            ..Default::default()
        };
        let m = run(&b, opts());
        eprintln!("ablation/position/{name}: kernel {:.6} ms", m.time_ms);
        h.bench(&format!("ablation/position/{name}"), || {
            run(&b, opts()).time_ms
        });
    }
}

/// Heuristic budget `c`: tiny budgets decline everything, the paper's 1024
/// transforms the profitable loops.
fn ablation_heuristic_budget(h: &mut Harness) {
    let b = bench_by_name("bn");
    for budget in [64u64, 1024, 16384] {
        let opts = || PipelineOptions {
            transform: Transform::UuHeuristic(HeuristicOptions {
                c: budget,
                ..Default::default()
            }),
            ..Default::default()
        };
        let m = run(&b, opts());
        eprintln!(
            "ablation/heuristic_c/{budget}: kernel {:.6} ms, size {}",
            m.time_ms, m.code_size
        );
        h.bench(&format!("ablation/heuristic_c/{budget}"), || {
            run(&b, opts()).time_ms
        });
    }
}

/// The divergence guard rescuing `complex`.
fn ablation_divergence_guard(h: &mut Harness) {
    let b = bench_by_name("complex");
    for (name, guard) in [("off", false), ("on", true)] {
        let opts = || PipelineOptions {
            transform: Transform::UuHeuristic(HeuristicOptions {
                divergence_guard: guard,
                ..Default::default()
            }),
            ..Default::default()
        };
        let m = run(&b, opts());
        eprintln!("ablation/divergence_guard/{name}: kernel {:.6} ms", m.time_ms);
        h.bench(&format!("ablation/divergence_guard/{name}"), || {
            run(&b, opts()).time_ms
        });
    }
}

fn main() {
    let mut h = Harness::new("ablations");
    ablation_unmerge_depth(&mut h);
    ablation_pass_position(&mut h);
    ablation_heuristic_budget(&mut h);
    ablation_divergence_guard(&mut h);
    h.finish();
}

//! One bench per paper table/figure, at reduced scale.
//!
//! Each bench times the *regeneration machinery* for its artifact — a
//! compile+execute measurement of the kind the full harness sweeps. The
//! full-size regeneration is `cargo run --release -p uu-harness -- all`
//! (see EXPERIMENTS.md); these benches keep the machinery honest and
//! regression-tracked via the JSON reports under `target/uu-bench/`.

use uu_check::bench::Harness;
use uu_core::{HeuristicOptions, LoopFilter, Transform, UnmergeOptions};
use uu_harness::{measure, measure_baseline};
use uu_kernels::all_benchmarks;

fn bench_by_name(name: &str) -> uu_kernels::Benchmark {
    all_benchmarks()
        .into_iter()
        .find(|b| b.info.name == name)
        .unwrap()
}

/// Table I: baseline + heuristic measurement of one application.
fn table1(h: &mut Harness) {
    let b = bench_by_name("bezier-surface");
    h.bench("table1/bezier_baseline", || measure_baseline(&b).unwrap());
    h.bench("table1/bezier_heuristic", || {
        measure(
            &b,
            Transform::UuHeuristic(HeuristicOptions::default()),
            LoopFilter::All,
            None,
        )
        .unwrap()
    });
}

/// Figure 6a/6b/6c: a per-loop u&u data point (speedup, size, compile time
/// all come from the same measurement).
fn fig6(h: &mut Harness) {
    let b = bench_by_name("XSBench");
    for factor in [2u32, 8] {
        h.bench(&format!("fig6/xsbench_uu{factor}_point"), || {
            measure(
                &b,
                Transform::Uu {
                    factor,
                    unmerge: UnmergeOptions::default(),
                },
                LoopFilter::Only {
                    func: "xs_lookup".into(),
                    loop_id: 0,
                },
                None,
            )
            .unwrap()
        });
    }
}

/// Figure 7: the three comparator configurations on one application.
fn fig7(h: &mut Harness) {
    let b = bench_by_name("bezier-surface");
    let configs: [(&str, Transform); 3] = [
        (
            "uu4",
            Transform::Uu {
                factor: 4,
                unmerge: UnmergeOptions::default(),
            },
        ),
        ("unroll4", Transform::Unroll { factor: 4 }),
        ("unmerge", Transform::Unmerge),
    ];
    for (name, t) in configs {
        h.bench(&format!("fig7/bezier_{name}"), || {
            measure(
                &b,
                t.clone(),
                LoopFilter::Only {
                    func: "bezier_blend".into(),
                    loop_id: 0,
                },
                None,
            )
            .unwrap()
        });
    }
}

/// Figure 8: a scatter pair (u&u vs unroll on the same loop).
fn fig8(h: &mut Harness) {
    let b = bench_by_name("libor");
    h.bench("fig8/libor_pair", || {
        let f = LoopFilter::Only {
            func: "libor_path".into(),
            loop_id: 0,
        };
        let uu = measure(
            &b,
            Transform::Uu {
                factor: 4,
                unmerge: UnmergeOptions::default(),
            },
            f.clone(),
            None,
        )
        .unwrap();
        let un = measure(&b, Transform::Unroll { factor: 4 }, f, None).unwrap();
        (uu.time_ms, un.time_ms)
    });
}

/// §V in-depth: the counter collection for one case.
fn indepth(h: &mut Harness) {
    let b = bench_by_name("complex");
    h.bench("indepth/complex_counters", || {
        let m = measure(
            &b,
            Transform::Uu {
                factor: 2,
                unmerge: UnmergeOptions::default(),
            },
            LoopFilter::Only {
                func: "complex_pow".into(),
                loop_id: 0,
            },
            None,
        )
        .unwrap();
        (
            m.metrics.warp_execution_efficiency(32),
            m.metrics.stall_inst_fetch(),
        )
    });
}

fn main() {
    let mut h = Harness::new("tables_and_figures");
    table1(&mut h);
    fig6(&mut h);
    fig7(&mut h);
    fig8(&mut h);
    indepth(&mut h);
    h.finish();
}

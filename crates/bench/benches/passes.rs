//! Micro-benchmarks of the individual compiler passes, on a standard
//! branchy loop at several unroll factors. Useful for tracking the
//! compile-time behaviour the paper's Figure 6c aggregates.

use uu_check::bench::Harness;
use uu_core::opt::{
    condprop::CondProp, dce::Dce, gvn::Gvn, instsimplify::InstSimplify, sccp::Sccp,
    simplifycfg::SimplifyCfg, Pass,
};
use uu_core::{uu_loop, UuOptions};
use uu_ir::{Function, FunctionBuilder, ICmpPred, Param, Type, Value};

/// The standard subject: a loop with a two-condition body (4 paths).
fn subject() -> Function {
    let mut f = Function::new(
        "subject",
        vec![
            Param::new("n", Type::I64),
            Param::new("k", Type::I64),
            Param::new("out", Type::Ptr),
        ],
        Type::Void,
    );
    let entry = f.entry();
    let mut b = FunctionBuilder::new(&mut f);
    let h = b.create_block();
    let body = b.create_block();
    let t1 = b.create_block();
    let m1 = b.create_block();
    let t2 = b.create_block();
    let latch = b.create_block();
    let exit = b.create_block();
    b.switch_to(entry);
    b.br(h);
    b.switch_to(h);
    let i = b.phi(Type::I64);
    let kv = b.phi(Type::I64);
    let acc = b.phi(Type::I64);
    b.add_phi_incoming(i, entry, Value::imm(0i64));
    b.add_phi_incoming(kv, entry, Value::Arg(1));
    b.add_phi_incoming(acc, entry, Value::imm(0i64));
    let c = b.icmp(ICmpPred::Slt, i, Value::Arg(0));
    b.cond_br(c, body, exit);
    b.switch_to(body);
    let acc1 = b.add(acc, i);
    let c1 = b.icmp(ICmpPred::Sgt, kv, Value::imm(1i64));
    b.cond_br(c1, t1, m1);
    b.switch_to(t1);
    let kv1 = b.sub(kv, Value::imm(1i64));
    b.br(m1);
    b.switch_to(m1);
    let kvm = b.phi(Type::I64);
    b.add_phi_incoming(kvm, body, kv);
    b.add_phi_incoming(kvm, t1, kv1);
    let c2 = b.icmp(ICmpPred::Sgt, acc1, Value::imm(100i64));
    b.cond_br(c2, t2, latch);
    b.switch_to(t2);
    b.br(latch);
    b.switch_to(latch);
    let accm = b.phi(Type::I64);
    b.add_phi_incoming(accm, m1, acc1);
    b.add_phi_incoming(accm, t2, Value::imm(100i64));
    let i1 = b.add(i, Value::imm(1i64));
    b.add_phi_incoming(i, latch, i1);
    b.add_phi_incoming(kv, latch, kvm);
    b.add_phi_incoming(acc, latch, accm);
    b.br(h);
    b.switch_to(exit);
    b.store(Value::Arg(2), acc);
    b.ret(None);
    f
}

fn transformed(factor: u32) -> Function {
    let mut f = subject();
    let h = f.layout()[1];
    uu_loop(
        &mut f,
        h,
        &UuOptions {
            factor,
            ..Default::default()
        },
    );
    f
}

fn bench_transform(h: &mut Harness) {
    for factor in [2u32, 4, 8] {
        h.bench(&format!("transform/uu/{factor}"), || transformed(factor));
    }
}

fn bench_cleanup_passes(h: &mut Harness) {
    for factor in [2u32, 8] {
        let base = transformed(factor);
        macro_rules! p {
            ($name:literal, $pass:expr) => {
                h.bench_batched(
                    &format!(concat!("pass/", $name, "/{}"), factor),
                    || base.clone(),
                    |mut f| {
                        let mut pass = $pass;
                        pass.run(&mut f);
                        f
                    },
                );
            };
        }
        p!("simplifycfg", SimplifyCfg::default());
        p!("instsimplify", InstSimplify);
        p!("sccp", Sccp);
        p!("gvn", Gvn);
        p!("condprop", CondProp);
        p!("dce", Dce);
    }
}

fn bench_analyses(h: &mut Harness) {
    let f = transformed(8);
    h.bench("analysis/domtree", || uu_analysis::DomTree::compute(&f));
    let dom = uu_analysis::DomTree::compute(&f);
    h.bench("analysis/loops", || {
        uu_analysis::LoopForest::compute(&f, &dom)
    });
    h.bench("analysis/divergence", || {
        uu_analysis::Divergence::compute(&f)
    });
}

fn main() {
    let mut h = Harness::new("passes");
    bench_transform(&mut h);
    bench_cleanup_passes(&mut h);
    bench_analyses(&mut h);
    h.finish();
}

//! Micro-benchmarks of the individual compiler passes, on a standard
//! branchy loop at several unroll factors. Useful for tracking the
//! compile-time behaviour the paper's Figure 6c aggregates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uu_core::opt::{
    condprop::CondProp, dce::Dce, gvn::Gvn, instsimplify::InstSimplify, sccp::Sccp,
    simplifycfg::SimplifyCfg, Pass,
};
use uu_core::{uu_loop, UuOptions};
use uu_ir::{Function, FunctionBuilder, ICmpPred, Param, Type, Value};

/// The standard subject: a loop with a two-condition body (4 paths).
fn subject() -> Function {
    let mut f = Function::new(
        "subject",
        vec![
            Param::new("n", Type::I64),
            Param::new("k", Type::I64),
            Param::new("out", Type::Ptr),
        ],
        Type::Void,
    );
    let entry = f.entry();
    let mut b = FunctionBuilder::new(&mut f);
    let h = b.create_block();
    let body = b.create_block();
    let t1 = b.create_block();
    let m1 = b.create_block();
    let t2 = b.create_block();
    let latch = b.create_block();
    let exit = b.create_block();
    b.switch_to(entry);
    b.br(h);
    b.switch_to(h);
    let i = b.phi(Type::I64);
    let kv = b.phi(Type::I64);
    let acc = b.phi(Type::I64);
    b.add_phi_incoming(i, entry, Value::imm(0i64));
    b.add_phi_incoming(kv, entry, Value::Arg(1));
    b.add_phi_incoming(acc, entry, Value::imm(0i64));
    let c = b.icmp(ICmpPred::Slt, i, Value::Arg(0));
    b.cond_br(c, body, exit);
    b.switch_to(body);
    let acc1 = b.add(acc, i);
    let c1 = b.icmp(ICmpPred::Sgt, kv, Value::imm(1i64));
    b.cond_br(c1, t1, m1);
    b.switch_to(t1);
    let kv1 = b.sub(kv, Value::imm(1i64));
    b.br(m1);
    b.switch_to(m1);
    let kvm = b.phi(Type::I64);
    b.add_phi_incoming(kvm, body, kv);
    b.add_phi_incoming(kvm, t1, kv1);
    let c2 = b.icmp(ICmpPred::Sgt, acc1, Value::imm(100i64));
    b.cond_br(c2, t2, latch);
    b.switch_to(t2);
    b.br(latch);
    b.switch_to(latch);
    let accm = b.phi(Type::I64);
    b.add_phi_incoming(accm, m1, acc1);
    b.add_phi_incoming(accm, t2, Value::imm(100i64));
    let i1 = b.add(i, Value::imm(1i64));
    b.add_phi_incoming(i, latch, i1);
    b.add_phi_incoming(kv, latch, kvm);
    b.add_phi_incoming(acc, latch, accm);
    b.br(h);
    b.switch_to(exit);
    b.store(Value::Arg(2), acc);
    b.ret(None);
    f
}

fn transformed(factor: u32) -> Function {
    let mut f = subject();
    let h = f.layout()[1];
    uu_loop(&mut f, h, &UuOptions { factor, ..Default::default() });
    f
}

fn bench_transform(c: &mut Criterion) {
    let mut g = c.benchmark_group("transform");
    for factor in [2u32, 4, 8] {
        g.bench_with_input(BenchmarkId::new("uu", factor), &factor, |bch, &factor| {
            bch.iter(|| transformed(factor))
        });
    }
    g.finish();
}

fn bench_cleanup_passes(c: &mut Criterion) {
    let mut g = c.benchmark_group("pass");
    for factor in [2u32, 8] {
        let base = transformed(factor);
        macro_rules! p {
            ($name:literal, $pass:expr) => {
                g.bench_with_input(
                    BenchmarkId::new($name, factor),
                    &base,
                    |bch, base| {
                        bch.iter_batched(
                            || base.clone(),
                            |mut f| {
                                let mut pass = $pass;
                                pass.run(&mut f);
                                f
                            },
                            criterion::BatchSize::SmallInput,
                        )
                    },
                );
            };
        }
        p!("simplifycfg", SimplifyCfg::default());
        p!("instsimplify", InstSimplify);
        p!("sccp", Sccp);
        p!("gvn", Gvn);
        p!("condprop", CondProp);
        p!("dce", Dce);
    }
    g.finish();
}

fn bench_analyses(c: &mut Criterion) {
    let f = transformed(8);
    c.bench_function("analysis/domtree", |bch| {
        bch.iter(|| uu_analysis::DomTree::compute(&f))
    });
    c.bench_function("analysis/loops", |bch| {
        let dom = uu_analysis::DomTree::compute(&f);
        bch.iter(|| uu_analysis::LoopForest::compute(&f, &dom))
    });
    c.bench_function("analysis/divergence", |bch| {
        bch.iter(|| uu_analysis::Divergence::compute(&f))
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_transform, bench_cleanup_passes, bench_analyses
}
criterion_main!(benches);

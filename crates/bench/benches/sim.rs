//! `BENCH_sim` — interpreter throughput over the 16-kernel suite.
//!
//! Each `sim/<name>` entry times one full workload run (`Benchmark::run`)
//! of a kernel suite member and records the dynamic warp-instruction count
//! as its work units, so the JSON report carries warp-insts/sec — the
//! repo's interpreter-throughput trajectory. A synthetic
//! `sim/suite-total` entry aggregates the suite (total warp instructions
//! over summed median runtimes), and `sweep/fast/bezier-surface` times one
//! end-to-end fast-sweep slice (compile pipelines + measurement + noise
//! model) as the wall-clock proxy for `uu-harness all --fast`.
//!
//! The engine under test follows `UU_SIMT_ENGINE` (see
//! `uu_simt::ExecEngine`), so a reference-interpreter baseline is
//! `UU_SIMT_ENGINE=reference cargo bench -p uu-bench --bench sim`.
//! `UU_BENCH_APPS=a,b` restricts the run to the named applications
//! (ci.sh's verify-uniform smoke uses a two-app slice to stay fast), and
//! the suite-total/fast-sweep aggregates are skipped for partial runs so
//! a filtered report is never mistaken for a suite trajectory row.

use uu_check::bench::{BenchResult, Harness};
use uu_kernels::all_benchmarks;
use uu_simt::Gpu;

fn main() {
    let mut h = Harness::new("BENCH_sim");
    let filter = std::env::var("UU_BENCH_APPS").unwrap_or_default();
    let benches: Vec<uu_kernels::Benchmark> = all_benchmarks()
        .into_iter()
        .filter(|b| filter.is_empty() || filter.split(',').any(|f| f == b.info.name))
        .collect();

    let mut total_units = 0u64;
    let mut total_median_ns = 0.0f64;
    for b in &benches {
        let m = (b.build)();
        // Probe run: learn the workload's dynamic warp-instruction count
        // (deterministic, so it holds for every timed iteration).
        let probe = (b.run)(&m, &mut Gpu::new()).expect("suite workload must execute");
        let units = probe.metrics.warp_insts;
        h.bench_batched_units(
            &format!("sim/{}", b.info.name),
            units,
            || (),
            |()| (b.run)(&m, &mut Gpu::new()).unwrap(),
        );
        let r = h.results().last().unwrap();
        total_units += units;
        total_median_ns += r.median_ns();
    }
    if filter.is_empty() {
        // Suite aggregate: one synthetic sample whose throughput is
        // total-warp-insts over the sum of per-kernel median runtimes.
        h.push_result(BenchResult {
            name: "sim/suite-total".into(),
            iters_per_sample: 1,
            samples_ns: vec![total_median_ns],
            units_per_iter: total_units,
        });

        // End-to-end fast-sweep wall time, one-application slice (the full
        // 16-application `uu-harness all --fast` is minutes, not a bench
        // iteration).
        let bezier: Vec<uu_kernels::Benchmark> = all_benchmarks()
            .into_iter()
            .filter(|b| b.info.name == "bezier-surface")
            .collect();
        h.bench("sweep/fast/bezier-surface", || {
            uu_harness::run_sweep(&bezier, true)
        });
    }

    h.finish();
}

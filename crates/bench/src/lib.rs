//! Criterion benches for uu (see `benches/`); the library target is empty.

//! uu-check-driven benches for uu (see `benches/`); the library target is
//! empty. Run with `cargo bench`; JSON reports land in `target/uu-bench/`.

//! # uu-par — a zero-dependency work-stealing thread pool
//!
//! The uu workspace's evaluation walks a large product space — benchmarks ×
//! loops × configurations for the sweep, thousands of generated kernels for
//! the fuzz oracle — and every point is independent of every other. This
//! crate supplies, in-tree and on top of nothing but `std::thread` and
//! `std::sync` (in the spirit of `uu-check` replacing `rand`/`proptest`),
//! the one primitive those drivers need: a deterministic parallel map.
//! The [`pool`] module adds the service-side complement: a closeable
//! blocking [`TaskQueue`] and a fixed worker crew ([`run_crew`]) for
//! workloads — like the `uu-serve` daemon's connections — that arrive
//! over time and must drain cleanly on shutdown.
//!
//! ## Determinism contract
//!
//! [`par_map`] returns results **in input order**, regardless of how the
//! scheduler interleaves workers. Callers that keep their per-item work
//! deterministic (seeded PRNGs, no shared mutable state) therefore produce
//! byte-identical reports at any worker count; `UU_JOBS=1` degenerates to a
//! plain serial loop on the calling thread — no threads are spawned at all.
//!
//! ## Scheduling
//!
//! Tasks are block-distributed over per-worker deques up front. A worker
//! drains its own deque from the front; when empty it steals from the
//! *back* of a victim's deque, scanning victims round-robin from its own
//! index. Stealing from the opposite end keeps contention low and hands
//! thieves the largest remaining runs of work. The task set is static (no
//! task spawns another), so a single failed scan over all deques means the
//! pool is drained and the worker can retire.
//!
//! A panicking task cannot take the pool down with it: deque mutexes are
//! locked with poison *recovery* (`unwrap_or_else(into_inner)`), so one
//! panic never cascades into every surviving worker — the remaining tasks
//! drain and the original panic is then propagated to the caller.
//!
//! ## Environment
//!
//! * `UU_JOBS` — worker count for [`num_jobs`]-driven entry points;
//!   defaults to [`std::thread::available_parallelism`]. `UU_JOBS=1`
//!   reproduces serial behaviour exactly.

#![warn(missing_docs)]

pub mod pool;

pub use pool::{run_crew, TaskQueue};

use std::collections::VecDeque;
use std::panic::resume_unwind;
use std::sync::Mutex;

/// Parse a `UU_JOBS`-style value: a positive integer worker count.
///
/// Split out from [`num_jobs`] so the parsing contract is testable without
/// mutating process environment.
///
/// # Panics
///
/// Panics on zero or non-integer input, mirroring the other `UU_*` knobs
/// (`UU_CHECK_CASES`, `UU_BENCH_SAMPLES`): a typo'd knob must never
/// silently fall back and skew an experiment.
pub fn parse_jobs(v: &str) -> usize {
    match v.trim().parse::<usize>() {
        Ok(n) if n >= 1 => n,
        _ => panic!("UU_JOBS must be a positive integer, got {v:?}"),
    }
}

/// The worker count for parallel drivers: `UU_JOBS` if set, otherwise the
/// machine's available parallelism (1 if that cannot be determined).
pub fn num_jobs() -> usize {
    match std::env::var("UU_JOBS") {
        Ok(v) => parse_jobs(&v),
        Err(_) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// [`par_map_jobs`] with the worker count taken from [`num_jobs`].
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_jobs(num_jobs(), items, f)
}

/// Apply `f(index, &item)` to every item across `jobs` workers and return
/// the results **in input order** — the deterministic-merge primitive
/// behind the sweep and fuzz drivers.
///
/// With `jobs <= 1` (or fewer than two items) this is a plain serial loop
/// on the calling thread. Otherwise scoped worker threads drain a
/// work-stealing task pool; each worker buffers `(index, result)` pairs
/// locally and the scope join writes them into their input slots, so the
/// output is independent of scheduling.
///
/// # Panics
///
/// A panic inside `f` is propagated to the caller (after the remaining
/// workers drain), matching the serial loop's behaviour.
pub fn par_map_jobs<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if jobs <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let workers = jobs.min(items.len());
    let deques: Vec<Mutex<VecDeque<usize>>> = block_distribute(items.len(), workers)
        .into_iter()
        .map(Mutex::new)
        .collect();
    let f = &f;
    let deques = &deques;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                s.spawn(move || {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    while let Some(i) = claim_task(w, deques) {
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None)
            .take(items.len())
            .collect();
        let mut panic = None;
        for h in handles {
            match h.join() {
                Ok(local) => {
                    for (i, r) in local {
                        slots[i] = Some(r);
                    }
                }
                Err(p) => panic = Some(p),
            }
        }
        if let Some(p) = panic {
            resume_unwind(p);
        }
        slots
            .into_iter()
            .map(|o| o.expect("work-stealing pool dropped a task"))
            .collect()
    })
}

/// Split `0..n` into `workers` contiguous index runs, front-loading the
/// remainder so run lengths differ by at most one.
fn block_distribute(n: usize, workers: usize) -> Vec<VecDeque<usize>> {
    let base = n / workers;
    let extra = n % workers;
    let mut start = 0;
    (0..workers)
        .map(|w| {
            let len = base + usize::from(w < extra);
            let q: VecDeque<usize> = (start..start + len).collect();
            start += len;
            q
        })
        .collect()
}

/// Lock a deque, recovering from poisoning. A task body that panics can
/// leave a deque mutex poisoned (e.g. a panic unwinding through a caller
/// that holds the guard); treating that as fatal would cascade the panic
/// into every surviving worker and defeat the fault isolation that
/// `uu-core`'s guarded pipeline provides. The protected data — a queue of
/// plain indices mutated only by `pop_front`/`pop_back` — cannot be left
/// in a torn state, so recovering the guard is sound.
fn lock_deque(m: &Mutex<VecDeque<usize>>) -> std::sync::MutexGuard<'_, VecDeque<usize>> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Pop the next task for worker `w`: own deque front first, then steal
/// from the back of the other deques, round-robin from `w + 1`.
fn claim_task(w: usize, deques: &[Mutex<VecDeque<usize>>]) -> Option<usize> {
    if let Some(i) = lock_deque(&deques[w]).pop_front() {
        return Some(i);
    }
    for k in 1..deques.len() {
        let victim = (w + k) % deques.len();
        if let Some(i) = lock_deque(&deques[victim]).pop_back() {
            return Some(i);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn matches_serial_map_at_any_worker_count() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().enumerate().map(|(i, x)| x * 3 + i as u64).collect();
        for jobs in [1, 2, 3, 8, 64, 1000] {
            let got = par_map_jobs(jobs, &items, |i, x| x * 3 + i as u64);
            assert_eq!(got, expect, "jobs = {jobs}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let none: Vec<u32> = Vec::new();
        assert!(par_map_jobs(4, &none, |_, x| *x).is_empty());
        assert_eq!(par_map_jobs(4, &[7u32], |i, x| (i, *x)), vec![(0, 7)]);
    }

    #[test]
    fn results_keep_input_order_under_unbalanced_load() {
        // Early items sleep, late items return instantly: thieves finish
        // out of temporal order, but the merge must restore input order.
        let items: Vec<u64> = (0..48).collect();
        let got = par_map_jobs(8, &items, |_, &x| {
            if x < 8 {
                std::thread::sleep(std::time::Duration::from_millis(3));
            }
            x
        });
        assert_eq!(got, items);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        par_map_jobs(7, &(0..100usize).collect::<Vec<_>>(), |_, &i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn work_is_actually_spread_across_threads() {
        let items: Vec<u32> = (0..64).collect();
        let ids = Mutex::new(HashSet::new());
        par_map_jobs(4, &items, |_, _| {
            ids.lock().unwrap().insert(std::thread::current().id());
            // Give other workers a chance to start before the pool drains.
            std::thread::sleep(std::time::Duration::from_micros(200));
        });
        assert!(
            ids.lock().unwrap().len() > 1,
            "expected multiple worker threads"
        );
    }

    #[test]
    fn serial_path_spawns_no_threads() {
        let main_id = std::thread::current().id();
        par_map_jobs(1, &[1u8, 2, 3], |_, _| {
            assert_eq!(std::thread::current().id(), main_id);
        });
    }

    #[test]
    fn poisoned_deques_are_recovered_not_cascaded() {
        // Poison-injection: panic while holding a deque guard, as a
        // panicking task unwinding through pool internals would. Work must
        // remain claimable from both the poisoned own deque and a
        // poisoned victim deque — a poisoned mutex must degrade to a
        // recovered lock, not to a panic in every surviving worker.
        let deques: Vec<Mutex<VecDeque<usize>>> = block_distribute(4, 2)
            .into_iter()
            .map(Mutex::new)
            .collect();
        for victim in 0..deques.len() {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _guard = deques[victim].lock().unwrap();
                panic!("injected poison");
            }));
            assert!(r.is_err());
            assert!(deques[victim].is_poisoned(), "deque {victim} must be poisoned");
        }
        // Own-deque pop and steal both still work.
        let mut claimed = Vec::new();
        while let Some(i) = claim_task(0, &deques) {
            claimed.push(i);
        }
        claimed.sort_unstable();
        assert_eq!(claimed, vec![0, 1, 2, 3], "all tasks claimable after poisoning");
        assert_eq!(claim_task(1, &deques), None, "drained pool still terminates");
    }

    #[test]
    fn panicking_task_does_not_lose_other_results() {
        // One task panics; the pool must still drain every other task and
        // then propagate the panic (no deadlock, no cascaded poison).
        let done: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_map_jobs(4, &(0..64usize).collect::<Vec<_>>(), |_, &i| {
                assert!(i != 20, "boom on 20");
                done[i].fetch_add(1, Ordering::Relaxed);
            })
        }));
        assert!(r.is_err(), "the injected panic must propagate");
        let completed = done.iter().filter(|d| d.load(Ordering::Relaxed) == 1).count();
        assert!(completed >= 62, "only the panicking task may be missing: {completed}");
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let items: Vec<u32> = (0..32).collect();
        let r = std::panic::catch_unwind(|| {
            par_map_jobs(4, &items, |_, &x| {
                assert!(x != 17, "boom on 17");
                x
            })
        });
        assert!(r.is_err());
    }

    #[test]
    fn block_distribution_covers_all_indices() {
        for n in [0usize, 1, 5, 16, 17, 100] {
            for workers in [1usize, 2, 3, 7, 16] {
                let qs = block_distribute(n, workers);
                assert_eq!(qs.len(), workers);
                let all: Vec<usize> = qs.iter().flatten().copied().collect();
                assert_eq!(all, (0..n).collect::<Vec<_>>());
                let (min, max) = qs
                    .iter()
                    .map(|q| q.len())
                    .fold((usize::MAX, 0), |(lo, hi), l| (lo.min(l), hi.max(l)));
                assert!(n == 0 || max - min <= 1, "unbalanced split: {min}..{max}");
            }
        }
    }

    #[test]
    fn parse_jobs_accepts_positive_integers_only() {
        assert_eq!(parse_jobs("1"), 1);
        assert_eq!(parse_jobs(" 16 "), 16);
        for bad in ["0", "-2", "many", "", "1.5"] {
            assert!(
                std::panic::catch_unwind(|| parse_jobs(bad)).is_err(),
                "{bad:?} should be rejected"
            );
        }
    }
}

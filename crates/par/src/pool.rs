//! A closeable blocking task queue and a fixed worker crew — the
//! service-side companion to [`par_map`](crate::par_map)'s static fan-out.
//!
//! [`par_map`](crate::par_map) solves the batch problem: a task list known
//! up front, distributed once, merged in input order. A long-running
//! service has the opposite shape — tasks (connections) arrive over time,
//! the pool must hand each to the first free worker, and shutdown must
//! *drain*: stop admitting, finish what was accepted, then retire the
//! crew. [`TaskQueue`] plus [`run_crew`] provide exactly that on the same
//! zero-dependency footing (`Mutex` + `Condvar`), with the workspace's
//! poison-recovery idiom so one panicking task never wedges the queue for
//! the surviving workers.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, MutexGuard};

/// A multi-producer multi-consumer blocking queue with explicit close
/// semantics:
///
/// * [`push`](TaskQueue::push) enqueues unless the queue is closed (the
///   item is handed back so the producer can dispose of it — for a
///   connection, dropping it closes the socket);
/// * [`pop`](TaskQueue::pop) blocks until an item is available or the
///   queue is closed **and** empty — closing does not discard accepted
///   work, which is what makes drain-on-shutdown possible;
/// * [`close`](TaskQueue::close) wakes every blocked consumer.
pub struct TaskQueue<T> {
    state: Mutex<QueueState<T>>,
    ready: Condvar,
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> Default for TaskQueue<T> {
    fn default() -> Self {
        TaskQueue::new()
    }
}

impl<T> TaskQueue<T> {
    /// An open, empty queue.
    pub fn new() -> TaskQueue<T> {
        TaskQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Lock the state, recovering from poisoning (a consumer panicking
    /// between `pop` and its task body can poison the mutex; the queue —
    /// a `VecDeque` mutated only by push/pop — cannot be torn).
    fn lock(&self) -> MutexGuard<'_, QueueState<T>> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Enqueue `item` and wake one waiting consumer. Returns `Err(item)`
    /// if the queue is closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut st = self.lock();
        if st.closed {
            return Err(item);
        }
        st.items.push_back(item);
        drop(st);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeue the next item, blocking while the queue is open but empty.
    /// Returns `None` once the queue is closed and fully drained.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.lock();
        loop {
            if let Some(item) = st.items.pop_front() {
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self
                .ready
                .wait(st)
                .unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Close the queue: producers are refused from now on, consumers drain
    /// the remaining items and then retire. Idempotent.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Number of items currently queued (racy snapshot, for observability).
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is currently empty (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Run `feeder` on the calling thread while `workers` scoped threads drain
/// `queue`, applying `work` to each item. When `feeder` returns (or
/// panics), the queue is closed, the workers finish every already-queued
/// item, and the crew retires — drain semantics, not abort semantics.
///
/// A panic inside `work` is contained to that one item: the worker logs
/// nothing, keeps its thread, and pops the next task — the caller's `work`
/// closure is expected to do its own failure accounting (the compile
/// service counts contained panics in its stats). This mirrors the guarded
/// pass pipeline one layer down: one poisoned task must never take the
/// crew down. `work` runs under [`AssertUnwindSafe`]; closures that share
/// state across items must keep it panic-consistent (atomics, or mutexes
/// locked with poison recovery).
///
/// Returns the feeder's result.
pub fn run_crew<T, R>(
    workers: usize,
    queue: &TaskQueue<T>,
    work: impl Fn(T) + Sync,
    feeder: impl FnOnce() -> R,
) -> R
where
    T: Send,
{
    // Close even if the feeder panics: a wedged accept loop must not
    // leave the workers blocked forever (that would turn one panic into
    // a deadlocked process).
    struct CloseOnDrop<'a, T>(&'a TaskQueue<T>);
    impl<T> Drop for CloseOnDrop<'_, T> {
        fn drop(&mut self) {
            self.0.close();
        }
    }

    let workers = workers.max(1);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                while let Some(item) = queue.pop() {
                    let _ = catch_unwind(AssertUnwindSafe(|| work(item)));
                }
            });
        }
        let _close = CloseOnDrop(queue);
        feeder()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn queue_is_fifo_for_a_single_consumer() {
        let q = TaskQueue::new();
        for i in 0..10 {
            q.push(i).unwrap();
        }
        q.close();
        let drained: Vec<i32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q: TaskQueue<u32> = TaskQueue::new();
        std::thread::scope(|s| {
            let h = s.spawn(|| q.pop());
            std::thread::sleep(Duration::from_millis(20));
            q.close();
            assert_eq!(h.join().unwrap(), None);
        });
    }

    #[test]
    fn push_after_close_returns_the_item() {
        let q = TaskQueue::new();
        q.push(1).unwrap();
        q.close();
        assert_eq!(q.push(2), Err(2));
        // Accepted work is still drainable after close.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn crew_processes_every_item_and_drains_on_feeder_exit() {
        let q = TaskQueue::new();
        let done = AtomicUsize::new(0);
        let fed = run_crew(
            4,
            &q,
            |_item: usize| {
                done.fetch_add(1, Ordering::Relaxed);
            },
            || {
                for i in 0..100 {
                    q.push(i).unwrap();
                }
                100
            },
        );
        assert_eq!(fed, 100);
        assert_eq!(done.load(Ordering::Relaxed), 100, "drain must finish queued work");
    }

    #[test]
    fn crew_contains_task_panics() {
        let q = TaskQueue::new();
        let done = AtomicUsize::new(0);
        run_crew(
            2,
            &q,
            |item: usize| {
                assert!(item != 7, "boom on 7");
                done.fetch_add(1, Ordering::Relaxed);
            },
            || {
                for i in 0..32 {
                    q.push(i).unwrap();
                }
            },
        );
        assert_eq!(
            done.load(Ordering::Relaxed),
            31,
            "all but the panicking task must complete"
        );
    }

    #[test]
    fn crew_closes_queue_when_feeder_panics() {
        let q: TaskQueue<usize> = TaskQueue::new();
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_crew(2, &q, |_| {}, || panic!("feeder dies"));
        }));
        assert!(r.is_err(), "feeder panic propagates");
        // The queue must be closed — a fresh pop returns instead of blocking.
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn many_producers_many_consumers_lose_nothing() {
        let q = TaskQueue::new();
        let seen = AtomicUsize::new(0);
        run_crew(
            3,
            &q,
            |_: usize| {
                seen.fetch_add(1, Ordering::Relaxed);
            },
            || {
                std::thread::scope(|s| {
                    for p in 0..4 {
                        let q = &q;
                        s.spawn(move || {
                            for i in 0..50 {
                                q.push(p * 50 + i).unwrap();
                            }
                        });
                    }
                });
            },
        );
        assert_eq!(seen.load(Ordering::Relaxed), 200);
    }
}

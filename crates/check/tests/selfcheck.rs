//! The framework must catch real miscompilations: inject a deliberate
//! semantic bug into compiled kernels and assert that the runner detects
//! it, shrinks the counterexample to a minimal kernel, and reports the
//! same failure for the same seed.

use uu_check::{build_kernel, check_result, execute, Config, KernelSpec};

/// A "mutated fold rule": textually rewrite the first `add` of the printed
/// kernel into a `sub` and reparse. For any kernel whose result depends on
/// that add, the mutant diverges — exactly the shape of bug a broken
/// instsimplify rule would introduce.
fn miscompile(f: &uu_ir::Function) -> Option<uu_ir::Function> {
    let printed = f.to_string();
    let mutated = printed.replacen(" add ", " sub ", 1);
    if mutated == printed {
        return None;
    }
    let parsed = uu_ir::parse_function(&mutated).expect("mutant must stay parseable");
    uu_ir::verify_function(&parsed).expect("mutant must stay verifier-clean");
    Some(parsed)
}

#[test]
fn injected_miscompilation_is_caught_and_shrunk() {
    let cfg = Config::new(300);
    let failure = check_result("add_to_sub_mutant", &cfg, |spec: &KernelSpec| {
        let kernel = build_kernel(spec);
        let golden = execute(&kernel, spec)?;
        let Some(mutant) = miscompile(&kernel) else {
            return Ok(()); // no add in this kernel — mutation vacuous
        };
        let got = execute(&mutant, spec)?;
        if got == golden {
            Ok(()) // the add was dead or symmetric under this input
        } else {
            Err("mutant diverged from golden output".to_string())
        }
    })
    .expect_err("a 300-case run must find a kernel whose add matters");

    // The counterexample must have been minimized: greedy shrinking tries
    // bound -> 0 and single-op bodies first, so a genuinely minimal
    // diverging kernel has a tiny trip count and almost no ops.
    let s = &failure.shrunk;
    assert!(failure.shrink_steps > 0, "shrinking made no progress: {failure}");
    assert!(s.bound <= 2, "bound not minimized: {failure}");
    assert!(
        s.straight_ops.len() + s.arm_ops.len() + s.else_ops.len() <= 2,
        "ops not minimized: {failure}"
    );
    assert_eq!(s.inner_trip, 0, "inner loop not removed: {failure}");

    // And the report must carry everything needed to replay it.
    let report = failure.to_string();
    assert!(report.contains("add_to_sub_mutant"));
    assert!(report.contains("UU_CHECK_SEED="));
}

#[test]
fn forced_failure_is_deterministic() {
    let run = || {
        check_result("mod_hit", &Config::new(200), |spec: &KernelSpec| {
            if spec.bound % 5 == 4 {
                Err("synthetic".to_string())
            } else {
                Ok(())
            }
        })
        .expect_err("bound % 5 == 4 appears within 200 cases")
    };
    let a = run();
    let b = run();
    assert_eq!(a.case_index, b.case_index);
    assert_eq!(a.original, b.original);
    assert_eq!(a.shrunk, b.shrunk);
    assert_eq!(a.shrunk.bound, 4, "greedy shrink lands on the smallest bound with bound % 5 == 4");
}

//! `uu-jsonck` — assert that files are well-formed JSON.
//!
//! Usage: `uu-jsonck FILE...` — validates each file, printing a verdict per
//! file; exits non-zero if any file is missing or malformed. CI uses it to
//! gate generated reports (e.g. `BENCH_sim.json`) without external tooling.

use std::process::ExitCode;

fn main() -> ExitCode {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!("usage: uu-jsonck FILE...");
        return ExitCode::from(2);
    }
    let mut failed = false;
    for f in &files {
        match std::fs::read_to_string(f) {
            Err(e) => {
                println!("uu-jsonck: {f}: unreadable: {e}");
                failed = true;
            }
            Ok(text) => match uu_check::json::validate(&text) {
                Ok(()) => println!("uu-jsonck: {f}: ok"),
                Err(e) => {
                    println!("uu-jsonck: {f}: malformed JSON: {e}");
                    failed = true;
                }
            },
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

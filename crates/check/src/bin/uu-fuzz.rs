//! `uu-fuzz` — standalone differential-fuzzing driver.
//!
//! Replays the checked-in regression corpus, then fuzzes novel
//! [`KernelSpec`]s through the [`DiffOracle`] across a `uu-par` worker
//! pool. Everything written to **stdout** is byte-identical at any
//! `UU_JOBS` value (ci.sh diffs the `UU_JOBS=1` and `UU_JOBS=4` outputs);
//! timings go to **stderr** where they cannot perturb the diff.
//!
//! Knobs (all environment, matching the rest of the workspace):
//!
//! * `UU_CHECK_CASES` — novel cases to fuzz (default 200);
//! * `UU_CHECK_SEED`  — master seed (decimal or `0x…` hex);
//! * `UU_JOBS`        — worker count (default: available parallelism).
//!
//! Exit status: 0 when the corpus and every novel case pass; 1 with the
//! shrunk counterexample — printed in the corpus `.seed` format, ready to
//! be checked in — when the oracle finds a miscompilation. A miscompile
//! is additionally bisected to the first bad pass invocation and a
//! replayable crash report is written under `crash-reports/`
//! (`UU_CRASH_DIR` overrides).
//!
//! `UU_FAULT=<kind>@<index>[:<seed>]` injects a deterministic fault into
//! every compile (see `uu_core::recover`), exercising exactly this
//! containment and bisection machinery.

use uu_check::rng::Rng;
use uu_check::{case_seeds, check_result, Config, DiffOracle, Gen, KernelSpec};
use uu_core::FaultPlan;

/// FNV-1a over the spec's canonical text — a cheap, dependency-free digest
/// that makes each stdout line witness the exact case generated.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn main() {
    let cfg = Config::from_env(200);
    let oracle = DiffOracle::default();
    let fault = FaultPlan::from_env();
    if let Some(p) = &fault {
        println!("fault plan: {p}");
    }
    let started = std::time::Instant::now();

    // Phase 1: corpus replay — historical counterexamples must keep
    // passing before any novel fuzzing. Fanned out like the novel cases;
    // results are reported in corpus (file-name) order.
    let corpus = uu_check::corpus::load_corpus();
    let replay =
        uu_par::par_map_jobs(cfg.jobs, &corpus, |_, (name, spec)| {
            (
                name.clone(),
                oracle
                    .check_spec_detailed(spec, fault)
                    .map_err(|e| e.message),
            )
        });
    let mut failed = false;
    for (name, outcome) in &replay {
        match outcome {
            Ok(()) => println!("corpus {name}: ok"),
            Err(e) => {
                failed = true;
                println!("corpus {name}: FAILED\n{e}");
            }
        }
    }
    if failed {
        eprintln!("corpus replay failed after {:.1?}", started.elapsed());
        std::process::exit(1);
    }
    eprintln!(
        "corpus: {} specs replayed in {:.1?} ({} workers)",
        corpus.len(),
        started.elapsed(),
        cfg.jobs
    );

    // Phase 2: novel cases. The digest lines pin down exactly which specs
    // the per-case seeds produced, independent of scheduling.
    for (i, &seed) in case_seeds(cfg.seed, cfg.cases).iter().enumerate() {
        let spec = KernelSpec::generate(&mut Rng::seed_from_u64(seed));
        println!(
            "case {i:>4} seed {seed:#018x} digest {:#018x}",
            fnv1a(spec.to_string().as_bytes())
        );
    }
    let fuzz_started = std::time::Instant::now();
    match check_result::<KernelSpec, _>("diff_oracle", &cfg, |spec| {
        oracle
            .check_spec_detailed(spec, fault)
            .map_err(|e| e.message)
    }) {
        Ok(n) => {
            println!("ok: {} corpus specs + {n} novel cases", corpus.len());
            eprintln!(
                "fuzz: {n} cases in {:.1?} ({} workers)",
                fuzz_started.elapsed(),
                cfg.jobs
            );
        }
        Err(failure) => {
            println!("{failure}");
            println!("--- shrunk spec (corpus .seed format) ---");
            println!("{}", failure.shrunk);
            // Bisect the shrunk counterexample to the first bad pass and
            // persist a replayable crash report. Both the bisection and
            // the artifact content are deterministic, so this block keeps
            // stdout byte-identical across UU_JOBS values.
            if let Err(of) = oracle.check_spec_detailed(&failure.shrunk, fault) {
                if let Some(t) = of.transform {
                    match uu_check::bisect(&failure.shrunk, &t, fault) {
                        Ok(report) => {
                            println!(
                                "--- bisected: first bad pass {}#{}@{} ({} recompiles over {} invocations) ---",
                                report.first_bad.pass,
                                report.first_bad.index,
                                report.first_bad.function,
                                report.recompiles,
                                report.total_invocations
                            );
                            match uu_check::write_crash_report(&report) {
                                Ok(path) => println!("crash report: {}", path.display()),
                                Err(e) => println!("crash report write failed: {e}"),
                            }
                        }
                        Err(e) => println!("--- bisection inconclusive: {e} ---"),
                    }
                }
            }
            eprintln!(
                "fuzz: failed after {:.1?} ({} workers)",
                fuzz_started.elapsed(),
                cfg.jobs
            );
            std::process::exit(1);
        }
    }
}

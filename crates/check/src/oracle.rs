//! The differential-testing oracle.
//!
//! [`KernelSpec`] is a recipe for a random — but always well-formed — GPU
//! loop kernel: a while-loop with a random arithmetic body, an optional
//! diamond (possibly thread-divergent), and an optional inner counted loop
//! so the loop-nest machinery is exercised. [`build_kernel`] lowers a spec
//! to verifier-clean [`uu_ir`]; [`execute`] runs it on the SIMT simulator.
//!
//! [`DiffOracle`] is the correctness core of the whole repo: it compiles
//! one spec under every pipeline configuration (baseline, unroll-only,
//! unmerge-only, u&u at several factors, the heuristic) and demands
//! bit-identical output memory plus verifier-cleanliness after every
//! configuration — exactly the paper's §IV equivalence argument, checked on
//! every commit.

use crate::gen::Gen;
use crate::rng::Rng;
use uu_core::{compile, HeuristicOptions, LoopFilter, PipelineOptions, Transform, UnmergeOptions};
use uu_ir::{Function, FunctionBuilder, ICmpPred, Module, Param, Type, Value};
use uu_simt::{Gpu, KernelArg, LaunchConfig};

/// A recipe for one random loop kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelSpec {
    /// Loop bound (runtime value, 0..=24).
    pub bound: i64,
    /// Ops in the always-executed part of the body.
    pub straight_ops: Vec<(u8, u8, u8)>,
    /// Ops in the conditional arm (empty = no branch).
    pub arm_ops: Vec<(u8, u8, u8)>,
    /// Second conditional region (diamond) ops.
    pub else_ops: Vec<(u8, u8, u8)>,
    /// Which value the branch condition compares against the counter.
    pub cond_sel: u8,
    /// Whether the condition uses the thread id (divergent).
    pub divergent: bool,
    /// Per-thread input values.
    pub input_a: i64,
    /// When > 0, wrap the straight-line ops in an inner counted loop of
    /// this trip count (exercises the loop-nest / super-node machinery).
    pub inner_trip: u8,
}

fn gen_op(rng: &mut Rng) -> (u8, u8, u8) {
    (
        rng.gen_range_u64(0, 8) as u8,
        rng.gen_range_u64(0, 4) as u8,
        rng.gen_range_u64(0, 4) as u8,
    )
}

fn gen_ops(rng: &mut Rng, min: usize, max: usize) -> Vec<(u8, u8, u8)> {
    let len = rng.gen_range_usize(min, max);
    (0..len).map(|_| gen_op(rng)).collect()
}

impl Gen for KernelSpec {
    fn generate(rng: &mut Rng) -> Self {
        KernelSpec {
            bound: rng.gen_range_i64(0, 25),
            straight_ops: gen_ops(rng, 1, 5),
            arm_ops: gen_ops(rng, 0, 4),
            else_ops: gen_ops(rng, 0, 3),
            cond_sel: rng.gen_range_u64(0, 4) as u8,
            divergent: rng.gen_bool(),
            input_a: rng.gen_range_i64(-10, 10),
            inner_trip: rng.gen_range_u64(0, 4) as u8,
        }
    }

    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        // Structural reductions first: fewer iterations, no inner loop,
        // fewer ops, no diamond.
        if self.bound > 0 {
            for nb in [0, self.bound / 2, self.bound - 1] {
                if nb != self.bound {
                    out.push(KernelSpec { bound: nb, ..self.clone() });
                }
            }
        }
        if self.inner_trip > 0 {
            out.push(KernelSpec { inner_trip: 0, ..self.clone() });
            out.push(KernelSpec { inner_trip: self.inner_trip - 1, ..self.clone() });
        }
        if !self.arm_ops.is_empty() {
            // Dropping all arm ops removes the diamond entirely.
            out.push(KernelSpec { arm_ops: Vec::new(), else_ops: Vec::new(), ..self.clone() });
            out.push(KernelSpec {
                arm_ops: self.arm_ops[..self.arm_ops.len() - 1].to_vec(),
                ..self.clone()
            });
        }
        if !self.else_ops.is_empty() {
            out.push(KernelSpec {
                else_ops: self.else_ops[..self.else_ops.len() - 1].to_vec(),
                ..self.clone()
            });
        }
        if self.straight_ops.len() > 1 {
            out.push(KernelSpec {
                straight_ops: self.straight_ops[..1].to_vec(),
                ..self.clone()
            });
            out.push(KernelSpec {
                straight_ops: self.straight_ops[..self.straight_ops.len() - 1].to_vec(),
                ..self.clone()
            });
        }
        if self.divergent {
            out.push(KernelSpec { divergent: false, ..self.clone() });
        }
        if self.input_a != 0 {
            out.push(KernelSpec { input_a: 0, ..self.clone() });
            out.push(KernelSpec { input_a: self.input_a / 2, ..self.clone() });
        }
        if self.cond_sel != 0 {
            out.push(KernelSpec { cond_sel: 0, ..self.clone() });
        }
        // Finally simplify individual ops toward (0, 0, 0) (op 0 is add).
        for (vec_ix, ops) in [&self.straight_ops, &self.arm_ops, &self.else_ops]
            .into_iter()
            .enumerate()
        {
            for (i, &op) in ops.iter().enumerate() {
                if op == (0, 0, 0) {
                    continue;
                }
                let mut s = self.clone();
                let target = match vec_ix {
                    0 => &mut s.straight_ops,
                    1 => &mut s.arm_ops,
                    _ => &mut s.else_ops,
                };
                target[i] = (0, 0, 0);
                out.push(s);
            }
        }
        out
    }
}

impl std::fmt::Display for KernelSpec {
    /// Prints the corpus `.seed` format (see [`crate::corpus`]); paste the
    /// output into `crates/check/corpus/` to pin a counterexample forever.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ops = |v: &[(u8, u8, u8)]| {
            let items: Vec<String> = v
                .iter()
                .map(|(a, b, c)| format!("({a}, {b}, {c})"))
                .collect();
            format!("[{}]", items.join(", "))
        };
        writeln!(f, "bound = {}", self.bound)?;
        writeln!(f, "straight_ops = {}", ops(&self.straight_ops))?;
        writeln!(f, "arm_ops = {}", ops(&self.arm_ops))?;
        writeln!(f, "else_ops = {}", ops(&self.else_ops))?;
        writeln!(f, "cond_sel = {}", self.cond_sel)?;
        writeln!(f, "divergent = {}", self.divergent)?;
        writeln!(f, "input_a = {}", self.input_a)?;
        write!(f, "inner_trip = {}", self.inner_trip)
    }
}

fn apply_op(b: &mut FunctionBuilder<'_>, (op, l, r): (u8, u8, u8), pool: &mut Vec<Value>) {
    let lhs = pool[l as usize % pool.len()];
    let rhs = pool[r as usize % pool.len()];
    let v = match op % 8 {
        0 => b.add(lhs, rhs),
        1 => b.sub(lhs, rhs),
        2 => b.mul(lhs, rhs),
        3 => b.xor(lhs, rhs),
        4 => b.and(lhs, rhs),
        5 => b.or(lhs, rhs),
        6 => {
            let sh = b.and(rhs, Value::imm(7i64));
            b.shl(lhs, sh)
        }
        _ => {
            let sh = b.and(rhs, Value::imm(7i64));
            b.ashr(lhs, sh)
        }
    };
    pool.push(v);
}

/// Build the kernel for a spec: a while-loop whose body applies the ops,
/// with an optional diamond, accumulating into an `i64` per thread.
pub fn build_kernel(spec: &KernelSpec) -> Function {
    let mut f = Function::new(
        "prop_kernel",
        vec![
            Param::new("out", Type::Ptr),
            Param::new("n", Type::I64),
            Param::new("a", Type::I64),
        ],
        Type::Void,
    );
    let entry = f.entry();
    let mut b = FunctionBuilder::new(&mut f);
    let header = b.create_block();
    let body = b.create_block();
    let exit = b.create_block();
    b.switch_to(entry);
    let gid = b.global_thread_id();
    b.br(header);
    b.switch_to(header);
    let i = b.phi(Type::I64);
    let acc = b.phi(Type::I64);
    b.add_phi_incoming(i, entry, Value::imm(0i64));
    b.add_phi_incoming(acc, entry, Value::Arg(2));
    let c = b.icmp(ICmpPred::Slt, i, Value::Arg(1));
    b.cond_br(c, body, exit);
    b.switch_to(body);
    let mut pool = vec![i, acc, Value::Arg(2), Value::imm(3i64)];
    let straight_result = if spec.inner_trip > 0 {
        // Inner counted loop applying the ops repeatedly: the outer u&u
        // must treat it as an indivisible super-node.
        let ih = b.create_block();
        let ibody = b.create_block();
        let iexit = b.create_block();
        let entry_of_inner = b.current();
        b.br(ih);
        b.switch_to(ih);
        let j = b.phi(Type::I64);
        let iv = b.phi(Type::I64);
        b.add_phi_incoming(j, entry_of_inner, Value::imm(0i64));
        b.add_phi_incoming(iv, entry_of_inner, acc);
        let ic = b.icmp(ICmpPred::Slt, j, Value::imm(spec.inner_trip as i64));
        b.cond_br(ic, ibody, iexit);
        b.switch_to(ibody);
        let mut ipool = pool.clone();
        ipool.push(iv);
        for op in &spec.straight_ops {
            apply_op(&mut b, *op, &mut ipool);
        }
        let next_iv = *ipool.last().unwrap();
        let j1 = b.add(j, Value::imm(1i64));
        b.add_phi_incoming(j, ibody, j1);
        b.add_phi_incoming(iv, ibody, next_iv);
        b.br(ih);
        b.switch_to(iexit);
        // LCSSA-style hand-off out of the inner loop.
        let out = b.phi(Type::I64);
        b.add_phi_incoming(out, ih, iv);
        pool.push(out);
        out
    } else {
        for op in &spec.straight_ops {
            apply_op(&mut b, *op, &mut pool);
        }
        *pool.last().unwrap()
    };

    let latch = b.create_block();
    let (acc_next, i_from) = if spec.arm_ops.is_empty() {
        // No branch: straight to latch.
        b.br(latch);
        b.switch_to(latch);
        (straight_result, latch)
    } else {
        let arm = b.create_block();
        let other = b.create_block();
        let cond_lhs = if spec.divergent {
            gid
        } else {
            pool[spec.cond_sel as usize % pool.len()]
        };
        let masked = b.and(cond_lhs, Value::imm(3i64));
        let cc = b.icmp(ICmpPred::Ne, masked, Value::imm(0i64));
        b.cond_br(cc, arm, other);
        b.switch_to(arm);
        let mut arm_pool = pool.clone();
        for op in &spec.arm_ops {
            apply_op(&mut b, *op, &mut arm_pool);
        }
        let arm_v = *arm_pool.last().unwrap();
        b.br(latch);
        b.switch_to(other);
        let mut else_pool = pool.clone();
        for op in &spec.else_ops {
            apply_op(&mut b, *op, &mut else_pool);
        }
        let else_v = *else_pool.last().unwrap();
        b.br(latch);
        b.switch_to(latch);
        let m = b.phi(Type::I64);
        b.add_phi_incoming(m, arm, arm_v);
        b.add_phi_incoming(m, other, else_v);
        (m, latch)
    };
    let i1 = b.add(i, Value::imm(1i64));
    b.add_phi_incoming(i, i_from, i1);
    b.add_phi_incoming(acc, i_from, acc_next);
    b.br(header);
    b.switch_to(exit);
    let po = b.gep(Value::Arg(0), gid, 8);
    b.store(po, acc);
    b.ret(None);
    f
}

/// Execute a spec's kernel (one block of 32 threads) on a fresh simulated
/// GPU and return the 32 per-thread outputs.
///
/// # Errors
///
/// Returns the simulator fault message if the launch traps — after a
/// verifier-clean compile that always indicates a miscompilation.
pub fn execute(f: &Function, spec: &KernelSpec) -> Result<Vec<i64>, String> {
    // A tight step budget: spec kernels run a few hundred instructions, so
    // a compile that breaks termination trips the watchdog in microseconds
    // instead of grinding through the production default.
    let mut params = uu_simt::GpuParams::default();
    params.max_warp_insts = 2_000_000;
    execute_with_params(f, spec, params).map(|(out, _, _)| out)
}

/// Execute a spec's kernel under an explicit interpreter engine, returning
/// the outputs plus the launch metrics and simulated kernel time — the full
/// comparison payload of the decoded-vs-reference differential tests (the
/// engines must agree on *all three*, not just the outputs).
///
/// # Errors
///
/// As [`execute`].
pub fn execute_on(
    f: &Function,
    spec: &KernelSpec,
    engine: uu_simt::ExecEngine,
) -> Result<(Vec<i64>, uu_simt::Metrics, f64), String> {
    let mut params = uu_simt::GpuParams::default();
    params.max_warp_insts = 2_000_000;
    params.engine = engine;
    execute_with_params(f, spec, params)
}

/// Execute a spec's kernel (one block of 32 threads) under explicit GPU
/// parameters, returning `(outputs, metrics, time_ms)`.
///
/// # Errors
///
/// As [`execute`].
pub fn execute_with_params(
    f: &Function,
    spec: &KernelSpec,
    params: uu_simt::GpuParams,
) -> Result<(Vec<i64>, uu_simt::Metrics, f64), String> {
    let mut gpu = Gpu::with_params(params);
    let out = gpu
        .mem
        .alloc_i64(&vec![0i64; 32])
        .map_err(|e| format!("alloc failed: {e}"))?;
    let report = gpu
        .launch(
            f,
            LaunchConfig::new(1, 32),
            &[
                KernelArg::Buffer(out),
                KernelArg::I64(spec.bound),
                KernelArg::I64(spec.input_a),
            ],
        )
        .map_err(|e| format!("exec failed: {e}\n{f}"))?;
    let vals = gpu
        .mem
        .read_i64(out)
        .map_err(|e| format!("readback failed: {e}"))?;
    Ok((vals, report.metrics, report.time_ms))
}

/// The pipeline configurations every kernel is differentially tested
/// against (mirrors the paper's §IV-B measurement configurations).
pub fn default_transforms() -> Vec<Transform> {
    vec![
        Transform::Baseline,
        Transform::Unroll { factor: 3 },
        Transform::Unmerge,
        Transform::Uu {
            factor: 2,
            unmerge: UnmergeOptions::default(),
        },
        Transform::Uu {
            factor: 5,
            unmerge: UnmergeOptions::default(),
        },
        Transform::UuHeuristic(HeuristicOptions::default()),
        Transform::Meld,
        Transform::UuMeld {
            factor: 2,
            unmerge: UnmergeOptions::default(),
        },
    ]
}

/// Differential oracle: compile under every configuration, execute, and
/// demand verifier-cleanliness plus bit-identical outputs.
#[derive(Debug, Clone)]
pub struct DiffOracle {
    /// The configurations compared against the raw kernel's execution.
    pub transforms: Vec<Transform>,
}

impl Default for DiffOracle {
    fn default() -> Self {
        DiffOracle {
            transforms: default_transforms(),
        }
    }
}

/// A structured oracle verdict: what failed, under which configuration.
///
/// [`DiffOracle::check_spec`] flattens this to a string for the property
/// runner; the bisector consumes it directly to know *which* transform to
/// bisect.
#[derive(Debug, Clone)]
pub struct OracleFailure {
    /// The failing pipeline configuration; `None` means the raw kernel
    /// itself failed (a generator bug, not a compiler bug).
    pub transform: Option<Transform>,
    /// Human-readable diagnosis (verifier report, trap, or output diff).
    pub message: String,
}

impl std::fmt::Display for OracleFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl DiffOracle {
    /// Check one spec end-to-end. `Err` carries a human-readable diagnosis
    /// (invalid IR after a pass, a simulator trap, or diverging outputs).
    pub fn check_spec(&self, spec: &KernelSpec) -> Result<(), String> {
        self.check_spec_detailed(spec, None).map_err(|f| f.message)
    }

    /// Like [`check_spec`](DiffOracle::check_spec), but returns the failing
    /// transform so callers can hand it to the bisector, and accepts a
    /// fault-injection plan forwarded to every compile (used by the fault
    /// matrix tests and `UU_FAULT` runs).
    pub fn check_spec_detailed(
        &self,
        spec: &KernelSpec,
        fault: Option<uu_core::FaultPlan>,
    ) -> Result<(), OracleFailure> {
        let raw = |message: String| OracleFailure { transform: None, message };
        let kernel = build_kernel(spec);
        uu_ir::verify_function(&kernel)
            .map_err(|e| raw(format!("generator produced invalid IR: {e}")))?;
        let golden = execute(&kernel, spec).map_err(raw)?;
        for t in &self.transforms {
            let label = format!("{t:?}");
            let fail = |message: String| OracleFailure {
                transform: Some(t.clone()),
                message,
            };
            let mut m = Module::new("oracle");
            let id = m.add_function(kernel.clone());
            let out = compile(
                &mut m,
                &PipelineOptions {
                    transform: t.clone(),
                    filter: LoopFilter::All,
                    fault,
                    ..Default::default()
                },
            );
            if let Some(e) = &out.verify_error {
                return Err(fail(format!("invalid IR after {label}: {e}")));
            }
            let got = execute(m.function(id), spec).map_err(&fail)?;
            if got != golden {
                return Err(fail(format!(
                    "config {label} diverged\n  want: {golden:?}\n  got:  {got:?}\n  spec:\n{spec}"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_spec_builds_and_verifies() {
        let spec = KernelSpec {
            bound: 3,
            straight_ops: vec![(0, 0, 0)],
            arm_ops: vec![],
            else_ops: vec![],
            cond_sel: 0,
            divergent: false,
            input_a: 1,
            inner_trip: 0,
        };
        let f = build_kernel(&spec);
        uu_ir::verify_function(&f).unwrap();
        let out = execute(&f, &spec).unwrap();
        assert_eq!(out.len(), 32);
    }

    #[test]
    fn generated_specs_are_always_well_formed() {
        let mut rng = Rng::seed_from_u64(0xDEC0DE);
        for _ in 0..64 {
            let spec = KernelSpec::generate(&mut rng);
            let f = build_kernel(&spec);
            uu_ir::verify_function(&f).unwrap_or_else(|e| panic!("{e}\nspec:\n{spec}"));
        }
    }

    #[test]
    fn shrink_candidates_are_never_identical_to_self() {
        let mut rng = Rng::seed_from_u64(0xCAFE);
        for _ in 0..64 {
            let spec = KernelSpec::generate(&mut rng);
            for cand in spec.shrink() {
                assert_ne!(cand, spec);
            }
        }
    }

    #[test]
    fn display_round_trips_through_corpus_parser() {
        let mut rng = Rng::seed_from_u64(0xF00D);
        for _ in 0..32 {
            let spec = KernelSpec::generate(&mut rng);
            let text = spec.to_string();
            let parsed = crate::corpus::parse_spec(&text).unwrap();
            assert_eq!(parsed, spec, "corpus text:\n{text}");
        }
    }
}

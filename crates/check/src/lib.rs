//! # uu-check — deterministic fuzzing, differential testing and
//! micro-benchmarking with zero external dependencies
//!
//! The uu workspace builds and tests fully offline; this crate supplies,
//! in-tree, everything the registry crates `rand`, `proptest` and
//! `criterion` used to provide:
//!
//! * [`rng`] — [`SplitMix64`] and xoshiro256++ ([`Rng`]) PRNGs, the
//!   deterministic randomness source for every test and workload;
//! * [`gen`] + [`runner`] — a minimal property-testing framework: the
//!   [`Gen`] trait, seeded case generation ([`check`] / [`Config`]), an
//!   iteration budget and greedy input shrinking with replayable failure
//!   reports (`UU_CHECK_SEED`, `UU_CHECK_CASES`);
//! * [`bench`] — a wall-clock micro-bench harness (warmup calibration,
//!   median-of-N, JSON output) driving the `crates/bench` targets;
//! * [`oracle`] — the [`DiffOracle`]: random well-formed loop kernels
//!   ([`KernelSpec`]) compiled under every pipeline configuration and
//!   executed on the SIMT simulator, asserting bit-identical outputs and
//!   verifier-clean IR after every pass — the repo's core correctness
//!   argument (paper §IV);
//! * [`corpus`] — a checked-in `.seed` regression corpus replayed before
//!   novel fuzzing, so historical counterexamples keep running;
//! * [`json`] — a JSON well-formedness checker behind the `uu-jsonck` bin,
//!   which CI runs over generated reports;
//! * [`bisect`] — opt-bisect over the pipeline's pass-invocation counter:
//!   given an oracle-detected miscompile, binary-search to the first bad
//!   pass and write a replayable crash-report artifact (the native
//!   `-opt-bisect-limit` + `CrashRecoveryContext` workflow).

#![warn(missing_docs)]

pub mod bench;
pub mod bisect;
pub mod corpus;
pub mod gen;
pub mod json;
pub mod oracle;
pub mod rng;
pub mod runner;

pub use bisect::{bisect, write_crash_report, BisectReport};
pub use gen::Gen;
pub use oracle::{
    build_kernel, execute, execute_on, execute_with_params, DiffOracle, KernelSpec, OracleFailure,
};
pub use rng::{Rng, SplitMix64};
pub use runner::{case_seeds, check, check_result, Config, Failure};

//! Deterministic pseudo-random number generation.
//!
//! Two small, well-studied generators, implemented from the reference
//! algorithms so the workspace needs no registry crates:
//!
//! * [`SplitMix64`] — a 64-bit state mixer, used for seed expansion and for
//!   deriving independent per-case seeds from a master seed;
//! * [`Rng`] — xoshiro256++, the workhorse generator behind case
//!   generation, workload synthesis and the harness noise model.
//!
//! Both are fully deterministic: the same seed always yields the same
//! stream, on every platform, forever. That property is what makes fuzz
//! failures replayable from a single `u64` (see [`crate::runner`]).

/// SplitMix64 (Steele, Lea & Flood): a tiny generator with a trivially
/// seedable 64-bit state. Primarily used to expand one `u64` seed into the
/// 256-bit state of [`Rng`] and to derive per-case seeds.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a 64-bit seed. Any seed is valid.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ (Blackman & Vigna): the default generator.
///
/// 256 bits of state, period 2^256 − 1, excellent statistical quality for
/// everything a test harness needs. Seeded from a single `u64` via
/// [`SplitMix64`] expansion, as the xoshiro authors recommend.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Build a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = sm.next_u64();
        }
        // The all-zero state is the one fixed point of xoshiro; SplitMix64
        // cannot produce four consecutive zeros, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Rng { s }
    }

    /// Next 64 uniformly distributed bits (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniformly distributed boolean.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() >> 63 == 1
    }

    /// Uniform `u64` in `[lo, hi)` using the widening-multiply range
    /// reduction (Lemire); bias is at most 2^-64 and the result is
    /// deterministic for a given stream position.
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi - lo;
        lo + ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// Uniform `i64` in `[lo, hi)`.
    pub fn gen_range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = (hi as i128 - lo as i128) as u64;
        let off = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        (lo as i128 + off as i128) as i64
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.gen_range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// The upper bound is exclusive even for adjacent-float and
    /// huge-magnitude ranges, where the naive `lo + f * (hi - lo)` can
    /// round up to exactly `hi`: such draws are resampled (consuming
    /// further stream positions), and if the range is so degenerate that
    /// rounding keeps hitting `hi`, the result is clamped to the largest
    /// float below `hi`.
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        for _ in 0..4 {
            let x = lo + self.gen_f64() * (hi - lo);
            if x < hi {
                return x;
            }
        }
        hi.next_down().max(lo)
    }

    /// Derive an independent child generator (splits the stream).
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from_u64(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First outputs of SplitMix64 seeded with 0, from the reference
        // implementation (Vigna, prng.di.unimi.it).
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(sm.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = Rng::seed_from_u64(7);
            (0..64).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::seed_from_u64(7);
            (0..64).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Rng::seed_from_u64(8);
            (0..64).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::seed_from_u64(42);
        for _ in 0..10_000 {
            let u = r.gen_range_u64(5, 17);
            assert!((5..17).contains(&u));
            let i = r.gen_range_i64(-10, 10);
            assert!((-10..10).contains(&i));
            let f = r.gen_range_f64(1.5, 2.5);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn range_reduction_is_roughly_uniform() {
        let mut r = Rng::seed_from_u64(3);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.gen_range_usize(0, 8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gen_range_f64_excludes_hi_on_adjacent_floats() {
        // Regression: with `hi` one ulp above `lo`, `lo + f * (hi - lo)`
        // rounds up to exactly `hi` for roughly half of all draws.
        let cases = [
            (1.0, 1.0 + f64::EPSILON),
            (-1.0 - f64::EPSILON, -1.0),
            (1e300, 1e300_f64.next_up()),
            (-0.0, f64::MIN_POSITIVE),
        ];
        for (lo, hi) in cases {
            let mut r = Rng::seed_from_u64(11);
            for _ in 0..4_000 {
                let x = r.gen_range_f64(lo, hi);
                assert!(lo <= x && x < hi, "{x} outside [{lo}, {hi})");
            }
        }
    }

    /// A random range plus a seed for the draws made inside it.
    #[derive(Debug, Clone)]
    struct FRange {
        lo: f64,
        hi: f64,
        seed: u64,
    }

    impl crate::gen::Gen for FRange {
        fn generate(rng: &mut Rng) -> Self {
            let exp = rng.gen_range_i64(-300, 301) as i32;
            let lo = (rng.gen_f64() * 2.0 - 1.0) * 10f64.powi(exp);
            let lo = if lo.is_finite() { lo } else { 0.0 };
            // A third of the ranges are the adversarial one-ulp case; the
            // rest span widths from 1e-10 to 1e9 around lo.
            let hi = match rng.gen_range_u64(0, 3) {
                0 => lo.next_up(),
                1 => lo + 10f64.powi(rng.gen_range_i64(-10, 10) as i32),
                _ => lo + lo.abs().max(1.0) * rng.gen_f64(),
            };
            let hi = if hi.is_finite() && hi > lo { hi } else { lo.next_up() };
            FRange {
                lo,
                hi,
                seed: rng.next_u64(),
            }
        }
    }

    #[test]
    fn gen_range_f64_upper_bound_is_exclusive_for_random_ranges() {
        crate::runner::check(
            "gen_range_f64_exclusive_hi",
            &crate::runner::Config::new(500),
            |r: &FRange| {
                let mut g = Rng::seed_from_u64(r.seed);
                for _ in 0..64 {
                    let x = g.gen_range_f64(r.lo, r.hi);
                    if !(r.lo <= x && x < r.hi) {
                        return Err(format!("{x} outside [{}, {})", r.lo, r.hi));
                    }
                }
                Ok(())
            },
        );
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut r = Rng::seed_from_u64(1);
        let mut c1 = r.fork();
        let mut c2 = r.fork();
        let a: Vec<u64> = (0..16).map(|_| c1.next_u64()).collect();
        let b: Vec<u64> = (0..16).map(|_| c2.next_u64()).collect();
        assert_ne!(a, b);
    }
}

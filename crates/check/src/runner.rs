//! The property-test runner: seeded case generation, iteration budget,
//! greedy shrinking and replayable failure reports.
//!
//! ```
//! use uu_check::{check, Config};
//!
//! // Addition of small numbers commutes.
//! check("add_commutes", &Config::new(64), |&(a, b): &(i64, i64)| {
//!     if a.wrapping_add(b) == b.wrapping_add(a) {
//!         Ok(())
//!     } else {
//!         Err("addition does not commute".to_string())
//!     }
//! });
//! ```
//!
//! ## Reproducibility
//!
//! Every case is generated from a per-case seed derived by
//! [`SplitMix64`] from the master seed, so case `i` depends only on
//! `(master_seed, i)` — never on how many random draws earlier cases made.
//! `UU_CHECK_SEED` replays an entire run; the failure report additionally
//! prints the failing case's own seed.
//!
//! ## Environment
//!
//! * `UU_CHECK_CASES` — overrides the per-property case count (CI smoke
//!   runs use `UU_CHECK_CASES=200`);
//! * `UU_CHECK_SEED` — overrides the master seed (decimal or `0x…` hex).

use crate::gen::Gen;
use crate::rng::{Rng, SplitMix64};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Default master seed. Fixed so every checkout fuzzes the same cases;
/// grow coverage by raising `UU_CHECK_CASES`, not by randomizing the seed.
pub const DEFAULT_SEED: u64 = 0x5EED_CAFE_0000_0001;

/// Runner configuration for one property.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases to run.
    pub cases: u32,
    /// Master seed; each case derives its own seed from it.
    pub seed: u64,
    /// Upper bound on property evaluations spent shrinking a failure.
    pub max_shrink_iters: u32,
}

impl Config {
    /// A configuration with the default seed and shrink budget.
    pub fn new(cases: u32) -> Self {
        Config {
            cases,
            seed: DEFAULT_SEED,
            max_shrink_iters: 400,
        }
    }

    /// Like [`Config::new`], with `UU_CHECK_CASES` / `UU_CHECK_SEED`
    /// environment overrides applied.
    pub fn from_env(default_cases: u32) -> Self {
        let mut cfg = Config::new(default_cases);
        if let Ok(v) = std::env::var("UU_CHECK_CASES") {
            match v.trim().parse::<u32>() {
                Ok(n) => cfg.cases = n,
                Err(_) => panic!("UU_CHECK_CASES must be an integer, got {v:?}"),
            }
        }
        if let Ok(v) = std::env::var("UU_CHECK_SEED") {
            let t = v.trim();
            let parsed = match t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => t.parse::<u64>(),
            };
            match parsed {
                Ok(s) => cfg.seed = s,
                Err(_) => panic!("UU_CHECK_SEED must be a u64 (decimal or 0x-hex), got {v:?}"),
            }
        }
        cfg
    }
}

/// A minimized counterexample, with everything needed to replay it.
#[derive(Debug, Clone)]
pub struct Failure<T> {
    /// Property name as passed to [`check`].
    pub name: String,
    /// Master seed of the run.
    pub seed: u64,
    /// Index of the failing case within the run.
    pub case_index: u32,
    /// Seed that generated the failing case.
    pub case_seed: u64,
    /// The input as originally generated.
    pub original: T,
    /// The input after greedy shrinking (equal to `original` if no shrink
    /// candidate reproduced the failure).
    pub shrunk: T,
    /// Number of successful shrink steps taken.
    pub shrink_steps: u32,
    /// The error produced by the shrunk input.
    pub error: String,
}

impl<T: std::fmt::Debug> std::fmt::Display for Failure<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "uu-check: property '{}' failed (master seed {:#x}, case {}, case seed {:#x})",
            self.name, self.seed, self.case_index, self.case_seed
        )?;
        writeln!(f, "  original: {:?}", self.original)?;
        writeln!(
            f,
            "  shrunk ({} steps): {:?}",
            self.shrink_steps, self.shrunk
        )?;
        writeln!(f, "  error: {}", self.error)?;
        write!(
            f,
            "  replay the whole run with UU_CHECK_SEED={:#x}",
            self.seed
        )
    }
}

fn panic_payload_to_string(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = p.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

fn run_case<T, F>(prop: &F, input: &T) -> Result<(), String>
where
    F: Fn(&T) -> Result<(), String>,
{
    match catch_unwind(AssertUnwindSafe(|| prop(input))) {
        Ok(r) => r,
        Err(p) => Err(panic_payload_to_string(p)),
    }
}

/// Run a property over `cfg.cases` generated inputs; on failure, greedily
/// shrink and return the minimized [`Failure`]. `Ok(cases_run)` otherwise.
///
/// Prefer [`check`] in tests; this variant exists for asserting *on* the
/// framework itself (e.g. that an injected miscompilation is caught).
pub fn check_result<T, F>(name: &str, cfg: &Config, prop: F) -> Result<u32, Box<Failure<T>>>
where
    T: Gen,
    F: Fn(&T) -> Result<(), String>,
{
    let mut seeder = SplitMix64::new(cfg.seed);
    for case_index in 0..cfg.cases {
        let case_seed = seeder.next_u64();
        let mut rng = Rng::seed_from_u64(case_seed);
        let input = T::generate(&mut rng);
        if let Err(first_error) = run_case(&prop, &input) {
            let mut shrunk = input.clone();
            let mut error = first_error;
            let mut steps = 0u32;
            let mut iters = 0u32;
            'shrinking: while iters < cfg.max_shrink_iters {
                for cand in shrunk.shrink() {
                    iters += 1;
                    if let Err(e) = run_case(&prop, &cand) {
                        shrunk = cand;
                        error = e;
                        steps += 1;
                        continue 'shrinking;
                    }
                    if iters >= cfg.max_shrink_iters {
                        break;
                    }
                }
                break;
            }
            return Err(Box::new(Failure {
                name: name.to_string(),
                seed: cfg.seed,
                case_index,
                case_seed,
                original: input,
                shrunk,
                shrink_steps: steps,
                error,
            }));
        }
    }
    Ok(cfg.cases)
}

/// Run a property and panic with a replayable report on failure.
///
/// The property either returns `Err(message)` or panics (asserts are fine;
/// panics are caught and treated as failures).
pub fn check<T, F>(name: &str, cfg: &Config, prop: F)
where
    T: Gen,
    F: Fn(&T) -> Result<(), String>,
{
    if let Err(failure) = check_result(name, cfg, prop) {
        panic!("{failure}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let n = check_result("tautology", &Config::new(25), |_: &u32| Ok(())).unwrap();
        assert_eq!(n, 25);
    }

    #[test]
    fn failure_is_shrunk_to_the_boundary() {
        // "No value is >= 100" — minimal counterexample is exactly 100.
        let f = check_result("lt100", &Config::new(500), |&x: &u32| {
            if x < 100 {
                Ok(())
            } else {
                Err(format!("{x} >= 100"))
            }
        })
        .unwrap_err();
        assert_eq!(f.shrunk, 100, "greedy shrink must land on the boundary");
        assert!(f.original >= 100);
    }

    #[test]
    fn vec_failure_shrinks_structurally() {
        // "No vec contains an element >= 50" — minimal form is one element
        // of exactly 50.
        let f = check_result("no_big_elem", &Config::new(200), |v: &Vec<u8>| {
            match v.iter().find(|&&x| x >= 50) {
                None => Ok(()),
                Some(x) => Err(format!("{x} >= 50")),
            }
        })
        .unwrap_err();
        assert_eq!(f.shrunk.len(), 1);
        assert_eq!(f.shrunk[0], 50);
    }

    #[test]
    fn panicking_properties_are_caught() {
        let f = check_result("panics", &Config::new(10), |&x: &u64| {
            assert!(x == u64::MAX, "unlucky");
            Ok(())
        })
        .unwrap_err();
        assert!(f.error.contains("panic"), "error was {:?}", f.error);
    }

    #[test]
    fn same_seed_same_failure() {
        let run = || {
            check_result("det", &Config::new(300), |&x: &u32| {
                if x % 7 != 3 {
                    Ok(())
                } else {
                    Err("hit".into())
                }
            })
            .unwrap_err()
        };
        let a = run();
        let b = run();
        assert_eq!(a.case_index, b.case_index);
        assert_eq!(a.original, b.original);
        assert_eq!(a.shrunk, b.shrunk);
    }

    #[test]
    fn different_seeds_generate_different_cases() {
        let collect = |seed: u64| {
            let mut seen = Vec::new();
            let cfg = Config {
                seed,
                ..Config::new(20)
            };
            let seen_cell = std::cell::RefCell::new(&mut seen);
            check_result("collect", &cfg, |&x: &u64| {
                seen_cell.borrow_mut().push(x);
                Ok(())
            })
            .unwrap();
            seen
        };
        assert_ne!(collect(1), collect(2));
    }
}

//! The property-test runner: seeded case generation, iteration budget,
//! greedy shrinking and replayable failure reports.
//!
//! ```
//! use uu_check::{check, Config};
//!
//! // Addition of small numbers commutes.
//! check("add_commutes", &Config::new(64), |&(a, b): &(i64, i64)| {
//!     if a.wrapping_add(b) == b.wrapping_add(a) {
//!         Ok(())
//!     } else {
//!         Err("addition does not commute".to_string())
//!     }
//! });
//! ```
//!
//! ## Reproducibility
//!
//! Every case is generated from a per-case seed derived by
//! [`SplitMix64`] from the master seed (see [`case_seeds`]), so case `i`
//! depends only on `(master_seed, i)` — never on how many random draws
//! earlier cases made, and never on which worker thread ran it.
//! `UU_CHECK_SEED` replays an entire run; the failure report additionally
//! prints the failing case's own seed.
//!
//! ## Parallel execution
//!
//! With [`Config::jobs`] > 1 the case scan fans out over a `uu-par`
//! work-stealing pool. Each worker re-derives its cases' generators from
//! the per-case seeds (the same stream split that [`Rng::fork`] performs:
//! a fresh xoshiro generator seeded from one draw of the parent stream,
//! with the draw recorded so a single case replays), so parallel runs
//! visit exactly the serial run's cases. The reported failure is always
//! the one with the **lowest case index** — workers racing past it are
//! cancelled and later failures discarded — and shrinking stays serial,
//! so the failure report is byte-identical at any worker count.
//!
//! ## Environment
//!
//! * `UU_CHECK_CASES` — overrides the per-property case count (CI smoke
//!   runs use `UU_CHECK_CASES=200`);
//! * `UU_CHECK_SEED` — overrides the master seed (decimal or `0x…` hex);
//! * `UU_JOBS` — worker count for [`Config::from_env`] (default: available
//!   parallelism; `1` reproduces the serial scan exactly).

use crate::gen::Gen;
use crate::rng::{Rng, SplitMix64};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, Ordering};

/// Default master seed. Fixed so every checkout fuzzes the same cases;
/// grow coverage by raising `UU_CHECK_CASES`, not by randomizing the seed.
pub const DEFAULT_SEED: u64 = 0x5EED_CAFE_0000_0001;

/// Runner configuration for one property.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases to run.
    pub cases: u32,
    /// Master seed; each case derives its own seed from it.
    pub seed: u64,
    /// Upper bound on property evaluations spent shrinking a failure.
    pub max_shrink_iters: u32,
    /// Worker threads for the case scan. `1` (the [`Config::new`]
    /// default) runs serially on the calling thread; [`Config::from_env`]
    /// defaults to the machine's parallelism via `UU_JOBS`.
    pub jobs: usize,
}

impl Config {
    /// A configuration with the default seed and shrink budget, running
    /// serially.
    pub fn new(cases: u32) -> Self {
        Config {
            cases,
            seed: DEFAULT_SEED,
            max_shrink_iters: 400,
            jobs: 1,
        }
    }

    /// Like [`Config::new`], with `UU_CHECK_CASES` / `UU_CHECK_SEED` /
    /// `UU_JOBS` environment overrides applied; the case scan runs on
    /// all available cores unless `UU_JOBS` says otherwise.
    pub fn from_env(default_cases: u32) -> Self {
        let mut cfg = Config::new(default_cases);
        cfg.jobs = uu_par::num_jobs();
        if let Ok(v) = std::env::var("UU_CHECK_CASES") {
            match v.trim().parse::<u32>() {
                Ok(n) => cfg.cases = n,
                Err(_) => panic!("UU_CHECK_CASES must be an integer, got {v:?}"),
            }
        }
        if let Ok(v) = std::env::var("UU_CHECK_SEED") {
            let t = v.trim();
            let parsed = match t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => t.parse::<u64>(),
            };
            match parsed {
                Ok(s) => cfg.seed = s,
                Err(_) => panic!("UU_CHECK_SEED must be a u64 (decimal or 0x-hex), got {v:?}"),
            }
        }
        cfg
    }
}

/// A minimized counterexample, with everything needed to replay it.
#[derive(Debug, Clone)]
pub struct Failure<T> {
    /// Property name as passed to [`check`].
    pub name: String,
    /// Master seed of the run.
    pub seed: u64,
    /// Index of the failing case within the run.
    pub case_index: u32,
    /// Seed that generated the failing case.
    pub case_seed: u64,
    /// The input as originally generated.
    pub original: T,
    /// The input after greedy shrinking (equal to `original` if no shrink
    /// candidate reproduced the failure).
    pub shrunk: T,
    /// Number of successful shrink steps taken.
    pub shrink_steps: u32,
    /// The error produced by the shrunk input.
    pub error: String,
}

impl<T: std::fmt::Debug> std::fmt::Display for Failure<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "uu-check: property '{}' failed (master seed {:#x}, case {}, case seed {:#x})",
            self.name, self.seed, self.case_index, self.case_seed
        )?;
        writeln!(f, "  original: {:?}", self.original)?;
        writeln!(
            f,
            "  shrunk ({} steps): {:?}",
            self.shrink_steps, self.shrunk
        )?;
        writeln!(f, "  error: {}", self.error)?;
        write!(
            f,
            "  replay the whole run with UU_CHECK_SEED={:#x}",
            self.seed
        )
    }
}

fn panic_payload_to_string(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = p.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

fn run_case<T, F>(prop: &F, input: &T) -> Result<(), String>
where
    F: Fn(&T) -> Result<(), String>,
{
    match catch_unwind(AssertUnwindSafe(|| prop(input))) {
        Ok(r) => r,
        Err(p) => Err(panic_payload_to_string(p)),
    }
}

/// The per-case seeds of a run with master seed `master`: case `i` is
/// always generated from element `i`, independent of worker count and of
/// how many random draws other cases made. This is the recordable half of
/// an [`Rng::fork`]-style stream split — the seed is one draw of the
/// master stream, and the case's generator is built fresh from it, which
/// is what lets a single case (or a whole run) replay from one `u64`.
pub fn case_seeds(master: u64, cases: u32) -> Vec<u64> {
    let mut seeder = SplitMix64::new(master);
    (0..cases).map(|_| seeder.next_u64()).collect()
}

/// Scan the run's cases for the failure with the lowest case index, using
/// `cfg.jobs` workers. Returns `(case_index, case_seed, input, error)`.
fn find_first_failure<T, F>(cfg: &Config, prop: &F) -> Option<(u32, u64, T, String)>
where
    T: Gen + Send,
    F: Fn(&T) -> Result<(), String> + Sync,
{
    let seeds = case_seeds(cfg.seed, cfg.cases);
    if cfg.jobs <= 1 {
        for (case_index, &case_seed) in seeds.iter().enumerate() {
            let mut rng = Rng::seed_from_u64(case_seed);
            let input = T::generate(&mut rng);
            if let Err(e) = run_case(prop, &input) {
                return Some((case_index as u32, case_seed, input, e));
            }
        }
        return None;
    }
    // Parallel scan. `earliest` lets workers skip cases that can no longer
    // be the first failure; it only ever decreases, and a case is only
    // skipped when a *lower-indexed* failure is already known, so the
    // minimum over all reported failures equals the serial scan's first
    // failure regardless of scheduling.
    let earliest = AtomicU32::new(u32::MAX);
    let failures = uu_par::par_map_jobs(cfg.jobs, &seeds, |i, &case_seed| {
        let case_index = i as u32;
        if case_index > earliest.load(Ordering::Relaxed) {
            return None;
        }
        let mut rng = Rng::seed_from_u64(case_seed);
        let input = T::generate(&mut rng);
        match run_case(prop, &input) {
            Ok(()) => None,
            Err(e) => {
                earliest.fetch_min(case_index, Ordering::Relaxed);
                Some((case_index, case_seed, input, e))
            }
        }
    });
    // par_map preserves input order, so the first surviving entry has the
    // lowest case index.
    failures.into_iter().flatten().next()
}

/// Run a property over `cfg.cases` generated inputs; on failure, greedily
/// shrink and return the minimized [`Failure`]. `Ok(cases_run)` otherwise.
///
/// Prefer [`check`] in tests; this variant exists for asserting *on* the
/// framework itself (e.g. that an injected miscompilation is caught).
pub fn check_result<T, F>(name: &str, cfg: &Config, prop: F) -> Result<u32, Box<Failure<T>>>
where
    T: Gen + Send,
    F: Fn(&T) -> Result<(), String> + Sync,
{
    let Some((case_index, case_seed, input, first_error)) = find_first_failure(cfg, &prop)
    else {
        return Ok(cfg.cases);
    };
    // Shrinking is greedy and inherently sequential (each step depends on
    // the previous accepted candidate); it stays on the calling thread so
    // the minimized counterexample is identical at any worker count.
    let mut shrunk = input.clone();
    let mut error = first_error;
    let mut steps = 0u32;
    let mut iters = 0u32;
    'shrinking: while iters < cfg.max_shrink_iters {
        for cand in shrunk.shrink() {
            iters += 1;
            if let Err(e) = run_case(&prop, &cand) {
                shrunk = cand;
                error = e;
                steps += 1;
                continue 'shrinking;
            }
            if iters >= cfg.max_shrink_iters {
                break;
            }
        }
        break;
    }
    Err(Box::new(Failure {
        name: name.to_string(),
        seed: cfg.seed,
        case_index,
        case_seed,
        original: input,
        shrunk,
        shrink_steps: steps,
        error,
    }))
}

/// Run a property and panic with a replayable report on failure.
///
/// The property either returns `Err(message)` or panics (asserts are fine;
/// panics are caught and treated as failures).
pub fn check<T, F>(name: &str, cfg: &Config, prop: F)
where
    T: Gen + Send,
    F: Fn(&T) -> Result<(), String> + Sync,
{
    if let Err(failure) = check_result(name, cfg, prop) {
        panic!("{failure}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let n = check_result("tautology", &Config::new(25), |_: &u32| Ok(())).unwrap();
        assert_eq!(n, 25);
    }

    #[test]
    fn failure_is_shrunk_to_the_boundary() {
        // "No value is >= 100" — minimal counterexample is exactly 100.
        let f = check_result("lt100", &Config::new(500), |&x: &u32| {
            if x < 100 {
                Ok(())
            } else {
                Err(format!("{x} >= 100"))
            }
        })
        .unwrap_err();
        assert_eq!(f.shrunk, 100, "greedy shrink must land on the boundary");
        assert!(f.original >= 100);
    }

    #[test]
    fn vec_failure_shrinks_structurally() {
        // "No vec contains an element >= 50" — minimal form is one element
        // of exactly 50.
        let f = check_result("no_big_elem", &Config::new(200), |v: &Vec<u8>| {
            match v.iter().find(|&&x| x >= 50) {
                None => Ok(()),
                Some(x) => Err(format!("{x} >= 50")),
            }
        })
        .unwrap_err();
        assert_eq!(f.shrunk.len(), 1);
        assert_eq!(f.shrunk[0], 50);
    }

    #[test]
    fn panicking_properties_are_caught() {
        let f = check_result("panics", &Config::new(10), |&x: &u64| {
            assert!(x == u64::MAX, "unlucky");
            Ok(())
        })
        .unwrap_err();
        assert!(f.error.contains("panic"), "error was {:?}", f.error);
    }

    #[test]
    fn same_seed_same_failure() {
        let run = || {
            check_result("det", &Config::new(300), |&x: &u32| {
                if x % 7 != 3 {
                    Ok(())
                } else {
                    Err("hit".into())
                }
            })
            .unwrap_err()
        };
        let a = run();
        let b = run();
        assert_eq!(a.case_index, b.case_index);
        assert_eq!(a.original, b.original);
        assert_eq!(a.shrunk, b.shrunk);
    }

    #[test]
    fn different_seeds_generate_different_cases() {
        let collect = |seed: u64| {
            let seen = std::sync::Mutex::new(Vec::new());
            let cfg = Config {
                seed,
                ..Config::new(20)
            };
            check_result("collect", &cfg, |&x: &u64| {
                seen.lock().unwrap().push(x);
                Ok(())
            })
            .unwrap();
            seen.into_inner().unwrap()
        };
        assert_ne!(collect(1), collect(2));
    }

    #[test]
    fn case_seeds_match_the_serial_seeder() {
        let seeds = case_seeds(0xABCD, 4);
        let mut sm = SplitMix64::new(0xABCD);
        for (i, &s) in seeds.iter().enumerate() {
            assert_eq!(s, sm.next_u64(), "case {i}");
        }
    }

    #[test]
    fn parallel_scan_reports_the_same_failure_as_serial() {
        // The failing predicate is scattered through the run; whichever
        // worker finds a later failure first, the report must still name
        // the lowest failing case index — byte-identical to serial.
        for seed in [DEFAULT_SEED, 0xFEED_F00D] {
            let run = |jobs: usize| {
                let cfg = Config {
                    seed,
                    jobs,
                    ..Config::new(400)
                };
                check_result("par_det", &cfg, |&x: &u32| {
                    if x % 11 != 5 {
                        Ok(())
                    } else {
                        Err(format!("{x} hits the predicate"))
                    }
                })
                .unwrap_err()
            };
            let serial = run(1);
            for jobs in [2, 4, 16] {
                let par = run(jobs);
                assert_eq!(
                    format!("{serial}"),
                    format!("{par}"),
                    "failure report diverged at jobs = {jobs}, seed {seed:#x}"
                );
            }
        }
    }

    #[test]
    fn parallel_scan_passes_exactly_like_serial() {
        for jobs in [1, 4] {
            let cfg = Config {
                jobs,
                ..Config::new(200)
            };
            assert_eq!(check_result("taut", &cfg, |_: &u64| Ok(())).unwrap(), 200);
        }
    }
}

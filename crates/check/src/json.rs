//! A zero-dependency JSON well-formedness checker (RFC 8259 grammar, no
//! value tree built), used by CI to assert that generated reports such as
//! `BENCH_sim.json` are parseable before anything downstream consumes them.

/// Validate that `text` is exactly one well-formed JSON value (with
/// optional surrounding whitespace).
///
/// # Errors
///
/// Returns `"line L, col C: message"` for the first offending byte.
pub fn validate(text: &str) -> Result<(), String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after JSON value"));
    }
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        let (mut line, mut col) = (1usize, 1usize);
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        format!("line {line}, col {col}: {msg}")
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected literal `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("expected a JSON value")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                if !matches!(
                                    self.peek(),
                                    Some(b'0'..=b'9' | b'a'..=b'f' | b'A'..=b'F')
                                ) {
                                    return Err(self.err("invalid \\u escape"));
                                }
                                self.pos += 1;
                            }
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_documents() {
        for ok in [
            "{}",
            "[]",
            "null",
            "true",
            "-0.5e+3",
            r#""a \"quoted\" é string""#,
            r#"{"suite": "BENCH_sim", "results": [{"name": "x", "samples_ns": [1.0, 2.5]}]}"#,
            "  [1, 2, 3]\n",
        ] {
            assert!(validate(ok).is_ok(), "should accept: {ok}");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1, 2,]",
            "{\"a\": }",
            "{\"a\" 1}",
            "01",
            "1.",
            "1e",
            "NaN",
            "\"unterminated",
            "\"bad \\x escape\"",
            "{} extra",
            "'single'",
        ] {
            assert!(validate(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn errors_carry_positions() {
        let e = validate("{\n  \"a\": ,\n}").unwrap_err();
        assert!(e.starts_with("line 2"), "got: {e}");
    }

    #[test]
    fn bench_harness_output_is_well_formed() {
        let mut h = crate::bench::Harness::with_options(
            "jsonck",
            crate::bench::BenchOptions {
                warmup_ms: 1,
                samples: 3,
                target_sample_ms: 0.05,
            },
        );
        h.bench("odd\"name", || 1u32);
        validate(&h.to_json()).expect("harness JSON must validate");
    }
}
